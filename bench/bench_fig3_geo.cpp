// FIG3b — reproduces the geographic-distribution axis of Figure 3.
//
// Paper setup (§III-2): data source on XSEDE Jetstream (US), all
// processing stages on the LRZ cloud (EU); measured WAN: 140-160 ms RTT,
// 60-100 Mbit/s; four partitions.
//
// Expected shape: baseline and k-means become WAN-bound (throughput
// capped by the intercontinental link, ~8-12 MB/s), while the
// compute-bound isolation forest and auto-encoder are barely affected by
// the network (processing remains the bottleneck).
//
// The WAN is emulated in real time (PE_TIME_SCALE=1 by default) so
// throughput numbers are directly meaningful: a WAN-bound series caps at
// the link's ~8-12 MB/s delivered bandwidth. Raise PE_TIME_SCALE to trade
// fidelity for speed (WAN-bound MB/s then inflates by the same factor).
#include "bench_util.h"

int main() {
  using namespace pe;
  Logger::set_level(LogLevel::kError);

  const double time_scale = bench::env_double("PE_TIME_SCALE", 1.0);
  Clock::set_time_scale(time_scale);

  struct ModelRun {
    ml::ModelKind kind;
    std::size_t default_messages;
  };
  const std::vector<ModelRun> models = {
      {ml::ModelKind::kBaseline, 24},
      {ml::ModelKind::kKMeans, 24},
      {ml::ModelKind::kIsolationForest, 16},
      {ml::ModelKind::kAutoEncoder, 8},
  };
  const std::vector<std::size_t> message_points = {25, 1000, 10000};
  constexpr std::uint32_t kPartitions = 4;  // paper: four partitions

  std::printf(
      "FIG3b: geographic distribution (source: jetstream-us, processing: "
      "lrz-eu)\n"
      "(WAN 140-160 ms RTT, 60-100 Mbit/s, %u partitions, time scale "
      "%.0fx)\n\n",
      kPartitions, time_scale);
  bench::print_row_header();

  int run_id = 0;
  double baseline_mbs_10k = 0.0, ae_mbs_10k = 0.0;
  double baseline_proc_rate = 0.0, ae_proc_rate = 0.0;
  for (const auto& model : models) {
    auto tb = bench::make_geo_testbed(kPartitions);
    const std::size_t messages =
        bench::env_size("PE_BENCH_MESSAGES",
                        bench::full_mode() ? 512 : model.default_messages);
    for (std::size_t points : message_points) {
      core::PipelineConfig config;
      config.edge_devices = kPartitions;
      config.partitions = kPartitions;
      config.messages_per_device =
          std::max<std::size_t>(1, messages / kPartitions);
      config.rows_per_message = points;
      config.run_timeout = std::chrono::minutes(30);
      auto report = bench::run_pipeline(
          tb, config, model.kind, "fig3b-" + std::to_string(run_id++));
      bench::print_row(ml::to_string(model.kind), points, kPartitions,
                       report);
      if (points == 10000) {
        if (model.kind == ml::ModelKind::kBaseline) {
          baseline_mbs_10k = report.run.mbytes_per_second;
          baseline_proc_rate = report.run.processing_msgs_per_second;
        }
        if (model.kind == ml::ModelKind::kAutoEncoder) {
          ae_mbs_10k = report.run.mbytes_per_second;
          ae_proc_rate = report.run.processing_msgs_per_second;
        }
      }
    }
    // WAN accounting per model family.
    const auto links = tb.fabric->link_stats();
    const auto it = links.find("jetstream-us->lrz-eu");
    if (it != links.end()) {
      std::printf(
          "    [wan] %s: %.1f MB over the atlantic, %.2f s queueing\n",
          ml::to_string(model.kind),
          static_cast<double>(it->second.bytes) / 1e6,
          std::chrono::duration<double>(it->second.total_queue_delay)
              .count());
    }
  }

  std::printf(
      "\nShape check (paper: WAN caps baseline/k-means; compute caps "
      "iforest/auto-encoder):\n"
      "  baseline  at 10k points: %.2f MB/s end-to-end (WAN-bound; link "
      "nominal is ~10 MB/s)\n"
      "  auto-enc. at 10k points: %.2f MB/s end-to-end, processing rate "
      "%.2f msg/s vs baseline %.2f msg/s\n",
      baseline_mbs_10k, ae_mbs_10k, ae_proc_rate, baseline_proc_rate);
  Clock::set_time_scale(1.0);
  return 0;
}
