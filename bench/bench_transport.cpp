// Transport data-plane shootout (one "BENCH {...}" json line per mode):
//
//   inproc        BoundedQueue<Bytes> between two threads — the ceiling
//                 an in-process pipeline can reach (no framing, no CRC).
//   shm_ring      the shared-memory ring, producer and consumer in
//                 separate REAL PROCESSES (fork) — the same-host
//                 cross-process data plane the broker control plane
//                 brokers.
//   framed_socket length-framed loopback TCP — the WAN-hop path every
//                 byte takes when shm is impossible.
//
// What this proves: the shm ring moves >= 1M records across a process
// boundary with zero loss, and where it sits between the in-process
// ceiling and the socket floor.
//
// Knobs: PE_BENCH_RECORDS (default 1'000'000; PE_BENCH_FULL=1 -> 4M),
//        PE_BENCH_PAYLOAD (default 64 bytes).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/queue.h"
#include "telemetry/json.h"
#include "transport/framed_socket.h"
#include "transport/shm_ring.h"
#include "transport/wire.h"

namespace {

using namespace pe;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

struct RunResult {
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  double wall_seconds = 0;
  bool ok = false;
};

void print_row(const char* mode, std::size_t payload_bytes,
               const RunResult& r) {
  tel::JsonWriter w;
  w.begin_object();
  w.key("bench").value("transport");
  w.key("mode").value(mode);
  w.key("payload_bytes").value(static_cast<std::uint64_t>(payload_bytes));
  w.key("records").value(r.records);
  w.key("bytes").value(r.bytes);
  w.key("wall_seconds").value(r.wall_seconds);
  w.key("records_per_sec")
      .value(r.wall_seconds > 0 ? static_cast<double>(r.records) /
                                      r.wall_seconds
                                : 0.0);
  w.key("mb_per_sec")
      .value(r.wall_seconds > 0
                 ? static_cast<double>(r.bytes) / r.wall_seconds / 1e6
                 : 0.0);
  w.key("ok").value(r.ok);
  w.end_object();
  std::printf("BENCH %s\n", w.str().c_str());
  std::fflush(stdout);
}

RunResult run_inproc(std::uint64_t records, std::size_t payload_bytes) {
  RunResult result;
  BoundedQueue<Bytes> queue(8192);
  const auto start = Clock::now();
  std::thread producer([&] {
    for (std::uint64_t seq = 0; seq < records; ++seq) {
      Bytes payload(payload_bytes);
      std::memcpy(payload.data(), &seq, sizeof(seq));
      queue.push(std::move(payload));
    }
    queue.close();
  });
  std::uint64_t consumed = 0;
  bool dense = true;
  while (auto item = queue.pop()) {
    std::uint64_t seq = 0;
    std::memcpy(&seq, item->data(), sizeof(seq));
    if (seq != consumed) dense = false;
    consumed += 1;
    result.bytes += item->size();
  }
  producer.join();
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.records = consumed;
  result.ok = dense && consumed == records;
  return result;
}

RunResult run_shm_ring(std::uint64_t records, std::size_t payload_bytes) {
  RunResult result;
  const std::string name =
      "/pe_bench_ring_" + std::to_string(static_cast<long long>(::getpid()));
  (void)transport::ShmRing::unlink(name);
  auto ring = transport::ShmRing::create(name, 4ull << 20);
  if (!ring.ok()) return result;

  const auto start = Clock::now();
  const pid_t child = ::fork();
  if (child < 0) return result;
  if (child == 0) {
    // Child = producer process: genuine cross-process delivery.
    Bytes payload(payload_bytes);
    for (std::uint64_t seq = 0; seq < records; ++seq) {
      std::memcpy(payload.data(), &seq, sizeof(seq));
      while (true) {
        auto s = ring.value()->push(payload, std::chrono::milliseconds(200));
        if (s.ok()) break;
        if (!s.is_transient()) ::_exit(2);
      }
    }
    ring.value()->close_producer();
    ::_exit(0);
  }

  auto consumer = transport::ShmRing::open(name);
  if (!consumer.ok()) {
    ::kill(child, SIGKILL);
    (void)::waitpid(child, nullptr, 0);
    return result;
  }
  std::uint64_t consumed = 0;
  bool dense = true;
  while (true) {
    auto popped = consumer.value()->pop();
    if (popped.ok()) {
      std::uint64_t seq = 0;
      std::memcpy(&seq, popped.value().data(), sizeof(seq));
      if (seq != consumed) dense = false;
      consumed += 1;
      result.bytes += popped.value().size();
      if ((consumed & 0x3FF) == 0) consumer.value()->commit();
      continue;
    }
    consumer.value()->commit();
    if (consumer.value()->drained_and_closed()) break;
    std::this_thread::yield();
  }
  int wstatus = 0;
  (void)::waitpid(child, &wstatus, 0);
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.records = consumed;
  result.ok = dense && consumed == records && WIFEXITED(wstatus) &&
              WEXITSTATUS(wstatus) == 0;
  (void)transport::ShmRing::unlink(name);
  return result;
}

RunResult run_framed_socket(std::uint64_t records,
                            std::size_t payload_bytes) {
  RunResult result;
  auto listener = transport::FramedListener::listen_loopback();
  if (!listener.ok()) return result;
  const std::uint16_t port = listener.value().port();

  const auto start = Clock::now();
  std::thread sender([&, port] {
    auto socket =
        transport::FramedSocket::connect_loopback(port, std::chrono::seconds(2));
    if (!socket.ok()) return;
    Bytes payload(payload_bytes);
    for (std::uint64_t seq = 0; seq < records; ++seq) {
      std::memcpy(payload.data(), &seq, sizeof(seq));
      if (!socket.value().send_frame(transport::kFrameBinary, payload).ok()) {
        return;
      }
    }
    socket.value().close();
  });

  auto accepted = listener.value().accept(std::chrono::seconds(2));
  std::uint64_t consumed = 0;
  bool dense = true;
  if (accepted.ok()) {
    while (true) {
      auto frame = accepted.value().recv_frame(std::chrono::seconds(2));
      if (!frame.ok()) break;  // UNAVAILABLE = clean sender close
      std::uint64_t seq = 0;
      std::memcpy(&seq, frame.value().payload.data(), sizeof(seq));
      if (seq != consumed) dense = false;
      consumed += 1;
      result.bytes += frame.value().payload.size();
    }
  }
  sender.join();
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.records = consumed;
  result.ok = dense && consumed == records;
  return result;
}

}  // namespace

int main() {
  const std::uint64_t records =
      env_size("PE_BENCH_RECORDS",
               env_size("PE_BENCH_FULL", 0) == 1 ? 4'000'000 : 1'000'000);
  const std::size_t payload = env_size("PE_BENCH_PAYLOAD", 64);

  const auto inproc = run_inproc(records, payload);
  print_row("inproc", payload, inproc);
  const auto shm = run_shm_ring(records, payload);
  print_row("shm_ring", payload, shm);
  // The socket path is slower per record; scale the count down so the
  // bench stays quick, throughput is still representative.
  const auto sock = run_framed_socket(records / 4, payload);
  print_row("framed_socket", payload, sock);

  return (inproc.ok && shm.ok && sock.ok) ? 0 : 2;
}
