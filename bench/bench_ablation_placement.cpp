// ABL1 — placement ablation: cloud-centric vs hybrid deployments over the
// WAN, plus the cost-model recommendation (paper §II-D / §III-2: "Both
// scenarios would benefit from a hybrid edge-to-cloud deployment, e.g.,
// by adding a data compression step before the data transfer").
//
// Runs k-means over the geo topology with (a) raw cloud-centric shipping,
// (b) hybrid with 4x edge aggregation, (c) hybrid with 16x aggregation,
// and prints the placement advisor's estimate next to the measured rows.
#include "bench_util.h"
#include "telemetry/energy.h"

int main() {
  using namespace pe;
  Logger::set_level(LogLevel::kError);

  const double time_scale = bench::env_double("PE_TIME_SCALE", 1.0);
  Clock::set_time_scale(time_scale);

  constexpr std::uint32_t kPartitions = 4;
  constexpr std::size_t kPoints = 10000;
  const std::size_t messages = bench::env_size("PE_BENCH_MESSAGES", 16);

  std::printf(
      "ABL1: placement ablation, k-means over the WAN at %zu-point "
      "messages (time scale %.0fx)\n\n",
      kPoints, time_scale);

  struct Variant {
    const char* name;
    std::size_t aggregate_window;  // 0 = cloud-centric
  };
  const std::vector<Variant> variants = {
      {"cloud-centric", 0},
      {"hybrid-agg4", 4},
      {"hybrid-agg16", 16},
  };

  bench::print_row_header();
  int run_id = 0;
  for (const auto& variant : variants) {
    auto tb = bench::make_geo_testbed(kPartitions);
    core::PipelineConfig config;
    config.edge_devices = kPartitions;
    config.partitions = kPartitions;
    config.messages_per_device =
        std::max<std::size_t>(1, messages / kPartitions);
    config.rows_per_message = kPoints;
    config.run_timeout = std::chrono::minutes(30);
    core::ProcessFnFactory edge_fn;
    if (variant.aggregate_window > 0) {
      config.mode = core::DeploymentMode::kHybrid;
      edge_fn =
          core::functions::make_aggregate_edge(variant.aggregate_window);
    }
    auto report = bench::run_pipeline(tb, config, ml::ModelKind::kKMeans,
                                      "abl1-" + std::to_string(run_id++),
                                      edge_fn);
    bench::print_row(variant.name, kPoints, kPartitions, report);
    const auto links = tb.fabric->link_stats();
    const auto it = links.find("jetstream-us->lrz-eu");
    std::uint64_t wan_bytes = 0;
    if (it != links.end()) {
      wan_bytes = it->second.bytes;
      std::printf("    [wan] %s shipped %.1f MB\n", variant.name,
                  static_cast<double>(wan_bytes) / 1e6);
    }
    // Energy ablation (paper future work): same run, first-order joules.
    tel::EnergyModel energy;
    const auto inputs = energy.inputs_from_run(
        report.run, kPartitions, /*cloud_cores=*/kPartitions, wan_bytes,
        /*lan_bytes=*/report.broker.bytes_out);
    std::printf("    [energy] %s: %s\n", variant.name,
                energy.estimate(inputs).to_string().c_str());
  }

  // What the cost model would have recommended for this workload.
  core::PlacementFactors factors;
  factors.edge_site = "jetstream-us";
  factors.cloud_site = "lrz-eu";
  factors.message_bytes = kPoints * 32 * 8;
  factors.cloud_compute_ms = 40.0;  // measured k-means cost at 10k points
  factors.reduction_ratio = 0.25;
  factors.reduction_ms = 5.0;
  auto fabric = net::Fabric::make_paper_topology();
  auto rec = core::recommend_placement(*fabric, factors);
  if (rec.ok()) {
    std::printf("\n%s", rec.value().to_string().c_str());
  }
  Clock::set_time_scale(1.0);
  return 0;
}
