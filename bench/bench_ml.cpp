// Micro-benchmarks for the ML workloads (google-benchmark).
//
// Quantifies the per-message model costs that drive Fig. 3's ranking:
// partial_fit and score per model kind and message size. The paper's
// "model complexity" axis is exactly these kernels.
#include <benchmark/benchmark.h>

#include "data/generator.h"
#include "ml/autoencoder.h"
#include "ml/factory.h"
#include "ml/isolation_forest.h"
#include "ml/kmeans.h"

namespace {

using namespace pe;

data::DataBlock make_block(std::size_t rows, std::uint64_t seed = 7) {
  data::GeneratorConfig config;
  config.seed = seed;
  data::Generator gen(config);
  return gen.generate(rows);
}

template <ml::ModelKind Kind>
void BM_ModelPartialFit(benchmark::State& state) {
  auto model = ml::make_model(Kind);
  const auto rows = static_cast<std::size_t>(state.range(0));
  auto warmup = make_block(rows, 1);
  (void)model->partial_fit(warmup);
  std::uint64_t seed = 2;
  for (auto _ : state) {
    state.PauseTiming();
    auto block = make_block(rows, seed++);
    state.ResumeTiming();
    benchmark::DoNotOptimize(model->partial_fit(block));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_ModelPartialFit<ml::ModelKind::kKMeans>)
    ->Arg(25)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ModelPartialFit<ml::ModelKind::kIsolationForest>)
    ->Arg(25)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ModelPartialFit<ml::ModelKind::kAutoEncoder>)
    ->Arg(25)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

template <ml::ModelKind Kind>
void BM_ModelScore(benchmark::State& state) {
  auto model = ml::make_model(Kind);
  const auto rows = static_cast<std::size_t>(state.range(0));
  auto train = make_block(std::max<std::size_t>(rows, 512), 1);
  (void)model->fit(train);
  const auto block = make_block(rows, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->score(block));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_ModelScore<ml::ModelKind::kKMeans>)
    ->Arg(25)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ModelScore<ml::ModelKind::kIsolationForest>)
    ->Arg(25)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ModelScore<ml::ModelKind::kAutoEncoder>)
    ->Arg(25)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_KMeansClusterSweep(benchmark::State& state) {
  ml::KMeansConfig config;
  config.clusters = static_cast<std::size_t>(state.range(0));
  ml::KMeans model(config);
  auto train = make_block(2000, 1);
  (void)model.fit(train);
  const auto block = make_block(1000, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.score(block));
  }
}
BENCHMARK(BM_KMeansClusterSweep)
    ->Arg(5)->Arg(25)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_IsolationForestTreeSweep(benchmark::State& state) {
  ml::IsolationForestConfig config;
  config.trees = static_cast<std::size_t>(state.range(0));
  ml::IsolationForest model(config);
  auto train = make_block(2000, 1);
  (void)model.fit(train);
  const auto block = make_block(1000, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.score(block));
  }
}
BENCHMARK(BM_IsolationForestTreeSweep)
    ->Arg(10)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_AutoEncoderEpochSweep(benchmark::State& state) {
  ml::AutoEncoderConfig config;
  config.epochs_per_fit = static_cast<std::size_t>(state.range(0));
  ml::AutoEncoder model(config);
  auto block = make_block(512, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.partial_fit(block));
  }
}
BENCHMARK(BM_AutoEncoderEpochSweep)
    ->Arg(1)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_ModelSaveLoad(benchmark::State& state) {
  auto model = ml::make_model(ml::ModelKind::kKMeans);
  (void)model->fit(make_block(2000));
  for (auto _ : state) {
    auto bytes = model->save();
    auto fresh = ml::make_model(ml::ModelKind::kKMeans);
    benchmark::DoNotOptimize(fresh->load(bytes));
  }
}
BENCHMARK(BM_ModelSaveLoad);

}  // namespace

BENCHMARK_MAIN();
