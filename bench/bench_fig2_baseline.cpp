// FIG2 — reproduces Figure 2: "Throughput and Latencies by Message Size
// and Partitions".
//
// Paper setup (§III-1): edge data source, broker, and processing all on
// the LRZ cloud; one partition per simulated edge device (1 core / 4 GB,
// RasPi-class); message sizes 25..10,000 points x 32 features (7 KB to
// 2.6 MB); 512 messages per run, >= 3 repeats; no ML (baseline).
//
// Expected shape: total throughput (MB/s) grows with message size and
// with the number of partitions/devices; at 4 partitions the processing
// side becomes the bottleneck (broker-in rate > processing rate).
//
// Scaled-down defaults keep the binary CI-friendly; set PE_BENCH_FULL=1
// (or PE_BENCH_MESSAGES=512, PE_BENCH_REPEATS=3) for paper-scale runs.
#include "bench_util.h"

int main() {
  using namespace pe;
  Logger::set_level(LogLevel::kError);

  const std::size_t default_messages = bench::full_mode() ? 512 : 48;
  const std::size_t messages =
      bench::env_size("PE_BENCH_MESSAGES", default_messages);
  const std::size_t repeats = bench::env_size(
      "PE_BENCH_REPEATS", bench::full_mode() ? 3 : 1);

  const std::vector<std::size_t> message_points = {25, 100, 1000, 10000};
  const std::vector<std::uint32_t> partition_counts = {1, 2, 4};

  std::printf(
      "FIG2: baseline throughput/latency by message size and partitions\n"
      "(single cloud site; 1 partition per edge device; %zu msgs/device, "
      "%zu repeat(s))\n\n",
      messages, repeats);
  bench::print_row_header();

  // Two processing variants: pure pass-through, and the paper's running
  // k-means consumer ("25 clusters as previously") whose cost is what
  // makes the processing side the 4-partition bottleneck.
  const std::vector<ml::ModelKind> variants = {ml::ModelKind::kBaseline,
                                               ml::ModelKind::kKMeans};
  int run_id = 0;
  for (ml::ModelKind variant : variants) {
    for (std::uint32_t partitions : partition_counts) {
      auto tb = bench::make_single_site_testbed(partitions);
      for (std::size_t points : message_points) {
        for (std::size_t rep = 0; rep < repeats; ++rep) {
          core::PipelineConfig config;
          config.edge_devices = partitions;  // one device per partition
          config.partitions = partitions;
          config.messages_per_device = messages / partitions;
          config.rows_per_message = points;
          config.run_timeout = std::chrono::minutes(10);
          auto report = bench::run_pipeline(
              tb, config, variant, "fig2-" + std::to_string(run_id++));
          bench::print_row(ml::to_string(variant), points, partitions,
                           report);
        }
      }
    }
  }

  std::printf(
      "\nBottleneck check (paper: at 4 partitions the broker outpaces the\n"
      "consuming processing tasks): compare brok_m/s vs proc_m/s above.\n");
  return 0;
}
