// FIG3a — reproduces the model-type axis of Figure 3: "Throughput and
// Latency by Model Type [and] Message Size" plus the §V headline
// "k-means can achieve five times the throughput of isolation forests
// for large message sizes (10,000 points)".
//
// Paper setup (§III-2): cloud-centric deployment; data generator on the
// edge; pre-processing, training and inference on the 10-core/44 GB LRZ
// VM; models updated with each incoming block; k-means (25 clusters),
// isolation forest (100 trees), auto-encoder ([64,32,32,64], streaming-
// capped training).
//
// Expected shape: throughput ranking baseline > k-means > isolation
// forest > auto-encoder, with the gap widening as messages grow.
#include "bench_util.h"

int main() {
  using namespace pe;
  Logger::set_level(LogLevel::kError);

  struct ModelRun {
    ml::ModelKind kind;
    std::size_t default_messages;  // heavier models run fewer messages
  };
  const std::vector<ModelRun> models = {
      {ml::ModelKind::kBaseline, 48},
      {ml::ModelKind::kKMeans, 48},
      {ml::ModelKind::kIsolationForest, 32},
      {ml::ModelKind::kAutoEncoder, 12},
  };
  const std::vector<std::size_t> message_points = {25, 1000, 10000};
  const std::size_t repeats = bench::env_size(
      "PE_BENCH_REPEATS", bench::full_mode() ? 3 : 1);
  constexpr std::uint32_t kPartitions = 4;

  std::printf(
      "FIG3a: throughput/latency by model type and message size\n"
      "(cloud-centric, single site, %u partitions/devices)\n\n",
      kPartitions);
  bench::print_row_header();

  double kmeans_10k = 0.0, iforest_10k = 0.0, ae_10k = 0.0;
  int run_id = 0;
  for (const auto& model : models) {
    auto tb = bench::make_single_site_testbed(kPartitions);
    const std::size_t messages = bench::env_size(
        "PE_BENCH_MESSAGES",
        bench::full_mode() ? 512 : model.default_messages);
    for (std::size_t points : message_points) {
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        core::PipelineConfig config;
        config.edge_devices = kPartitions;
        config.partitions = kPartitions;
        config.messages_per_device =
            std::max<std::size_t>(1, messages / kPartitions);
        config.rows_per_message = points;
        config.run_timeout = std::chrono::minutes(20);
        auto report = bench::run_pipeline(
            tb, config, model.kind, "fig3a-" + std::to_string(run_id++));
        bench::print_row(ml::to_string(model.kind), points, kPartitions,
                         report);
        if (points == 10000 && rep == 0) {
          if (model.kind == ml::ModelKind::kKMeans) {
            kmeans_10k = report.run.messages_per_second;
          } else if (model.kind == ml::ModelKind::kIsolationForest) {
            iforest_10k = report.run.messages_per_second;
          } else if (model.kind == ml::ModelKind::kAutoEncoder) {
            ae_10k = report.run.messages_per_second;
          }
        }
      }
    }
  }

  if (iforest_10k > 0.0 && ae_10k > 0.0) {
    std::printf(
        "\nHeadline check at 10,000-point messages (paper: k-means ~5x "
        "isolation forest; auto-encoder worst):\n"
        "  k-means / isolation-forest throughput ratio: %.2fx\n"
        "  k-means / auto-encoder      throughput ratio: %.2fx\n",
        kmeans_10k / iforest_10k, kmeans_10k / ae_10k);
  }
  return 0;
}
