// ABL2 — producer batching over the WAN (design ablation).
//
// The paper's Kafka producers batch records before shipping; this
// ablation shows why that design matters on a high-latency link: sending
// N records as one batch pays one propagation delay instead of N.
#include <cstdio>

#include "broker/producer.h"
#include "common/logging.h"
#include "network/fabric.h"

int main() {
  using namespace pe;
  Logger::set_level(LogLevel::kError);
  Clock::set_time_scale(25.0);

  auto fabric = net::Fabric::make_paper_topology();
  constexpr std::size_t kRecords = 64;
  constexpr std::size_t kRecordBytes = 32 * 1000 * 8 / 100;  // ~2.56 KB

  std::printf(
      "ABL2: producer batching over the WAN (64 x 2.56 KB records, "
      "25x time scale; durations rescaled to emulated seconds)\n\n");
  std::printf("%-18s %12s %14s\n", "batch_size", "wall_s(emul)", "records/s");
  std::printf("%s\n", std::string(48, '-').c_str());

  for (std::size_t batch_size : {std::size_t{1}, std::size_t{4},
                                 std::size_t{16}, std::size_t{64}}) {
    auto broker_ptr = std::make_shared<broker::Broker>("lrz-eu");
    (void)broker_ptr->create_topic("t", broker::TopicConfig{.partitions = 1});
    broker::Producer producer(broker_ptr, fabric, "jetstream-us");

    Stopwatch sw;
    std::size_t sent = 0;
    while (sent < kRecords) {
      std::vector<broker::Record> batch;
      for (std::size_t i = 0; i < batch_size && sent + i < kRecords; ++i) {
        broker::Record r;
        r.key = "k";
        r.value = Bytes(kRecordBytes, 1);
        batch.push_back(std::move(r));
      }
      sent += batch.size();
      if (!producer.send_batch("t", 0, std::move(batch)).ok()) return 1;
    }
    const double emulated_s = sw.elapsed_seconds() * 25.0;
    std::printf("%-18zu %12.2f %14.1f\n", batch_size, emulated_s,
                static_cast<double>(kRecords) / emulated_s);
  }

  std::printf(
      "\nShape: throughput rises with batch size until the link's\n"
      "bandwidth (not its latency) becomes the limit.\n");
  Clock::set_time_scale(1.0);
  return 0;
}
