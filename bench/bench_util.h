// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each bench binary reproduces one table/figure of the paper by driving
// full EdgeToCloudPipeline runs and printing one row per configuration.
// Knobs (environment variables):
//   PE_BENCH_MESSAGES  messages per device per run   (default: per-bench)
//   PE_BENCH_REPEATS   repeats per configuration     (default 1; paper: 3)
//   PE_TIME_SCALE      emulation speed-up for WAN benches (default 25)
//   PE_BENCH_FULL      set to 1 for paper-scale runs (512 msgs, 3 repeats)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/functions.h"
#include "core/pipeline.h"

namespace pe::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const double parsed = std::atof(v);
  return parsed > 0.0 ? parsed : fallback;
}

inline bool full_mode() { return env_size("PE_BENCH_FULL", 0) == 1; }

/// Pilot set for one experiment.
struct Testbed {
  std::shared_ptr<net::Fabric> fabric;
  std::unique_ptr<res::PilotManager> manager;
  res::PilotPtr edge;
  res::PilotPtr cloud;
  res::PilotPtr broker;
};

/// Single-site testbed (paper §III-1: everything on the LRZ cloud; edge
/// devices are 1-core tasks "comparable to a current Raspberry Pi").
inline Testbed make_single_site_testbed(std::uint32_t edge_cores) {
  Testbed tb;
  tb.fabric = net::Fabric::make_single_site_topology();
  res::PilotManagerOptions options;
  options.startup_delay_factor = 0.0005;
  tb.manager = std::make_unique<res::PilotManager>(tb.fabric, options);
  // Edge devices simulated as cloud-hosted 1-core tasks => a VM pilot
  // holding `edge_cores` cores on the same site.
  tb.edge = tb.manager
                ->submit(res::Flavors::make("lrz-eu", res::Backend::kCloudVm,
                                            edge_cores, 4.0 * edge_cores))
                .value();
  tb.cloud = tb.manager->submit(res::Flavors::lrz_large()).value();
  tb.broker = tb.manager
                  ->submit(res::Flavors::make(
                      "lrz-eu", res::Backend::kBrokerService, 4, 16.0))
                  .value();
  if (!tb.manager->wait_all_active().ok()) std::abort();
  return tb;
}

/// Geo testbed (paper §III-2: source on Jetstream/US, broker + processing
/// on LRZ/EU, WAN at 140-160 ms RTT / 60-100 Mbit/s).
inline Testbed make_geo_testbed(std::uint32_t edge_cores) {
  Testbed tb;
  tb.fabric = net::Fabric::make_paper_topology();
  res::PilotManagerOptions options;
  options.startup_delay_factor = 0.0005;
  tb.manager = std::make_unique<res::PilotManager>(tb.fabric, options);
  tb.edge = tb.manager
                ->submit(res::Flavors::make("jetstream-us",
                                            res::Backend::kCloudVm,
                                            edge_cores, 4.0 * edge_cores))
                .value();
  tb.cloud = tb.manager->submit(res::Flavors::lrz_large()).value();
  tb.broker = tb.manager
                  ->submit(res::Flavors::make(
                      "lrz-eu", res::Backend::kBrokerService, 4, 16.0))
                  .value();
  if (!tb.manager->wait_all_active().ok()) std::abort();
  return tb;
}

/// One experiment run: wires the pipeline, runs it, returns the report.
inline core::PipelineRunReport run_pipeline(
    Testbed& tb, core::PipelineConfig config, ml::ModelKind model,
    const std::string& topic_suffix,
    core::ProcessFnFactory edge_fn = nullptr) {
  config.topic = "bench-" + topic_suffix;
  core::EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(tb.fabric)
      .set_pilot_edge(tb.edge)
      .set_pilot_cloud_processing(tb.cloud)
      .set_pilot_cloud_broker(tb.broker)
      .set_produce_function(
          core::functions::make_generator_produce({}, config.rows_per_message));
  if (edge_fn) pipeline.set_process_edge_function(std::move(edge_fn));
  if (model == ml::ModelKind::kBaseline) {
    pipeline.set_process_cloud_function(
        core::functions::make_passthrough_process());
  } else {
    pipeline.set_process_cloud_function(
        core::functions::make_model_process(model));
  }
  auto report = pipeline.run();
  if (!report.ok()) {
    std::fprintf(stderr, "bench run failed: %s\n",
                 report.status().to_string().c_str());
    std::abort();
  }
  return std::move(report).value();
}

/// Table formatting.
inline void print_row_header() {
  std::printf(
      "%-14s %6s %9s %5s %6s | %9s %9s | %9s %9s %9s | %9s %9s %9s %9s\n",
      "model", "points", "msg_KB", "part", "msgs", "msgs_per_s", "MB_per_s",
      "prod_m/s", "brok_m/s", "proc_m/s", "e2e_ms", "p50_ms", "p99_ms",
      "proc_ms");
  std::printf("%s\n", std::string(150, '-').c_str());
}

/// When PE_BENCH_CSV names a file, every row is also appended there as
/// CSV (header written when the file is empty/new) for plotting.
inline void append_csv_row(const std::string& model, std::size_t points,
                           std::uint32_t partitions,
                           const core::PipelineRunReport& report) {
  const char* path = std::getenv("PE_BENCH_CSV");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fseek(f, 0, SEEK_END);
  if (std::ftell(f) == 0) {
    std::fprintf(f, "model,points,partitions,%s\n",
                 tel::RunReport::csv_header().c_str());
  }
  std::fprintf(f, "%s,%zu,%u,%s\n", model.c_str(), points, partitions,
               report.run.to_csv_row().c_str());
  std::fclose(f);
}

inline void print_row(const std::string& model, std::size_t points,
                      std::uint32_t partitions,
                      const core::PipelineRunReport& report) {
  append_csv_row(model, points, partitions, report);
  const double msg_kb =
      static_cast<double>(points) * 32.0 * 8.0 / 1000.0;
  std::printf(
      "%-14s %6zu %9.1f %5u %6zu | %9.2f %9.2f | %9.1f %9.1f %9.1f | %9.1f "
      "%9.1f %9.1f %9.1f\n",
      model.c_str(), points, msg_kb, partitions, report.run.messages,
      report.run.messages_per_second, report.run.mbytes_per_second,
      report.run.producer_msgs_per_second,
      report.run.broker_in_msgs_per_second,
      report.run.processing_msgs_per_second, report.run.end_to_end_ms.mean,
      report.run.end_to_end_ms.p50, report.run.end_to_end_ms.p99,
      report.run.processing_ms.mean);
  std::fflush(stdout);
}

}  // namespace pe::bench
