// Recovery benchmark: mean time to recover (MTTR) after injected faults.
//
// Three scenarios, each repeated PE_BENCH_REPEATS times (default 5):
//   pilot-preemption  submit a cloud pilot with auto_reprovision enabled,
//                     preempt it, and time failure -> replacement ACTIVE
//                     (heartbeat detection + backoff + re-provisioning).
//   worker-crash      run a task on a 2-worker cluster, crash its worker,
//                     and time crash -> the re-dispatched execution starts
//                     on the survivor.
//   broker-failover   kill a partition leader in a 3-broker replicated
//                     cluster and time kill -> the first acks=quorum
//                     produce acknowledged by the new leader (heartbeat
//                     expiry + election + client metadata refresh).
// Results print as a table plus one machine-readable "BENCH {...}" json
// line per scenario.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "cluster/broker_cluster.h"
#include "cluster/cluster_client.h"
#include "fault/chaos_engine.h"
#include "resource/pilot_manager.h"
#include "telemetry/json.h"

namespace {

using namespace pe;

struct MttrSample {
  std::vector<double> ms;

  double mean() const {
    double sum = 0.0;
    for (double v : ms) sum += v;
    return ms.empty() ? 0.0 : sum / static_cast<double>(ms.size());
  }
  double min() const {
    return ms.empty() ? 0.0 : *std::min_element(ms.begin(), ms.end());
  }
  double max() const {
    return ms.empty() ? 0.0 : *std::max_element(ms.begin(), ms.end());
  }
};

std::size_t env_repeats() {
  const char* v = std::getenv("PE_BENCH_REPEATS");
  const long long parsed = v != nullptr ? std::atoll(v) : 0;
  return parsed > 0 ? static_cast<std::size_t>(parsed) : 5;
}

// Emulated elapsed milliseconds (wall time re-scaled by the clock factor).
double emulated_ms(const Stopwatch& sw) {
  return sw.elapsed_ms() * Clock::time_scale();
}

MttrSample bench_pilot_preemption(std::size_t repeats) {
  MttrSample sample;
  for (std::size_t i = 0; i < repeats; ++i) {
    auto fabric = net::Fabric::make_paper_topology();
    res::PilotManagerOptions options;
    options.startup_delay_factor = 0.0005;
    options.auto_reprovision = true;
    options.heartbeat_interval = std::chrono::milliseconds(5);
    options.reprovision_backoff = std::chrono::milliseconds(1);
    res::PilotManager manager(fabric, options);
    auto pilot = manager.submit(res::Flavors::lrz_large()).value();
    if (!pilot->wait_active().ok()) std::abort();

    Stopwatch sw;
    // Drive the preemption through the chaos engine (immediate event) so
    // the bench exercises the same path as a FaultPlan experiment.
    fault::FaultPlan plan;
    plan.preempt_pilot(Duration::zero(), pilot->id(), "bench preemption");
    fault::ChaosEngine engine(std::move(plan));
    engine.set_pilot_manager(&manager);
    if (!engine.start().ok()) std::abort();
    engine.join();
    while (manager.reprovision_count() < 1) {
      Clock::sleep_exact(std::chrono::microseconds(200));
    }
    sample.ms.push_back(emulated_ms(sw));
  }
  return sample;
}

MttrSample bench_worker_crash(std::size_t repeats) {
  MttrSample sample;
  for (std::size_t i = 0; i < repeats; ++i) {
    auto cluster = std::make_shared<exec::Cluster>("lrz-eu", 2, 8.0, "bench");
    if (!cluster->add_worker(2, 8.0).ok()) std::abort();

    auto executions = std::make_shared<std::atomic<int>>(0);
    exec::TaskSpec spec;
    spec.fn = [executions](exec::TaskContext& ctx) -> Status {
      executions->fetch_add(1);
      while (!ctx.stop_requested()) {
        Clock::sleep_exact(std::chrono::microseconds(200));
      }
      return Status::Cancelled("stopped");
    };
    auto handle = cluster->submit(std::move(spec));
    if (!handle.ok()) std::abort();
    while (executions->load() == 0) {
      Clock::sleep_exact(std::chrono::microseconds(200));
    }
    const std::string victim =
        cluster->scheduler().task_info(handle.value().id()).value().worker_id;

    Stopwatch sw;
    fault::FaultPlan plan;
    plan.crash_worker(Duration::zero(), victim);
    fault::ChaosEngine engine(std::move(plan));
    engine.add_cluster(cluster);
    if (!engine.start().ok()) std::abort();
    engine.join();
    while (executions->load() < 2) {
      Clock::sleep_exact(std::chrono::microseconds(200));
    }
    sample.ms.push_back(emulated_ms(sw));
    cluster->shutdown();
  }
  return sample;
}

MttrSample bench_broker_failover(std::size_t repeats) {
  using namespace std::chrono_literals;
  MttrSample sample;
  for (std::size_t i = 0; i < repeats; ++i) {
    cluster::ClusterOptions options;
    options.brokers = 3;
    options.replication_factor = 3;
    options.heartbeat_interval = 1ms;
    options.session_timeout = 5ms;
    auto bc = std::make_shared<cluster::BrokerCluster>(options);
    if (!bc->create_topic("bench").ok()) std::abort();
    cluster::ClusterProducer producer(bc, cluster::RetryConfig{},
                                      cluster::AckPolicy::kQuorum);
    broker::Record warmup;
    warmup.key = "warmup";
    if (!producer.send("bench", 0, std::move(warmup)).ok()) std::abort();
    const auto leader = bc->leader("bench", 0).value();

    Stopwatch sw;
    // Kill through the chaos engine's targeted member crash, then time
    // until a produce is acked again: heartbeat expiry, election, and the
    // client's NOT_LEADER/UNAVAILABLE retry loop all land in the sample.
    fault::FaultPlan plan;
    plan.crash_cluster_broker(Duration::zero(),
                              "broker-" + std::to_string(leader));
    fault::ChaosEngine engine(std::move(plan));
    engine.set_broker_cluster(bc);
    if (!engine.start().ok()) std::abort();
    engine.join();
    broker::Record probe;
    probe.key = "probe";
    if (!producer.send("bench", 0, std::move(probe)).ok()) std::abort();
    sample.ms.push_back(emulated_ms(sw));
  }
  return sample;
}

void report(const char* scenario, std::size_t repeats,
            const MttrSample& sample) {
  std::printf("%-18s %7zu %12.2f %12.2f %12.2f\n", scenario, repeats,
              sample.mean(), sample.min(), sample.max());
  tel::JsonWriter w;
  w.begin_object();
  w.key("bench").value("recovery");
  w.key("scenario").value(scenario);
  w.key("repeats").value(static_cast<std::uint64_t>(repeats));
  w.key("mttr_ms_mean").value(sample.mean());
  w.key("mttr_ms_min").value(sample.min());
  w.key("mttr_ms_max").value(sample.max());
  w.end_object();
  std::printf("BENCH %s\n", w.str().c_str());
  std::fflush(stdout);
}

}  // namespace

int main() {
  pe::Logger::set_level(pe::LogLevel::kError);
  const std::size_t repeats = env_repeats();

  std::printf("Recovery MTTR (emulated ms; startup delays at x2000 speed)\n\n");
  std::printf("%-18s %7s %12s %12s %12s\n", "scenario", "repeats", "mean_ms",
              "min_ms", "max_ms");
  std::printf("%s\n", std::string(66, '-').c_str());

  report("pilot-preemption", repeats, bench_pilot_preemption(repeats));
  report("worker-crash", repeats, bench_worker_crash(repeats));
  report("broker-failover", repeats, bench_broker_failover(repeats));
  return 0;
}
