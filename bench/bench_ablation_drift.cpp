// ABL4 — model adaptation under concept drift.
//
// The paper motivates runtime adaptation ("applications respond to
// dynamism ... by updating their tasks' payload", §I/§II-D). This
// ablation quantifies why: a drifting data distribution is scored by
// (a) a frozen model fitted once, (b) a streaming model that keeps
// partial_fit-ing, and (c) a periodically re-fitted model (the paper's
// "replace the processing function at runtime" pattern). Reported per
// epoch: mean inlier anomaly score (lower = model still fits the world).
#include <cstdio>

#include "common/logging.h"
#include "data/generator.h"
#include "ml/kmeans.h"

int main() {
  using namespace pe;
  Logger::set_level(LogLevel::kError);

  data::GeneratorConfig gen_config;
  gen_config.clusters = 5;
  gen_config.outlier_fraction = 0.0;
  gen_config.drift_per_block = 0.8;
  gen_config.seed = 17;
  data::Generator gen(gen_config);

  ml::KMeansConfig km;
  km.clusters = 5;
  km.max_center_weight = 100;
  ml::KMeans frozen(km), streaming(km), refitted(km);

  auto first = gen.generate(800);
  (void)frozen.fit(first);
  (void)streaming.fit(first);
  (void)refitted.fit(first);

  auto mean_score = [](const ml::KMeans& model,
                       const data::DataBlock& block) {
    const auto scores = model.score(block).value();
    double sum = 0.0;
    for (double s : scores) sum += s;
    return sum / static_cast<double>(scores.size());
  };

  std::printf(
      "ABL4: mean inlier anomaly score under concept drift "
      "(drift=%.1f/block; lower = better fit)\n\n",
      gen_config.drift_per_block);
  std::printf("%6s %10s %10s %12s\n", "block", "frozen", "streaming",
              "refit-every8");
  std::printf("%s\n", std::string(42, '-').c_str());

  constexpr int kBlocks = 32;
  for (int b = 1; b <= kBlocks; ++b) {
    auto block = gen.generate(800);
    (void)streaming.partial_fit(block);
    if (b % 8 == 0) {
      // The paper's runtime function-replacement pattern: swap in a
      // freshly fitted model without touching the pilot.
      (void)refitted.fit(block);
    }
    if (b % 4 == 0) {
      std::printf("%6d %10.2f %10.2f %12.2f\n", b,
                  mean_score(frozen, block), mean_score(streaming, block),
                  mean_score(refitted, block));
    }
  }
  std::printf(
      "\nShape: frozen degrades monotonically; streaming tracks the drift;"
      "\nperiodic refit saw-tooths between the two.\n");
  return 0;
}
