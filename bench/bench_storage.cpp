// Storage-engine benchmarks: what durability costs, and what recovery
// costs.
//
// Two machine-readable sweeps, one "BENCH {...}" json line per case:
//   storage_append   — append throughput, in-memory PartitionLog vs a
//                      durable LogDir under each fsync policy. The gap
//                      between kNever and kEverySync is the price of the
//                      ack==durable contract; kEveryNRecords sits between.
//   storage_recovery — LogDir::open() time vs log size (clean close, so
//                      the scan cost is pure CRC verification + index
//                      rebuild, no torn-tail handling).
//   storage_group_commit — concurrent appenders under each fsync policy.
//                      The kEverySync rows show group commit amortizing
//                      one fsync across every appender that piled up
//                      behind the leader.
//   storage_batch_append — append_batch() throughput vs batch size under
//                      kEverySync: one write + at most one fsync per
//                      batch, however many records it carries.
//
// google-benchmark micro benches cover the single-record hot paths;
// PE_BENCH_SWEEP_ONLY=1 skips them. PE_BENCH_GROUP_COMMIT_ONLY=1 runs
// just the group-commit + batch sweeps (the CI smoke uses this).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "broker/partition_log.h"
#include "common/clock.h"
#include "storage/log_dir.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace {

using namespace pe;
namespace fs = std::filesystem;

broker::Record make_record(std::size_t bytes) {
  broker::Record r;
  r.key = "k";
  r.value = Bytes(bytes, 0x5a);
  return r;
}

/// Fresh scratch directory under the system temp dir; callers remove it.
std::string scratch_dir(const std::string& tag) {
  static int counter = 0;
  const auto dir = fs::temp_directory_path() /
                   ("pe_bench_storage_" + tag + "_" +
                    std::to_string(++counter));
  fs::remove_all(dir);
  return dir.string();
}

// --- google-benchmark micro benches ---

void BM_LogDirAppend(benchmark::State& state) {
  const auto dir = scratch_dir("append");
  storage::StorageConfig config;
  config.flush_policy = static_cast<storage::FlushPolicy>(state.range(1));
  auto log = storage::LogDir::open(dir, config);
  if (!log.ok()) std::abort();
  const auto record = make_record(static_cast<std::size_t>(state.range(0)));
  std::uint64_t ts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.value()->append(record, ++ts));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  log.value().reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_LogDirAppend)
    ->ArgsProduct({{800, 32'000},
                   {static_cast<long>(storage::FlushPolicy::kNever),
                    static_cast<long>(storage::FlushPolicy::kEveryNRecords),
                    static_cast<long>(storage::FlushPolicy::kEverySync)}});

void BM_LogDirFetchCold(benchmark::State& state) {
  const auto dir = scratch_dir("fetch");
  auto log = storage::LogDir::open(dir, {});
  if (!log.ok()) std::abort();
  const std::size_t value_bytes = static_cast<std::size_t>(state.range(0));
  for (int i = 0; i < 512; ++i) {
    if (!log.value()->append(make_record(value_bytes), 1 + i).ok()) {
      std::abort();
    }
  }
  std::uint64_t offset = 0;
  for (auto _ : state) {
    auto result = log.value()->fetch(offset, 16, ~0ull);
    benchmark::DoNotOptimize(result);
    offset = (offset + 16) % 512;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16 *
                          static_cast<std::int64_t>(value_bytes));
  log.value().reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_LogDirFetchCold)->Arg(800)->Arg(32'000);

// --- BENCH sweeps ---

void emit_append_case(const char* mode, storage::FlushPolicy policy,
                      std::size_t payload_bytes, std::uint64_t records,
                      double seconds) {
  const double mb =
      static_cast<double>(records * payload_bytes) / 1e6;
  tel::JsonWriter w;
  w.begin_object();
  w.key("bench").value("storage_append");
  w.key("mode").value(mode);
  w.key("flush_policy").value(storage::to_string(policy));
  w.key("payload_bytes").value(static_cast<std::uint64_t>(payload_bytes));
  w.key("records").value(records);
  w.key("seconds").value(seconds);
  w.key("records_per_s").value(static_cast<double>(records) / seconds);
  w.key("mbytes_per_s").value(mb / seconds);
  w.end_object();
  std::printf("BENCH %s\n", w.str().c_str());
  std::fflush(stdout);
}

void run_append_sweep() {
  constexpr std::size_t kPayload = 1024;
  // Few enough records that kEverySync (one fsync per append) finishes
  // quickly; plenty for the memory/kNever cases to measure stably.
  constexpr std::uint64_t kRecords = 2000;

  {
    broker::PartitionLog log;
    Stopwatch sw;
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      (void)log.append(make_record(kPayload));
    }
    emit_append_case("memory", storage::FlushPolicy::kNever, kPayload,
                     kRecords, sw.elapsed_seconds());
  }

  for (auto policy :
       {storage::FlushPolicy::kNever, storage::FlushPolicy::kEveryNRecords,
        storage::FlushPolicy::kIntervalMs,
        storage::FlushPolicy::kEverySync}) {
    const auto dir = scratch_dir("sweep");
    storage::StorageConfig config;
    config.flush_policy = policy;
    auto log = storage::LogDir::open(dir, config);
    if (!log.ok()) std::abort();
    Stopwatch sw;
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      if (!log.value()->append(make_record(kPayload), 1 + i).ok()) {
        std::abort();
      }
    }
    const double seconds = sw.elapsed_seconds();
    emit_append_case("durable", policy, kPayload, kRecords, seconds);
    log.value().reset();
    fs::remove_all(dir);
  }
}

void run_recovery_sweep() {
  for (std::uint64_t records : {1'000ull, 10'000ull, 50'000ull}) {
    const auto dir = scratch_dir("recovery");
    constexpr std::size_t kPayload = 1024;
    storage::StorageConfig config;
    config.segment_max_bytes = 8ull << 20;
    {
      auto log = storage::LogDir::open(dir, config);
      if (!log.ok()) std::abort();
      for (std::uint64_t i = 0; i < records; ++i) {
        if (!log.value()->append(make_record(kPayload), 1 + i).ok()) {
          std::abort();
        }
      }
    }  // clean close

    storage::RecoveryReport report;
    Stopwatch sw;
    auto log = storage::LogDir::open(dir, config, &report);
    const double seconds = sw.elapsed_seconds();
    if (!log.ok()) std::abort();

    tel::JsonWriter w;
    w.begin_object();
    w.key("bench").value("storage_recovery");
    w.key("records").value(records);
    w.key("payload_bytes").value(static_cast<std::uint64_t>(kPayload));
    w.key("log_mbytes")
        .value(static_cast<double>(report.bytes_recovered) / 1e6);
    w.key("segments").value(
        static_cast<std::uint64_t>(report.segments_scanned));
    w.key("recovery_seconds").value(seconds);
    w.key("mbytes_per_s")
        .value(static_cast<double>(report.bytes_recovered) / 1e6 / seconds);
    w.end_object();
    std::printf("BENCH %s\n", w.str().c_str());
    std::fflush(stdout);
    log.value().reset();
    fs::remove_all(dir);
  }
}

void run_group_commit_sweep() {
  constexpr std::size_t kPayload = 1024;
  auto& fsyncs = tel::MetricsRegistry::global().counter("storage.fsyncs");
  for (auto policy :
       {storage::FlushPolicy::kNever, storage::FlushPolicy::kEverySync}) {
    for (int threads : {1, 2, 4, 8, 16}) {
      // Enough per-thread work for stable numbers, few enough that the
      // single-threaded every-sync row (the slow one) stays quick.
      const std::uint64_t per_thread =
          policy == storage::FlushPolicy::kEverySync ? 500 : 4000;
      const auto dir = scratch_dir("group_commit");
      storage::StorageConfig config;
      config.flush_policy = policy;
      auto log = storage::LogDir::open(dir, config);
      if (!log.ok()) std::abort();
      const std::uint64_t fsyncs_before = fsyncs.value();
      Stopwatch sw;
      std::vector<std::thread> workers;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&log, per_thread] {
          for (std::uint64_t i = 0; i < per_thread; ++i) {
            if (!log.value()->append(make_record(kPayload), 1 + i).ok()) {
              std::abort();
            }
          }
        });
      }
      for (auto& w : workers) w.join();
      const double seconds = sw.elapsed_seconds();
      const std::uint64_t records =
          static_cast<std::uint64_t>(threads) * per_thread;

      tel::JsonWriter w;
      w.begin_object();
      w.key("bench").value("storage_group_commit");
      w.key("flush_policy").value(storage::to_string(policy));
      w.key("threads").value(static_cast<std::uint64_t>(threads));
      w.key("payload_bytes").value(static_cast<std::uint64_t>(kPayload));
      w.key("records").value(records);
      w.key("seconds").value(seconds);
      w.key("records_per_s").value(static_cast<double>(records) / seconds);
      w.key("fsyncs").value(fsyncs.value() - fsyncs_before);
      w.end_object();
      std::printf("BENCH %s\n", w.str().c_str());
      std::fflush(stdout);
      log.value().reset();
      fs::remove_all(dir);
    }
  }
}

void run_batch_append_sweep() {
  constexpr std::size_t kPayload = 1024;
  constexpr std::uint64_t kRecords = 2048;
  auto& fsyncs = tel::MetricsRegistry::global().counter("storage.fsyncs");
  for (std::uint64_t batch_records : {1ull, 16ull, 128ull, 1024ull}) {
    const auto dir = scratch_dir("batch_append");
    storage::StorageConfig config;
    config.flush_policy = storage::FlushPolicy::kEverySync;
    auto log = storage::LogDir::open(dir, config);
    if (!log.ok()) std::abort();
    std::vector<broker::Record> records;
    for (std::uint64_t i = 0; i < batch_records; ++i) {
      records.push_back(make_record(kPayload));
    }
    std::vector<storage::TimestampedRecord> batch;
    for (const auto& r : records) batch.push_back({&r, 1});
    const std::uint64_t batches = kRecords / batch_records;
    const std::uint64_t fsyncs_before = fsyncs.value();
    Stopwatch sw;
    for (std::uint64_t i = 0; i < batches; ++i) {
      if (!log.value()->append_batch(batch).ok()) std::abort();
    }
    const double seconds = sw.elapsed_seconds();
    const std::uint64_t total = batches * batch_records;

    tel::JsonWriter w;
    w.begin_object();
    w.key("bench").value("storage_batch_append");
    w.key("batch_records").value(batch_records);
    w.key("payload_bytes").value(static_cast<std::uint64_t>(kPayload));
    w.key("records").value(total);
    w.key("seconds").value(seconds);
    w.key("records_per_s").value(static_cast<double>(total) / seconds);
    w.key("fsyncs").value(fsyncs.value() - fsyncs_before);
    w.key("fsyncs_per_batch")
        .value(static_cast<double>(fsyncs.value() - fsyncs_before) /
               static_cast<double>(batches));
    w.end_object();
    std::printf("BENCH %s\n", w.str().c_str());
    std::fflush(stdout);
    log.value().reset();
    fs::remove_all(dir);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* sweep_only = std::getenv("PE_BENCH_SWEEP_ONLY");
  const char* group_commit_only = std::getenv("PE_BENCH_GROUP_COMMIT_ONLY");
  const bool skip_micro =
      (sweep_only != nullptr && sweep_only[0] == '1') ||
      (group_commit_only != nullptr && group_commit_only[0] == '1');
  if (!skip_micro) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (group_commit_only == nullptr || group_commit_only[0] != '1') {
    run_append_sweep();
    run_recovery_sweep();
  }
  run_group_commit_sweep();
  run_batch_append_sweep();
  return 0;
}
