// Micro-benchmarks for the broker substrate (google-benchmark).
//
// Not a paper figure by itself; quantifies the broker layer that FIG2
// stresses: append/fetch costs by record size and partition parallelism,
// consumer-group overhead, and codec costs.
#include <benchmark/benchmark.h>

#include <thread>

#include "broker/broker.h"
#include "broker/consumer.h"
#include "broker/producer.h"
#include "data/codec.h"
#include "data/generator.h"
#include "network/fabric.h"

namespace {

using namespace pe;

broker::Record make_record(std::size_t bytes) {
  broker::Record r;
  r.key = "k";
  r.value.assign(bytes, 0x5a);
  return r;
}

void BM_PartitionLogAppend(benchmark::State& state) {
  broker::PartitionLog log(
      broker::RetentionPolicy{.max_records = 10000, .max_bytes = 0});
  const auto record = make_record(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    broker::Record copy = record;
    benchmark::DoNotOptimize(log.append(std::move(copy)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PartitionLogAppend)->Arg(800)->Arg(32'000)->Arg(2'560'000);

void BM_PartitionLogFetch(benchmark::State& state) {
  broker::PartitionLog log;
  for (int i = 0; i < 512; ++i) {
    log.append(make_record(static_cast<std::size_t>(state.range(0))));
  }
  std::uint64_t offset = 0;
  for (auto _ : state) {
    broker::FetchSpec spec;
    spec.offset = offset;
    spec.max_records = 16;
    auto result = log.fetch(spec);
    benchmark::DoNotOptimize(result);
    offset = (offset + 16) % 512;
  }
}
BENCHMARK(BM_PartitionLogFetch)->Arg(800)->Arg(32'000);

void BM_ProducerSendLoopback(benchmark::State& state) {
  auto fabric = std::make_shared<net::Fabric>();
  (void)fabric->add_site({.id = "s"});
  auto broker_ptr = std::make_shared<broker::Broker>("s");
  (void)broker_ptr->create_topic(
      "t", broker::TopicConfig{
               .partitions = 1,
               .retention = {.max_records = 4096, .max_bytes = 0}});
  broker::Producer producer(broker_ptr, fabric, "s");
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(producer.send("t", 0, make_record(bytes)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ProducerSendLoopback)->Arg(800)->Arg(32'000)->Arg(2'560'000);

void BM_ProduceConsumeRoundTrip(benchmark::State& state) {
  auto fabric = std::make_shared<net::Fabric>();
  (void)fabric->add_site({.id = "s"});
  auto broker_ptr = std::make_shared<broker::Broker>("s");
  const auto partitions = static_cast<std::uint32_t>(state.range(0));
  (void)broker_ptr->create_topic(
      "t", broker::TopicConfig{
               .partitions = partitions,
               .retention = {.max_records = 1024, .max_bytes = 0}});
  broker::Producer producer(broker_ptr, fabric, "s");
  broker::Consumer consumer(broker_ptr, fabric, "s", "g");
  std::vector<broker::TopicPartition> assignment;
  for (std::uint32_t p = 0; p < partitions; ++p) {
    assignment.push_back({"t", p});
  }
  (void)consumer.assign(assignment);

  std::uint32_t next = 0;
  for (auto _ : state) {
    (void)producer.send("t", next % partitions, make_record(32'000));
    next += 1;
    auto records = consumer.poll(std::chrono::milliseconds(100));
    benchmark::DoNotOptimize(records);
  }
}
BENCHMARK(BM_ProduceConsumeRoundTrip)->Arg(1)->Arg(4);

void BM_CodecEncode(benchmark::State& state) {
  data::Generator gen;
  const auto block = gen.generate(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::Codec::encode(block));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(block.value_bytes()));
}
BENCHMARK(BM_CodecEncode)->Arg(25)->Arg(1000)->Arg(10000);

void BM_CodecDecode(benchmark::State& state) {
  data::Generator gen;
  const auto encoded =
      data::Codec::encode(gen.generate(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::Codec::decode(encoded));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(encoded.size()));
}
BENCHMARK(BM_CodecDecode)->Arg(25)->Arg(1000)->Arg(10000);

void BM_GroupRebalance(benchmark::State& state) {
  broker::GroupCoordinator gc([](const std::string&) { return 64u; });
  const auto members = static_cast<int>(state.range(0));
  for (int m = 0; m < members; ++m) {
    (void)gc.join("g", "m" + std::to_string(m), {"t"});
  }
  int next = members;
  for (auto _ : state) {
    const std::string id = "m" + std::to_string(next++);
    benchmark::DoNotOptimize(gc.join("g", id, {"t"}));
    (void)gc.leave("g", id);
  }
}
BENCHMARK(BM_GroupRebalance)->Arg(4)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
