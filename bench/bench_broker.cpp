// Micro-benchmarks for the broker substrate (google-benchmark), plus the
// consumer-group fan-out sweep that tracks the zero-copy data plane.
//
// Not a paper figure by itself; quantifies the broker layer that FIG2
// stresses: append/fetch costs by record size and partition parallelism,
// consumer-group overhead, and codec costs. The fan-out sweep prints one
// machine-readable "BENCH {...}" json line per (groups x payload) case;
// PE_BENCH_FANOUT_ONLY=1 runs only the fan-out sweep, and
// PE_BENCH_CLUSTER_ONLY=1 runs only the replicated-cluster scaling sweep.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "broker/consumer.h"
#include "broker/producer.h"
#include "cluster/broker_cluster.h"
#include "cluster/cluster_client.h"
#include "data/codec.h"
#include "data/generator.h"
#include "network/fabric.h"
#include "telemetry/json.h"

namespace {

using namespace pe;

broker::Record make_record(std::size_t bytes) {
  broker::Record r;
  r.key = "k";
  r.value = Bytes(bytes, 0x5a);
  return r;
}

void BM_PartitionLogAppend(benchmark::State& state) {
  broker::PartitionLog log(
      broker::RetentionPolicy{.max_records = 10000, .max_bytes = 0});
  const auto record = make_record(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    broker::Record copy = record;
    benchmark::DoNotOptimize(log.append(std::move(copy)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PartitionLogAppend)->Arg(800)->Arg(32'000)->Arg(2'560'000);

void BM_PartitionLogFetch(benchmark::State& state) {
  broker::PartitionLog log;
  for (int i = 0; i < 512; ++i) {
    (void)log.append(make_record(static_cast<std::size_t>(state.range(0))));
  }
  std::uint64_t offset = 0;
  for (auto _ : state) {
    broker::FetchSpec spec;
    spec.offset = offset;
    spec.max_records = 16;
    auto result = log.fetch(spec);
    benchmark::DoNotOptimize(result);
    offset = (offset + 16) % 512;
  }
}
BENCHMARK(BM_PartitionLogFetch)->Arg(800)->Arg(32'000);

void BM_ProducerSendLoopback(benchmark::State& state) {
  auto fabric = std::make_shared<net::Fabric>();
  (void)fabric->add_site({.id = "s"});
  auto broker_ptr = std::make_shared<broker::Broker>("s");
  (void)broker_ptr->create_topic(
      "t", broker::TopicConfig{
               .partitions = 1,
               .retention = {.max_records = 4096, .max_bytes = 0}});
  broker::Producer producer(broker_ptr, fabric, "s");
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(producer.send("t", 0, make_record(bytes)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ProducerSendLoopback)->Arg(800)->Arg(32'000)->Arg(2'560'000);

void BM_ProduceConsumeRoundTrip(benchmark::State& state) {
  auto fabric = std::make_shared<net::Fabric>();
  (void)fabric->add_site({.id = "s"});
  auto broker_ptr = std::make_shared<broker::Broker>("s");
  const auto partitions = static_cast<std::uint32_t>(state.range(0));
  (void)broker_ptr->create_topic(
      "t", broker::TopicConfig{
               .partitions = partitions,
               .retention = {.max_records = 1024, .max_bytes = 0}});
  broker::Producer producer(broker_ptr, fabric, "s");
  broker::Consumer consumer(broker_ptr, fabric, "s", "g");
  std::vector<broker::TopicPartition> assignment;
  for (std::uint32_t p = 0; p < partitions; ++p) {
    assignment.push_back({"t", p});
  }
  (void)consumer.assign(assignment);

  std::uint32_t next = 0;
  for (auto _ : state) {
    (void)producer.send("t", next % partitions, make_record(32'000));
    next += 1;
    auto records = consumer.poll(std::chrono::milliseconds(100));
    benchmark::DoNotOptimize(records);
  }
}
BENCHMARK(BM_ProduceConsumeRoundTrip)->Arg(1)->Arg(4);

void BM_CodecEncode(benchmark::State& state) {
  data::Generator gen;
  const auto block = gen.generate(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::Codec::encode(block));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(block.value_bytes()));
}
BENCHMARK(BM_CodecEncode)->Arg(25)->Arg(1000)->Arg(10000);

void BM_CodecDecode(benchmark::State& state) {
  data::Generator gen;
  const auto encoded =
      data::Codec::encode(gen.generate(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::Codec::decode(encoded));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(encoded.size()));
}
BENCHMARK(BM_CodecDecode)->Arg(25)->Arg(1000)->Arg(10000);

void BM_GroupRebalance(benchmark::State& state) {
  broker::GroupCoordinator gc([](const std::string&) { return 64u; });
  const auto members = static_cast<int>(state.range(0));
  for (int m = 0; m < members; ++m) {
    (void)gc.join("g", "m" + std::to_string(m), {"t"});
  }
  int next = members;
  for (auto _ : state) {
    const std::string id = "m" + std::to_string(next++);
    benchmark::DoNotOptimize(gc.join("g", id, {"t"}));
    (void)gc.leave("g", id);
  }
}
BENCHMARK(BM_GroupRebalance)->Arg(4)->Arg(32);

// --- consumer-group fan-out sweep -----------------------------------------
//
// One producer pre-fills a single partition; N consumer groups then read
// the whole log `passes` times each, concurrently. This is the paper's
// fan-out shape (many downstream processors of one device stream) and is
// the case the zero-copy payload handover targets: every group reads the
// same retained bytes, so per-group deep copies dominate the old hot path.

void run_fanout_case(std::size_t groups, std::size_t payload_bytes) {
  // Isolate the broker data plane: the default loopback is a shared
  // 10 Gbit/s token bucket that serializes all groups' fetch transfers
  // and would cap every case near 1.25 GB/s aggregate regardless of how
  // the payload bytes are handed over. Same-site transfer is made
  // effectively free so the sweep measures copy-vs-share, not the
  // emulated NIC.
  net::LinkSpec loop;
  loop.from = loop.to = "<loopback>";
  loop.latency_min = loop.latency_max = Duration::zero();
  loop.bandwidth_min_bps = loop.bandwidth_max_bps = 1e15;
  auto fabric = std::make_shared<net::Fabric>(loop);
  if (!fabric->add_site({.id = "s"}).ok()) std::abort();
  auto broker_ptr = std::make_shared<broker::Broker>("s");
  if (!broker_ptr->create_topic("fan", broker::TopicConfig{.partitions = 1})
           .ok()) {
    std::abort();
  }

  // ~8 MiB of retained log, swept often enough that every group moves
  // ~96 MiB through the fetch path — and at least kMinSeconds of wall
  // time, so cases the zero-copy path makes very fast still measure a
  // stable rate instead of timer noise.
  const std::size_t records =
      std::max<std::size_t>(8, (8ull << 20) / payload_bytes);
  const std::size_t passes = std::max<std::size_t>(
      1, (96ull << 20) / (records * payload_bytes));
  constexpr double kMinSeconds = 0.25;

  broker::Producer producer(broker_ptr, fabric, "s");
  for (std::size_t i = 0; i < records; ++i) {
    if (!producer.send("fan", 0, make_record(payload_bytes)).ok()) {
      std::abort();
    }
  }

  std::atomic<std::uint64_t> sink{0};
  std::atomic<std::uint64_t> delivered{0};
  Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    threads.emplace_back([&, g] {
      broker::ConsumerConfig config;
      config.auto_commit = false;
      config.max_poll_records = 1024;
      config.fetch_max_bytes = 64ull << 20;
      broker::Consumer consumer(broker_ptr, fabric, "s",
                                "fan-g" + std::to_string(g), config);
      if (!consumer.assign({{"fan", 0}}).ok()) std::abort();
      std::uint64_t local = 0;
      std::uint64_t count = 0;
      for (std::size_t pass = 0;
           pass < passes || sw.elapsed_seconds() < kMinSeconds; ++pass) {
        if (!consumer.seek({"fan", 0}, 0).ok()) std::abort();
        std::size_t got = 0;
        while (got < records) {
          auto polled = consumer.poll(std::chrono::milliseconds(100));
          got += polled.size();
          for (const auto& r : polled) {
            const auto& value = r.record.value;
            local += value.empty() ? 0 : value[0];
          }
        }
        count += got;
      }
      sink.fetch_add(local, std::memory_order_relaxed);
      delivered.fetch_add(count, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = sw.elapsed_seconds();
  benchmark::DoNotOptimize(sink.load());

  const auto messages = static_cast<double>(delivered.load());
  const double payload_mb = messages *
                            static_cast<double>(payload_bytes) / 1e6;
  tel::JsonWriter w;
  w.begin_object();
  w.key("bench").value("broker_fanout");
  w.key("groups").value(static_cast<std::uint64_t>(groups));
  w.key("payload_bytes").value(static_cast<std::uint64_t>(payload_bytes));
  w.key("records").value(static_cast<std::uint64_t>(records));
  w.key("passes").value(static_cast<std::uint64_t>(passes));
  w.key("messages").value(delivered.load());
  w.key("seconds").value(seconds);
  w.key("msgs_per_s").value(messages / seconds);
  w.key("mbytes_per_s").value(payload_mb / seconds);
  w.end_object();
  std::printf("BENCH %s\n", w.str().c_str());
  std::fflush(stdout);
}

void run_fanout_sweep() {
  for (std::size_t payload : {1'024ull, 32'768ull, 1'048'576ull}) {
    for (std::size_t groups : {1u, 2u, 4u}) {
      run_fanout_case(groups, payload);
    }
  }
}

// --- replicated-cluster scaling sweep --------------------------------------
//
// Produce throughput at acks=quorum across broker-count x partition-count:
// how much parallelism the partition sharding buys back against the
// synchronous replication cost. Four producer threads spray a fixed
// message budget round-robin over the partitions; each case prints one
// "BENCH {...}" json line.

void run_cluster_case(std::uint32_t brokers, std::uint32_t partitions) {
  using namespace std::chrono_literals;
  cluster::ClusterOptions options;
  options.brokers = brokers;
  options.replication_factor = std::min<std::uint32_t>(3, brokers);
  options.heartbeat_interval = 1ms;
  auto bc = std::make_shared<cluster::BrokerCluster>(options);
  cluster::ClusterTopicConfig topic_config;
  topic_config.partitions = partitions;
  topic_config.retention.max_records = 4096;
  if (!bc->create_topic("scale", topic_config).ok()) std::abort();

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kMessagesPerThread = 2000;
  constexpr std::size_t kPayloadBytes = 512;
  std::atomic<std::uint64_t> sent{0};
  Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      cluster::ClusterProducer producer(bc, cluster::RetryConfig{},
                                        cluster::AckPolicy::kQuorum);
      for (std::size_t i = 0; i < kMessagesPerThread; ++i) {
        const auto p =
            static_cast<std::uint32_t>((t * kMessagesPerThread + i) %
                                       partitions);
        if (producer.send("scale", p, make_record(kPayloadBytes)).ok()) {
          sent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = sw.elapsed_seconds();

  const auto messages = static_cast<double>(sent.load());
  tel::JsonWriter w;
  w.begin_object();
  w.key("bench").value("cluster_scaling");
  w.key("brokers").value(static_cast<std::uint64_t>(brokers));
  w.key("partitions").value(static_cast<std::uint64_t>(partitions));
  w.key("replication_factor")
      .value(static_cast<std::uint64_t>(options.replication_factor));
  w.key("acks").value("quorum");
  w.key("payload_bytes").value(static_cast<std::uint64_t>(kPayloadBytes));
  w.key("messages").value(sent.load());
  w.key("seconds").value(seconds);
  w.key("msgs_per_s").value(messages / seconds);
  w.end_object();
  std::printf("BENCH %s\n", w.str().c_str());
  std::fflush(stdout);
}

void run_cluster_sweep() {
  for (std::uint32_t brokers : {1u, 3u, 5u}) {
    for (std::uint32_t partitions : {1u, 4u, 16u}) {
      run_cluster_case(brokers, partitions);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* fanout_only = std::getenv("PE_BENCH_FANOUT_ONLY");
  const char* cluster_only = std::getenv("PE_BENCH_CLUSTER_ONLY");
  if (cluster_only != nullptr && cluster_only[0] == '1') {
    run_cluster_sweep();
    return 0;
  }
  if (fanout_only == nullptr || fanout_only[0] != '1') {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  run_fanout_sweep();
  if (fanout_only == nullptr || fanout_only[0] != '1') {
    run_cluster_sweep();
  }
  return 0;
}
