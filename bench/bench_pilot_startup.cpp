// ABL3 — pilot provisioning ablation.
//
// Measures the emulated startup delay of each backend plugin (the paper's
// step-1 resource acquisition) and the end-to-end time from submit() to
// ACTIVE for a realistic three-pilot application (edge + cloud + broker),
// serial vs concurrent submission. Pilot-Edge provisions concurrently, so
// application start time is max(), not sum(), of the pilot delays.
#include <cstdio>

#include "common/logging.h"
#include "resource/pilot_manager.h"

int main() {
  using namespace pe;
  Logger::set_level(LogLevel::kError);

  // Report the nominal (unscaled) delays from the plugins.
  std::printf("ABL3: pilot provisioning by backend (nominal delays)\n\n");
  std::printf("%-18s %14s\n", "backend", "startup_s");
  std::printf("%s\n", std::string(34, '-').c_str());
  struct Probe {
    res::Backend backend;
    res::PilotDescription description;
  };
  const std::vector<Probe> probes = {
      {res::Backend::kEdgeSsh, res::Flavors::raspi("edge-us")},
      {res::Backend::kCloudVm, res::Flavors::lrz_large()},
      {res::Backend::kBrokerService,
       res::Flavors::make("lrz-eu", res::Backend::kBrokerService, 4, 16.0)},
      {res::Backend::kHpcBatch,
       res::Flavors::make("lrz-eu", res::Backend::kHpcBatch, 64, 256.0)},
  };
  for (const auto& probe : probes) {
    auto outcome = res::make_backend(probe.backend)->provision(probe.description);
    if (!outcome.ok()) continue;
    std::printf("%-18s %14.1f\n", res::to_string(probe.backend),
                std::chrono::duration<double>(outcome.value().startup_delay)
                    .count());
  }

  // Concurrent vs serial acquisition at 1/100 emulated delay.
  auto fabric = net::Fabric::make_paper_topology();
  res::PilotManagerOptions options;
  options.startup_delay_factor = 0.01;

  {
    res::PilotManager manager(fabric, options);
    Stopwatch sw;
    auto a = manager.submit(res::Flavors::raspi("edge-us")).value();
    auto b = manager.submit(res::Flavors::lrz_large()).value();
    auto c = manager
                 .submit(res::Flavors::make(
                     "lrz-eu", res::Backend::kBrokerService, 4, 16.0))
                 .value();
    (void)manager.wait_all_active();
    std::printf("\nconcurrent 3-pilot acquisition: %7.3f s (x100 emulated)\n",
                sw.elapsed_seconds());
  }
  {
    res::PilotManager manager(fabric, options);
    Stopwatch sw;
    for (auto description :
         {res::Flavors::raspi("edge-us"), res::Flavors::lrz_large(),
          res::Flavors::make("lrz-eu", res::Backend::kBrokerService, 4,
                             16.0)}) {
      auto pilot = manager.submit(description).value();
      (void)pilot->wait_active();
    }
    std::printf("serial     3-pilot acquisition: %7.3f s (x100 emulated)\n",
                sw.elapsed_seconds());
  }
  return 0;
}
