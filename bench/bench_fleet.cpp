// Fleet-scale admission benchmark: 100k+ simulated devices against one
// durable broker with per-client quotas and a hot-window memory cap.
//
// What this proves (one "BENCH {...}" json line per run):
//  - the broker sustains a six-figure device fan-in with its in-memory
//    hot window capped (max_hot_window_bytes <= cap) — backpressure via
//    transient throttles + hot-window trim to the durable tier, not OOM;
//  - throttled producers retry and succeed: acked_record_loss == 0
//    (every acked record is consumed back);
//  - end-to-end latency and final consumer lag under the configured load.
//
// Knobs (environment variables):
//   PE_FLEET_DEVICES     simulated device count        (default 100000)
//   PE_FLEET_THREADS     sender threads                 (default 4)
//   PE_FLEET_PARTITIONS  topic partitions               (default 8)
//   PE_FLEET_SECONDS     emulated generation seconds    (default 2)
//   PE_FLEET_RATE_HZ     per-device mean rate, emulated (default 1.0)
//   PE_FLEET_CAP_MB      hot-window cap in MiB          (default 8)
//   PE_FLEET_QUOTA_MBPS  per-client quota MB/s, emul.   (default 0 = off)
//   PE_TIME_SCALE        emulation speed-up             (default 50)
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "common/clock.h"
#include "broker/broker.h"
#include "scenario/fleet.h"
#include "telemetry/json.h"

namespace {

using namespace pe;
namespace fs = std::filesystem;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  return std::atof(v);
}

}  // namespace

int main() {
  const std::size_t devices = env_size("PE_FLEET_DEVICES", 100'000);
  const std::size_t threads = env_size("PE_FLEET_THREADS", 4);
  const auto partitions =
      static_cast<std::uint32_t>(env_size("PE_FLEET_PARTITIONS", 8));
  const double seconds = env_double("PE_FLEET_SECONDS", 2.0);
  const double rate_hz = env_double("PE_FLEET_RATE_HZ", 1.0);
  const std::uint64_t cap_bytes =
      static_cast<std::uint64_t>(env_double("PE_FLEET_CAP_MB", 8.0) *
                                 1024.0 * 1024.0);
  const double quota_mbps = env_double("PE_FLEET_QUOTA_MBPS", 0.0);
  Clock::set_time_scale(env_double("PE_TIME_SCALE", 50.0));

  // Durable broker: the hot-window cap only makes sense when trimmed
  // records survive on disk — that is what lets a capped broker keep
  // acking (and consumers read the trimmed prefix back via cold fetch).
  const auto dir =
      fs::temp_directory_path() / ("pe_bench_fleet_" +
                                   std::to_string(::getpid()));
  fs::remove_all(dir);
  broker::BrokerOptions options;
  options.durable_dir = dir.string();
  options.admission.max_hot_window_bytes = cap_bytes;
  if (quota_mbps > 0.0) {
    options.admission.default_quota.bytes_per_sec = quota_mbps * 1e6;
    options.admission.default_quota.burst_seconds = 1.0;
  }
  auto broker =
      std::make_shared<broker::Broker>("lrz-eu", options, "fleet-broker");

  scenario::FleetConfig config;
  config.devices = devices;
  config.sender_threads = threads;
  config.partitions = partitions;
  config.duration = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(seconds));
  config.mean_rate_hz = rate_hz;
  // hot_max_bytes is per partition while the admission cap is broker-wide:
  // size each partition's hot deque so the whole fleet's steady state sits
  // at ~half the cap, leaving headroom for bursts to throttle-then-drain.
  config.retention.hot_max_bytes =
      std::max<std::uint64_t>(64 * 1024, cap_bytes / (2ull * partitions));

  scenario::FleetGenerator fleet(config, broker);
  auto report = fleet.run();
  if (!report.ok()) {
    std::fprintf(stderr, "fleet run failed: %s\n",
                 report.status().to_string().c_str());
    fs::remove_all(dir);
    return 1;
  }
  const auto& r = report.value();
  const auto stats = broker->stats();
  const std::uint64_t acked_loss =
      r.records_acked - std::min(r.records_acked, r.records_consumed);

  std::printf(
      "fleet: %zu devices, %zu threads, %u partitions | generated %llu "
      "acked %llu consumed %llu | throttled %llu (broker: %llu, quota %llu) "
      "| hot max %.2f MiB (cap %.2f MiB) | e2e p50 %.2f ms p99 %.2f ms | "
      "lag %llu | wall %.2f s\n",
      devices, threads, partitions,
      static_cast<unsigned long long>(r.records_generated),
      static_cast<unsigned long long>(r.records_acked),
      static_cast<unsigned long long>(r.records_consumed),
      static_cast<unsigned long long>(r.throttled_sends),
      static_cast<unsigned long long>(stats.throttled),
      static_cast<unsigned long long>(stats.quota_rejections),
      static_cast<double>(r.max_hot_window_bytes) / (1024.0 * 1024.0),
      static_cast<double>(cap_bytes) / (1024.0 * 1024.0), r.e2e_p50_ms,
      r.e2e_p99_ms, static_cast<unsigned long long>(r.final_lag),
      r.wall_seconds);

  tel::JsonWriter w;
  w.begin_object();
  w.key("bench").value("fleet");
  w.key("devices").value(static_cast<std::uint64_t>(devices));
  w.key("sender_threads").value(static_cast<std::uint64_t>(threads));
  w.key("partitions").value(static_cast<std::uint64_t>(partitions));
  w.key("emulated_seconds").value(seconds);
  w.key("records_generated").value(r.records_generated);
  w.key("records_acked").value(r.records_acked);
  w.key("records_consumed").value(r.records_consumed);
  w.key("acked_record_loss").value(acked_loss);
  w.key("dropped_records").value(r.dropped_records);
  w.key("throttled_sends").value(r.throttled_sends);
  w.key("broker_throttled").value(stats.throttled);
  w.key("broker_quota_rejections").value(stats.quota_rejections);
  w.key("max_hot_window_bytes").value(r.max_hot_window_bytes);
  w.key("hot_window_cap_bytes").value(cap_bytes);
  w.key("cap_respected")
      .value(cap_bytes == 0 || r.max_hot_window_bytes <= cap_bytes);
  w.key("e2e_p50_ms").value(r.e2e_p50_ms);
  w.key("e2e_p99_ms").value(r.e2e_p99_ms);
  w.key("e2e_max_ms").value(r.e2e_max_ms);
  w.key("final_lag").value(r.final_lag);
  w.key("wall_seconds").value(r.wall_seconds);
  w.end_object();
  std::printf("BENCH %s\n", w.str().c_str());
  std::fflush(stdout);

  fs::remove_all(dir);
  const bool ok = acked_loss == 0 && r.dropped_records == 0 &&
                  (cap_bytes == 0 || r.max_hot_window_bytes <= cap_bytes);
  return ok ? 0 : 2;
}
