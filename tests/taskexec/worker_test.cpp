#include "taskexec/worker.h"

#include <gtest/gtest.h>

#include <atomic>

#include "common/clock.h"
#include "common/ids.h"
#include "common/logging.h"

namespace pe::exec {
namespace {

TEST(WorkerTest, ExposesSpec) {
  Worker worker(WorkerSpec{.id = "w", .site = "cloud", .cores = 3,
                           .memory_gb = 12.0});
  EXPECT_EQ(worker.id(), "w");
  EXPECT_EQ(worker.site(), "cloud");
  EXPECT_EQ(worker.cores(), 3u);
  EXPECT_DOUBLE_EQ(worker.memory_gb(), 12.0);
}

TEST(WorkerTest, ExecutesJobs) {
  Worker worker(WorkerSpec{.id = "w", .site = "s", .cores = 2,
                           .memory_gb = 4.0});
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(worker.execute([&count] { count.fetch_add(1); }));
  }
  worker.shutdown();
  EXPECT_EQ(count.load(), 20);
}

TEST(WorkerTest, RejectsAfterShutdown) {
  Worker worker(WorkerSpec{.id = "w", .site = "s", .cores = 1,
                           .memory_gb = 1.0});
  worker.shutdown();
  EXPECT_FALSE(worker.execute([] {}));
}

TEST(WorkerTest, CoreCountBoundsParallelism) {
  Worker worker(WorkerSpec{.id = "w", .site = "s", .cores = 2,
                           .memory_gb = 4.0});
  std::atomic<int> concurrent{0}, peak{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 6; ++i) {
    worker.execute([&] {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      Clock::sleep_exact(std::chrono::milliseconds(5));
      concurrent.fetch_sub(1);
      done.fetch_add(1);
    });
  }
  worker.shutdown();
  EXPECT_EQ(done.load(), 6);
  EXPECT_LE(peak.load(), 2);
}

}  // namespace
}  // namespace pe::exec

namespace pe {
namespace {

TEST(IdsTest, SequencesAreUniqueAndPrefixed) {
  const auto a = next_pilot_id();
  const auto b = next_pilot_id();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind("pilot-", 0), 0u);
  EXPECT_EQ(next_task_id().rfind("task-", 0), 0u);
  EXPECT_EQ(next_pipeline_id().rfind("pipeline-", 0), 0u);
  EXPECT_EQ(next_consumer_id().rfind("consumer-", 0), 0u);
  EXPECT_NE(next_message_id(), next_message_id());
}

TEST(LoggingTest, LevelGating) {
  const LogLevel before = Logger::level();
  Logger::set_level(LogLevel::kError);
  EXPECT_FALSE(Logger::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::enabled(LogLevel::kError));
  Logger::set_level(LogLevel::kTrace);
  EXPECT_TRUE(Logger::enabled(LogLevel::kDebug));
  Logger::set_level(before);
}

TEST(LoggingTest, MacroEvaluatesLazily) {
  const LogLevel before = Logger::level();
  Logger::set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    evaluations += 1;
    return "x";
  };
  PE_LOG_DEBUG("value " << expensive());  // below level: not evaluated
  EXPECT_EQ(evaluations, 0);
  Logger::set_level(before);
}

}  // namespace
}  // namespace pe
