// Worker-crash failover: fail_worker re-dispatches in-flight tasks to
// surviving workers, discards zombie results, and fails tasks that no
// survivor can host.
#include <gtest/gtest.h>

#include <atomic>

#include "common/clock.h"
#include "taskexec/cluster.h"
#include "taskexec/scheduler.h"

namespace pe::exec {
namespace {

std::shared_ptr<Worker> make_worker(const std::string& id,
                                    std::uint32_t cores = 2,
                                    double memory_gb = 8.0) {
  return std::make_shared<Worker>(WorkerSpec{
      .id = id, .site = "cloud", .cores = cores, .memory_gb = memory_gb});
}

TEST(FailoverTest, InFlightTaskRedispatchedToSurvivor) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  ASSERT_TRUE(scheduler.add_worker(make_worker("w1")).ok());

  auto executions = std::make_shared<std::atomic<int>>(0);
  auto release = std::make_shared<std::atomic<bool>>(false);
  TaskSpec spec;
  spec.fn = [executions, release](TaskContext& ctx) -> Status {
    executions->fetch_add(1);
    while (!ctx.stop_requested() && !release->load()) {
      Clock::sleep_exact(std::chrono::milliseconds(1));
    }
    if (ctx.stop_requested()) return Status::Cancelled("stopped");
    return Status::Ok();
  };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  while (executions->load() == 0) {
    Clock::sleep_exact(std::chrono::milliseconds(1));
  }
  const std::string victim =
      scheduler.task_info(handle.value().id()).value().worker_id;
  ASSERT_FALSE(victim.empty());

  ASSERT_TRUE(scheduler.fail_worker(victim).ok());
  // Wait until the re-dispatch landed, then let the body finish.
  while (executions->load() < 2) {
    Clock::sleep_exact(std::chrono::milliseconds(1));
  }
  release->store(true);

  EXPECT_TRUE(handle.value().wait().ok());
  EXPECT_EQ(executions->load(), 2);  // original + failover re-dispatch
  const auto info = scheduler.task_info(handle.value().id()).value();
  EXPECT_EQ(info.state, TaskState::kSucceeded);
  EXPECT_NE(info.worker_id, victim);
  EXPECT_EQ(info.attempts, 0u);  // failover does not consume retries
  EXPECT_EQ(scheduler.stats().redispatched_tasks, 1u);
  EXPECT_EQ(scheduler.stats().failed_tasks, 0u);
}

TEST(FailoverTest, ZombieResultDoesNotCorruptRedispatch) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  ASSERT_TRUE(scheduler.add_worker(make_worker("w1")).ok());

  auto executions = std::make_shared<std::atomic<int>>(0);
  TaskSpec spec;
  // First execution ignores the kill flag for a while and then fails;
  // its INTERNAL result must be discarded because the re-dispatch owns
  // the promise.
  spec.fn = [executions](TaskContext& ctx) -> Status {
    if (executions->fetch_add(1) == 0) {
      const auto deadline = Clock::now() + std::chrono::milliseconds(50);
      while (Clock::now() < deadline) {
        Clock::sleep_exact(std::chrono::milliseconds(1));
      }
      return Status::Internal("zombie result, must be ignored");
    }
    while (!ctx.stop_requested()) {
      Clock::sleep_exact(std::chrono::milliseconds(1));
    }
    return Status::Cancelled("stopped");
  };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  while (executions->load() == 0) {
    Clock::sleep_exact(std::chrono::milliseconds(1));
  }
  const std::string victim =
      scheduler.task_info(handle.value().id()).value().worker_id;
  ASSERT_TRUE(scheduler.fail_worker(victim).ok());

  // The zombie's Internal status must not resolve the handle; the live
  // dispatch is still running, cooperatively waiting for stop.
  EXPECT_FALSE(handle.value().wait_for(std::chrono::milliseconds(100)));
  ASSERT_TRUE(scheduler.cancel(handle.value().id()).ok());
  EXPECT_EQ(handle.value().wait().code(), StatusCode::kCancelled);
  EXPECT_EQ(executions->load(), 2);
}

TEST(FailoverTest, NoSurvivorFailsTaskUnavailable) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());

  TaskSpec spec;
  spec.fn = [](TaskContext& ctx) -> Status {
    while (!ctx.stop_requested()) {
      Clock::sleep_exact(std::chrono::milliseconds(1));
    }
    return Status::Cancelled("stopped");
  };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  auto info = scheduler.task_info(handle.value().id());
  while (info.value().state != TaskState::kRunning) {
    Clock::sleep_exact(std::chrono::milliseconds(1));
    info = scheduler.task_info(handle.value().id());
  }

  ASSERT_TRUE(scheduler.fail_worker("w0").ok());
  EXPECT_EQ(handle.value().wait().code(), StatusCode::kUnavailable);
  EXPECT_EQ(scheduler.stats().failed_tasks, 1u);
  EXPECT_EQ(scheduler.stats().redispatched_tasks, 0u);
}

TEST(FailoverTest, UnknownWorkerRejected) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  EXPECT_EQ(scheduler.fail_worker("nope").code(), StatusCode::kNotFound);
}

TEST(FailoverTest, PendingTasksSurviveWorkerFailure) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0", 1, 4.0)).ok());
  ASSERT_TRUE(scheduler.add_worker(make_worker("w1", 1, 4.0)).ok());

  auto done = std::make_shared<std::atomic<int>>(0);
  auto gate = std::make_shared<std::atomic<bool>>(false);
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 4; ++i) {
    TaskSpec spec;
    spec.fn = [done, gate](TaskContext& ctx) -> Status {
      while (!ctx.stop_requested() && !gate->load()) {
        Clock::sleep_exact(std::chrono::milliseconds(1));
      }
      // A killed (superseded) execution must not count as completed work.
      if (ctx.stop_requested()) return Status::Cancelled("stopped");
      done->fetch_add(1);
      return Status::Ok();
    };
    auto handle = scheduler.submit(std::move(spec));
    ASSERT_TRUE(handle.ok());
    handles.push_back(std::move(handle).value());
  }
  // Two running (one per 1-core worker), two queued. Kill one worker:
  // its task re-queues onto w1, and all four eventually complete there.
  ASSERT_TRUE(scheduler.fail_worker("w0").ok());
  gate->store(true);
  for (auto& h : handles) {
    EXPECT_TRUE(h.wait().ok());
  }
  EXPECT_EQ(done->load(), 4);
  EXPECT_EQ(scheduler.stats().failed_tasks, 0u);
}

TEST(FailoverTest, ClusterCrashWorkerDelegates) {
  exec::Cluster cluster("cloud", 2, 8.0, "c0");
  auto second = cluster.add_worker(2, 8.0);
  ASSERT_TRUE(second.ok());
  const auto ids = cluster.scheduler().worker_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_TRUE(cluster.crash_worker(ids.front()).ok());
  EXPECT_EQ(cluster.scheduler().worker_ids().size(), 1u);
  EXPECT_EQ(cluster.crash_worker("bogus").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pe::exec
