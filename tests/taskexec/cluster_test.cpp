#include "taskexec/cluster.h"

#include <gtest/gtest.h>

#include <atomic>

namespace pe::exec {
namespace {

TEST(ClusterTest, ConstructsWithInitialWorker) {
  Cluster cluster("cloud", 4, 16.0, "c0");
  EXPECT_EQ(cluster.total_cores(), 4u);
  EXPECT_EQ(cluster.site(), "cloud");
  EXPECT_EQ(cluster.scheduler().worker_ids().size(), 1u);
}

TEST(ClusterTest, EmptyClusterStartsWithNoWorkers) {
  Cluster cluster("cloud", 0, 0.0);
  EXPECT_EQ(cluster.total_cores(), 0u);
}

TEST(ClusterTest, AddWorkerGrowsCapacity) {
  Cluster cluster("cloud", 2, 8.0);
  auto id = cluster.add_worker(3, 12.0);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(cluster.total_cores(), 5u);
  EXPECT_TRUE(cluster.remove_worker(id.value()).ok());
  EXPECT_EQ(cluster.total_cores(), 2u);
}

TEST(ClusterTest, AddZeroCoreWorkerRejected) {
  Cluster cluster("cloud", 1, 4.0);
  EXPECT_EQ(cluster.add_worker(0, 1.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ClusterTest, SubmitRunsOnClusterSite) {
  Cluster cluster("edge-site", 1, 4.0, "edge-cluster");
  TaskSpec spec;
  std::atomic<bool> ran{false};
  spec.fn = [&](TaskContext& ctx) {
    EXPECT_NE(ctx.worker_id().find("edge-cluster"), std::string::npos);
    ran.store(true);
    return Status::Ok();
  };
  auto handle = cluster.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE(handle.value().wait().ok());
  EXPECT_TRUE(ran.load());
}

TEST(ClusterTest, WorkerIdsAreUniquePerCluster) {
  Cluster cluster("cloud", 1, 4.0, "cx");
  auto a = cluster.add_worker(1, 1.0);
  auto b = cluster.add_worker(1, 1.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
}

TEST(ClusterTest, ShutdownStopsScheduler) {
  Cluster cluster("cloud", 1, 4.0);
  cluster.shutdown();
  TaskSpec spec;
  spec.fn = [](TaskContext&) { return Status::Ok(); };
  EXPECT_FALSE(cluster.submit(std::move(spec)).ok());
}

}  // namespace
}  // namespace pe::exec
