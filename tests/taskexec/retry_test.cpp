// Failure handling: task retries and pilot failure injection.
#include <gtest/gtest.h>

#include <atomic>

#include "resource/pilot_manager.h"
#include "taskexec/scheduler.h"

namespace pe::exec {
namespace {

std::shared_ptr<Worker> make_worker(const std::string& id) {
  return std::make_shared<Worker>(
      WorkerSpec{.id = id, .site = "cloud", .cores = 2, .memory_gb = 8.0});
}

TEST(RetryTest, FailingTaskRetriesUntilSuccess) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  auto attempts = std::make_shared<std::atomic<int>>(0);
  TaskSpec spec;
  spec.max_retries = 5;
  spec.fn = [attempts](TaskContext&) -> Status {
    if (attempts->fetch_add(1) < 2) {
      return Status::Unavailable("transient");
    }
    return Status::Ok();
  };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE(handle.value().wait().ok());
  EXPECT_EQ(attempts->load(), 3);
  auto info = scheduler.task_info(handle.value().id());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().state, TaskState::kSucceeded);
  EXPECT_EQ(info.value().attempts, 2u);
  // Retries do not count as failures in the stats.
  EXPECT_EQ(scheduler.stats().failed_tasks, 0u);
  EXPECT_EQ(scheduler.stats().completed_tasks, 1u);
}

TEST(RetryTest, ExhaustedRetriesFail) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  auto attempts = std::make_shared<std::atomic<int>>(0);
  TaskSpec spec;
  spec.max_retries = 2;
  spec.fn = [attempts](TaskContext&) -> Status {
    attempts->fetch_add(1);
    return Status::Internal("always broken");
  };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle.value().wait().code(), StatusCode::kInternal);
  EXPECT_EQ(attempts->load(), 3);  // initial + 2 retries
  EXPECT_EQ(scheduler.stats().failed_tasks, 1u);
}

TEST(RetryTest, NoRetryByDefault) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  auto attempts = std::make_shared<std::atomic<int>>(0);
  TaskSpec spec;
  spec.fn = [attempts](TaskContext&) -> Status {
    attempts->fetch_add(1);
    return Status::Internal("broken");
  };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  EXPECT_FALSE(handle.value().wait().ok());
  EXPECT_EQ(attempts->load(), 1);
}

TEST(RetryTest, CancellationIsNotRetried) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  auto attempts = std::make_shared<std::atomic<int>>(0);
  TaskSpec spec;
  spec.max_retries = 5;
  spec.fn = [attempts](TaskContext& ctx) -> Status {
    attempts->fetch_add(1);
    while (!ctx.stop_requested()) {
      Clock::sleep_exact(std::chrono::milliseconds(1));
    }
    return Status::Cancelled("stopped");
  };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  Clock::sleep_exact(std::chrono::milliseconds(10));
  ASSERT_TRUE(scheduler.cancel(handle.value().id()).ok());
  EXPECT_EQ(handle.value().wait().code(), StatusCode::kCancelled);
  EXPECT_EQ(attempts->load(), 1);
}

TEST(RetryTest, CancelledTaskThatFailsIsNotResubmitted) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  auto attempts = std::make_shared<std::atomic<int>>(0);
  TaskSpec spec;
  spec.max_retries = 5;
  spec.fn = [attempts](TaskContext& ctx) -> Status {
    attempts->fetch_add(1);
    while (!ctx.stop_requested()) {
      Clock::sleep_exact(std::chrono::milliseconds(1));
    }
    // Misbehaving body: reports a failure instead of Cancelled.
    return Status::Internal("died while stopping");
  };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  Clock::sleep_exact(std::chrono::milliseconds(10));
  ASSERT_TRUE(scheduler.cancel(handle.value().id()).ok());
  EXPECT_EQ(handle.value().wait().code(), StatusCode::kInternal);
  EXPECT_EQ(attempts->load(), 1);  // cancel zeroed the retry budget
}

TEST(RetryTest, TransientOnlyDoesNotRetryDeterministicFailure) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  auto attempts = std::make_shared<std::atomic<int>>(0);
  TaskSpec spec;
  spec.max_retries = 5;
  spec.retry_policy = RetryPolicy::kTransientOnly;
  spec.fn = [attempts](TaskContext&) -> Status {
    attempts->fetch_add(1);
    return Status::Internal("deterministic bug");
  };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle.value().wait().code(), StatusCode::kInternal);
  // INTERNAL is not transient: retrying a deterministic failure would just
  // burn the budget, so the task fails on the first attempt.
  EXPECT_EQ(attempts->load(), 1);
  EXPECT_EQ(scheduler.stats().failed_tasks, 1u);
}

TEST(RetryTest, TransientOnlyRetriesUnavailableAndTimeout) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  auto attempts = std::make_shared<std::atomic<int>>(0);
  TaskSpec spec;
  spec.max_retries = 5;
  spec.retry_policy = RetryPolicy::kTransientOnly;
  spec.fn = [attempts](TaskContext&) -> Status {
    switch (attempts->fetch_add(1)) {
      case 0: return Status::Unavailable("link partitioned");
      case 1: return Status::Timeout("slow broker");
      default: return Status::Ok();
    }
  };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE(handle.value().wait().ok());
  EXPECT_EQ(attempts->load(), 3);
  auto info = scheduler.task_info(handle.value().id());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().attempts, 2u);
}

TEST(RetryTest, RetriedTaskKeepsHandleIdentity) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  auto attempts = std::make_shared<std::atomic<int>>(0);
  TaskSpec spec;
  spec.max_retries = 1;
  spec.name = "flaky";
  spec.fn = [attempts](TaskContext&) -> Status {
    return attempts->fetch_add(1) == 0 ? Status::Unavailable("first")
                                       : Status::Ok();
  };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  const std::string id = handle.value().id();
  EXPECT_TRUE(handle.value().wait().ok());
  auto info = scheduler.task_info(id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().name, "flaky");
  EXPECT_EQ(info.value().attempts, 1u);
}

}  // namespace
}  // namespace pe::exec

namespace pe::res {
namespace {

TEST(FailureInjectionTest, ActivePilotLosesResources) {
  auto fabric = net::Fabric::make_paper_topology();
  PilotManagerOptions options;
  options.startup_delay_factor = 0.0005;
  PilotManager manager(fabric, options);
  auto pilot = manager.submit(Flavors::lrz_medium()).value();
  ASSERT_TRUE(pilot->wait_active().ok());
  ASSERT_NE(pilot->cluster(), nullptr);

  ASSERT_TRUE(pilot->inject_failure("spot preemption").ok());
  EXPECT_EQ(pilot->state(), PilotState::kFailed);
  EXPECT_EQ(pilot->cluster(), nullptr);
  EXPECT_EQ(pilot->failure_reason().code(), StatusCode::kUnavailable);
  // Double injection fails cleanly.
  EXPECT_EQ(pilot->inject_failure().code(), StatusCode::kFailedPrecondition);
}

TEST(FailureInjectionTest, RunningTasksObserveTheLoss) {
  auto fabric = net::Fabric::make_paper_topology();
  PilotManagerOptions options;
  options.startup_delay_factor = 0.0005;
  PilotManager manager(fabric, options);
  auto pilot = manager.submit(Flavors::lrz_medium()).value();
  ASSERT_TRUE(pilot->wait_active().ok());

  std::atomic<bool> observed_stop{false};
  exec::TaskSpec spec;
  spec.fn = [&observed_stop](exec::TaskContext& ctx) -> Status {
    while (!ctx.stop_requested()) {
      Clock::sleep_exact(std::chrono::milliseconds(1));
    }
    observed_stop.store(true);
    return Status::Cancelled("pilot lost");
  };
  auto handle = pilot->cluster()->submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  Clock::sleep_exact(std::chrono::milliseconds(10));

  ASSERT_TRUE(pilot->inject_failure("power loss").ok());
  EXPECT_EQ(handle.value().wait().code(), StatusCode::kCancelled);
  EXPECT_TRUE(observed_stop.load());
}

TEST(FailureInjectionTest, NotActivePilotRejected) {
  auto fabric = net::Fabric::make_paper_topology();
  PilotManagerOptions slow;
  slow.startup_delay_factor = 10.0;
  PilotManager manager(fabric, slow);
  auto pilot = manager.submit(Flavors::lrz_medium()).value();
  EXPECT_EQ(pilot->inject_failure().code(),
            StatusCode::kFailedPrecondition);
  pilot->cancel();
}

PilotManagerOptions recovery_options() {
  PilotManagerOptions options;
  options.startup_delay_factor = 0.0005;
  options.auto_reprovision = true;
  options.heartbeat_interval = std::chrono::milliseconds(5);
  options.reprovision_backoff = std::chrono::milliseconds(1);
  options.reprovision_backoff_cap = std::chrono::milliseconds(10);
  return options;
}

bool wait_until(const std::function<bool()>& pred, Duration timeout) {
  const auto deadline = Clock::now() + timeout;
  while (!pred()) {
    if (Clock::now() >= deadline) return false;
    Clock::sleep_exact(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(ReprovisionTest, FailedPilotIsReplacedAndCallbackFires) {
  auto fabric = net::Fabric::make_paper_topology();
  PilotManager manager(fabric, recovery_options());

  std::mutex mutex;
  PilotPtr seen_failed;
  PilotPtr seen_replacement;
  manager.subscribe_replacements(
      [&](const PilotPtr& failed, const PilotPtr& replacement) {
        std::lock_guard<std::mutex> lock(mutex);
        seen_failed = failed;
        seen_replacement = replacement;
      });

  auto pilot = manager.submit(Flavors::lrz_medium()).value();
  ASSERT_TRUE(pilot->wait_active().ok());
  ASSERT_TRUE(pilot->inject_failure("spot preemption").ok());

  ASSERT_TRUE(wait_until([&] { return manager.reprovision_count() == 1; },
                         std::chrono::seconds(10)));
  ASSERT_TRUE(wait_until(
      [&] {
        std::lock_guard<std::mutex> lock(mutex);
        return seen_replacement != nullptr;
      },
      std::chrono::seconds(10)));

  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(seen_failed->id(), pilot->id());
  EXPECT_NE(seen_replacement->id(), pilot->id());
  EXPECT_EQ(seen_replacement->state(), PilotState::kActive);
  // The replacement is provisioned from the failed pilot's description.
  EXPECT_EQ(seen_replacement->description().site, pilot->description().site);
  EXPECT_EQ(seen_replacement->description().cores,
            pilot->description().cores);
  EXPECT_NE(seen_replacement->cluster(), nullptr);
}

TEST(ReprovisionTest, LineageBudgetCapsReplacements) {
  auto fabric = net::Fabric::make_paper_topology();
  auto options = recovery_options();
  options.max_reprovision_attempts = 1;
  PilotManager manager(fabric, options);

  std::mutex mutex;
  PilotPtr replacement;
  manager.subscribe_replacements([&](const PilotPtr&, const PilotPtr& r) {
    std::lock_guard<std::mutex> lock(mutex);
    replacement = r;
  });

  auto pilot = manager.submit(Flavors::lrz_medium()).value();
  ASSERT_TRUE(pilot->wait_active().ok());
  ASSERT_TRUE(pilot->inject_failure("first loss").ok());
  ASSERT_TRUE(wait_until(
      [&] {
        std::lock_guard<std::mutex> lock(mutex);
        return replacement != nullptr;
      },
      std::chrono::seconds(10)));

  // The whole lineage shares one budget: failing the replacement must not
  // provision a third pilot.
  PilotPtr second;
  {
    std::lock_guard<std::mutex> lock(mutex);
    second = replacement;
  }
  ASSERT_TRUE(second->inject_failure("second loss").ok());
  Clock::sleep_exact(std::chrono::milliseconds(100));
  EXPECT_EQ(manager.reprovision_count(), 1u);
  EXPECT_EQ(second->state(), PilotState::kFailed);
}

TEST(ReprovisionTest, DisabledByDefault) {
  auto fabric = net::Fabric::make_paper_topology();
  PilotManagerOptions options;
  options.startup_delay_factor = 0.0005;
  PilotManager manager(fabric, options);
  auto pilot = manager.submit(Flavors::lrz_medium()).value();
  ASSERT_TRUE(pilot->wait_active().ok());
  ASSERT_TRUE(pilot->inject_failure("loss").ok());
  Clock::sleep_exact(std::chrono::milliseconds(100));
  EXPECT_EQ(manager.reprovision_count(), 0u);
  EXPECT_EQ(manager.pilots().size(), 1u);
}

TEST(ReprovisionTest, UnsubscribedCallbackDoesNotFire) {
  auto fabric = net::Fabric::make_paper_topology();
  PilotManager manager(fabric, recovery_options());
  auto fired = std::make_shared<std::atomic<bool>>(false);
  const auto token = manager.subscribe_replacements(
      [fired](const PilotPtr&, const PilotPtr&) { fired->store(true); });
  manager.unsubscribe_replacements(token);

  auto pilot = manager.submit(Flavors::lrz_medium()).value();
  ASSERT_TRUE(pilot->wait_active().ok());
  ASSERT_TRUE(pilot->inject_failure("loss").ok());
  ASSERT_TRUE(wait_until([&] { return manager.reprovision_count() == 1; },
                         std::chrono::seconds(10)));
  EXPECT_FALSE(fired->load());
}

}  // namespace
}  // namespace pe::res
