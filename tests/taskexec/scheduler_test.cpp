#include "taskexec/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>

#include "common/clock.h"

namespace pe::exec {
namespace {

std::shared_ptr<Worker> make_worker(const std::string& id,
                                    std::uint32_t cores = 2,
                                    double memory = 8.0) {
  return std::make_shared<Worker>(
      WorkerSpec{.id = id, .site = "cloud", .cores = cores,
                 .memory_gb = memory});
}

TaskSpec simple_task(std::atomic<int>* counter) {
  TaskSpec spec;
  spec.name = "count";
  spec.fn = [counter](TaskContext&) {
    counter->fetch_add(1);
    return Status::Ok();
  };
  return spec;
}

TEST(SchedulerTest, RunsSubmittedTask) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  std::atomic<int> count{0};
  auto handle = scheduler.submit(simple_task(&count));
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE(handle.value().wait().ok());
  EXPECT_EQ(count.load(), 1);
}

TEST(SchedulerTest, TaskWithoutBodyRejected) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  TaskSpec spec;
  EXPECT_EQ(scheduler.submit(std::move(spec)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchedulerTest, ImpossibleTaskRejectedUpFront) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0", 2)).ok());
  TaskSpec spec;
  spec.fn = [](TaskContext&) { return Status::Ok(); };
  spec.cores = 16;  // more than any worker
  EXPECT_EQ(scheduler.submit(std::move(spec)).status().code(),
            StatusCode::kInvalidArgument);

  TaskSpec pinned;
  pinned.fn = [](TaskContext&) { return Status::Ok(); };
  pinned.pinned_worker = "does-not-exist";
  EXPECT_EQ(scheduler.submit(std::move(pinned)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchedulerTest, CapacityLimitsConcurrency) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0", 2)).ok());
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 8; ++i) {
    TaskSpec spec;
    spec.fn = [&](TaskContext&) {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected &&
             !peak.compare_exchange_weak(expected, now)) {
      }
      Clock::sleep_exact(std::chrono::milliseconds(10));
      concurrent.fetch_sub(1);
      return Status::Ok();
    };
    auto handle = scheduler.submit(std::move(spec));
    ASSERT_TRUE(handle.ok());
    handles.push_back(std::move(handle).value());
  }
  for (auto& h : handles) EXPECT_TRUE(h.wait().ok());
  EXPECT_LE(peak.load(), 2);
  EXPECT_EQ(scheduler.stats().completed_tasks, 8u);
}

TEST(SchedulerTest, MultiCoreTaskOccupiesSlots) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0", 4)).ok());
  std::atomic<bool> big_running{false};
  TaskSpec big;
  big.cores = 4;
  big.fn = [&](TaskContext&) {
    big_running.store(true);
    Clock::sleep_exact(std::chrono::milliseconds(30));
    big_running.store(false);
    return Status::Ok();
  };
  auto big_handle = scheduler.submit(std::move(big));
  ASSERT_TRUE(big_handle.ok());

  // While the 4-core task runs, a 1-core task must wait.
  Clock::sleep_exact(std::chrono::milliseconds(5));
  std::atomic<int> count{0};
  auto small = scheduler.submit(simple_task(&count));
  ASSERT_TRUE(small.ok());
  Clock::sleep_exact(std::chrono::milliseconds(5));
  EXPECT_EQ(count.load(), 0);
  EXPECT_TRUE(small.value().wait().ok());
  EXPECT_EQ(count.load(), 1);
  EXPECT_TRUE(big_handle.value().wait().ok());
}

TEST(SchedulerTest, PinnedTaskRunsOnRequestedWorker) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  ASSERT_TRUE(scheduler.add_worker(make_worker("w1")).ok());
  TaskSpec spec;
  spec.pinned_worker = "w1";
  std::string observed;
  std::mutex m;
  spec.fn = [&](TaskContext& ctx) {
    std::lock_guard<std::mutex> lock(m);
    observed = ctx.worker_id();
    return Status::Ok();
  };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(handle.value().wait().ok());
  EXPECT_EQ(observed, "w1");
}

TEST(SchedulerTest, FailedTaskReportsStatusAndCounts) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  TaskSpec spec;
  spec.fn = [](TaskContext&) { return Status::Internal("kaboom"); };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle.value().wait().code(), StatusCode::kInternal);
  EXPECT_EQ(scheduler.stats().failed_tasks, 1u);

  auto info = scheduler.task_info(handle.value().id());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().state, TaskState::kFailed);
  EXPECT_GT(info.value().end_ns, info.value().start_ns);
}

TEST(SchedulerTest, ThrowingTaskBecomesInternalError) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  TaskSpec spec;
  spec.fn = [](TaskContext&) -> Status { throw std::runtime_error("oops"); };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  const Status s = handle.value().wait();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("oops"), std::string::npos);
}

TEST(SchedulerTest, CancelPendingTaskDropsIt) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0", 1)).ok());
  // Block the single core.
  std::atomic<bool> release{false};
  TaskSpec blocker;
  blocker.fn = [&](TaskContext&) {
    while (!release.load()) Clock::sleep_exact(std::chrono::milliseconds(1));
    return Status::Ok();
  };
  auto blocker_handle = scheduler.submit(std::move(blocker));
  ASSERT_TRUE(blocker_handle.ok());

  std::atomic<int> count{0};
  auto pending = scheduler.submit(simple_task(&count));
  ASSERT_TRUE(pending.ok());
  ASSERT_TRUE(scheduler.cancel(pending.value().id()).ok());
  EXPECT_EQ(pending.value().wait().code(), StatusCode::kCancelled);

  release.store(true);
  ASSERT_TRUE(blocker_handle.value().wait().ok());
  EXPECT_EQ(count.load(), 0);
  auto info = scheduler.task_info(pending.value().id());
  EXPECT_EQ(info.value().state, TaskState::kCancelled);
}

TEST(SchedulerTest, CancelRunningTaskSetsStopFlag) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  TaskSpec spec;
  spec.fn = [](TaskContext& ctx) -> Status {
    while (!ctx.stop_requested()) {
      Clock::sleep_exact(std::chrono::milliseconds(1));
    }
    return Status::Cancelled("observed stop");
  };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  Clock::sleep_exact(std::chrono::milliseconds(10));
  ASSERT_TRUE(scheduler.cancel(handle.value().id()).ok());
  EXPECT_EQ(handle.value().wait().code(), StatusCode::kCancelled);
}

TEST(SchedulerTest, CancelUnknownTaskFails) {
  Scheduler scheduler;
  EXPECT_EQ(scheduler.cancel("task-999999").code(), StatusCode::kNotFound);
}

TEST(SchedulerTest, WaitIdleBlocksUntilDrained) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0", 2)).ok());
  std::atomic<int> count{0};
  for (int i = 0; i < 6; ++i) {
    TaskSpec spec;
    spec.fn = [&count](TaskContext&) {
      Clock::sleep_exact(std::chrono::milliseconds(5));
      count.fetch_add(1);
      return Status::Ok();
    };
    ASSERT_TRUE(scheduler.submit(std::move(spec)).ok());
  }
  scheduler.wait_idle();
  EXPECT_EQ(count.load(), 6);
  EXPECT_EQ(scheduler.stats().pending_tasks, 0u);
  EXPECT_EQ(scheduler.stats().running_tasks, 0u);
}

TEST(SchedulerTest, RemoveWorkerRefusedWhileBusy) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  std::atomic<bool> release{false};
  TaskSpec spec;
  spec.fn = [&](TaskContext&) {
    while (!release.load()) Clock::sleep_exact(std::chrono::milliseconds(1));
    return Status::Ok();
  };
  auto handle = scheduler.submit(std::move(spec));
  ASSERT_TRUE(handle.ok());
  Clock::sleep_exact(std::chrono::milliseconds(5));
  EXPECT_EQ(scheduler.remove_worker("w0").code(),
            StatusCode::kFailedPrecondition);
  release.store(true);
  ASSERT_TRUE(handle.value().wait().ok());
  EXPECT_TRUE(scheduler.remove_worker("w0").ok());
  EXPECT_EQ(scheduler.remove_worker("w0").code(), StatusCode::kNotFound);
}

TEST(SchedulerTest, DuplicateWorkerRejected) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0")).ok());
  EXPECT_EQ(scheduler.add_worker(make_worker("w0")).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchedulerTest, AddWorkerUnblocksQueuedTasks) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("tiny", 1)).ok());
  std::atomic<bool> release{false};
  TaskSpec blocker;
  blocker.fn = [&](TaskContext&) {
    while (!release.load()) Clock::sleep_exact(std::chrono::milliseconds(1));
    return Status::Ok();
  };
  auto blocker_handle = scheduler.submit(std::move(blocker));
  std::atomic<int> count{0};
  auto queued = scheduler.submit(simple_task(&count));
  ASSERT_TRUE(queued.ok());
  Clock::sleep_exact(std::chrono::milliseconds(5));
  EXPECT_EQ(count.load(), 0);
  ASSERT_TRUE(scheduler.add_worker(make_worker("w1")).ok());
  EXPECT_TRUE(queued.value().wait().ok());
  EXPECT_EQ(count.load(), 1);
  release.store(true);
  ASSERT_TRUE(blocker_handle.ok());
  (void)blocker_handle.value().wait();
}

TEST(SchedulerTest, ShutdownCancelsPendingTasks) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0", 1)).ok());
  std::atomic<bool> release{false};
  TaskSpec blocker;
  blocker.fn = [&](TaskContext& ctx) {
    while (!release.load() && !ctx.stop_requested()) {
      Clock::sleep_exact(std::chrono::milliseconds(1));
    }
    return Status::Ok();
  };
  auto running = scheduler.submit(std::move(blocker));
  std::atomic<int> count{0};
  auto pending = scheduler.submit(simple_task(&count));
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(pending.ok());
  scheduler.shutdown();
  EXPECT_EQ(pending.value().wait().code(), StatusCode::kCancelled);
  EXPECT_EQ(count.load(), 0);
  // Submitting after shutdown fails.
  std::atomic<int> c2{0};
  EXPECT_EQ(scheduler.submit(simple_task(&c2)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SchedulerTest, StatsReflectCapacity) {
  Scheduler scheduler;
  ASSERT_TRUE(scheduler.add_worker(make_worker("w0", 4)).ok());
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.workers, 1u);
  EXPECT_EQ(stats.total_cores, 4u);
  EXPECT_EQ(stats.cores_in_use, 0u);
}

}  // namespace
}  // namespace pe::exec
