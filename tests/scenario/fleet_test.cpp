// FleetGenerator smoke tests: a small fleet drains completely (consumed
// == acked, zero drops) and a capped durable broker never exceeds its
// hot-window byte cap while still losing nothing.
#include "scenario/fleet.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "common/clock.h"
#include "broker/broker.h"

namespace pe::scenario {
namespace {

namespace fs = std::filesystem;

FleetConfig small_config() {
  FleetConfig config;
  config.devices = 2000;
  config.sender_threads = 2;
  config.partitions = 4;
  config.mean_rate_hz = 2.0;
  config.duration = std::chrono::milliseconds(300);
  config.tick = std::chrono::milliseconds(10);
  // Real fsync/compute stretches wall time, which the emulated drain
  // budget must absorb at high time scales: be generous.
  config.drain_timeout = std::chrono::seconds(120);
  return config;
}

TEST(FleetGeneratorTest, SmallFleetDrainsCompletely) {
  ScopedTimeScale scale(100.0);
  auto broker = std::make_shared<broker::Broker>("edge-hub");
  FleetGenerator fleet(small_config(), broker);
  auto report = fleet.run();
  ASSERT_TRUE(report.ok());
  const auto& r = report.value();
  EXPECT_GT(r.records_generated, 0u);
  // In-memory broker, no quotas: everything is acked first try and every
  // acked record is read back by the drain.
  EXPECT_EQ(r.records_acked, r.records_generated);
  EXPECT_EQ(r.dropped_records, 0u);
  EXPECT_EQ(r.records_consumed, r.records_acked);
  EXPECT_EQ(r.final_lag, 0u);
  EXPECT_GT(r.batches_sent, 0u);
}

TEST(FleetGeneratorTest, CappedDurableBrokerHoldsCapWithZeroLoss) {
  ScopedTimeScale scale(100.0);
  const auto dir =
      fs::path(::testing::TempDir()) /
      ("pe_fleet_capped_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  constexpr std::uint64_t kCap = 256 * 1024;

  broker::BrokerOptions options;
  options.durable_dir = dir.string();
  options.admission.max_hot_window_bytes = kCap;
  auto broker = std::make_shared<broker::Broker>("edge-hub", options);

  auto config = small_config();
  // Per-partition hot bound sized so the fleet's steady state sits well
  // under the broker-wide cap (same rule as bench_fleet).
  config.retention.hot_max_bytes = kCap / (2ull * config.partitions);
  FleetGenerator fleet(config, broker);
  auto report = fleet.run();
  ASSERT_TRUE(report.ok());
  const auto& r = report.value();
  EXPECT_EQ(r.dropped_records, 0u);
  EXPECT_EQ(r.records_consumed, r.records_acked);
  EXPECT_EQ(r.final_lag, 0u);
  EXPECT_LE(r.max_hot_window_bytes, kCap);
  EXPECT_LE(broker->hot_window_bytes(), kCap);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(FleetGeneratorTest, RejectsEmptyFleet) {
  auto broker = std::make_shared<broker::Broker>("edge-hub");
  FleetConfig config;
  config.devices = 0;
  FleetGenerator fleet(config, broker);
  EXPECT_FALSE(fleet.run().ok());
}

}  // namespace
}  // namespace pe::scenario
