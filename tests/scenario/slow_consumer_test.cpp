// Slow-consumer lag scenario (transport satellite): a consumer pauses,
// the producer keeps going until the partition's hot window has trimmed
// PAST the consumer's position, and on resume the consumer is served the
// trimmed prefix from the durable cold segments — every acked record
// arrives exactly once, in order, with zero acked loss.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "broker/consumer.h"
#include "broker/producer.h"
#include "common/clock.h"
#include "network/fabric.h"

namespace pe::scenario {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::shared_ptr<net::Fabric> make_fabric() {
  auto fabric = std::make_shared<net::Fabric>();
  EXPECT_TRUE(fabric->add_site({.id = "cloud"}).ok());
  EXPECT_TRUE(fabric->add_site({.id = "edge"}).ok());
  net::LinkSpec spec;
  spec.from = "edge";
  spec.to = "cloud";
  spec.latency_min = spec.latency_max = std::chrono::microseconds(200);
  spec.bandwidth_min_bps = spec.bandwidth_max_bps = 1e9;
  EXPECT_TRUE(fabric->add_bidirectional_link(spec).ok());
  return fabric;
}

class SlowConsumerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("pe_slow_consumer_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(SlowConsumerTest, ResumedConsumerDrainsTrimmedPrefixFromColdTier) {
  constexpr std::uint64_t kHotCap = 4096;
  constexpr int kRecords = 200;
  constexpr std::size_t kValueBytes = 256;

  broker::BrokerOptions options;
  options.durable_dir = dir_;
  auto broker = std::make_shared<broker::Broker>("cloud", options);
  auto fabric = make_fabric();
  broker::TopicConfig tc;
  tc.retention.hot_max_bytes = kHotCap;  // hot deque holds ~12 records
  ASSERT_TRUE(broker->create_topic("t", tc).ok());

  broker::Producer producer(broker, fabric, "edge");
  broker::Consumer consumer(broker, fabric, "cloud", "lagging");
  ASSERT_TRUE(consumer.subscribe({"t"}).ok());

  auto send_n = [&](int from, int n) {
    for (int i = from; i < from + n; ++i) {
      broker::Record r;
      r.key = "k" + std::to_string(i);
      r.value = Bytes(kValueBytes, static_cast<std::uint8_t>(i));
      auto meta = producer.send("t", 0, std::move(r));
      ASSERT_TRUE(meta.ok()) << meta.status().to_string();
      ASSERT_EQ(meta.value().offset, static_cast<std::uint64_t>(i));
    }
  };

  // Phase 1: the consumer keeps up with an initial burst.
  send_n(0, 20);
  std::vector<std::uint64_t> seen;
  const auto warmup_deadline = Clock::now() + 10s;
  while (seen.size() < 20 && Clock::now() < warmup_deadline) {
    for (const auto& cr : consumer.poll(100ms)) seen.push_back(cr.offset);
  }
  ASSERT_EQ(seen.size(), 20u);

  // Phase 2: the consumer pauses (backpressure on the worker side)...
  const broker::TopicPartition tp{"t", 0};
  ASSERT_TRUE(consumer.pause(tp).ok());
  EXPECT_TRUE(consumer.paused(tp));
  EXPECT_TRUE(consumer.poll(10ms).empty());  // paused partitions are skipped

  // ...while the producer keeps going far past the hot window. All
  // records are acked; the hot trim moves data to the cold tier only.
  send_n(20, kRecords - 20);
  ASSERT_LE(broker->hot_window_bytes(), kHotCap);
  // The consumer's resume point (offset 20) has been trimmed out of the
  // hot deque: ~4 kB of window cannot reach back 180 records * 320 B.
  const std::uint64_t backlog_bytes =
      static_cast<std::uint64_t>(kRecords - 20) *
      (kValueBytes + broker::kRecordWireOverheadBytes);
  ASSERT_GT(backlog_bytes, kHotCap);

  // Phase 3: resume. Every remaining record must be served — the prefix
  // from durable cold segments, the tail from the hot window — in order,
  // exactly once.
  ASSERT_TRUE(consumer.resume(tp).ok());
  const auto drain_deadline = Clock::now() + 30s;
  while (seen.size() < kRecords && Clock::now() < drain_deadline) {
    for (const auto& cr : consumer.poll(100ms)) seen.push_back(cr.offset);
  }
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kRecords))
      << "acked records lost across the hot-window trim";
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(i))
        << "out-of-order or duplicated delivery at index " << i;
  }

  // Clean close commits the final position; a successor in the same
  // group starts exactly at the end — nothing is re-delivered.
  consumer.close();
  auto committed = broker->coordinator().committed_offset("lagging", tp);
  ASSERT_TRUE(committed.has_value());
  EXPECT_EQ(*committed, static_cast<std::uint64_t>(kRecords));
}

TEST_F(SlowConsumerTest, LagIsBoundedByColdTierNotLost) {
  // Variant without pause/resume: a consumer that starts LATE (after the
  // trim already happened) still reads from offset 0 via the cold path.
  broker::BrokerOptions options;
  options.durable_dir = dir_;
  auto broker = std::make_shared<broker::Broker>("cloud", options);
  auto fabric = make_fabric();
  broker::TopicConfig tc;
  tc.retention.hot_max_bytes = 2048;
  ASSERT_TRUE(broker->create_topic("t", tc).ok());

  broker::Producer producer(broker, fabric, "edge");
  for (int i = 0; i < 100; ++i) {
    broker::Record r;
    r.key = "k" + std::to_string(i);
    r.value = Bytes(256, 0x5);
    ASSERT_TRUE(producer.send("t", 0, std::move(r)).ok());
  }
  ASSERT_LE(broker->hot_window_bytes(), 2048u);

  broker::Consumer late(broker, fabric, "cloud", "late-joiner");
  ASSERT_TRUE(late.subscribe({"t"}).ok());
  std::set<std::uint64_t> offsets;
  const auto deadline = Clock::now() + 30s;
  while (offsets.size() < 100 && Clock::now() < deadline) {
    for (const auto& cr : late.poll(100ms)) offsets.insert(cr.offset);
  }
  ASSERT_EQ(offsets.size(), 100u);
  EXPECT_EQ(*offsets.begin(), 0u);
  EXPECT_EQ(*offsets.rbegin(), 99u);
}

}  // namespace
}  // namespace pe::scenario
