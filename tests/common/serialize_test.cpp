#include "common/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace pe {
namespace {

TEST(SerializeTest, RoundTripScalars) {
  Bytes buf;
  ByteWriter w(buf);
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_f64(3.14159);

  ByteReader r(buf);
  std::uint8_t u8;
  std::uint32_t u32;
  std::uint64_t u64;
  double f64;
  ASSERT_TRUE(r.get_u8(u8).ok());
  ASSERT_TRUE(r.get_u32(u32).ok());
  ASSERT_TRUE(r.get_u64(u64).ok());
  ASSERT_TRUE(r.get_f64(f64).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(f64, 3.14159);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializeTest, RoundTripStringsAndBytes) {
  Bytes buf;
  ByteWriter w(buf);
  w.put_string("hello world");
  w.put_string("");
  w.put_bytes({1, 2, 3});

  ByteReader r(buf);
  std::string a, b;
  Bytes c;
  ASSERT_TRUE(r.get_string(a).ok());
  ASSERT_TRUE(r.get_string(b).ok());
  ASSERT_TRUE(r.get_bytes(c).ok());
  EXPECT_EQ(a, "hello world");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, (Bytes{1, 2, 3}));
}

TEST(SerializeTest, RoundTripDoubleArray) {
  const std::vector<double> values = {0.0, -1.5, 1e300,
                                      std::numeric_limits<double>::infinity()};
  Bytes buf;
  ByteWriter w(buf);
  w.put_f64_array(values.data(), values.size());

  ByteReader r(buf);
  std::vector<double> out(values.size());
  ASSERT_TRUE(r.get_f64_array(out.data(), out.size()).ok());
  EXPECT_EQ(out, values);
}

TEST(SerializeTest, TruncatedReadsFailWithOutOfRange) {
  Bytes buf;
  ByteWriter w(buf);
  w.put_u32(7);

  ByteReader r(buf);
  std::uint64_t v = 0;
  const Status s = r.get_u64(v);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, StringLengthBeyondBufferFails) {
  Bytes buf;
  ByteWriter w(buf);
  w.put_u32(1000);  // claims 1000 bytes follow; none do
  ByteReader r(buf);
  std::string s;
  EXPECT_EQ(r.get_string(s).code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, ReaderTracksPosition) {
  Bytes buf;
  ByteWriter w(buf);
  w.put_u32(1);
  w.put_u32(2);
  ByteReader r(buf);
  EXPECT_EQ(r.position(), 0u);
  std::uint32_t v;
  ASSERT_TRUE(r.get_u32(v).ok());
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(SerializeTest, NegativeAndDenormalDoublesSurvive) {
  Bytes buf;
  ByteWriter w(buf);
  w.put_f64(-0.0);
  w.put_f64(std::numeric_limits<double>::denorm_min());
  ByteReader r(buf);
  double a, b;
  ASSERT_TRUE(r.get_f64(a).ok());
  ASSERT_TRUE(r.get_f64(b).ok());
  EXPECT_EQ(a, -0.0);
  EXPECT_TRUE(std::signbit(a));
  EXPECT_EQ(b, std::numeric_limits<double>::denorm_min());
}

}  // namespace
}  // namespace pe
