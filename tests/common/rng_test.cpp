#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pe {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10 && !differs; ++i) {
    differs = a.next_u64() != b.next_u64();
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(RngTest, GaussianMomentsApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.gaussian(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleClampsWhenKExceedsN) {
  Rng rng(5);
  const auto sample = rng.sample_without_replacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

}  // namespace
}  // namespace pe
