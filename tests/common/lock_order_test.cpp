// Tests for the runtime lock-order detector behind pe::Mutex.
//
// The death tests provoke the three abort paths (inversion, rank
// violation, recursive acquisition) in a forked child; consistent
// acquisition orders must stay silent. When the detector is compiled
// out (Release), the wrappers must be layout-identical to the bare
// standard primitives — pinned by the static_asserts at the bottom.
#include "common/mutex.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <new>
#include <shared_mutex>
#include <thread>

namespace pe {
namespace {

#if PE_LOCK_ORDER_ENABLED

class LockOrderDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Death tests fork; "threadsafe" re-executes the binary so the
    // child starts with a clean acquired-before graph.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(LockOrderDeathTest, AbThenBaAborts) {
  EXPECT_DEATH(
      {
        Mutex a("test.a");
        Mutex b("test.b");
        {
          MutexLock la(a);
          MutexLock lb(b);  // establishes a -> b
        }
        {
          MutexLock lb(b);
          MutexLock la(a);  // b -> a closes the cycle
        }
      },
      "lock-order inversion");
}

TEST_F(LockOrderDeathTest, TransitiveCycleAborts) {
  EXPECT_DEATH(
      {
        Mutex a("test.a");
        Mutex b("test.b");
        Mutex c("test.c");
        {
          MutexLock la(a);
          MutexLock lb(b);  // a -> b
        }
        {
          MutexLock lb(b);
          MutexLock lc(c);  // b -> c
        }
        {
          MutexLock lc(c);
          MutexLock la(a);  // c -> a: cycle through b
        }
      },
      "lock-order inversion");
}

TEST_F(LockOrderDeathTest, RankViolationAborts) {
  EXPECT_DEATH(
      {
        Mutex low("test.low", lock_rank(kLockDomainBroker, 1));
        Mutex high("test.high", lock_rank(kLockDomainBroker, 2));
        MutexLock lh(high);
        MutexLock ll(low);  // rank must increase within a domain
      },
      "lock-rank violation");
}

TEST_F(LockOrderDeathTest, RecursiveAcquisitionAborts) {
  EXPECT_DEATH(
      {
        Mutex m("test.m");
        MutexLock outer(m);
        m.lock();  // self-deadlock
      },
      "recursive acquisition");
}

TEST(LockOrderTest, ConsistentOrderIsSilent) {
  Mutex a("test.silent.a");
  Mutex b("test.silent.b");
  for (int i = 0; i < 100; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
  // Same order from another thread reuses the recorded edge.
  std::thread t([&] {
    for (int i = 0; i < 100; ++i) {
      MutexLock la(a);
      MutexLock lb(b);
    }
  });
  t.join();
}

TEST(LockOrderTest, RanksOnlyConstrainWithinOneDomain) {
  // Broker level 2 held while taking resource level 1: different
  // domains, so only the graph applies — and there is no cycle.
  Mutex broker_leaf("test.broker", lock_rank(kLockDomainBroker, 2));
  Mutex resource_top("test.resource", lock_rank(kLockDomainResource, 1));
  MutexLock lb(broker_leaf);
  MutexLock lr(resource_top);
}

TEST(LockOrderTest, TryLockInReverseOrderDoesNotAbort) {
  // try_lock cannot deadlock (it backs off), so a failed-order attempt
  // records the edge but must not trip the cycle check.
  Mutex a("test.try.a");
  Mutex b("test.try.b");
  {
    MutexLock la(a);
    MutexLock lb(b);  // a -> b
  }
  {
    MutexLock lb(b);
    ASSERT_TRUE(a.try_lock());
    a.unlock();
  }
}

TEST(LockOrderTest, CondVarWaitReacquiresCleanly) {
  Mutex m("test.cv.m");
  CondVar cv;
  bool flag = false;
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      MutexLock lock(m);
      flag = true;
    }
    cv.notify_all();
  });
  {
    UniqueLock lock(m);
    cv.wait(lock, [&]() PE_NO_THREAD_SAFETY_ANALYSIS { return flag; });
    // The wait released and reacquired m; the held stack must still be
    // balanced, so taking a second mutex afterwards is legal.
    Mutex inner("test.cv.inner");
    MutexLock li(inner);
  }
  setter.join();
}

TEST(LockOrderTest, RetiredIdsDoNotAliasNewMutexes) {
  // A destroyed mutex's edges must not constrain a fresh one that lands
  // on the same address.
  alignas(Mutex) unsigned char storage[sizeof(Mutex)];
  Mutex other("test.retire.other");
  {
    Mutex* first = new (storage) Mutex("test.retire.first");
    {
      MutexLock lf(*first);
      MutexLock lo(other);  // first -> other
    }
    first->~Mutex();
  }
  Mutex* second = new (storage) Mutex("test.retire.second");
  {
    MutexLock lo(other);
    MutexLock ls(*second);  // other -> second: no cycle with the old id
  }
  second->~Mutex();
}

#else  // !PE_LOCK_ORDER_ENABLED

// Release builds compile the instrumentation out entirely; the wrappers
// must add no state over the standard primitives.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "pe::Mutex must be free in release builds");
static_assert(sizeof(SharedMutex) == sizeof(std::shared_mutex),
              "pe::SharedMutex must be free in release builds");
static_assert(sizeof(CondVar) == sizeof(std::condition_variable),
              "pe::CondVar must be free in release builds");

TEST(LockOrderTest, DetectorCompiledOut) {
  Mutex a("test.a");
  Mutex b("test.b");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    // Inverted order is silent without the detector.
    MutexLock lb(b);
    MutexLock la(a);
  }
}

#endif  // PE_LOCK_ORDER_ENABLED

}  // namespace
}  // namespace pe
