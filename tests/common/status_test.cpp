#include "common/status.h"

#include <gtest/gtest.h>

namespace pe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  const Status s = Status::NotFound("thing missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "thing missing");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: thing missing");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::Timeout("a"), Status::Timeout("b"));
  EXPECT_FALSE(Status::Timeout("a") == Status::NotFound("a"));
}

struct CodeNameCase {
  StatusCode code;
  std::string_view name;
};

class StatusCodeNameTest : public ::testing::TestWithParam<CodeNameCase> {};

TEST_P(StatusCodeNameTest, ToStringMatches) {
  EXPECT_EQ(to_string(GetParam().code), GetParam().name);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodes, StatusCodeNameTest,
    ::testing::Values(
        CodeNameCase{StatusCode::kOk, "OK"},
        CodeNameCase{StatusCode::kInvalidArgument, "INVALID_ARGUMENT"},
        CodeNameCase{StatusCode::kNotFound, "NOT_FOUND"},
        CodeNameCase{StatusCode::kAlreadyExists, "ALREADY_EXISTS"},
        CodeNameCase{StatusCode::kResourceExhausted, "RESOURCE_EXHAUSTED"},
        CodeNameCase{StatusCode::kFailedPrecondition, "FAILED_PRECONDITION"},
        CodeNameCase{StatusCode::kUnavailable, "UNAVAILABLE"},
        CodeNameCase{StatusCode::kTimeout, "TIMEOUT"},
        CodeNameCase{StatusCode::kCancelled, "CANCELLED"},
        CodeNameCase{StatusCode::kOutOfRange, "OUT_OF_RANGE"},
        CodeNameCase{StatusCode::kInternal, "INTERNAL"}));

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Unavailable("down"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, MutableValueAccess) {
  Result<int> r(1);
  r.value() = 7;
  EXPECT_EQ(r.value(), 7);
}

}  // namespace
}  // namespace pe
