#include "common/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace pe {
namespace {

TEST(HistogramTest, EmptySummaryIsZero) {
  Histogram h;
  const auto s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.record(5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.mean(), 5.0);
  EXPECT_EQ(h.min(), 5.0);
  EXPECT_EQ(h.max(), 5.0);
  EXPECT_EQ(h.stddev(), 0.0);
  EXPECT_EQ(h.percentile(0.99), 5.0);
}

TEST(HistogramTest, MeanAndStddevMatchClosedForm) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.record(i);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
  // Sample stddev of 1..10 is sqrt(55/6).
  EXPECT_NEAR(h.stddev(), std::sqrt(55.0 / 6.0), 1e-9);
}

TEST(HistogramTest, PercentilesInterpolate) {
  Histogram h;
  for (int i = 0; i <= 100; ++i) h.record(i);
  EXPECT_NEAR(h.percentile(0.5), 50.0, 1e-9);
  EXPECT_NEAR(h.percentile(0.9), 90.0, 1e-9);
  EXPECT_NEAR(h.percentile(0.0), 0.0, 1e-9);
  EXPECT_NEAR(h.percentile(1.0), 100.0, 1e-9);
}

TEST(HistogramTest, PercentileClampsQ) {
  Histogram h;
  h.record(1.0);
  h.record(2.0);
  EXPECT_EQ(h.percentile(-0.5), 1.0);
  EXPECT_EQ(h.percentile(1.5), 2.0);
}

TEST(HistogramTest, RecordManyAndMerge) {
  Histogram a, b;
  a.record_many({1.0, 2.0, 3.0});
  b.record_many({4.0, 5.0});
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_EQ(a.max(), 5.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.record(10.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  h.record(-3.0);
  EXPECT_EQ(h.min(), -3.0);
  EXPECT_EQ(h.max(), -3.0);
}

TEST(HistogramTest, ConcurrentRecordsAreAllCounted) {
  Histogram h;
  constexpr int kThreads = 4, kPer = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPer; ++i) h.record(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::size_t>(kThreads * kPer));
  EXPECT_DOUBLE_EQ(h.mean(), 1.0);
}

TEST(HistogramTest, SummaryQuantilesMatchIndividualPercentiles) {
  // summary() sorts the samples once and reads all three quantiles from
  // the same sorted vector; the results must be identical to what the
  // per-call percentile() path computes.
  Histogram h;
  for (int i = 0; i < 997; ++i) {
    // Deterministic, non-monotone, non-uniform sequence.
    h.record(static_cast<double>((i * 7919) % 997) / 3.0);
  }
  const auto s = h.summary();
  EXPECT_DOUBLE_EQ(s.p50, h.percentile(0.50));
  EXPECT_DOUBLE_EQ(s.p90, h.percentile(0.90));
  EXPECT_DOUBLE_EQ(s.p99, h.percentile(0.99));
}

TEST(HistogramTest, SummaryStatsToStringContainsFields) {
  Histogram h;
  h.record(1.0);
  const std::string s = h.summary().to_string();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace pe
