#include "common/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace pe {
namespace {

TEST(BoundedQueueTest, PushPopFifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, TryPopOnEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueueTest, PopForTimesOut) {
  BoundedQueue<int> q(2);
  const auto start = Clock::now();
  EXPECT_FALSE(q.pop_for(std::chrono::milliseconds(20)).has_value());
  EXPECT_GE(Clock::now() - start, std::chrono::milliseconds(15));
}

TEST(BoundedQueueTest, CloseUnblocksPoppers) {
  BoundedQueue<int> q(2);
  std::thread t([&] {
    auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  t.join();
}

TEST(BoundedQueueTest, DrainsRemainingItemsAfterClose) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // rejected after close
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueueTest, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    EXPECT_TRUE(q.push(2));
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  t.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueueTest, ManyProducersManyConsumersDeliverEverything) {
  BoundedQueue<int> q(64);
  constexpr int kProducers = 4;
  constexpr int kItemsPer = 500;
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 1; i <= kItemsPer; ++i) ASSERT_TRUE(q.push(i));
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(received.load(), kProducers * kItemsPer);
  const long long expected =
      static_cast<long long>(kProducers) * kItemsPer * (kItemsPer + 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace pe
