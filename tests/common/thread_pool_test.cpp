#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace pe {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.submit([&count] { count.fetch_add(1); }));
  }
  pool.shutdown();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitWithResultReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit_with_result([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, SubmitWithResultPropagatesException) {
  ThreadPool pool(1);
  auto fut = pool.submit_with_result(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ParallelForSingleItemRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran.store(true); });
  pool.shutdown();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace pe
