#include "common/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace pe {
namespace {

TEST(BufferPoolTest, AcquireReservesAtLeastHint) {
  BufferPool pool;
  Bytes buf = pool.acquire(1024);
  EXPECT_TRUE(buf.empty());
  EXPECT_GE(buf.capacity(), 1024u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, ReleaseRecyclesCapacity) {
  BufferPool pool;
  Bytes buf = pool.acquire(4096);
  buf.assign(4096, 0xAB);
  const Bytes::value_type* data = buf.data();
  pool.release(std::move(buf));
  EXPECT_EQ(pool.free_count(), 1u);

  Bytes again = pool.acquire(100);
  // Same allocation came back, emptied, capacity intact.
  EXPECT_EQ(again.data(), data);
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), 4096u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, EmptyBuffersAreNotPooled) {
  BufferPool pool;
  pool.release(Bytes{});  // capacity 0: nothing worth recycling
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.stats().discards, 0u);  // not counted as a discard either
}

TEST(BufferPoolTest, OversizedBuffersAreDiscarded) {
  BufferPool::Options options;
  options.max_buffer_bytes = 128;
  BufferPool pool(options);
  Bytes big(4096, 0x1);
  pool.release(std::move(big));
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.stats().discards, 1u);
}

TEST(BufferPoolTest, FreeListIsBounded) {
  BufferPool::Options options;
  options.max_buffers = 2;
  BufferPool pool(options);
  for (int i = 0; i < 5; ++i) pool.release(Bytes(64, 0x2));
  EXPECT_EQ(pool.free_count(), 2u);
  EXPECT_EQ(pool.stats().discards, 3u);
}

TEST(BufferPoolTest, SharedHandleReturnsToPoolOnLastRelease) {
  BufferPool pool;
  {
    std::shared_ptr<Bytes> buf = pool.acquire_shared(256);
    buf->assign(10, 0x7);
    std::shared_ptr<Bytes> alias = buf;  // extra reference
    buf.reset();
    EXPECT_EQ(pool.free_count(), 0u);  // alias still holds it
  }
  EXPECT_EQ(pool.free_count(), 1u);
  // And it is handed out again on the next acquire.
  Bytes reused = pool.acquire(1);
  EXPECT_GE(reused.capacity(), 256u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, ConcurrentAcquireReleaseSmoke) {
  BufferPool pool;
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::atomic<std::uint64_t> bytes_written{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        Bytes buf = pool.acquire(static_cast<std::size_t>(64 + (i % 512)));
        buf.push_back(static_cast<std::uint8_t>(t));
        bytes_written.fetch_add(buf.size(), std::memory_order_relaxed);
        pool.release(std::move(buf));
      }
    });
  }
  for (auto& t : threads) t.join();
  constexpr std::uint64_t kTotal = kThreads * kIters;
  EXPECT_EQ(bytes_written.load(), kTotal);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, kTotal);
  // Steady state: a small number of threads recycles a small number of
  // buffers — far fewer fresh allocations than acquires.
  EXPECT_LE(pool.free_count(), static_cast<std::size_t>(kThreads));
}

TEST(BufferPoolTest, SharedAcquireRecyclesAcrossCycles) {
  // Regression: acquire_shared must hand the SAME underlying allocation
  // back cycle after cycle (the custom deleter returns it to the pool),
  // not allocate fresh storage per acquire.
  BufferPool pool;
  const Bytes::value_type* data = nullptr;
  constexpr int kCycles = 100;
  for (int i = 0; i < kCycles; ++i) {
    std::shared_ptr<Bytes> buf = pool.acquire_shared(512);
    buf->assign(128, static_cast<std::uint8_t>(i));
    if (data == nullptr) {
      data = buf->data();
    } else {
      EXPECT_EQ(buf->data(), data) << "cycle " << i << " reallocated";
    }
  }
  const auto stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);  // only the very first acquire allocated
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kCycles - 1));
  EXPECT_EQ(pool.free_count(), 1u);  // no growth: one buffer in steady state
}

TEST(BufferPoolTest, GlobalPoolIsSingleInstance) {
  EXPECT_EQ(&BufferPool::global(), &BufferPool::global());
}

}  // namespace
}  // namespace pe
