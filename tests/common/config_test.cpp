#include "common/config.h"

#include <gtest/gtest.h>

namespace pe {
namespace {

TEST(ConfigMapTest, SetAndGetString) {
  ConfigMap c;
  c.set("model", "kmeans");
  EXPECT_TRUE(c.contains("model"));
  EXPECT_EQ(c.get("model").value(), "kmeans");
  EXPECT_FALSE(c.get("missing").has_value());
  EXPECT_EQ(c.get_or("missing", "fallback"), "fallback");
}

TEST(ConfigMapTest, TypedAccessors) {
  ConfigMap c;
  c.set_int("partitions", 4);
  c.set_double("rate", 2.5);
  c.set_bool("enabled", true);
  EXPECT_EQ(c.get_int_or("partitions", 0), 4);
  EXPECT_DOUBLE_EQ(c.get_double_or("rate", 0.0), 2.5);
  EXPECT_TRUE(c.get_bool_or("enabled", false));
}

TEST(ConfigMapTest, MalformedNumbersFallBack) {
  ConfigMap c;
  c.set("n", "not-a-number");
  EXPECT_EQ(c.get_int_or("n", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double_or("n", 1.5), 1.5);
}

TEST(ConfigMapTest, BoolParsingVariants) {
  ConfigMap c;
  c.set("a", "true");
  c.set("b", "1");
  c.set("c", "yes");
  c.set("d", "false");
  EXPECT_TRUE(c.get_bool_or("a", false));
  EXPECT_TRUE(c.get_bool_or("b", false));
  EXPECT_TRUE(c.get_bool_or("c", false));
  EXPECT_FALSE(c.get_bool_or("d", true));
}

TEST(ConfigMapTest, MergeIsRightBiased) {
  ConfigMap a{{"x", "1"}, {"y", "2"}};
  ConfigMap b{{"y", "20"}, {"z", "30"}};
  a.merge_from(b);
  EXPECT_EQ(a.get_or("x", ""), "1");
  EXPECT_EQ(a.get_or("y", ""), "20");
  EXPECT_EQ(a.get_or("z", ""), "30");
  EXPECT_EQ(a.size(), 3u);
}

TEST(ConfigMapTest, IterationIsSortedByKey) {
  ConfigMap c{{"b", "2"}, {"a", "1"}};
  auto it = c.begin();
  EXPECT_EQ(it->first, "a");
  ++it;
  EXPECT_EQ(it->first, "b");
}

TEST(ConfigMapTest, IntRoundTripThroughDouble) {
  ConfigMap c;
  c.set_double("v", 42.0);
  EXPECT_DOUBLE_EQ(c.get_double_or("v", 0.0), 42.0);
}

}  // namespace
}  // namespace pe
