#include "common/clock.h"

#include <gtest/gtest.h>

namespace pe {
namespace {

TEST(ClockTest, NowIsMonotonic) {
  const auto a = Clock::now_ns();
  const auto b = Clock::now_ns();
  EXPECT_LE(a, b);
}

TEST(ClockTest, SleepExactWaitsAtLeastRequested) {
  Stopwatch sw;
  Clock::sleep_exact(std::chrono::milliseconds(10));
  EXPECT_GE(sw.elapsed_ms(), 9.5);
}

TEST(ClockTest, ScaledSleepIsShorterAtHigherScale) {
  ScopedTimeScale scale(10.0);
  Stopwatch sw;
  Clock::sleep_scaled(std::chrono::milliseconds(100));
  const double ms = sw.elapsed_ms();
  EXPECT_GE(ms, 8.0);
  EXPECT_LT(ms, 60.0);  // nominal 100 ms shrunk ~10x
}

TEST(ClockTest, ScopedTimeScaleRestores) {
  const double before = Clock::time_scale();
  {
    ScopedTimeScale scale(25.0);
    EXPECT_DOUBLE_EQ(Clock::time_scale(), 25.0);
  }
  EXPECT_DOUBLE_EQ(Clock::time_scale(), before);
}

TEST(ClockTest, ZeroOrNegativeSleepReturnsImmediately) {
  Stopwatch sw;
  Clock::sleep_exact(Duration::zero());
  Clock::sleep_scaled(Duration(-5));
  EXPECT_LT(sw.elapsed_ms(), 5.0);
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch sw;
  Clock::sleep_exact(std::chrono::milliseconds(5));
  sw.reset();
  EXPECT_LT(sw.elapsed_ms(), 4.0);
}

}  // namespace
}  // namespace pe
