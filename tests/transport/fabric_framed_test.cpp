// WAN emulation through the REAL socket path: a framed socket with a
// net::Fabric attached charges every outgoing frame to the emulated
// link, so a partition surfaces as transient UNAVAILABLE (retryable,
// never a hang) and degradation as added latency — satellite coverage
// for the transport layer's error model, plus the kill-peer-process
// chaos fault against a real child process.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>

#include "common/clock.h"
#include "fault/chaos_engine.h"
#include "fault/fault_plan.h"
#include "network/fabric.h"
#include "taskexec/task.h"
#include "transport/framed_socket.h"
#include "transport/wire.h"

namespace pe::transport {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<net::Fabric> make_two_site_fabric() {
  auto fabric = std::make_shared<net::Fabric>();
  EXPECT_TRUE(fabric->add_site({.id = "edge", .kind = net::SiteKind::kEdge})
                  .ok());
  EXPECT_TRUE(fabric->add_site({.id = "cloud", .kind = net::SiteKind::kCloud})
                  .ok());
  net::LinkSpec spec;
  spec.from = "edge";
  spec.to = "cloud";
  spec.latency_min = spec.latency_max = std::chrono::microseconds(100);
  spec.bandwidth_min_bps = spec.bandwidth_max_bps = 1e9;
  EXPECT_TRUE(fabric->add_bidirectional_link(spec).ok());
  return fabric;
}

struct Pair {
  FramedSocket client;
  FramedSocket server;
};

Pair make_pair(FramedListener& listener) {
  auto client = FramedSocket::connect_loopback(listener.port(), 1s);
  EXPECT_TRUE(client.ok());
  auto server = listener.accept(1s);
  EXPECT_TRUE(server.ok());
  return Pair{std::move(client.value()), std::move(server.value())};
}

TEST(FabricFramedTest, PartitionedLinkFailsSendsTransiently) {
  auto fabric = make_two_site_fabric();
  auto listener = FramedListener::listen_loopback();
  ASSERT_TRUE(listener.ok());
  auto pair = make_pair(listener.value());
  pair.client.set_fabric(fabric, "edge", "cloud");

  const Bytes payload(128, 0x42);
  ASSERT_TRUE(pair.client.send_frame(kFrameBinary, payload).ok());
  ASSERT_TRUE(pair.server.recv_frame(1s).ok());

  // Partition the emulated link: the next send must fail UNAVAILABLE
  // BEFORE any byte reaches the socket — the peer sees nothing.
  net::LinkFault fault;
  fault.partitioned = true;
  ASSERT_TRUE(fabric->inject_link_fault("edge", "cloud", fault).ok());
  auto status = pair.client.send_frame(kFrameBinary, payload);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(status.is_transient());
  EXPECT_EQ(pair.server.recv_frame(50ms).status().code(),
            StatusCode::kTimeout);

  // kTransientOnly retry discipline: UNAVAILABLE is retryable, so a
  // bounded retry loop recovers as soon as the partition heals — and
  // never hangs, because each attempt fails fast.
  std::thread healer([&] {
    Clock::sleep_exact(50ms);
    ASSERT_TRUE(fabric->clear_link_fault("edge", "cloud").ok());
  });
  Status sent;
  int attempts = 0;
  for (; attempts < 100; ++attempts) {
    sent = pair.client.send_frame(kFrameBinary, payload);
    if (sent.ok()) break;
    ASSERT_TRUE(sent.is_transient())
        << "non-transient failure would abort a kTransientOnly retry: "
        << sent.to_string();
    Clock::sleep_exact(5ms);
  }
  healer.join();
  ASSERT_TRUE(sent.ok()) << "partition healed but sends kept failing";
  EXPECT_GT(attempts, 0);  // at least one refusal happened
  auto frame = pair.server.recv_frame(1s);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().payload.size(), payload.size());
}

TEST(FabricFramedTest, DegradedLinkAddsLatencyButDelivers) {
  auto fabric = make_two_site_fabric();
  auto listener = FramedListener::listen_loopback();
  ASSERT_TRUE(listener.ok());
  auto pair = make_pair(listener.value());
  pair.client.set_fabric(fabric, "edge", "cloud");

  const Bytes payload(64, 0x01);
  const auto fast_start = Clock::now();
  ASSERT_TRUE(pair.client.send_frame(kFrameBinary, payload).ok());
  const auto fast = Clock::now() - fast_start;

  net::LinkFault fault;
  fault.latency_factor = 200.0;  // 100us nominal -> 20ms
  ASSERT_TRUE(fabric->inject_link_fault("edge", "cloud", fault).ok());
  const auto slow_start = Clock::now();
  ASSERT_TRUE(pair.client.send_frame(kFrameBinary, payload).ok());
  const auto slow = Clock::now() - slow_start;

  EXPECT_GT(slow, fast);
  EXPECT_GE(slow, 10ms);  // well over the nominal 100us
  // Both frames actually arrived — degradation delays, never drops.
  ASSERT_TRUE(pair.server.recv_frame(1s).ok());
  ASSERT_TRUE(pair.server.recv_frame(1s).ok());
}

TEST(FabricFramedTest, ChaosKillPeerProcessDeliversSigkill) {
  // A real child that would sleep forever; the chaos engine must SIGKILL
  // it (the fault the transport smoke test injects mid-pipeline).
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    for (;;) ::pause();
  }

  fault::FaultPlan plan;
  plan.kill_peer_process(1ms, static_cast<std::uint64_t>(child),
                         "transport chaos");
  fault::ChaosEngine engine(std::move(plan));
  ASSERT_TRUE(engine.start().ok());
  engine.join();

  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

  const auto records = engine.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].status.ok()) << records[0].status.to_string();
}

TEST(FabricFramedTest, ChaosKillPeerRejectsInvalidTargets) {
  // pid 1 and non-numeric targets must be refused, and the engine must
  // never kill its own process.
  fault::FaultPlan plan;
  plan.kill_peer_process(1ms, 1, "init is off-limits");
  plan.kill_peer_process(2ms, static_cast<std::uint64_t>(::getpid()),
                         "self-kill refused");
  fault::ChaosEngine engine(std::move(plan));
  ASSERT_TRUE(engine.start().ok());
  engine.join();

  const auto records = engine.records();
  ASSERT_EQ(records.size(), 2u);
  for (const auto& record : records) {
    EXPECT_FALSE(record.status.ok());
  }
}

}  // namespace
}  // namespace pe::transport
