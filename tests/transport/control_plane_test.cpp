// ControlPlane coverage: channel registration/lookup over a real
// loopback socket, the dead-producer GC state machine (stale heartbeat
// alone is NOT death; a confirmed-dead pid is), shm unlink behavior, and
// the socket produce/fetch/commit path end to end against a live Broker.
#include "transport/control_plane.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "common/clock.h"
#include "transport/control_client.h"
#include "transport/shm_ring.h"

namespace pe::transport {
namespace {

using namespace std::chrono_literals;

std::string unique_shm(const char* tag) {
  return std::string("/pe_cp_") + tag + "_" +
         std::to_string(static_cast<long long>(::getpid())) + "_" +
         std::to_string(
             ::testing::UnitTest::GetInstance()->random_seed());
}

class ControlPlaneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_shared<broker::Broker>("edge-site", "cp-test");
    ControlPlaneOptions options;
    options.heartbeat_timeout = 100ms;
    options.gc_interval = 10s;  // background GC idle; tests drive it
    plane_ = std::make_unique<ControlPlane>(broker_.get(), options);
    ASSERT_TRUE(plane_->start().ok());
  }
  void TearDown() override {
    plane_->stop();
    for (const auto& name : shm_cleanup_) (void)ShmRing::unlink(name);
  }

  ControlClient client() {
    auto c = ControlClient::connect(plane_->port());
    EXPECT_TRUE(c.ok()) << c.status().to_string();
    return std::move(c.value());
  }

  std::shared_ptr<broker::Broker> broker_;
  std::unique_ptr<ControlPlane> plane_;
  std::vector<std::string> shm_cleanup_;
};

TEST_F(ControlPlaneTest, PingAndUnknownOp) {
  auto c = client();
  EXPECT_TRUE(c.ping().ok());
  auto bad = c.request(ControlMap{{"op", "no-such-op"}});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ControlPlaneTest, RegisterLookupUnregisterLifecycle) {
  const std::string shm = unique_shm("lifecycle");
  shm_cleanup_.push_back(shm);
  auto ring = ShmRing::create(shm, 4096);
  ASSERT_TRUE(ring.ok());

  auto c = client();
  ASSERT_TRUE(c.register_ring("sensors", shm, ring.value()->capacity(),
                              "telemetry", 0)
                  .ok());
  // The channel's topic was created on demand.
  EXPECT_TRUE(broker_->has_topic("telemetry"));

  // Double registration of a live channel is refused...
  auto dup = c.register_ring("sensors", shm, 4096, "telemetry", 0);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);

  auto loc = c.lookup("sensors");
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc.value().shm_name, shm);
  EXPECT_EQ(loc.value().topic, "telemetry");
  EXPECT_EQ(loc.value().state, "live");
  EXPECT_EQ(loc.value().producer_pid,
            static_cast<std::uint64_t>(::getpid()));

  ASSERT_TRUE(c.unregister("sensors").ok());
  auto closed = c.lookup("sensors");
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed.value().state, "closed");

  // ...but re-registration over a closed channel is allowed (producer
  // restart).
  EXPECT_TRUE(
      c.register_ring("sensors", shm, 4096, "telemetry", 0).ok());
  EXPECT_EQ(c.lookup("sensors").value().state, "live");

  EXPECT_EQ(c.lookup("missing").status().code(), StatusCode::kNotFound);
}

TEST_F(ControlPlaneTest, StaleHeartbeatAloneIsNotDeath) {
  const std::string shm = unique_shm("stalled");
  shm_cleanup_.push_back(shm);
  // This process owns the ring: the pid is alive, so no matter how stale
  // the heartbeat gets, GC must only record a miss — a producer paused
  // in a debugger is NOT dead.
  auto ring = ShmRing::create(shm, 4096);
  ASSERT_TRUE(ring.ok());
  auto c = client();
  ASSERT_TRUE(c.register_ring("stalled", shm, 4096, "telemetry", 0).ok());

  Clock::sleep_exact(150ms);  // heartbeat_timeout is 100ms
  EXPECT_EQ(plane_->run_gc_once(), 0u);
  EXPECT_EQ(c.lookup("stalled").value().state, "live");
  EXPECT_TRUE(c.dead_channels().value().empty());
}

TEST_F(ControlPlaneTest, DeadProducerIsCollectedAndRingUnlinked) {
  const std::string shm = unique_shm("victim");
  shm_cleanup_.push_back(shm);

  // A real child process creates the ring, registers it, and dies
  // without cleanup — exactly the kill -9 scenario.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    auto ring = ShmRing::create(shm, 4096);
    if (!ring.ok()) ::_exit(2);
    auto c = ControlClient::connect(plane_->port());
    if (!c.ok()) ::_exit(3);
    if (!c.value()
             .register_ring("victim", shm, 4096, "telemetry", 0)
             .ok()) {
      ::_exit(4);
    }
    ::_exit(0);  // dies; the ring and registration leak
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_EQ(WEXITSTATUS(wstatus), 0);

  auto c = client();
  ASSERT_EQ(c.lookup("victim").value().state, "live");

  Clock::sleep_exact(150ms);  // let the heartbeat go stale
  EXPECT_EQ(plane_->run_gc_once(), 1u);

  EXPECT_EQ(c.lookup("victim").value().state, "dead");
  auto dead = c.dead_channels();
  ASSERT_TRUE(dead.ok());
  ASSERT_EQ(dead.value().size(), 1u);
  EXPECT_EQ(dead.value()[0], "victim");
  // The shm object was unlinked: a fresh open must fail.
  EXPECT_FALSE(ShmRing::open(shm).ok());
  // GC is idempotent — the dead channel is not re-collected.
  EXPECT_EQ(plane_->run_gc_once(), 0u);
}

TEST_F(ControlPlaneTest, ClosedRingIsUnlinkedOnceProducerExits) {
  const std::string shm = unique_shm("clean");
  shm_cleanup_.push_back(shm);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    auto ring = ShmRing::create(shm, 4096);
    if (!ring.ok()) ::_exit(2);
    auto c = ControlClient::connect(plane_->port());
    if (!c.ok()) ::_exit(3);
    if (!c.value().register_ring("clean", shm, 4096, "telemetry", 0).ok()) {
      ::_exit(4);
    }
    ring.value()->close_producer();
    if (!c.value().unregister("clean").ok()) ::_exit(5);
    ::_exit(0);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_EQ(WEXITSTATUS(wstatus), 0);

  // Clean shutdown: not dead, but once the producer pid is gone the GC
  // reclaims the shm name so /dev/shm does not fill with corpses.
  EXPECT_EQ(plane_->run_gc_once(), 0u);
  auto c = client();
  EXPECT_EQ(c.lookup("clean").value().state, "closed");
  EXPECT_TRUE(c.dead_channels().value().empty());
  EXPECT_FALSE(ShmRing::open(shm).ok());
}

TEST_F(ControlPlaneTest, HeartbeatFramesAreAcceptedWithoutReply) {
  auto c = client();
  ASSERT_TRUE(c.heartbeat("sensors").ok());
  // The connection still serves ordered request/reply afterwards.
  EXPECT_TRUE(c.ping().ok());
}

TEST_F(ControlPlaneTest, SocketProduceFetchCommitRoundTrip) {
  auto c = client();
  ASSERT_TRUE(c.create_topic("wan", 1).ok());

  std::vector<broker::Record> batch;
  for (int i = 0; i < 5; ++i) {
    broker::Record r;
    r.key = "k" + std::to_string(i);
    r.value = Bytes(16, static_cast<std::uint8_t>(i));
    batch.push_back(std::move(r));
  }
  auto offset = c.produce("wan", 0, std::move(batch), "edge-1");
  ASSERT_TRUE(offset.ok()) << offset.status().to_string();
  EXPECT_EQ(offset.value(), 0u);
  EXPECT_EQ(c.end_offset("wan", 0).value(), 5u);

  auto fetched = c.fetch("wan", 0, /*offset=*/1, /*max_records=*/3);
  ASSERT_TRUE(fetched.ok()) << fetched.status().to_string();
  ASSERT_EQ(fetched.value().size(), 3u);
  EXPECT_EQ(fetched.value()[0].offset, 1u);
  EXPECT_EQ(fetched.value()[0].record.key, "k1");

  ASSERT_TRUE(c.commit("workers", "wan", 0, 4).ok());
  auto committed = c.committed("workers", "wan", 0);
  ASSERT_TRUE(committed.ok());
  ASSERT_TRUE(committed.value().has_value());
  EXPECT_EQ(*committed.value(), 4u);

  auto none = c.committed("other-group", "wan", 0);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none.value().has_value());

  // Fetch on an unknown topic folds the broker error back to the client.
  EXPECT_EQ(c.fetch("nope", 0, 0).status().code(), StatusCode::kNotFound);
}

TEST_F(ControlPlaneTest, StatsOpCountsChannelStates) {
  const std::string shm = unique_shm("stats");
  shm_cleanup_.push_back(shm);
  auto ring = ShmRing::create(shm, 4096);
  ASSERT_TRUE(ring.ok());
  auto c = client();
  ASSERT_TRUE(c.register_ring("s1", shm, 4096, "telemetry", 0).ok());

  auto reply = c.request(ControlMap{{"op", "stats"}});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().at("channels_live"), "1");
  EXPECT_EQ(reply.value().at("channels_dead"), "0");
}

}  // namespace
}  // namespace pe::transport
