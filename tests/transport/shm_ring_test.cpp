// ShmRing unit coverage: frame round trips, wrap-marker handling, CRC
// poisoning, full-ring backpressure, and — the transport contract's
// centerpiece — that consumer-side views are ZERO-COPY aliases into the
// shared mapping (pointer identity with the producer's bytes), stable
// until commit().
#include "transport/shm_ring.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace pe::transport {
namespace {

using namespace std::chrono_literals;

std::string unique_name(const char* tag) {
  return std::string("/pe_test_") + tag + "_" +
         std::to_string(static_cast<long long>(::getpid())) + "_" +
         std::to_string(
             ::testing::UnitTest::GetInstance()->random_seed());
}

Bytes pattern_payload(std::size_t size, std::uint8_t fill) {
  return Bytes(size, fill);
}

class ShmRingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!name_.empty()) (void)ShmRing::unlink(name_);
  }
  std::string name_;
};

TEST_F(ShmRingTest, RoundTripsRecordsInOrder) {
  name_ = unique_name("roundtrip");
  auto producer = ShmRing::create(name_, 64 * 1024);
  ASSERT_TRUE(producer.ok()) << producer.status().to_string();
  auto consumer = ShmRing::open(name_);
  ASSERT_TRUE(consumer.ok()) << consumer.status().to_string();

  for (int i = 0; i < 100; ++i) {
    Bytes payload(16 + static_cast<std::size_t>(i));
    std::memset(payload.data(), i, payload.size());
    ASSERT_TRUE(producer.value()->push(payload).ok());
  }
  for (int i = 0; i < 100; ++i) {
    auto popped = consumer.value()->pop();
    ASSERT_TRUE(popped.ok()) << popped.status().to_string();
    EXPECT_EQ(popped.value().size(), 16u + static_cast<std::size_t>(i));
    EXPECT_EQ(popped.value().data()[0], static_cast<std::uint8_t>(i));
  }
  EXPECT_EQ(consumer.value()->pop().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(producer.value()->stats().records_pushed, 100u);
  EXPECT_EQ(consumer.value()->stats().records_popped, 100u);
}

TEST_F(ShmRingTest, PopReturnsZeroCopyViewIntoTheMapping) {
  name_ = unique_name("zerocopy");
  // Capacity sized so frames recycle the same physical offsets after a
  // full lap: 8-byte header + 24-byte payload = 32 bytes per frame,
  // 1024 / 32 = 32 frames per lap.
  constexpr std::size_t kPayload = 24;
  auto producer = ShmRing::create(name_, 1024);
  ASSERT_TRUE(producer.ok());
  auto consumer = ShmRing::open(name_);
  ASSERT_TRUE(consumer.ok());

  ASSERT_TRUE(producer.value()->push(pattern_payload(kPayload, 0xAA)).ok());
  auto first = consumer.value()->pop();
  ASSERT_TRUE(first.ok());
  const std::uint8_t* first_addr = first.value().data();
  EXPECT_EQ(first_addr[0], 0xAA);
  consumer.value()->commit();

  // Drive exactly one full lap of the data region; the next frame lands
  // back at the first frame's physical offset.
  const std::uint64_t frames_per_lap =
      producer.value()->capacity() / (ShmRing::kFrameHeaderBytes + kPayload);
  for (std::uint64_t i = 1; i < frames_per_lap; ++i) {
    ASSERT_TRUE(producer.value()->push(pattern_payload(kPayload, 0xBB)).ok());
    ASSERT_TRUE(consumer.value()->pop().ok());
    consumer.value()->commit();
  }
  ASSERT_TRUE(producer.value()->push(pattern_payload(kPayload, 0xCC)).ok());
  auto lapped = consumer.value()->pop();
  ASSERT_TRUE(lapped.ok());

  // Pointer identity: the new view reuses the EXACT address of the first
  // one — pop() hands out windows into the shared mapping, not copies.
  EXPECT_EQ(lapped.value().data(), first_addr);
  EXPECT_EQ(lapped.value().data()[0], 0xCC);
  // And the old view aliases that same memory: its content now shows the
  // producer's overwrite (we committed past it, surrendering stability).
  EXPECT_EQ(first_addr[0], 0xCC);
}

TEST_F(ShmRingTest, ViewsAreStableUntilCommit) {
  name_ = unique_name("stable");
  constexpr std::size_t kPayload = 24;
  auto producer = ShmRing::create(name_, 1024);
  ASSERT_TRUE(producer.ok());
  auto consumer = ShmRing::open(name_);
  ASSERT_TRUE(consumer.ok());

  ASSERT_TRUE(producer.value()->push(pattern_payload(kPayload, 0x11)).ok());
  auto held = consumer.value()->pop();
  ASSERT_TRUE(held.ok());
  // NO commit: the producer must hit backpressure before it can reach
  // the held frame's bytes, so the view content cannot change.
  int pushed = 0;
  while (producer.value()->push(pattern_payload(kPayload, 0x22)).ok()) {
    ++pushed;
  }
  EXPECT_GT(pushed, 0);
  EXPECT_EQ(held.value().data()[0], 0x11);
  EXPECT_GE(producer.value()->stats().full_waits, 1u);
}

TEST_F(ShmRingTest, WrapMarkerKeepsFramesContiguous) {
  name_ = unique_name("wrap");
  auto producer = ShmRing::create(name_, 1024);
  ASSERT_TRUE(producer.ok());
  auto consumer = ShmRing::open(name_);
  ASSERT_TRUE(consumer.ok());

  // 100-byte payloads do not divide the region evenly, forcing wrap
  // markers; every popped view must still be contiguous and intact.
  for (int lap = 0; lap < 50; ++lap) {
    Bytes payload(100);
    std::memset(payload.data(), lap, payload.size());
    ASSERT_TRUE(producer.value()->push(payload, 100ms).ok());
    auto popped = consumer.value()->pop();
    ASSERT_TRUE(popped.ok()) << "lap " << lap;
    ASSERT_EQ(popped.value().size(), 100u);
    for (std::size_t b = 0; b < 100; ++b) {
      ASSERT_EQ(popped.value().data()[b], static_cast<std::uint8_t>(lap));
    }
    consumer.value()->commit();
  }
  EXPECT_GE(producer.value()->stats().wraps, 1u);
  EXPECT_EQ(consumer.value()->stats().crc_errors, 0u);
}

TEST_F(ShmRingTest, CrcMismatchPoisonsTheFrame) {
  name_ = unique_name("crc");
  auto producer = ShmRing::create(name_, 4096);
  ASSERT_TRUE(producer.ok());
  auto consumer = ShmRing::open(name_);
  ASSERT_TRUE(consumer.ok());

  ASSERT_TRUE(producer.value()->push(pattern_payload(64, 0x5A)).ok());
  auto peek = consumer.value()->pop();
  ASSERT_TRUE(peek.ok());
  // Corrupt the payload THROUGH the zero-copy view (it aliases shared
  // memory, so this scribbles on the actual ring bytes)...
  const_cast<std::uint8_t*>(peek.value().data())[0] ^= 0xFF;

  // ...then re-open a fresh consumer at position zero: it must detect
  // the mismatch and refuse the frame.
  auto fresh = ShmRing::open(name_);
  ASSERT_TRUE(fresh.ok());
  auto corrupted = fresh.value()->pop();
  EXPECT_FALSE(corrupted.ok());
  EXPECT_EQ(corrupted.status().code(), StatusCode::kInternal);
  EXPECT_EQ(fresh.value()->stats().crc_errors, 1u);
}

TEST_F(ShmRingTest, FullRingPushTimesOutTransiently) {
  name_ = unique_name("full");
  auto producer = ShmRing::create(name_, 1024);
  ASSERT_TRUE(producer.ok());

  while (producer.value()->push(pattern_payload(200, 0x01)).ok()) {
  }
  auto status = producer.value()->push(pattern_payload(200, 0x01), 20ms);
  EXPECT_EQ(status.code(), StatusCode::kTimeout);
  EXPECT_TRUE(status.is_transient());  // backpressure, not loss

  // Oversized payloads are a permanent error, not backpressure.
  auto oversized = producer.value()->push(pattern_payload(2048, 0x01));
  EXPECT_EQ(oversized.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(oversized.is_transient());
}

TEST_F(ShmRingTest, CloseAndDrainSignalsEndOfStream) {
  name_ = unique_name("close");
  auto producer = ShmRing::create(name_, 4096);
  ASSERT_TRUE(producer.ok());
  auto consumer = ShmRing::open(name_);
  ASSERT_TRUE(consumer.ok());

  ASSERT_TRUE(producer.value()->push(pattern_payload(32, 0x07)).ok());
  producer.value()->close_producer();
  producer.value()->close_producer();  // idempotent

  EXPECT_FALSE(consumer.value()->drained_and_closed());  // 1 record left
  ASSERT_TRUE(consumer.value()->pop().ok());
  consumer.value()->commit();
  EXPECT_TRUE(consumer.value()->drained_and_closed());
}

TEST_F(ShmRingTest, MonitorSeesHeartbeatAgeAndBacklog) {
  name_ = unique_name("monitor");
  auto producer = ShmRing::create(name_, 4096);
  ASSERT_TRUE(producer.ok());
  auto monitor = ShmRing::open_monitor(name_);
  ASSERT_TRUE(monitor.ok());

  producer.value()->heartbeat();
  EXPECT_LT(monitor.value()->heartbeat_age_ns(), 1'000'000'000ull);
  EXPECT_EQ(monitor.value()->producer_pid(),
            static_cast<std::uint64_t>(::getpid()));
  EXPECT_EQ(monitor.value()->backlog_bytes(), 0u);
  ASSERT_TRUE(producer.value()->push(pattern_payload(32, 0x01)).ok());
  EXPECT_GT(monitor.value()->backlog_bytes(), 0u);
  EXPECT_FALSE(monitor.value()->producer_closed());
  producer.value()->close_producer();
  EXPECT_TRUE(monitor.value()->producer_closed());
}

TEST_F(ShmRingTest, SpscStressThreadsMoveEveryRecord) {
  name_ = unique_name("stress");
  constexpr std::uint64_t kRecords = 50'000;
  auto producer = ShmRing::create(name_, 64 * 1024);
  ASSERT_TRUE(producer.ok());
  auto consumer = ShmRing::open(name_);
  ASSERT_TRUE(consumer.ok());

  std::atomic<bool> fail{false};
  std::thread pusher([&] {
    Bytes payload(64);
    for (std::uint64_t seq = 0; seq < kRecords; ++seq) {
      std::memcpy(payload.data(), &seq, sizeof(seq));
      while (true) {
        auto s = producer.value()->push(payload, 100ms);
        if (s.ok()) break;
        if (!s.is_transient()) {
          fail.store(true);
          return;
        }
      }
    }
    producer.value()->close_producer();
  });

  std::uint64_t consumed = 0;
  bool dense = true;
  while (true) {
    auto popped = consumer.value()->pop();
    if (popped.ok()) {
      std::uint64_t seq = 0;
      std::memcpy(&seq, popped.value().data(), sizeof(seq));
      if (seq != consumed) dense = false;
      consumed += 1;
      if (consumed % 256 == 0) consumer.value()->commit();
      continue;
    }
    consumer.value()->commit();
    if (popped.status().code() != StatusCode::kNotFound) {
      fail.store(true);
      break;
    }
    if (consumer.value()->drained_and_closed()) break;
    std::this_thread::yield();
  }
  pusher.join();
  EXPECT_FALSE(fail.load());
  EXPECT_TRUE(dense);
  EXPECT_EQ(consumed, kRecords);
}

}  // namespace
}  // namespace pe::transport
