// FramedSocket coverage: frame round trips over real loopback TCP, the
// transient error model (timeout vs. refusal vs. EOF), malformed-frame
// rejection, and wire.h codec round trips.
#include "transport/framed_socket.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "transport/wire.h"

namespace pe::transport {
namespace {

using namespace std::chrono_literals;

struct Pair {
  FramedSocket client;
  FramedSocket server;
};

Pair make_pair(FramedListener& listener) {
  auto client = FramedSocket::connect_loopback(listener.port(), 1s);
  EXPECT_TRUE(client.ok()) << client.status().to_string();
  auto server = listener.accept(1s);
  EXPECT_TRUE(server.ok()) << server.status().to_string();
  return Pair{std::move(client.value()), std::move(server.value())};
}

TEST(FramedSocketTest, RoundTripsTypedFrames) {
  auto listener = FramedListener::listen_loopback();
  ASSERT_TRUE(listener.ok());
  auto pair = make_pair(listener.value());

  const Bytes payload{1, 2, 3, 4, 5};
  ASSERT_TRUE(pair.client.send_frame(kFrameBinary, payload).ok());
  auto frame = pair.server.recv_frame(1s);
  ASSERT_TRUE(frame.ok()) << frame.status().to_string();
  EXPECT_EQ(frame.value().type, kFrameBinary);
  ASSERT_EQ(frame.value().payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(frame.value().payload.data(), payload.data(),
                        payload.size()),
            0);

  // Empty payloads are legal frames (heartbeats may carry none).
  ASSERT_TRUE(pair.server.send_frame(kFrameHeartbeat, Bytes{}).ok());
  auto hb = pair.client.recv_frame(1s);
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(hb.value().type, kFrameHeartbeat);
  EXPECT_EQ(hb.value().payload.size(), 0u);
}

TEST(FramedSocketTest, RecvTimesOutTransiently) {
  auto listener = FramedListener::listen_loopback();
  ASSERT_TRUE(listener.ok());
  auto pair = make_pair(listener.value());

  auto frame = pair.server.recv_frame(50ms);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kTimeout);
  EXPECT_TRUE(frame.status().is_transient());
}

TEST(FramedSocketTest, ConnectionRefusedIsUnavailable) {
  // Bind-then-close guarantees a port nobody is listening on.
  std::uint16_t dead_port = 0;
  {
    auto listener = FramedListener::listen_loopback();
    ASSERT_TRUE(listener.ok());
    dead_port = listener.value().port();
  }
  auto socket = FramedSocket::connect_loopback(dead_port, 1s);
  EXPECT_FALSE(socket.ok());
  EXPECT_EQ(socket.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(socket.status().is_transient());
}

TEST(FramedSocketTest, PeerCloseSurfacesAsUnavailable) {
  auto listener = FramedListener::listen_loopback();
  ASSERT_TRUE(listener.ok());
  auto pair = make_pair(listener.value());

  pair.client.close();
  auto frame = pair.server.recv_frame(1s);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(FramedSocketTest, OversizedLengthIsRejectedAsMalformed) {
  auto listener = FramedListener::listen_loopback();
  ASSERT_TRUE(listener.ok());
  auto pair = make_pair(listener.value());

  // Hand-craft a header announcing a body over the 64 MiB bound.
  std::uint8_t header[5];
  header[0] = static_cast<std::uint8_t>(kFrameBinary);
  const std::uint32_t huge = FramedSocket::kMaxFrameBytes + 1;
  std::memcpy(header + 1, &huge, sizeof(huge));
  ASSERT_EQ(::send(pair.client.fd(), header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));

  auto frame = pair.server.recv_frame(1s);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInternal);
  EXPECT_FALSE(frame.status().is_transient());
}

TEST(FramedSocketTest, ListenerAcceptTimesOutThenClosesUnavailable) {
  auto listener = FramedListener::listen_loopback();
  ASSERT_TRUE(listener.ok());
  auto none = listener.value().accept(50ms);
  EXPECT_EQ(none.status().code(), StatusCode::kTimeout);
  listener.value().close();
  auto closed = listener.value().accept(50ms);
  EXPECT_EQ(closed.status().code(), StatusCode::kUnavailable);
}

// --- wire.h codecs ---

TEST(WireTest, ControlMapRoundTripsWithEscapes) {
  ControlMap msg{{"op", "register"},
                 {"channel", "a\"b\\c\n"},
                 {"capacity", "4096"}};
  auto encoded = encode_control(msg);
  ControlMap decoded;
  ASSERT_TRUE(parse_control(encoded, &decoded).ok());
  EXPECT_EQ(decoded, msg);
}

TEST(WireTest, ParseControlRejectsNestedStructure) {
  const std::string nested = R"({"op":"x","inner":{"a":1}})";
  ControlMap out;
  auto status = parse_control(
      ByteSpan(reinterpret_cast<const std::uint8_t*>(nested.data()),
               nested.size()),
      &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, StatusRoundTripsThroughErrorReply) {
  ControlMap reply;
  status_to_reply(Status::Throttled("slow down", 250ms), &reply);
  auto back = status_from_reply(reply);
  EXPECT_EQ(back.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(back.retry_after(), 250ms);
  EXPECT_TRUE(back.is_transient());

  ControlMap ok_reply{{"ok", "1"}};
  EXPECT_TRUE(status_from_reply(ok_reply).ok());
}

TEST(WireTest, ProduceAndFetchBatchesRoundTrip) {
  ProduceBatch batch;
  batch.topic = "telemetry";
  batch.partition = 3;
  batch.client_id = "edge-7";
  for (int i = 0; i < 4; ++i) {
    broker::Record r;
    r.key = "k" + std::to_string(i);
    r.client_timestamp_ns = 1000u + static_cast<std::uint64_t>(i);
    r.value = Bytes(static_cast<std::size_t>(8 + i), std::uint8_t(i));
    batch.records.push_back(std::move(r));
  }
  auto encoded = encode_produce_batch(batch);
  ProduceBatch decoded;
  ASSERT_TRUE(decode_produce_batch(encoded, &decoded).ok());
  EXPECT_EQ(decoded.topic, batch.topic);
  EXPECT_EQ(decoded.partition, batch.partition);
  EXPECT_EQ(decoded.client_id, batch.client_id);
  ASSERT_EQ(decoded.records.size(), 4u);
  EXPECT_EQ(decoded.records[2].key, "k2");
  EXPECT_EQ(decoded.records[2].value.size(), 10u);

  std::vector<broker::ConsumedRecord> consumed;
  for (int i = 0; i < 3; ++i) {
    broker::ConsumedRecord cr;
    cr.topic = "telemetry";
    cr.partition = 3;
    cr.offset = 40u + static_cast<std::uint64_t>(i);
    cr.broker_timestamp_ns = 2000;
    cr.record.key = "k";
    cr.record.value = Bytes(4, 0x9);
    consumed.push_back(std::move(cr));
  }
  auto fetch_bytes = encode_fetch_batch("telemetry", 3, consumed);
  std::vector<broker::ConsumedRecord> fetched;
  ASSERT_TRUE(decode_fetch_batch(fetch_bytes, &fetched).ok());
  ASSERT_EQ(fetched.size(), 3u);
  EXPECT_EQ(fetched[1].offset, 41u);
  EXPECT_EQ(fetched[1].topic, "telemetry");
  EXPECT_EQ(fetched[1].record.value.size(), 4u);
}

}  // namespace
}  // namespace pe::transport
