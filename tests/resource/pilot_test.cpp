#include "resource/pilot.h"
#include "resource/pilot_manager.h"

#include <gtest/gtest.h>

namespace pe::res {
namespace {

PilotManagerOptions fast_options() {
  PilotManagerOptions options;
  options.startup_delay_factor = 0.0005;  // near-instant provisioning
  return options;
}

class PilotManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = net::Fabric::make_paper_topology();
    manager_ = std::make_unique<PilotManager>(fabric_, fast_options());
  }
  std::shared_ptr<net::Fabric> fabric_;
  std::unique_ptr<PilotManager> manager_;
};

TEST_F(PilotManagerTest, SubmitAndActivateCloudVm) {
  auto pilot = manager_->submit(Flavors::lrz_large());
  ASSERT_TRUE(pilot.ok());
  EXPECT_TRUE(pilot.value()->wait_active().ok());
  EXPECT_EQ(pilot.value()->state(), PilotState::kActive);
  EXPECT_EQ(pilot.value()->granted_cores(), 10u);
  EXPECT_DOUBLE_EQ(pilot.value()->granted_memory_gb(), 44.0);
  ASSERT_NE(pilot.value()->cluster(), nullptr);
  EXPECT_EQ(pilot.value()->cluster()->site(), "lrz-eu");
  EXPECT_EQ(pilot.value()->broker(), nullptr);
}

TEST_F(PilotManagerTest, UnknownSiteRejectedAtSubmit) {
  auto pilot = manager_->submit(Flavors::lrz_large("atlantis"));
  EXPECT_EQ(pilot.status().code(), StatusCode::kNotFound);
}

TEST_F(PilotManagerTest, BrokerPilotExposesBroker) {
  auto pilot = manager_->submit(
      Flavors::make("lrz-eu", Backend::kBrokerService, 4, 16.0));
  ASSERT_TRUE(pilot.ok());
  ASSERT_TRUE(pilot.value()->wait_active().ok());
  ASSERT_NE(pilot.value()->broker(), nullptr);
  EXPECT_EQ(pilot.value()->broker()->site(), "lrz-eu");
  EXPECT_EQ(pilot.value()->cluster(), nullptr);
}

TEST_F(PilotManagerTest, EdgePilotEnforcesDeviceLimits) {
  // RasPi-class limit: > 4 cores fails during provisioning.
  auto pilot = manager_->submit(
      Flavors::make("edge-us", Backend::kEdgeSsh, 8, 4.0));
  ASSERT_TRUE(pilot.ok());
  const Status s = pilot.value()->wait_active();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pilot.value()->state(), PilotState::kFailed);
  EXPECT_EQ(pilot.value()->cluster(), nullptr);
}

TEST_F(PilotManagerTest, RaspiFlavorActivates) {
  auto pilot = manager_->submit(Flavors::raspi("edge-us"));
  ASSERT_TRUE(pilot.ok());
  EXPECT_TRUE(pilot.value()->wait_active().ok());
  EXPECT_EQ(pilot.value()->granted_cores(), 1u);
}

TEST_F(PilotManagerTest, HpcBackendActivates) {
  auto pilot = manager_->submit(
      Flavors::make("lrz-eu", Backend::kHpcBatch, 32, 128.0));
  ASSERT_TRUE(pilot.ok());
  EXPECT_TRUE(pilot.value()->wait_active().ok());
  EXPECT_EQ(pilot.value()->granted_cores(), 32u);
}

TEST_F(PilotManagerTest, WaitAllActiveCoversEveryPilot) {
  auto a = manager_->submit(Flavors::lrz_medium());
  auto b = manager_->submit(Flavors::jetstream_medium());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(manager_->wait_all_active().ok());
  EXPECT_EQ(a.value()->state(), PilotState::kActive);
  EXPECT_EQ(b.value()->state(), PilotState::kActive);
}

TEST_F(PilotManagerTest, WaitAllActiveReportsFailure) {
  auto bad = manager_->submit(
      Flavors::make("edge-us", Backend::kEdgeSsh, 8, 4.0));
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(manager_->wait_all_active().ok());
}

TEST_F(PilotManagerTest, CancelTearsDownCluster) {
  auto pilot = manager_->submit(Flavors::lrz_medium());
  ASSERT_TRUE(pilot.ok());
  ASSERT_TRUE(pilot.value()->wait_active().ok());
  pilot.value()->cancel();
  EXPECT_EQ(pilot.value()->state(), PilotState::kCanceled);
  EXPECT_EQ(pilot.value()->cluster(), nullptr);
  pilot.value()->cancel();  // idempotent
  EXPECT_EQ(pilot.value()->state(), PilotState::kCanceled);
}

TEST_F(PilotManagerTest, LookupById) {
  auto pilot = manager_->submit(Flavors::lrz_medium());
  ASSERT_TRUE(pilot.ok());
  auto found = manager_->pilot(pilot.value()->id());
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value()->id(), pilot.value()->id());
  EXPECT_EQ(manager_->pilot("pilot-none").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(manager_->pilots().size(), 1u);
}

TEST_F(PilotManagerTest, ShutdownCancelsAll) {
  auto pilot = manager_->submit(Flavors::lrz_medium());
  ASSERT_TRUE(pilot.ok());
  manager_->shutdown();
  const auto state = pilot.value()->state();
  EXPECT_TRUE(state == PilotState::kCanceled);
  EXPECT_EQ(manager_->submit(Flavors::lrz_medium()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PilotManagerTest, WaitActiveForTimesOutDuringProvisioning) {
  PilotManagerOptions slow;
  slow.startup_delay_factor = 10.0;  // very slow provisioning
  PilotManager slow_manager(fabric_, slow);
  auto pilot = slow_manager.submit(Flavors::lrz_medium());
  ASSERT_TRUE(pilot.ok());
  EXPECT_EQ(pilot.value()->wait_active_for(std::chrono::milliseconds(20)).code(),
            StatusCode::kTimeout);
  pilot.value()->cancel();
}

TEST(PilotDescriptionTest, ToStringDescribesResource) {
  const auto d = Flavors::lrz_large();
  const std::string s = d.to_string();
  EXPECT_NE(s.find("cloud-vm"), std::string::npos);
  EXPECT_NE(s.find("lrz-eu"), std::string::npos);
  EXPECT_NE(s.find("10c"), std::string::npos);
}

TEST(BackendTest, FactoryCoversAllKinds) {
  for (auto kind : {Backend::kCloudVm, Backend::kEdgeSsh, Backend::kHpcBatch,
                    Backend::kBrokerService}) {
    auto backend = make_backend(kind);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->kind(), kind);
  }
}

TEST(BackendTest, ProvisioningDelaysOrderedByBackendClass) {
  // Edge SSH connects faster than a cloud VM boots; HPC queues longest.
  const PilotDescription edge = Flavors::raspi("edge-us");
  const PilotDescription cloud = Flavors::lrz_medium();
  const PilotDescription hpc =
      Flavors::make("lrz-eu", Backend::kHpcBatch, 4, 16.0);
  const auto edge_delay =
      make_backend(Backend::kEdgeSsh)->provision(edge).value().startup_delay;
  const auto cloud_delay =
      make_backend(Backend::kCloudVm)->provision(cloud).value().startup_delay;
  const auto hpc_delay =
      make_backend(Backend::kHpcBatch)->provision(hpc).value().startup_delay;
  EXPECT_LT(edge_delay, cloud_delay);
  EXPECT_LT(cloud_delay, hpc_delay);
}

TEST(BackendTest, ZeroCoreRequestsRejected) {
  for (auto kind : {Backend::kCloudVm, Backend::kEdgeSsh, Backend::kHpcBatch,
                    Backend::kBrokerService}) {
    PilotDescription d;
    d.site = "x";
    d.backend = kind;
    d.cores = 0;
    EXPECT_FALSE(make_backend(kind)->provision(d).ok());
  }
}

}  // namespace
}  // namespace pe::res
