// End-to-end test of the flag-driven experiment runner (tools binary's
// library entry point).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/experiment_cli.h"

namespace pe::core::cli {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

TEST(CliRunTest, SmallRunWritesJsonAndCsv) {
  const std::string json_path = ::testing::TempDir() + "/pe_cli_run.json";
  const std::string csv_path = ::testing::TempDir() + "/pe_cli_run.csv";
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());

  Options options;
  options.devices = 1;
  options.messages_per_device = 3;
  options.points = 100;
  options.model = "baseline";
  options.json_path = json_path;
  options.csv_path = csv_path;
  EXPECT_EQ(run(options), 0);

  const std::string json = slurp(json_path);
  EXPECT_NE(json.find("\"messages\":3"), std::string::npos);
  EXPECT_NE(json.find("component_rates"), std::string::npos);

  const std::string csv = slurp(csv_path);
  EXPECT_NE(csv.find("label,"), std::string::npos);  // header
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);  // header + row

  // A second run appends a row without duplicating the header.
  EXPECT_EQ(run(options), 0);
  const std::string csv2 = slurp(csv_path);
  EXPECT_EQ(std::count(csv2.begin(), csv2.end(), '\n'), 3);
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(CliRunTest, HelpReturnsZeroWithoutRunning) {
  Options options;
  options.help = true;
  EXPECT_EQ(run(options), 0);
}

TEST(CliRunTest, MqttIngestPathRuns) {
  Options options;
  options.devices = 1;
  options.messages_per_device = 2;
  options.points = 50;
  options.model = "baseline";
  options.ingest = "mqtt";
  EXPECT_EQ(run(options), 0);
}

TEST(CliRunTest, HybridModeRuns) {
  Options options;
  options.devices = 1;
  options.messages_per_device = 2;
  options.points = 200;
  options.model = "kmeans";
  options.mode = "hybrid";
  options.aggregate_window = 4;
  EXPECT_EQ(run(options), 0);
}

}  // namespace
}  // namespace pe::core::cli
