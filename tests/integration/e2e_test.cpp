// Geo-distributed end-to-end tests on the paper topology.
//
// These run with an accelerated clock (time_scale) so WAN emulation does
// not dominate CI time; reported spans stay meaningful because every
// component sees the same scale.
#include <gtest/gtest.h>

#include "core/functions.h"
#include "core/pipeline.h"

namespace pe::core {
namespace {

class GeoE2ETest : public ::testing::Test {
 protected:
  void SetUp() override {
    Clock::set_time_scale(20.0);  // 20x accelerated WAN
    fabric_ = net::Fabric::make_paper_topology();
    res::PilotManagerOptions options;
    options.startup_delay_factor = 0.0005;
    manager_ = std::make_unique<res::PilotManager>(fabric_, options);
  }
  void TearDown() override { Clock::set_time_scale(1.0); }

  res::PilotPtr pilot(res::PilotDescription d) {
    auto p = manager_->submit(std::move(d));
    EXPECT_TRUE(p.ok());
    return p.value();
  }

  std::shared_ptr<net::Fabric> fabric_;
  std::unique_ptr<res::PilotManager> manager_;
};

TEST_F(GeoE2ETest, CloudCentricAcrossTheAtlantic) {
  // Paper §III-2 geographic setup: data source on Jetstream (US),
  // broker + processing on LRZ (EU).
  auto edge = pilot(res::Flavors::raspi("edge-us", 2));
  auto cloud = pilot(res::Flavors::lrz_large());
  auto broker = pilot(
      res::Flavors::make("lrz-eu", res::Backend::kBrokerService, 4, 16.0));
  ASSERT_TRUE(manager_->wait_all_active().ok());

  PipelineConfig config;
  config.edge_devices = 2;
  config.messages_per_device = 3;
  config.rows_per_message = 500;
  config.run_timeout = std::chrono::minutes(2);
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge)
      .set_pilot_cloud_processing(cloud)
      .set_pilot_cloud_broker(broker)
      .set_produce_function(functions::make_generator_produce({}, 500))
      .set_process_cloud_function(
          functions::make_model_process(ml::ModelKind::kKMeans));

  auto report = pipeline.run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().messages_processed, 6u);
  // End-to-end latency must include the (scaled-down) WAN leg; at 20x a
  // ~75 ms one-way latency still contributes ~3.75 ms real = 75 ms
  // emulated. Spans record real (scaled) time, so expect > 2 ms.
  EXPECT_GT(report.value().run.end_to_end_ms.mean, 2.0);

  // WAN link must actually have carried the payload.
  const auto links = fabric_->link_stats();
  EXPECT_GT(links.at("edge-us->lrz-eu").bytes,
            6u * 500u * 32u * 8u);
}

TEST_F(GeoE2ETest, EdgeProcessingReducesWanBytes) {
  auto edge = pilot(res::Flavors::raspi("edge-us", 1));
  auto cloud = pilot(res::Flavors::lrz_large());
  auto broker = pilot(
      res::Flavors::make("lrz-eu", res::Backend::kBrokerService, 4, 16.0));
  ASSERT_TRUE(manager_->wait_all_active().ok());

  PipelineConfig config;
  config.edge_devices = 1;
  config.messages_per_device = 3;
  config.rows_per_message = 400;
  config.mode = DeploymentMode::kHybrid;
  config.run_timeout = std::chrono::minutes(2);
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge)
      .set_pilot_cloud_processing(cloud)
      .set_pilot_cloud_broker(broker)
      .set_produce_function(functions::make_generator_produce({}, 400))
      .set_process_edge_function(functions::make_aggregate_edge(8))
      .set_process_cloud_function(
          functions::make_model_process(ml::ModelKind::kKMeans));

  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().messages_processed, 3u);
  const auto links = fabric_->link_stats();
  // Aggregation by 8 means the WAN carried roughly 1/8 of the raw bytes.
  const auto raw_bytes = 3u * 400u * 32u * 8u;
  EXPECT_LT(links.at("edge-us->lrz-eu").bytes, raw_bytes / 4);
}

TEST_F(GeoE2ETest, MultipleEdgePilotsShareTheWork) {
  auto edge_a = pilot(res::Flavors::raspi("edge-us", 1));
  auto edge_b = pilot(res::Flavors::raspi("edge-us", 1));
  auto cloud = pilot(res::Flavors::lrz_large());
  auto broker = pilot(
      res::Flavors::make("lrz-eu", res::Backend::kBrokerService, 4, 16.0));
  ASSERT_TRUE(manager_->wait_all_active().ok());

  PipelineConfig config;
  config.edge_devices = 2;
  config.messages_per_device = 2;
  config.rows_per_message = 50;
  config.run_timeout = std::chrono::minutes(2);
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_a)
      .add_pilot_edge(edge_b)
      .set_pilot_cloud_processing(cloud)
      .set_pilot_cloud_broker(broker)
      .set_produce_function(functions::make_generator_produce({}, 50))
      .set_process_cloud_function(functions::make_passthrough_process());

  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().messages_processed, 4u);
}

}  // namespace
}  // namespace pe::core
