// Randomized property tests: invariants that must hold for arbitrary
// (seeded) inputs, beyond the hand-picked cases in the unit tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "broker/partition_log.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "data/codec.h"
#include "data/generator.h"
#include "ml/outlier.h"
#include "mqtt/mqtt_broker.h"
#include "paramserver/server.h"

namespace pe {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 7, 42, 1234, 99991));

// --- codec: encode/decode is the identity for arbitrary blocks ---------

TEST_P(SeededProperty, CodecRoundTripIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 10; ++i) {
    data::DataBlock block;
    block.rows = static_cast<std::size_t>(rng.uniform_int(0, 200));
    block.cols = static_cast<std::size_t>(rng.uniform_int(1, 64));
    block.message_id = rng.next_u64();
    block.produced_ns = rng.next_u64();
    block.producer_id = "p" + std::to_string(rng.uniform_int(0, 1 << 20));
    block.values.resize(block.rows * block.cols);
    for (auto& v : block.values) v = rng.gaussian(0, 1e6);
    if (rng.bernoulli(0.5)) {
      block.labels.resize(block.rows);
      for (auto& l : block.labels) l = rng.bernoulli(0.1) ? 1 : 0;
    }
    auto decoded = data::Codec::decode(data::Codec::encode(block));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().values, block.values);
    EXPECT_EQ(decoded.value().labels, block.labels);
    EXPECT_EQ(decoded.value().message_id, block.message_id);
    EXPECT_EQ(decoded.value().producer_id, block.producer_id);
  }
}

// --- codec: random corruption never crashes, is always detected or
// yields a structurally valid block -------------------------------------

TEST_P(SeededProperty, CodecCorruptionIsSafe) {
  Rng rng(GetParam());
  data::Generator gen;
  const Bytes good = data::Codec::encode(gen.generate(50));
  for (int i = 0; i < 50; ++i) {
    Bytes corrupt = good;
    const auto cut = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(corrupt.size())));
    corrupt.resize(cut);  // truncation
    auto decoded = data::Codec::decode(corrupt);
    if (decoded.ok()) {
      EXPECT_TRUE(decoded.value().valid());
    }
  }
}

// --- partition log: offsets are dense, fetches return exact subranges --

TEST_P(SeededProperty, PartitionLogOffsetsAreDenseAndOrdered) {
  Rng rng(GetParam());
  broker::PartitionLog log;
  std::uint64_t expected = 0;
  for (int i = 0; i < 300; ++i) {
    broker::Record r;
    r.key = std::to_string(i);
    r.value = Bytes(static_cast<std::size_t>(rng.uniform_int(0, 64)), 1);
    ASSERT_EQ(log.append(std::move(r)).value(), expected);
    expected += 1;
  }
  for (int i = 0; i < 30; ++i) {
    broker::FetchSpec spec;
    spec.offset = static_cast<std::uint64_t>(rng.uniform_int(0, 299));
    spec.max_records = static_cast<std::size_t>(rng.uniform_int(1, 64));
    auto fetched = log.fetch(spec);
    ASSERT_TRUE(fetched.ok());
    ASSERT_FALSE(fetched.value().empty());
    for (std::size_t k = 0; k < fetched.value().size(); ++k) {
      EXPECT_EQ(fetched.value()[k].offset, spec.offset + k);
      EXPECT_EQ(fetched.value()[k].record.key,
                std::to_string(spec.offset + k));
    }
  }
}

// --- partition log under retention: readable window == [start, end) ----

TEST_P(SeededProperty, RetentionWindowAlwaysReadable) {
  Rng rng(GetParam());
  broker::PartitionLog log(
      broker::RetentionPolicy{.max_records = 50, .max_bytes = 0});
  for (int i = 0; i < 500; ++i) {
    broker::Record r;
    r.value = Bytes(8, 2);
    (void)log.append(std::move(r));
    if (rng.bernoulli(0.1)) {
      const auto start = log.log_start_offset();
      const auto end = log.end_offset();
      EXPECT_LE(end - start, 50u);
      broker::FetchSpec spec;
      spec.offset = start;
      spec.max_records = 1000;
      auto fetched = log.fetch(spec);
      ASSERT_TRUE(fetched.ok());
      EXPECT_EQ(fetched.value().size(), end - start);
    }
  }
}

// --- histogram: percentile is monotone in q and bounded by min/max ----

TEST_P(SeededProperty, HistogramPercentileMonotone) {
  Rng rng(GetParam());
  Histogram h;
  for (int i = 0; i < 500; ++i) h.record(rng.gaussian(0, 100));
  double prev = h.percentile(0.0);
  EXPECT_GE(prev, h.min() - 1e-12);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double p = h.percentile(q);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
  EXPECT_LE(prev, h.max() + 1e-12);
}

// --- roc_auc: invariant under monotone transforms of the scores --------

TEST_P(SeededProperty, AucInvariantUnderMonotoneTransform) {
  Rng rng(GetParam());
  std::vector<double> scores(200);
  std::vector<std::uint8_t> labels(200);
  for (std::size_t i = 0; i < 200; ++i) {
    scores[i] = rng.uniform(0, 1);
    labels[i] = rng.bernoulli(0.2) ? 1 : 0;
  }
  const double base = ml::roc_auc(scores, labels);
  std::vector<double> transformed = scores;
  for (auto& s : transformed) s = 3.0 * s + 7.0;  // affine, monotone
  EXPECT_NEAR(ml::roc_auc(transformed, labels), base, 1e-12);
  for (auto& s : transformed) s = std::exp(s);  // still monotone
  EXPECT_NEAR(ml::roc_auc(transformed, labels), base, 1e-12);
}

// --- roc_auc: complement symmetry auc(s, y) = 1 - auc(-s, y) ------------

TEST_P(SeededProperty, AucComplementSymmetry) {
  Rng rng(GetParam() + 1);
  std::vector<double> scores(100);
  std::vector<std::uint8_t> labels(100);
  bool has_both = false;
  for (std::size_t i = 0; i < 100; ++i) {
    scores[i] = rng.gaussian(0, 1);
    labels[i] = rng.bernoulli(0.3) ? 1 : 0;
  }
  has_both = std::count(labels.begin(), labels.end(), 1) > 0 &&
             std::count(labels.begin(), labels.end(), 0) > 0;
  if (!has_both) return;
  std::vector<double> negated = scores;
  for (auto& s : negated) s = -s;
  EXPECT_NEAR(ml::roc_auc(scores, labels) + ml::roc_auc(negated, labels),
              1.0, 1e-12);
}

// --- mqtt: '#' matches everything; matching is prefix-consistent --------

TEST_P(SeededProperty, MqttWildcardProperties) {
  Rng rng(GetParam());
  auto random_topic = [&rng]() {
    const int levels = static_cast<int>(rng.uniform_int(1, 4));
    std::string topic;
    for (int l = 0; l < levels; ++l) {
      if (l > 0) topic += '/';
      topic += static_cast<char>('a' + rng.uniform_int(0, 3));
    }
    return topic;
  };
  for (int i = 0; i < 100; ++i) {
    const std::string topic = random_topic();
    EXPECT_TRUE(mqtt::topic_matches("#", topic));
    // Exact filter always matches itself.
    EXPECT_TRUE(mqtt::topic_matches(topic, topic));
    // Replacing one level with '+' still matches.
    std::string plus = topic;
    const auto slash = plus.find('/');
    if (slash != std::string::npos) {
      plus = "+" + plus.substr(slash);
      EXPECT_TRUE(mqtt::topic_matches(plus, topic));
    }
    // "<topic>/#" matches children and the topic itself.
    EXPECT_TRUE(mqtt::topic_matches(topic + "/#", topic + "/x"));
    EXPECT_TRUE(mqtt::topic_matches(topic + "/#", topic));
  }
}

// --- parameter server: version strictly increases per key ---------------

TEST_P(SeededProperty, ParameterServerVersionsMonotone) {
  Rng rng(GetParam());
  ps::ParameterServer server("s");
  std::map<std::string, std::uint64_t> last_version;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "k" + std::to_string(rng.uniform_int(0, 5));
    const auto version = server.set(key, Bytes{1});
    auto it = last_version.find(key);
    if (it != last_version.end()) {
      EXPECT_EQ(version, it->second + 1);
    } else {
      EXPECT_EQ(version, 1u);
    }
    last_version[key] = version;
  }
}

// --- scaler: streaming equals batch for random partitions ---------------

TEST_P(SeededProperty, GeneratorBlocksAreAlwaysValid) {
  Rng rng(GetParam());
  data::GeneratorConfig config;
  config.seed = GetParam();
  config.outlier_fraction = rng.uniform(0.0, 0.3);
  config.clusters = static_cast<std::size_t>(rng.uniform_int(1, 30));
  config.features = static_cast<std::size_t>(rng.uniform_int(1, 64));
  data::Generator gen(config);
  for (int i = 0; i < 5; ++i) {
    const auto rows = static_cast<std::size_t>(rng.uniform_int(1, 500));
    const auto block = gen.generate(rows);
    EXPECT_TRUE(block.valid());
    EXPECT_EQ(block.rows, rows);
    EXPECT_EQ(block.cols, config.features);
    for (double v : block.values) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

}  // namespace
}  // namespace pe
