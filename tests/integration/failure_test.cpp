// Pipeline behaviour under mid-run resource failures.
#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "core/functions.h"
#include "core/pipeline.h"
#include "resource/pilot_manager.h"

namespace pe::core {
namespace {

class PipelineFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = net::Fabric::make_single_site_topology();
    res::PilotManagerOptions options;
    options.startup_delay_factor = 0.0005;
    manager_ = std::make_unique<res::PilotManager>(fabric_, options);
    edge_ = manager_
                ->submit(res::Flavors::make("lrz-eu", res::Backend::kCloudVm,
                                            2, 8.0))
                .value();
    cloud_ = manager_->submit(res::Flavors::lrz_large()).value();
    broker_ = manager_
                  ->submit(res::Flavors::make(
                      "lrz-eu", res::Backend::kBrokerService, 2, 8.0))
                  .value();
    ASSERT_TRUE(manager_->wait_all_active().ok());
  }
  std::shared_ptr<net::Fabric> fabric_;
  std::unique_ptr<res::PilotManager> manager_;
  res::PilotPtr edge_, cloud_, broker_;
};

TEST_F(PipelineFailureTest, CloudPilotLossSurfacesAsTimeoutNotHang) {
  PipelineConfig config;
  config.edge_devices = 1;
  config.messages_per_device = 200;
  config.rows_per_message = 100;
  config.produce_interval = std::chrono::milliseconds(2);
  config.run_timeout = std::chrono::seconds(3);  // bound the damage
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_)
      .set_pilot_cloud_processing(cloud_)
      .set_pilot_cloud_broker(broker_)
      .set_produce_function(functions::make_generator_produce({}, 100))
      .set_process_cloud_function(functions::make_passthrough_process());
  ASSERT_TRUE(pipeline.start().ok());
  while (pipeline.messages_processed() < 5) {
    Clock::sleep_exact(std::chrono::milliseconds(2));
  }

  // The processing VM is preempted mid-run.
  ASSERT_TRUE(cloud_->inject_failure("spot preemption").ok());

  const Status status = pipeline.wait();
  // Producers may finish, but processing can never drain: a bounded
  // TIMEOUT (not a hang, not a crash).
  EXPECT_EQ(status.code(), StatusCode::kTimeout);
  pipeline.stop();
  const auto report = pipeline.report("after-failure");
  EXPECT_GT(report.messages_processed, 0u);
  EXPECT_LT(report.messages_processed, report.messages_produced);
}

TEST_F(PipelineFailureTest, EdgePilotLossStopsProductionButDrainsCleanly) {
  PipelineConfig config;
  config.edge_devices = 1;
  config.messages_per_device = 100000;  // would run forever
  config.rows_per_message = 100;
  config.produce_interval = std::chrono::milliseconds(2);
  config.run_timeout = std::chrono::seconds(10);
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_)
      .set_pilot_cloud_processing(cloud_)
      .set_pilot_cloud_broker(broker_)
      .set_produce_function(functions::make_generator_produce({}, 100))
      .set_process_cloud_function(functions::make_passthrough_process());
  ASSERT_TRUE(pipeline.start().ok());
  while (pipeline.messages_processed() < 5) {
    Clock::sleep_exact(std::chrono::milliseconds(2));
  }

  // The edge device dies: production ends, in-flight data still drains.
  ASSERT_TRUE(edge_->inject_failure("device power loss").ok());
  const Status status = pipeline.wait();
  EXPECT_TRUE(status.ok()) << status.to_string();
  pipeline.stop();
  const auto report = pipeline.report("edge-loss");
  // Everything produced before the loss was processed.
  EXPECT_EQ(report.messages_processed, report.messages_produced);
  EXPECT_GT(report.messages_processed, 0u);
}

TEST_F(PipelineFailureTest, CloudPilotLossRecoversWhenEnabled) {
  // Same failure as CloudPilotLossSurfacesAsTimeoutNotHang, but with a
  // recovery-enabled manager driving re-provisioning and the pipeline
  // opted into re-binding: the run must complete cleanly.
  res::PilotManagerOptions options;
  options.startup_delay_factor = 0.0005;
  options.auto_reprovision = true;
  options.heartbeat_interval = std::chrono::milliseconds(5);
  options.reprovision_backoff = std::chrono::milliseconds(1);
  res::PilotManager manager(fabric_, options);
  auto edge = manager
                  .submit(res::Flavors::make("lrz-eu", res::Backend::kCloudVm,
                                             2, 8.0))
                  .value();
  auto cloud = manager.submit(res::Flavors::lrz_large()).value();
  auto broker = manager
                    .submit(res::Flavors::make(
                        "lrz-eu", res::Backend::kBrokerService, 2, 8.0))
                    .value();
  ASSERT_TRUE(manager.wait_all_active().ok());

  PipelineConfig config;
  config.edge_devices = 1;
  config.messages_per_device = 200;
  config.rows_per_message = 100;
  config.produce_interval = std::chrono::milliseconds(2);
  config.run_timeout = std::chrono::seconds(30);
  config.auto_recover = true;
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge)
      .set_pilot_cloud_processing(cloud)
      .set_pilot_cloud_broker(broker)
      .set_pilot_manager(&manager)
      .set_produce_function(functions::make_generator_produce({}, 100))
      .set_process_cloud_function(functions::make_passthrough_process());
  ASSERT_TRUE(pipeline.start().ok());
  while (pipeline.messages_processed() < 5) {
    Clock::sleep_exact(std::chrono::milliseconds(2));
  }

  ASSERT_TRUE(cloud->inject_failure("spot preemption").ok());

  const Status status = pipeline.wait();
  EXPECT_TRUE(status.ok()) << status.to_string();
  pipeline.stop();
  const auto report = pipeline.report("cloud-loss-recovered");
  // Every produced message was processed: the replacement pilot's
  // consumers rejoined the group and resumed, with redelivered records
  // absorbed by message-id deduplication.
  EXPECT_EQ(report.messages_produced, 200u);
  EXPECT_EQ(report.messages_processed, report.messages_produced);
  EXPECT_EQ(report.messages_dead_lettered, 0u);
  EXPECT_EQ(report.pilot_recoveries, 1u);
  EXPECT_EQ(manager.reprovision_count(), 1u);
}

TEST_F(PipelineFailureTest, PoisonRecordsAreDeadLetteredAndRunDrains) {
  PipelineConfig config;
  config.edge_devices = 1;
  config.messages_per_device = 100;
  config.rows_per_message = 50;
  config.run_timeout = std::chrono::seconds(20);
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_)
      .set_pilot_cloud_processing(cloud_)
      .set_pilot_cloud_broker(broker_)
      .set_produce_function(functions::make_generator_produce({}, 50))
      // Every fifth message is poison: a deterministic (non-transient)
      // failure that must be dead-lettered, not retried forever.
      .set_process_cloud_function(shared_process_fn(
          [](FunctionContext&, data::DataBlock block) -> Result<ProcessResult> {
            if (block.message_id % 5 == 0) {
              return Status::Internal("poison record");
            }
            ProcessResult out;
            out.block = std::move(block);
            return out;
          }));
  const auto result = pipeline.run();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const auto& report = result.value();
  // Message ids are contiguous for the run, so exactly 1 in 5 is poison.
  EXPECT_EQ(report.messages_produced, 100u);
  EXPECT_EQ(report.messages_processed, report.messages_produced);
  EXPECT_EQ(report.messages_dead_lettered, 20u);
  EXPECT_EQ(report.broker.records_dead_lettered, 20u);
}

TEST_F(PipelineFailureTest, TransientProcessingFailuresRetryInPlace) {
  PipelineConfig config;
  config.edge_devices = 1;
  config.messages_per_device = 50;
  config.rows_per_message = 50;
  config.run_timeout = std::chrono::seconds(20);
  config.processing_retries = 2;

  // Every message fails with UNAVAILABLE on its first attempt and succeeds
  // on retry — nothing may reach the DLQ.
  auto mutex = std::make_shared<std::mutex>();
  auto failed_once = std::make_shared<std::set<std::uint64_t>>();
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_)
      .set_pilot_cloud_processing(cloud_)
      .set_pilot_cloud_broker(broker_)
      .set_produce_function(functions::make_generator_produce({}, 50))
      .set_process_cloud_function(shared_process_fn(
          [mutex, failed_once](FunctionContext&, data::DataBlock block)
              -> Result<ProcessResult> {
            {
              std::lock_guard<std::mutex> lock(*mutex);
              if (failed_once->insert(block.message_id).second) {
                return Status::Unavailable("transient glitch");
              }
            }
            ProcessResult out;
            out.block = std::move(block);
            return out;
          }));
  const auto result = pipeline.run();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const auto& report = result.value();
  EXPECT_EQ(report.messages_produced, 50u);
  EXPECT_EQ(report.messages_processed, 50u);
  EXPECT_EQ(report.messages_dead_lettered, 0u);
}

}  // namespace
}  // namespace pe::core
