// Pipeline behaviour under mid-run resource failures.
#include <gtest/gtest.h>

#include "core/functions.h"
#include "core/pipeline.h"
#include "resource/pilot_manager.h"

namespace pe::core {
namespace {

class PipelineFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = net::Fabric::make_single_site_topology();
    res::PilotManagerOptions options;
    options.startup_delay_factor = 0.0005;
    manager_ = std::make_unique<res::PilotManager>(fabric_, options);
    edge_ = manager_
                ->submit(res::Flavors::make("lrz-eu", res::Backend::kCloudVm,
                                            2, 8.0))
                .value();
    cloud_ = manager_->submit(res::Flavors::lrz_large()).value();
    broker_ = manager_
                  ->submit(res::Flavors::make(
                      "lrz-eu", res::Backend::kBrokerService, 2, 8.0))
                  .value();
    ASSERT_TRUE(manager_->wait_all_active().ok());
  }
  std::shared_ptr<net::Fabric> fabric_;
  std::unique_ptr<res::PilotManager> manager_;
  res::PilotPtr edge_, cloud_, broker_;
};

TEST_F(PipelineFailureTest, CloudPilotLossSurfacesAsTimeoutNotHang) {
  PipelineConfig config;
  config.edge_devices = 1;
  config.messages_per_device = 200;
  config.rows_per_message = 100;
  config.produce_interval = std::chrono::milliseconds(2);
  config.run_timeout = std::chrono::seconds(3);  // bound the damage
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_)
      .set_pilot_cloud_processing(cloud_)
      .set_pilot_cloud_broker(broker_)
      .set_produce_function(functions::make_generator_produce({}, 100))
      .set_process_cloud_function(functions::make_passthrough_process());
  ASSERT_TRUE(pipeline.start().ok());
  while (pipeline.messages_processed() < 5) {
    Clock::sleep_exact(std::chrono::milliseconds(2));
  }

  // The processing VM is preempted mid-run.
  ASSERT_TRUE(cloud_->inject_failure("spot preemption").ok());

  const Status status = pipeline.wait();
  // Producers may finish, but processing can never drain: a bounded
  // TIMEOUT (not a hang, not a crash).
  EXPECT_EQ(status.code(), StatusCode::kTimeout);
  pipeline.stop();
  const auto report = pipeline.report("after-failure");
  EXPECT_GT(report.messages_processed, 0u);
  EXPECT_LT(report.messages_processed, report.messages_produced);
}

TEST_F(PipelineFailureTest, EdgePilotLossStopsProductionButDrainsCleanly) {
  PipelineConfig config;
  config.edge_devices = 1;
  config.messages_per_device = 100000;  // would run forever
  config.rows_per_message = 100;
  config.produce_interval = std::chrono::milliseconds(2);
  config.run_timeout = std::chrono::seconds(10);
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_)
      .set_pilot_cloud_processing(cloud_)
      .set_pilot_cloud_broker(broker_)
      .set_produce_function(functions::make_generator_produce({}, 100))
      .set_process_cloud_function(functions::make_passthrough_process());
  ASSERT_TRUE(pipeline.start().ok());
  while (pipeline.messages_processed() < 5) {
    Clock::sleep_exact(std::chrono::milliseconds(2));
  }

  // The edge device dies: production ends, in-flight data still drains.
  ASSERT_TRUE(edge_->inject_failure("device power loss").ok());
  const Status status = pipeline.wait();
  EXPECT_TRUE(status.ok()) << status.to_string();
  pipeline.stop();
  const auto report = pipeline.report("edge-loss");
  // Everything produced before the loss was processed.
  EXPECT_EQ(report.messages_processed, report.messages_produced);
  EXPECT_GT(report.messages_processed, 0u);
}

}  // namespace
}  // namespace pe::core
