// Shape tests: assert the paper's qualitative findings hold in this
// implementation (not absolute numbers — ordering and rough ratios).
#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/placement.h"
#include "data/generator.h"
#include "ml/factory.h"

namespace pe {
namespace {

/// Per-message processing cost (partial_fit + score) in milliseconds,
/// averaged over a few messages after a warmup message.
double processing_ms(ml::ModelKind kind, std::size_t rows) {
  ConfigMap config;
  auto model = ml::make_model(kind, config);
  data::GeneratorConfig gen_config;
  gen_config.seed = 9;
  data::Generator gen(gen_config);

  auto warmup = gen.generate(rows);
  EXPECT_TRUE(model->partial_fit(warmup).ok());
  EXPECT_TRUE(model->score(warmup).ok());

  constexpr int kMessages = 3;
  std::vector<data::DataBlock> blocks;
  for (int i = 0; i < kMessages; ++i) blocks.push_back(gen.generate(rows));
  Stopwatch sw;
  for (const auto& block : blocks) {
    EXPECT_TRUE(model->partial_fit(block).ok());
    EXPECT_TRUE(model->score(block).ok());
  }
  return sw.elapsed_ms() / kMessages;
}

// Paper Fig. 3 + §V: "k-means can achieve five times the throughput of
// isolation forests for large message sizes (10,000 points)", and
// auto-encoders are the slowest by a wide margin.
TEST(ModelComplexityShape, RankingHoldsAtLargeMessages) {
  const double kmeans = processing_ms(ml::ModelKind::kKMeans, 10000);
  const double iforest = processing_ms(ml::ModelKind::kIsolationForest, 10000);
  const double ae = processing_ms(ml::ModelKind::kAutoEncoder, 10000);

  // Ordering: k-means < isolation forest < auto-encoder.
  EXPECT_LT(kmeans, iforest);
  EXPECT_LT(iforest, ae);
  // Rough ratio: iforest at least 2x k-means (paper ~5x in throughput).
  EXPECT_GT(iforest / kmeans, 2.0);
  // Auto-encoder clearly dominates everything.
  EXPECT_GT(ae / kmeans, 4.0);
}

TEST(ModelComplexityShape, BaselineIsEssentiallyFree) {
  const double baseline = processing_ms(ml::ModelKind::kBaseline, 10000);
  const double kmeans = processing_ms(ml::ModelKind::kKMeans, 10000);
  EXPECT_LT(baseline, kmeans);
  EXPECT_LT(baseline, 5.0);  // pass-through should be ~instant
}

TEST(ModelComplexityShape, CostGrowsWithMessageSize) {
  // Fig. 2/3 x-axis: message size 25 -> 10,000 points. Per-message cost
  // must grow for every real model.
  for (auto kind :
       {ml::ModelKind::kKMeans, ml::ModelKind::kIsolationForest}) {
    const double small = processing_ms(kind, 100);
    const double large = processing_ms(kind, 10000);
    EXPECT_GT(large, small) << ml::to_string(kind);
  }
}

// Paper §III-2: intercontinental transfer caps baseline/k-means while
// compute-bound models are unaffected by the WAN. Verify via the placement
// cost model on the paper topology.
TEST(GeoShape, WanBoundForCheapModelsComputeBoundForHeavy) {
  auto fabric = net::Fabric::make_paper_topology();

  core::PlacementFactors cheap;
  cheap.edge_site = "jetstream-us";
  cheap.cloud_site = "lrz-eu";
  cheap.message_bytes = 10000 * 32 * 8;
  cheap.cloud_compute_ms = processing_ms(ml::ModelKind::kKMeans, 10000);
  auto cheap_rec = core::recommend_placement(*fabric, cheap);
  ASSERT_TRUE(cheap_rec.ok());
  // k-means: transfer dominates compute over the WAN.
  EXPECT_GT(cheap_rec.value().cloud_centric.transfer_ms,
            cheap_rec.value().cloud_centric.compute_ms);

  core::PlacementFactors heavy = cheap;
  heavy.cloud_compute_ms = processing_ms(ml::ModelKind::kAutoEncoder, 10000);
  auto heavy_rec = core::recommend_placement(*fabric, heavy);
  ASSERT_TRUE(heavy_rec.ok());
  // auto-encoder: compute dominates the same transfer.
  EXPECT_GT(heavy_rec.value().cloud_centric.compute_ms,
            heavy_rec.value().cloud_centric.transfer_ms);
}

}  // namespace
}  // namespace pe
