#include "mqtt/mqtt_bridge.h"

#include <gtest/gtest.h>

#include "broker/consumer.h"

namespace pe::mqtt {
namespace {

class BridgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = std::make_shared<net::Fabric>();
    ASSERT_TRUE(fabric_->add_site({.id = "edge"}).ok());
    ASSERT_TRUE(fabric_->add_site({.id = "cloud"}).ok());
    net::LinkSpec spec;
    spec.from = "edge";
    spec.to = "cloud";
    spec.latency_min = spec.latency_max = std::chrono::microseconds(200);
    ASSERT_TRUE(fabric_->add_bidirectional_link(spec).ok());

    mqtt_ = std::make_shared<MqttBroker>("edge");
    kafka_ = std::make_shared<broker::Broker>("cloud");
    ASSERT_TRUE(
        kafka_->create_topic("ingest", broker::TopicConfig{.partitions = 2})
            .ok());
  }

  std::shared_ptr<net::Fabric> fabric_;
  std::shared_ptr<MqttBroker> mqtt_;
  std::shared_ptr<broker::Broker> kafka_;
};

TEST_F(BridgeTest, ForwardsMqttIntoKafkaTopic) {
  BridgeConfig config;
  config.mqtt_filter = "sensors/#";
  config.kafka_topic = "ingest";
  MqttKafkaBridge bridge(mqtt_, kafka_, fabric_, "edge", config);
  ASSERT_TRUE(bridge.start().ok());

  MqttClient device(mqtt_, fabric_, "edge", "dev-1");
  ASSERT_TRUE(device.connect().ok());
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.topic = "sensors/dev-1/temp";
    m.payload = {static_cast<std::uint8_t>(i)};
    m.qos = QoS::kAtLeastOnce;
    ASSERT_TRUE(device.publish(std::move(m)).ok());
  }

  // Wait for the bridge to drain.
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (bridge.stats().forwarded < 5 && Clock::now() < deadline) {
    Clock::sleep_exact(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(bridge.stats().forwarded, 5u);
  EXPECT_EQ(bridge.stats().forward_errors, 0u);

  broker::Consumer consumer(kafka_, fabric_, "cloud", "g");
  ASSERT_TRUE(consumer.subscribe({"ingest"}).ok());
  std::size_t received = 0;
  for (int i = 0; i < 20 && received < 5; ++i) {
    received += consumer.poll(std::chrono::milliseconds(50)).size();
  }
  EXPECT_EQ(received, 5u);
}

TEST_F(BridgeTest, KeysByMqttTopicForStablePartitioning) {
  BridgeConfig config;
  config.kafka_topic = "ingest";
  MqttKafkaBridge bridge(mqtt_, kafka_, fabric_, "edge", config);
  ASSERT_TRUE(bridge.start().ok());

  MqttClient device(mqtt_, fabric_, "edge", "dev-1");
  ASSERT_TRUE(device.connect().ok());
  for (int i = 0; i < 6; ++i) {
    Message m;
    m.topic = "d/one";
    m.payload = {1};
    ASSERT_TRUE(device.publish(std::move(m)).ok());
  }
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (bridge.stats().forwarded < 6 && Clock::now() < deadline) {
    Clock::sleep_exact(std::chrono::milliseconds(5));
  }
  // All six must land in exactly one partition (keyed by topic).
  const auto p0 = kafka_->end_offset("ingest", 0).value();
  const auto p1 = kafka_->end_offset("ingest", 1).value();
  EXPECT_TRUE((p0 == 6 && p1 == 0) || (p0 == 0 && p1 == 6));
}

TEST_F(BridgeTest, StartValidatesConfig) {
  {
    BridgeConfig config;
    config.kafka_topic = "missing";
    MqttKafkaBridge bridge(mqtt_, kafka_, fabric_, "edge", config);
    EXPECT_EQ(bridge.start().code(), StatusCode::kNotFound);
  }
  {
    BridgeConfig config;
    config.kafka_topic = "ingest";
    config.mqtt_filter = "bad/#/filter";
    MqttKafkaBridge bridge(mqtt_, kafka_, fabric_, "edge", config);
    EXPECT_EQ(bridge.start().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(BridgeTest, ShutdownIsIdempotentAndRestartable) {
  BridgeConfig config;
  config.kafka_topic = "ingest";
  MqttKafkaBridge bridge(mqtt_, kafka_, fabric_, "edge", config);
  ASSERT_TRUE(bridge.start().ok());
  EXPECT_EQ(bridge.start().code(), StatusCode::kFailedPrecondition);
  bridge.shutdown();
  bridge.shutdown();
  // A stopped bridge can be started again (fresh clean session).
  EXPECT_TRUE(bridge.start().ok());
}

TEST_F(BridgeTest, ClientChargesFabric) {
  MqttClient device(mqtt_, fabric_, "cloud", "remote-dev");
  ASSERT_TRUE(device.connect().ok());
  Message m;
  m.topic = "t";
  m.payload.assign(1000, 1);
  ASSERT_TRUE(device.publish(std::move(m)).ok());
  const auto stats = fabric_->link_stats();
  EXPECT_GT(stats.at("cloud->edge").bytes, 1000u);
}

TEST_F(BridgeTest, ClientDieFiresWill) {
  MqttClient watcher(mqtt_, fabric_, "edge", "watcher");
  ASSERT_TRUE(watcher.connect().ok());
  ASSERT_TRUE(watcher.subscribe("wills/#").ok());

  SessionOptions options;
  Message will;
  will.topic = "wills/fragile";
  will.payload = {0xFF};
  options.will = will;
  auto fragile =
      std::make_unique<MqttClient>(mqtt_, fabric_, "edge", "fragile");
  ASSERT_TRUE(fragile->connect(options).ok());
  ASSERT_TRUE(fragile->die().ok());

  auto messages = watcher.poll();
  ASSERT_TRUE(messages.ok());
  ASSERT_EQ(messages.value().size(), 1u);
  EXPECT_EQ(messages.value()[0].topic, "wills/fragile");
}

TEST_F(BridgeTest, ManualAckControlsRedelivery) {
  MqttClient consumer(mqtt_, fabric_, "edge", "manual");
  SessionOptions options;
  options.ack_timeout = std::chrono::milliseconds(20);
  ASSERT_TRUE(consumer.connect(options).ok());
  ASSERT_TRUE(consumer.subscribe("jobs").ok());

  MqttClient producer(mqtt_, fabric_, "edge", "producer");
  ASSERT_TRUE(producer.connect().ok());
  Message m;
  m.topic = "jobs";
  m.payload = {9};
  m.qos = QoS::kAtLeastOnce;
  ASSERT_TRUE(producer.publish(std::move(m)).ok());

  // Manual-ack poll: message stays pending until acked.
  auto first = consumer.poll(16, /*auto_ack=*/false);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().size(), 1u);
  const auto packet_id = first.value()[0].packet_id;

  Clock::sleep_exact(std::chrono::milliseconds(25));
  auto redelivered = consumer.poll(16, /*auto_ack=*/false);
  ASSERT_TRUE(redelivered.ok());
  ASSERT_EQ(redelivered.value().size(), 1u);
  EXPECT_TRUE(redelivered.value()[0].duplicate);

  ASSERT_TRUE(consumer.ack(packet_id).ok());
  Clock::sleep_exact(std::chrono::milliseconds(25));
  EXPECT_TRUE(consumer.poll(16, false).value().empty());
}

}  // namespace
}  // namespace pe::mqtt
