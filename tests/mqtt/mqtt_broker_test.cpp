#include "mqtt/mqtt_broker.h"

#include <gtest/gtest.h>

namespace pe::mqtt {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

Message make_message(const std::string& topic, const std::string& payload,
                     QoS qos = QoS::kAtMostOnce, bool retain = false) {
  Message m;
  m.topic = topic;
  m.payload = bytes_of(payload);
  m.qos = qos;
  m.retain = retain;
  return m;
}

// ---------- topic matching ----------

struct MatchCase {
  const char* filter;
  const char* topic;
  bool matches;
};

class TopicMatchTest : public ::testing::TestWithParam<MatchCase> {};

TEST_P(TopicMatchTest, MatchesPerMqttSpec) {
  EXPECT_EQ(topic_matches(GetParam().filter, GetParam().topic),
            GetParam().matches)
      << GetParam().filter << " vs " << GetParam().topic;
}

INSTANTIATE_TEST_SUITE_P(
    Spec, TopicMatchTest,
    ::testing::Values(
        MatchCase{"a/b/c", "a/b/c", true},
        MatchCase{"a/b/c", "a/b/d", false},
        MatchCase{"a/b/c", "a/b", false},
        MatchCase{"a/b", "a/b/c", false},
        MatchCase{"a/+/c", "a/b/c", true},
        MatchCase{"a/+/c", "a/x/c", true},
        MatchCase{"a/+/c", "a/b/d", false},
        MatchCase{"+/+/+", "a/b/c", true},
        MatchCase{"+", "a", true},
        MatchCase{"+", "a/b", false},
        MatchCase{"#", "a", true},
        MatchCase{"#", "a/b/c", true},
        MatchCase{"a/#", "a/b/c", true},
        MatchCase{"a/#", "a", true},  // '#' also matches the parent level
        MatchCase{"a/#", "b/c", false},
        MatchCase{"sensors/+/temp", "sensors/dev1/temp", true},
        MatchCase{"sensors/+/temp", "sensors/dev1/humidity", false}));

TEST(TopicValidationTest, Filters) {
  EXPECT_TRUE(valid_filter("a/b/c"));
  EXPECT_TRUE(valid_filter("a/+/c"));
  EXPECT_TRUE(valid_filter("a/#"));
  EXPECT_TRUE(valid_filter("#"));
  EXPECT_FALSE(valid_filter(""));
  EXPECT_FALSE(valid_filter("a/#/c"));   // '#' not last
  EXPECT_FALSE(valid_filter("a/b#"));    // wildcard inside a level
  EXPECT_FALSE(valid_filter("a/b+/c"));
}

TEST(TopicValidationTest, Topics) {
  EXPECT_TRUE(valid_topic("a/b/c"));
  EXPECT_FALSE(valid_topic(""));
  EXPECT_FALSE(valid_topic("a/+/c"));
  EXPECT_FALSE(valid_topic("a/#"));
}

// ---------- sessions ----------

TEST(MqttBrokerTest, ConnectDisconnectLifecycle) {
  MqttBroker broker("edge");
  auto resumed = broker.connect("c1");
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(resumed.value());
  EXPECT_TRUE(broker.connected("c1"));
  EXPECT_EQ(broker.connect("c1").status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(broker.disconnect("c1").ok());
  EXPECT_FALSE(broker.connected("c1"));
  EXPECT_EQ(broker.disconnect("c1").code(), StatusCode::kNotFound);
}

TEST(MqttBrokerTest, EmptyClientIdRejected) {
  MqttBroker broker("edge");
  EXPECT_EQ(broker.connect("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MqttBrokerTest, PersistentSessionResumes) {
  MqttBroker broker("edge");
  SessionOptions persistent;
  persistent.clean_session = false;
  ASSERT_TRUE(broker.connect("c1", persistent).ok());
  ASSERT_TRUE(broker.subscribe("c1", "a/#").ok());
  ASSERT_TRUE(broker.disconnect("c1").ok());

  auto resumed = broker.connect("c1", persistent);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed.value());
  EXPECT_EQ(broker.subscriptions("c1").size(), 1u);
}

TEST(MqttBrokerTest, CleanSessionDiscardsState) {
  MqttBroker broker("edge");
  ASSERT_TRUE(broker.connect("c1").ok());  // clean by default
  ASSERT_TRUE(broker.subscribe("c1", "a/#").ok());
  ASSERT_TRUE(broker.disconnect("c1").ok());
  auto resumed = broker.connect("c1");
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(resumed.value());
  EXPECT_TRUE(broker.subscriptions("c1").empty());
}

// ---------- pub/sub ----------

TEST(MqttBrokerTest, PublishReachesMatchingSubscribers) {
  MqttBroker broker("edge");
  ASSERT_TRUE(broker.connect("sub1").ok());
  ASSERT_TRUE(broker.connect("sub2").ok());
  ASSERT_TRUE(broker.connect("other").ok());
  ASSERT_TRUE(broker.subscribe("sub1", "sensors/#").ok());
  ASSERT_TRUE(broker.subscribe("sub2", "sensors/+/temp").ok());
  ASSERT_TRUE(broker.subscribe("other", "logs/#").ok());

  ASSERT_TRUE(broker.publish(make_message("sensors/d1/temp", "21.5")).ok());

  auto m1 = broker.poll("sub1");
  auto m2 = broker.poll("sub2");
  auto m3 = broker.poll("other");
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  ASSERT_TRUE(m3.ok());
  ASSERT_EQ(m1.value().size(), 1u);
  ASSERT_EQ(m2.value().size(), 1u);
  EXPECT_TRUE(m3.value().empty());
  EXPECT_EQ(m1.value()[0].payload, bytes_of("21.5"));
}

TEST(MqttBrokerTest, OverlappingSubscriptionsDeliverOnce) {
  MqttBroker broker("edge");
  ASSERT_TRUE(broker.connect("c").ok());
  ASSERT_TRUE(broker.subscribe("c", "a/#").ok());
  ASSERT_TRUE(broker.subscribe("c", "a/+").ok());
  ASSERT_TRUE(broker.publish(make_message("a/b", "x")).ok());
  auto messages = broker.poll("c");
  ASSERT_TRUE(messages.ok());
  EXPECT_EQ(messages.value().size(), 1u);
}

TEST(MqttBrokerTest, PublishWithWildcardTopicRejected) {
  MqttBroker broker("edge");
  EXPECT_EQ(broker.publish(make_message("a/+", "x")).code(),
            StatusCode::kInvalidArgument);
}

TEST(MqttBrokerTest, SubscribeValidation) {
  MqttBroker broker("edge");
  ASSERT_TRUE(broker.connect("c").ok());
  EXPECT_EQ(broker.subscribe("c", "a/#/b").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(broker.subscribe("ghost", "a/#").code(),
            StatusCode::kFailedPrecondition);
}

TEST(MqttBrokerTest, Unsubscribe) {
  MqttBroker broker("edge");
  ASSERT_TRUE(broker.connect("c").ok());
  ASSERT_TRUE(broker.subscribe("c", "a/#").ok());
  ASSERT_TRUE(broker.unsubscribe("c", "a/#").ok());
  EXPECT_EQ(broker.unsubscribe("c", "a/#").code(), StatusCode::kNotFound);
  ASSERT_TRUE(broker.publish(make_message("a/b", "x")).ok());
  EXPECT_TRUE(broker.poll("c").value().empty());
}

// ---------- QoS 1 ----------

TEST(MqttBrokerTest, QoS1RequiresAckAndRedelivers) {
  MqttBroker broker("edge");
  SessionOptions options;
  options.ack_timeout = std::chrono::milliseconds(20);
  ASSERT_TRUE(broker.connect("c", options).ok());
  ASSERT_TRUE(broker.subscribe("c", "a", QoS::kAtLeastOnce).ok());
  ASSERT_TRUE(
      broker.publish(make_message("a", "x", QoS::kAtLeastOnce)).ok());

  auto first = broker.poll("c");
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().size(), 1u);
  EXPECT_FALSE(first.value()[0].duplicate);
  const auto packet_id = first.value()[0].packet_id;

  // Not acked: after the timeout the message comes again with DUP.
  Clock::sleep_exact(std::chrono::milliseconds(25));
  auto second = broker.poll("c");
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().size(), 1u);
  EXPECT_TRUE(second.value()[0].duplicate);
  EXPECT_EQ(second.value()[0].packet_id, packet_id);

  // Acked: no more redelivery.
  ASSERT_TRUE(broker.ack("c", packet_id).ok());
  Clock::sleep_exact(std::chrono::milliseconds(25));
  EXPECT_TRUE(broker.poll("c").value().empty());
  EXPECT_GE(broker.counters().redelivered, 1u);
}

TEST(MqttBrokerTest, QoS0IsNotRedelivered) {
  MqttBroker broker("edge");
  SessionOptions options;
  options.ack_timeout = std::chrono::milliseconds(10);
  ASSERT_TRUE(broker.connect("c", options).ok());
  ASSERT_TRUE(broker.subscribe("c", "a", QoS::kAtMostOnce).ok());
  ASSERT_TRUE(
      broker.publish(make_message("a", "x", QoS::kAtLeastOnce)).ok());
  ASSERT_EQ(broker.poll("c").value().size(), 1u);
  Clock::sleep_exact(std::chrono::milliseconds(15));
  EXPECT_TRUE(broker.poll("c").value().empty());
}

TEST(MqttBrokerTest, EffectiveQosIsMinOfPublishAndSubscription) {
  MqttBroker broker("edge");
  ASSERT_TRUE(broker.connect("c").ok());
  ASSERT_TRUE(broker.subscribe("c", "a", QoS::kAtMostOnce).ok());
  ASSERT_TRUE(
      broker.publish(make_message("a", "x", QoS::kAtLeastOnce)).ok());
  auto messages = broker.poll("c");
  ASSERT_EQ(messages.value().size(), 1u);
  EXPECT_EQ(messages.value()[0].qos, QoS::kAtMostOnce);
}

TEST(MqttBrokerTest, AckUnknownPacketFails) {
  MqttBroker broker("edge");
  ASSERT_TRUE(broker.connect("c").ok());
  EXPECT_EQ(broker.ack("c", 999).code(), StatusCode::kNotFound);
  EXPECT_EQ(broker.ack("ghost", 1).code(), StatusCode::kNotFound);
}

// ---------- retained messages ----------

TEST(MqttBrokerTest, RetainedMessageReplaysOnSubscribe) {
  MqttBroker broker("edge");
  ASSERT_TRUE(broker.publish(
      make_message("status/d1", "online", QoS::kAtMostOnce, true)).ok());
  EXPECT_EQ(broker.retained_count(), 1u);

  ASSERT_TRUE(broker.connect("late").ok());
  ASSERT_TRUE(broker.subscribe("late", "status/#").ok());
  auto messages = broker.poll("late");
  ASSERT_EQ(messages.value().size(), 1u);
  EXPECT_TRUE(messages.value()[0].retained_replay);
  EXPECT_EQ(messages.value()[0].payload, bytes_of("online"));
}

TEST(MqttBrokerTest, RetainedMessageOverwrittenAndCleared) {
  MqttBroker broker("edge");
  ASSERT_TRUE(broker.publish(
      make_message("s", "v1", QoS::kAtMostOnce, true)).ok());
  ASSERT_TRUE(broker.publish(
      make_message("s", "v2", QoS::kAtMostOnce, true)).ok());
  ASSERT_TRUE(broker.connect("c").ok());
  ASSERT_TRUE(broker.subscribe("c", "s").ok());
  auto messages = broker.poll("c");
  ASSERT_EQ(messages.value().size(), 1u);
  EXPECT_EQ(messages.value()[0].payload, bytes_of("v2"));

  // Empty retained payload clears the slot.
  Message clear;
  clear.topic = "s";
  clear.retain = true;
  ASSERT_TRUE(broker.publish(clear).ok());
  EXPECT_EQ(broker.retained_count(), 0u);
}

// ---------- offline queueing & wills ----------

TEST(MqttBrokerTest, OfflinePersistentSessionQueuesMessages) {
  MqttBroker broker("edge");
  SessionOptions persistent;
  persistent.clean_session = false;
  ASSERT_TRUE(broker.connect("c", persistent).ok());
  ASSERT_TRUE(broker.subscribe("c", "a").ok());
  ASSERT_TRUE(broker.disconnect("c").ok());

  ASSERT_TRUE(broker.publish(make_message("a", "while-away")).ok());
  EXPECT_EQ(broker.poll("c").status().code(),
            StatusCode::kFailedPrecondition);  // offline

  ASSERT_TRUE(broker.connect("c", persistent).ok());
  auto messages = broker.poll("c");
  ASSERT_EQ(messages.value().size(), 1u);
  EXPECT_EQ(messages.value()[0].payload, bytes_of("while-away"));
}

TEST(MqttBrokerTest, OfflineQueueLimitDrops) {
  MqttBroker broker("edge");
  SessionOptions persistent;
  persistent.clean_session = false;
  persistent.offline_queue_limit = 2;
  ASSERT_TRUE(broker.connect("c", persistent).ok());
  ASSERT_TRUE(broker.subscribe("c", "a").ok());
  ASSERT_TRUE(broker.disconnect("c").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(broker.publish(make_message("a", std::to_string(i))).ok());
  }
  ASSERT_TRUE(broker.connect("c", persistent).ok());
  EXPECT_EQ(broker.poll("c").value().size(), 2u);
  EXPECT_EQ(broker.counters().dropped_offline, 3u);
}

TEST(MqttBrokerTest, WillFiresOnUncleanDropOnly) {
  MqttBroker broker("edge");
  ASSERT_TRUE(broker.connect("watcher").ok());
  ASSERT_TRUE(broker.subscribe("watcher", "wills/#").ok());

  SessionOptions with_will;
  with_will.will = make_message("wills/c1", "gone");
  ASSERT_TRUE(broker.connect("c1", with_will).ok());
  ASSERT_TRUE(broker.disconnect("c1").ok());  // clean: no will
  EXPECT_TRUE(broker.poll("watcher").value().empty());

  ASSERT_TRUE(broker.connect("c2", SessionOptions{
                                       .clean_session = true,
                                       .will = make_message("wills/c2",
                                                            "died")})
                  .ok());
  ASSERT_TRUE(broker.drop("c2").ok());  // unclean: will fires
  auto messages = broker.poll("watcher");
  ASSERT_EQ(messages.value().size(), 1u);
  EXPECT_EQ(messages.value()[0].topic, "wills/c2");
  EXPECT_EQ(broker.counters().wills_fired, 1u);
}

TEST(MqttBrokerTest, CountersTrackTraffic) {
  MqttBroker broker("edge");
  ASSERT_TRUE(broker.connect("c").ok());
  ASSERT_TRUE(broker.subscribe("c", "a").ok());
  ASSERT_TRUE(broker.publish(make_message("a", "x")).ok());
  ASSERT_TRUE(broker.publish(make_message("unmatched", "y")).ok());
  const auto counters = broker.counters();
  EXPECT_EQ(counters.published, 2u);
  EXPECT_EQ(counters.delivered, 1u);
}

}  // namespace
}  // namespace pe::mqtt
