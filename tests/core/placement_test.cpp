#include "core/placement.h"

#include <gtest/gtest.h>

namespace pe::core {
namespace {

class PlacementTest : public ::testing::Test {
 protected:
  void SetUp() override { fabric_ = net::Fabric::make_paper_topology(); }

  PlacementFactors base_factors() {
    PlacementFactors f;
    f.edge_site = "edge-us";
    f.cloud_site = "lrz-eu";
    f.message_bytes = 2'560'000;  // 10,000 points x 32 x 8 B
    f.cloud_compute_ms = 20.0;    // k-means-ish
    return f;
  }

  std::shared_ptr<net::Fabric> fabric_;
};

TEST_F(PlacementTest, LargeMessagesCheapComputePreferNonCloud) {
  // 2.56 MB over ~80 Mbit/s is ~256 ms of transfer; with 20 ms compute the
  // WAN dominates, so shipping raw data loses.
  auto rec = recommend_placement(*fabric_, base_factors());
  ASSERT_TRUE(rec.ok());
  EXPECT_NE(rec.value().best, DeploymentMode::kCloudCentric);
  EXPECT_GT(rec.value().cloud_centric.transfer_ms, 200.0);
}

TEST_F(PlacementTest, HeavyComputePrefersCloudOverEdge) {
  auto f = base_factors();
  f.cloud_compute_ms = 2000.0;  // auto-encoder-ish
  f.edge_slowdown = 6.0;
  auto rec = recommend_placement(*fabric_, f);
  ASSERT_TRUE(rec.ok());
  // Edge-centric pays 12 s compute; even the WAN is cheaper than that.
  EXPECT_NE(rec.value().best, DeploymentMode::kEdgeCentric);
  EXPECT_GT(rec.value().edge_centric.compute_ms,
            rec.value().cloud_centric.compute_ms);
}

TEST_F(PlacementTest, TinyMessagesPreferCloudCentric) {
  auto f = base_factors();
  f.message_bytes = 6'400;  // 25 points
  f.cloud_compute_ms = 5.0;
  f.reduction_ms = 5.0;  // reduction overhead not worth it at this size
  auto rec = recommend_placement(*fabric_, f);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().best, DeploymentMode::kCloudCentric);
}

TEST_F(PlacementTest, HybridWinsWhenReductionIsCheapAndEffective) {
  auto f = base_factors();
  f.cloud_compute_ms = 50.0;
  f.reduction_ratio = 0.1;
  f.reduction_ms = 2.0;
  f.edge_slowdown = 50.0;  // rule out full edge processing
  auto rec = recommend_placement(*fabric_, f);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().best, DeploymentMode::kHybrid);
  EXPECT_LT(rec.value().hybrid.transfer_ms,
            rec.value().cloud_centric.transfer_ms);
}

TEST_F(PlacementTest, UnknownSitesFail) {
  auto f = base_factors();
  f.edge_site = "nowhere";
  EXPECT_FALSE(recommend_placement(*fabric_, f).ok());
}

TEST_F(PlacementTest, EstimatesAreInternallyConsistent) {
  auto rec = recommend_placement(*fabric_, base_factors());
  ASSERT_TRUE(rec.ok());
  const auto& r = rec.value();
  // Edge ships ~1% of the bytes: transfer must be much smaller.
  EXPECT_LT(r.edge_centric.transfer_ms, r.cloud_centric.transfer_ms);
  // Hybrid ships reduction_ratio of the bytes.
  EXPECT_LT(r.hybrid.transfer_ms, r.cloud_centric.transfer_ms);
  // total = transfer + compute.
  EXPECT_DOUBLE_EQ(r.cloud_centric.total_ms(),
                   r.cloud_centric.transfer_ms + r.cloud_centric.compute_ms);
}

TEST_F(PlacementTest, ToStringListsAllModes) {
  auto rec = recommend_placement(*fabric_, base_factors());
  ASSERT_TRUE(rec.ok());
  const std::string s = rec.value().to_string();
  EXPECT_NE(s.find("cloud-centric"), std::string::npos);
  EXPECT_NE(s.find("edge-centric"), std::string::npos);
  EXPECT_NE(s.find("hybrid"), std::string::npos);
}

TEST(DeploymentModeTest, Names) {
  EXPECT_STREQ(to_string(DeploymentMode::kCloudCentric), "cloud-centric");
  EXPECT_STREQ(to_string(DeploymentMode::kEdgeCentric), "edge-centric");
  EXPECT_STREQ(to_string(DeploymentMode::kHybrid), "hybrid");
}

}  // namespace
}  // namespace pe::core
