#include "core/scaling.h"

#include <gtest/gtest.h>

#include "core/functions.h"

namespace pe::core {
namespace {

class AutoScalerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = net::Fabric::make_single_site_topology();
    res::PilotManagerOptions options;
    options.startup_delay_factor = 0.0005;
    manager_ = std::make_unique<res::PilotManager>(fabric_, options);
    edge_ = manager_
                ->submit(res::Flavors::make("lrz-eu", res::Backend::kCloudVm,
                                            2, 8.0))
                .value();
    cloud_ = manager_->submit(res::Flavors::lrz_large()).value();
    broker_ = manager_
                  ->submit(res::Flavors::make(
                      "lrz-eu", res::Backend::kBrokerService, 2, 8.0))
                  .value();
    ASSERT_TRUE(manager_->wait_all_active().ok());
  }

  std::shared_ptr<net::Fabric> fabric_;
  std::unique_ptr<res::PilotManager> manager_;
  res::PilotPtr edge_, cloud_, broker_;
};

TEST_F(AutoScalerTest, ScalesOutUnderBacklog) {
  PipelineConfig config;
  config.edge_devices = 2;
  config.messages_per_device = 40;
  config.rows_per_message = 1000;
  config.processing_tasks = 1;  // under-provisioned on purpose
  config.run_timeout = std::chrono::minutes(5);
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_)
      .set_pilot_cloud_processing(cloud_)
      .set_pilot_cloud_broker(broker_)
      .set_produce_function(functions::make_generator_produce({}, 1000))
      // Heavy-ish processing so a backlog actually builds.
      .set_process_cloud_function(
          functions::make_model_process(ml::ModelKind::kIsolationForest));
  ASSERT_TRUE(pipeline.start().ok());

  AutoScalerConfig scaler_config;
  scaler_config.check_interval = std::chrono::milliseconds(10);
  scaler_config.backlog_high_watermark = 4;
  scaler_config.consecutive_breaches = 2;
  scaler_config.max_added_tasks = 3;
  BacklogAutoScaler scaler(scaler_config);
  ASSERT_TRUE(scaler.start(pipeline).ok());

  ASSERT_TRUE(pipeline.wait().ok());
  scaler.stop();
  pipeline.stop();

  EXPECT_EQ(pipeline.messages_processed(), 80u);
  EXPECT_GE(scaler.tasks_added(), 1u);
  EXPECT_LE(scaler.tasks_added(), 3u);
  const auto events = scaler.events();
  ASSERT_FALSE(events.empty());
  EXPECT_GE(events.front().backlog, 4u);
  EXPECT_GT(events.front().at_ns, 0u);
}

TEST_F(AutoScalerTest, NoScalingWithoutBacklog) {
  PipelineConfig config;
  config.edge_devices = 1;
  config.messages_per_device = 10;
  config.rows_per_message = 50;
  config.produce_interval = std::chrono::milliseconds(5);
  config.run_timeout = std::chrono::minutes(5);
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_)
      .set_pilot_cloud_processing(cloud_)
      .set_pilot_cloud_broker(broker_)
      .set_produce_function(functions::make_generator_produce({}, 50))
      .set_process_cloud_function(functions::make_passthrough_process());
  ASSERT_TRUE(pipeline.start().ok());

  AutoScalerConfig scaler_config;
  scaler_config.check_interval = std::chrono::milliseconds(5);
  scaler_config.backlog_high_watermark = 50;  // never reached
  BacklogAutoScaler scaler(scaler_config);
  ASSERT_TRUE(scaler.start(pipeline).ok());
  ASSERT_TRUE(pipeline.wait().ok());
  scaler.stop();
  pipeline.stop();
  EXPECT_EQ(scaler.tasks_added(), 0u);
  EXPECT_TRUE(scaler.events().empty());
}

TEST_F(AutoScalerTest, RequiresRunningPipeline) {
  PipelineConfig config;
  EdgeToCloudPipeline pipeline(config);
  BacklogAutoScaler scaler;
  EXPECT_EQ(scaler.start(pipeline).code(), StatusCode::kFailedPrecondition);
}

TEST_F(AutoScalerTest, DoubleStartRejected) {
  PipelineConfig config;
  config.edge_devices = 1;
  config.messages_per_device = 5;
  config.rows_per_message = 50;
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_)
      .set_pilot_cloud_processing(cloud_)
      .set_pilot_cloud_broker(broker_)
      .set_produce_function(functions::make_generator_produce({}, 50))
      .set_process_cloud_function(functions::make_passthrough_process());
  ASSERT_TRUE(pipeline.start().ok());
  BacklogAutoScaler scaler;
  ASSERT_TRUE(scaler.start(pipeline).ok());
  EXPECT_EQ(scaler.start(pipeline).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(pipeline.wait().ok());
  scaler.stop();
  pipeline.stop();
}

}  // namespace
}  // namespace pe::core
