// Pipeline runs with MQTT ingestion (the paper's second brokering plugin).
#include <gtest/gtest.h>

#include "core/functions.h"
#include "core/pipeline.h"

namespace pe::core {
namespace {

class MqttPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = net::Fabric::make_single_site_topology();
    ASSERT_TRUE(
        fabric_->add_site({.id = "edge", .kind = net::SiteKind::kEdge}).ok());
    net::LinkSpec metro;
    metro.from = "edge";
    metro.to = "lrz-eu";
    metro.latency_min = metro.latency_max = std::chrono::microseconds(500);
    metro.bandwidth_min_bps = metro.bandwidth_max_bps = 1e9;
    ASSERT_TRUE(fabric_->add_bidirectional_link(metro).ok());

    res::PilotManagerOptions options;
    options.startup_delay_factor = 0.0005;
    manager_ = std::make_unique<res::PilotManager>(fabric_, options);
    edge_ = manager_->submit(res::Flavors::raspi("edge", 4)).value();
    cloud_ = manager_->submit(res::Flavors::lrz_large()).value();
    broker_ = manager_
                  ->submit(res::Flavors::make(
                      "lrz-eu", res::Backend::kBrokerService, 4, 16.0))
                  .value();
    ASSERT_TRUE(manager_->wait_all_active().ok());
  }

  std::shared_ptr<net::Fabric> fabric_;
  std::unique_ptr<res::PilotManager> manager_;
  res::PilotPtr edge_, cloud_, broker_;
};

TEST_F(MqttPipelineTest, EndToEndThroughMqttBridge) {
  PipelineConfig config;
  config.ingest = IngestPath::kMqttBridge;
  config.edge_devices = 2;
  config.messages_per_device = 6;
  config.rows_per_message = 100;
  config.topic = "mqtt-e2e";
  config.run_timeout = std::chrono::minutes(2);
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_)
      .set_pilot_cloud_processing(cloud_)
      .set_pilot_cloud_broker(broker_)
      .set_produce_function(functions::make_generator_produce({}, 100))
      .set_process_cloud_function(
          functions::make_model_process(ml::ModelKind::kKMeans));

  auto report = pipeline.run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().status.ok()) << report.value().status.to_string();
  EXPECT_EQ(report.value().messages_produced, 12u);
  EXPECT_EQ(report.value().messages_processed, 12u);
  EXPECT_EQ(report.value().processing_errors, 0u);
  // Every message flowed edge->MQTT->bridge->Kafka->processing.
  EXPECT_EQ(report.value().broker.records_in, 12u);
  EXPECT_EQ(report.value().run.messages, 12u);
  EXPECT_GT(report.value().run.end_to_end_ms.mean, 0.0);
}

TEST_F(MqttPipelineTest, MqttAndDirectIngestDeliverTheSameData) {
  for (auto ingest : {IngestPath::kKafkaDirect, IngestPath::kMqttBridge}) {
    PipelineConfig config;
    config.ingest = ingest;
    config.edge_devices = 1;
    config.messages_per_device = 4;
    config.rows_per_message = 50;
    config.topic = ingest == IngestPath::kKafkaDirect ? "cmp-direct"
                                                      : "cmp-mqtt";
    config.run_timeout = std::chrono::minutes(2);
    EdgeToCloudPipeline pipeline(config);
    std::atomic<std::uint64_t> rows_seen{0};
    pipeline.set_fabric(fabric_)
        .set_pilot_edge(edge_)
        .set_pilot_cloud_processing(cloud_)
        .set_pilot_cloud_broker(broker_)
        .set_produce_function(functions::make_generator_produce({}, 50))
        .set_process_cloud_function(shared_process_fn(
            [&rows_seen](FunctionContext&, data::DataBlock block)
                -> Result<ProcessResult> {
              rows_seen.fetch_add(block.rows);
              ProcessResult result;
              result.block = std::move(block);
              return result;
            }));
    auto report = pipeline.run();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(rows_seen.load(), 200u) << "ingest path "
                                      << static_cast<int>(ingest);
  }
}

TEST_F(MqttPipelineTest, StopMidRunShutsDownBridgeCleanly) {
  PipelineConfig config;
  config.ingest = IngestPath::kMqttBridge;
  config.edge_devices = 1;
  config.messages_per_device = 10000;
  config.rows_per_message = 50;
  config.produce_interval = std::chrono::milliseconds(1);
  config.topic = "mqtt-stop";
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_)
      .set_pilot_cloud_processing(cloud_)
      .set_pilot_cloud_broker(broker_)
      .set_produce_function(functions::make_generator_produce({}, 50))
      .set_process_cloud_function(functions::make_passthrough_process());
  ASSERT_TRUE(pipeline.start().ok());
  while (pipeline.messages_processed() < 3) {
    Clock::sleep_exact(std::chrono::milliseconds(2));
  }
  pipeline.stop();  // must not hang on the bridge thread
  EXPECT_FALSE(pipeline.running());
}

}  // namespace
}  // namespace pe::core
