// Results topic, windowed training, and the seasonal produce function.
#include <gtest/gtest.h>

#include "broker/consumer.h"
#include "core/functions.h"
#include "core/pipeline.h"
#include "core/results.h"
#include "resource/pilot_manager.h"

namespace pe::core {
namespace {

TEST(ResultRecordTest, EncodeDecodeRoundTrip) {
  ResultRecord record;
  record.message_id = 42;
  record.rows = 100;
  record.outliers = 7;
  record.score_mean = 1.25;
  record.score_max = 9.5;
  record.processed_ns = 123456789;
  auto decoded = ResultRecord::decode(record.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().message_id, 42u);
  EXPECT_EQ(decoded.value().rows, 100u);
  EXPECT_EQ(decoded.value().outliers, 7u);
  EXPECT_DOUBLE_EQ(decoded.value().score_mean, 1.25);
  EXPECT_DOUBLE_EQ(decoded.value().score_max, 9.5);
  EXPECT_EQ(decoded.value().processed_ns, 123456789u);
}

TEST(ResultRecordTest, TruncatedDecodeFails) {
  ResultRecord record;
  Bytes bytes = record.encode();
  bytes.resize(10);
  EXPECT_FALSE(ResultRecord::decode(bytes).ok());
}

class ResultsPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = net::Fabric::make_single_site_topology();
    res::PilotManagerOptions options;
    options.startup_delay_factor = 0.0005;
    manager_ = std::make_unique<res::PilotManager>(fabric_, options);
    edge_ = manager_
                ->submit(res::Flavors::make("lrz-eu", res::Backend::kCloudVm,
                                            2, 8.0))
                .value();
    cloud_ = manager_->submit(res::Flavors::lrz_large()).value();
    broker_ = manager_
                  ->submit(res::Flavors::make(
                      "lrz-eu", res::Backend::kBrokerService, 2, 8.0))
                  .value();
    ASSERT_TRUE(manager_->wait_all_active().ok());
  }
  std::shared_ptr<net::Fabric> fabric_;
  std::unique_ptr<res::PilotManager> manager_;
  res::PilotPtr edge_, cloud_, broker_;
};

TEST_F(ResultsPipelineTest, EmitsOneResultPerMessage) {
  PipelineConfig config;
  config.edge_devices = 1;
  config.messages_per_device = 6;
  config.rows_per_message = 200;
  config.emit_results = true;
  config.topic = "with-results";
  config.run_timeout = std::chrono::minutes(2);
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_)
      .set_pilot_cloud_processing(cloud_)
      .set_pilot_cloud_broker(broker_)
      .set_produce_function(functions::make_generator_produce({}, 200))
      .set_process_cloud_function(
          functions::make_model_process(ml::ModelKind::kKMeans));
  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().status.ok());

  // Downstream application consumes the result stream.
  broker::Consumer consumer(broker_->broker(), fabric_, "lrz-eu",
                            "downstream");
  ASSERT_TRUE(consumer.subscribe({pipeline.results_topic()}).ok());
  std::vector<ResultRecord> results;
  for (int i = 0; i < 20 && results.size() < 6; ++i) {
    for (auto& record : consumer.poll(std::chrono::milliseconds(50))) {
      auto decoded = ResultRecord::decode(record.record.value);
      ASSERT_TRUE(decoded.ok());
      results.push_back(decoded.value());
    }
  }
  ASSERT_EQ(results.size(), 6u);
  std::uint64_t total_outliers = 0;
  for (const auto& r : results) {
    EXPECT_EQ(r.rows, 200u);
    EXPECT_GT(r.processed_ns, 0u);
    EXPECT_GE(r.score_max, r.score_mean);
    total_outliers += r.outliers;
  }
  EXPECT_EQ(total_outliers, report.value().outliers_detected);
}

TEST_F(ResultsPipelineTest, NoResultsTopicByDefault) {
  PipelineConfig config;
  config.edge_devices = 1;
  config.messages_per_device = 2;
  config.rows_per_message = 50;
  config.topic = "no-results";
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_)
      .set_pilot_cloud_processing(cloud_)
      .set_pilot_cloud_broker(broker_)
      .set_produce_function(functions::make_generator_produce({}, 50))
      .set_process_cloud_function(functions::make_passthrough_process());
  ASSERT_TRUE(pipeline.run().ok());
  EXPECT_FALSE(broker_->broker()->has_topic("no-results-results"));
}

TEST_F(ResultsPipelineTest, SeasonalProduceFlowsThroughPipeline) {
  PipelineConfig config;
  config.edge_devices = 2;
  config.messages_per_device = 4;
  config.rows_per_message = 300;
  config.topic = "seasonal";
  config.run_timeout = std::chrono::minutes(2);
  EdgeToCloudPipeline pipeline(config);
  data::SeasonalConfig seasonal;
  seasonal.anomaly_fraction = 0.05;
  pipeline.set_fabric(fabric_)
      .set_pilot_edge(edge_)
      .set_pilot_cloud_processing(cloud_)
      .set_pilot_cloud_broker(broker_)
      .set_produce_function(functions::make_seasonal_produce(seasonal, 300))
      .set_process_cloud_function(
          functions::make_model_process(ml::ModelKind::kKMeans));
  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().messages_processed, 8u);
  EXPECT_GT(report.value().outliers_detected, 0u);
}

TEST(WindowedTrainingTest, WindowAccumulatesAcrossBlocks) {
  functions::ModelProcessOptions options;
  options.window_rows = 500;
  auto process =
      functions::make_model_process(ml::ModelKind::kKMeans, {}, options)();
  FunctionContext ctx;
  ctx.bind("p", "t", "s", nullptr, nullptr);

  data::GeneratorConfig gen_config;
  gen_config.clusters = 5;
  data::Generator gen(gen_config);
  // Feed several small blocks; with a 500-row window the model trains on
  // up to 500 recent rows each time and must stay functional throughout.
  for (int i = 0; i < 6; ++i) {
    auto result = process(ctx, gen.generate(200));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().scores.size(), 200u);
  }
}

TEST(WindowedTrainingTest, HandlesVariableBlockSizesAndTinyFirstBlocks) {
  functions::ModelProcessOptions options;
  options.window_rows = 256;
  ConfigMap model_config;
  model_config.set_int("kmeans.clusters", 10);
  auto process = functions::make_model_process(ml::ModelKind::kKMeans,
                                               model_config, options)();
  FunctionContext ctx;
  ctx.bind("p", "t", "s", nullptr, nullptr);
  data::GeneratorConfig gen_config;
  gen_config.clusters = 10;
  data::Generator gen(gen_config);
  // First block smaller than the cluster count: only the window makes a
  // sane bootstrap possible on later calls; sizes then vary widely.
  for (std::size_t rows : {std::size_t{5}, std::size_t{3}, std::size_t{40},
                           std::size_t{500}, std::size_t{1}, std::size_t{90}}) {
    auto result = process(ctx, gen.generate(rows));
    ASSERT_TRUE(result.ok()) << rows;
    EXPECT_EQ(result.value().scores.size(), rows);
    for (double s : result.value().scores) {
      EXPECT_TRUE(std::isfinite(s));
    }
  }
}

}  // namespace
}  // namespace pe::core
