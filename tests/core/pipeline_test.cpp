// End-to-end pipeline tests on a single-site fabric (fast paths).
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "core/functions.h"

namespace pe::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = net::Fabric::make_single_site_topology();
    ASSERT_TRUE(
        fabric_->add_site({.id = "edge", .kind = net::SiteKind::kEdge}).ok());
    net::LinkSpec metro;
    metro.from = "edge";
    metro.to = "lrz-eu";
    metro.latency_min = metro.latency_max = std::chrono::microseconds(500);
    metro.bandwidth_min_bps = metro.bandwidth_max_bps = 1e9;
    ASSERT_TRUE(fabric_->add_bidirectional_link(metro).ok());

    res::PilotManagerOptions options;
    options.startup_delay_factor = 0.0005;
    manager_ = std::make_unique<res::PilotManager>(fabric_, options);

    edge_ = manager_->submit(res::Flavors::raspi("edge", 4)).value();
    cloud_ = manager_->submit(res::Flavors::lrz_large()).value();
    broker_ = manager_
                  ->submit(res::Flavors::make(
                      "lrz-eu", res::Backend::kBrokerService, 4, 16.0))
                  .value();
    ASSERT_TRUE(manager_->wait_all_active().ok());
  }

  PipelineConfig small_config(std::size_t devices = 2,
                              std::size_t messages = 4,
                              std::size_t rows = 50) {
    PipelineConfig config;
    config.edge_devices = devices;
    config.messages_per_device = messages;
    config.rows_per_message = rows;
    config.run_timeout = std::chrono::seconds(60);
    return config;
  }

  void wire(EdgeToCloudPipeline& pipeline) {
    pipeline.set_fabric(fabric_)
        .set_pilot_edge(edge_)
        .set_pilot_cloud_processing(cloud_)
        .set_pilot_cloud_broker(broker_)
        .set_produce_function(functions::make_generator_produce({}, 50))
        .set_process_cloud_function(functions::make_passthrough_process());
  }

  std::shared_ptr<net::Fabric> fabric_;
  std::unique_ptr<res::PilotManager> manager_;
  res::PilotPtr edge_, cloud_, broker_;
};

TEST_F(PipelineTest, BaselineRunProcessesEveryMessage) {
  EdgeToCloudPipeline pipeline(small_config(2, 5));
  wire(pipeline);
  auto report = pipeline.run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().status.ok()) << report.value().status.to_string();
  EXPECT_EQ(report.value().messages_produced, 10u);
  EXPECT_EQ(report.value().messages_processed, 10u);
  EXPECT_EQ(report.value().processing_errors, 0u);
  EXPECT_EQ(report.value().run.messages, 10u);
  EXPECT_GT(report.value().run.messages_per_second, 0.0);
  EXPECT_GT(report.value().run.end_to_end_ms.mean, 0.0);
  EXPECT_EQ(report.value().broker.records_in, 10u);
  // At-least-once: rebalance redeliveries may re-fetch some records (the
  // pipeline deduplicates them by message id).
  EXPECT_GE(report.value().broker.records_out, 10u);
}

TEST_F(PipelineTest, ValidationCatchesMissingPieces) {
  {
    EdgeToCloudPipeline p(small_config());
    EXPECT_EQ(p.run().status().code(), StatusCode::kInvalidArgument);
  }
  {
    EdgeToCloudPipeline p(small_config());
    p.set_fabric(fabric_).set_pilot_edge(edge_).set_pilot_cloud_processing(
        cloud_);
    // no broker pilot
    EXPECT_EQ(p.run().status().code(), StatusCode::kInvalidArgument);
  }
  {
    EdgeToCloudPipeline p(small_config());
    p.set_fabric(fabric_)
        .set_pilot_edge(edge_)
        .set_pilot_cloud_processing(cloud_)
        .set_pilot_cloud_broker(cloud_);  // not a broker pilot
    p.set_produce_function(functions::make_generator_produce({}, 10));
    p.set_process_cloud_function(functions::make_passthrough_process());
    EXPECT_EQ(p.run().status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(PipelineTest, HybridModeRequiresEdgeFunction) {
  auto config = small_config();
  config.mode = DeploymentMode::kHybrid;
  EdgeToCloudPipeline pipeline(config);
  wire(pipeline);
  EXPECT_EQ(pipeline.run().status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PipelineTest, HybridModeShrinksTransferredBytes) {
  auto config = small_config(1, 4, 100);
  config.mode = DeploymentMode::kHybrid;
  EdgeToCloudPipeline pipeline(config);
  wire(pipeline);
  pipeline.set_process_edge_function(functions::make_aggregate_edge(4));
  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().messages_processed, 4u);
  // 100-row blocks aggregated to 25 rows before the broker.
  const auto bytes_per_message =
      report.value().broker.bytes_in / report.value().broker.records_in;
  EXPECT_LT(bytes_per_message, 100 * 32 * 8 / 2);
}

TEST_F(PipelineTest, KMeansProcessingFlagsOutliers) {
  auto config = small_config(1, 6, 200);
  EdgeToCloudPipeline pipeline(config);
  wire(pipeline);
  pipeline.set_process_cloud_function(
      functions::make_model_process(ml::ModelKind::kKMeans));
  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().messages_processed, 6u);
  EXPECT_GT(report.value().outliers_detected, 0u);
  EXPECT_GT(report.value().run.processing_ms.mean, 0.0);
}

TEST_F(PipelineTest, PartitionsDefaultToOnePerDevice) {
  EdgeToCloudPipeline pipeline(small_config(3, 2));
  wire(pipeline);
  ASSERT_TRUE(pipeline.start().ok());
  EXPECT_EQ(broker_->broker()->partition_count("pe-data"), 3u);
  ASSERT_TRUE(pipeline.wait().ok());
  pipeline.stop();
}

TEST_F(PipelineTest, ExplicitPartitionCountHonored) {
  auto config = small_config(4, 2);
  config.partitions = 2;
  config.topic = "pe-two-part";
  EdgeToCloudPipeline pipeline(config);
  wire(pipeline);
  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(broker_->broker()->partition_count("pe-two-part"), 2u);
  EXPECT_EQ(report.value().messages_processed, 8u);
}

TEST_F(PipelineTest, RuntimeFunctionReplacementTakesEffect) {
  auto config = small_config(1, 30, 20);
  config.produce_interval = std::chrono::milliseconds(5);
  EdgeToCloudPipeline pipeline(config);
  wire(pipeline);

  std::atomic<std::uint64_t> new_fn_invocations{0};
  ASSERT_TRUE(pipeline.start().ok());
  // Let some messages flow with the original function, then hot-swap.
  while (pipeline.messages_processed() < 5) {
    Clock::sleep_exact(std::chrono::milliseconds(2));
  }
  pipeline.replace_process_cloud_function([&new_fn_invocations]() {
    return [&new_fn_invocations](FunctionContext&, data::DataBlock block)
               -> Result<ProcessResult> {
      new_fn_invocations.fetch_add(1);
      ProcessResult result;
      result.block = std::move(block);
      return result;
    };
  });
  ASSERT_TRUE(pipeline.wait().ok());
  pipeline.stop();
  EXPECT_EQ(pipeline.messages_processed(), 30u);
  EXPECT_GT(new_fn_invocations.load(), 0u);
}

TEST_F(PipelineTest, ScaleProcessingAddsTasksAtRuntime) {
  auto config = small_config(2, 20, 20);
  config.processing_tasks = 1;
  config.produce_interval = std::chrono::milliseconds(2);
  EdgeToCloudPipeline pipeline(config);
  wire(pipeline);
  ASSERT_TRUE(pipeline.start().ok());
  ASSERT_TRUE(pipeline.scale_processing(2).ok());
  ASSERT_TRUE(pipeline.wait().ok());
  pipeline.stop();
  EXPECT_EQ(pipeline.messages_processed(), 40u);
}

TEST_F(PipelineTest, ScaleProcessingWhileStoppedFails) {
  EdgeToCloudPipeline pipeline(small_config());
  wire(pipeline);
  EXPECT_EQ(pipeline.scale_processing(1).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PipelineTest, StopMidRunTerminatesCleanly) {
  auto config = small_config(1, 10000, 50);  // would run a long time
  config.produce_interval = std::chrono::milliseconds(1);
  EdgeToCloudPipeline pipeline(config);
  wire(pipeline);
  ASSERT_TRUE(pipeline.start().ok());
  while (pipeline.messages_processed() < 3) {
    Clock::sleep_exact(std::chrono::milliseconds(2));
  }
  pipeline.stop();
  EXPECT_FALSE(pipeline.running());
  const auto report = pipeline.report("stopped");
  EXPECT_GT(report.messages_processed, 0u);
  EXPECT_LT(report.messages_produced, 10000u);
}

TEST_F(PipelineTest, DoubleStartRejected) {
  EdgeToCloudPipeline pipeline(small_config(1, 2));
  wire(pipeline);
  ASSERT_TRUE(pipeline.start().ok());
  EXPECT_EQ(pipeline.start().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(pipeline.wait().ok());
  pipeline.stop();
}

TEST_F(PipelineTest, ParameterServerDisabledWhenConfigured) {
  auto config = small_config(1, 2);
  config.enable_parameter_server = false;
  EdgeToCloudPipeline pipeline(config);
  wire(pipeline);
  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(pipeline.parameter_server(), nullptr);
}

TEST_F(PipelineTest, ModelUpdatesFlowThroughParameterService) {
  auto config = small_config(1, 8, 100);
  EdgeToCloudPipeline pipeline(config);
  wire(pipeline);
  functions::ModelProcessOptions options;
  options.publish_interval = 2;
  pipeline.set_process_cloud_function(
      functions::make_model_process(ml::ModelKind::kKMeans, {}, options));
  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().parameter_server.sets, 0u);
  ASSERT_NE(pipeline.parameter_server(), nullptr);
  EXPECT_GE(pipeline.parameter_server()->size(), 1u);
}

TEST_F(PipelineTest, FunctionContextParamsReachHandlers) {
  auto config = small_config(1, 2);
  config.function_context.set("application", "unit-test");
  EdgeToCloudPipeline pipeline(config);
  wire(pipeline);
  std::atomic<bool> saw_param{false};
  pipeline.set_process_cloud_function(shared_process_fn(
      [&saw_param](FunctionContext& ctx,
                   data::DataBlock block) -> Result<ProcessResult> {
        if (ctx.params().get_or("application", "") == "unit-test") {
          saw_param.store(true);
        }
        ProcessResult result;
        result.block = std::move(block);
        return result;
      }));
  ASSERT_TRUE(pipeline.run().ok());
  EXPECT_TRUE(saw_param.load());
}

TEST_F(PipelineTest, ProduceFunctionCancellationEndsRunEarly) {
  auto config = small_config(1, 100);
  EdgeToCloudPipeline pipeline(config);
  wire(pipeline);
  pipeline.set_produce_function(
      [](std::size_t) -> ProduceFn {
        auto count = std::make_shared<int>(0);
        return [count](FunctionContext&) -> Result<data::DataBlock> {
          if (++*count > 5) return Status::Cancelled("done early");
          data::Generator gen;
          return gen.generate(10);
        };
      });
  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().messages_produced, 5u);
  EXPECT_EQ(report.value().messages_processed, 5u);
}

TEST_F(PipelineTest, ProcessingErrorsAreCountedNotFatal) {
  auto config = small_config(1, 4);
  EdgeToCloudPipeline pipeline(config);
  wire(pipeline);
  pipeline.set_process_cloud_function(shared_process_fn(
      [](FunctionContext&, data::DataBlock) -> Result<ProcessResult> {
        return Status::Internal("synthetic failure");
      }));
  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().processing_errors, 4u);
  EXPECT_EQ(report.value().messages_processed, 4u);  // handled, not stuck
}

}  // namespace
}  // namespace pe::core
