#include "core/functions.h"

#include <gtest/gtest.h>

#include "ml/kmeans.h"
#include "ml/outlier.h"

namespace pe::core::functions {
namespace {

FunctionContext make_context() {
  FunctionContext ctx;
  ctx.bind("pipe-0", "task-0", "cloud", nullptr, nullptr);
  return ctx;
}

TEST(GeneratorProduceTest, EmitsConfiguredBlocks) {
  data::GeneratorConfig config;
  config.seed = 5;
  auto factory = make_generator_produce(config, 100);
  auto produce = factory(0);
  auto ctx = make_context();
  auto block = produce(ctx);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value().rows, 100u);
  EXPECT_EQ(block.value().cols, 32u);
}

TEST(GeneratorProduceTest, DevicesGetIndependentStreams) {
  auto factory = make_generator_produce({}, 50);
  auto p0 = factory(0);
  auto p1 = factory(1);
  auto ctx = make_context();
  EXPECT_NE(p0(ctx).value().values, p1(ctx).value().values);
}

TEST(GeneratorProduceTest, SameDeviceAdvancesStream) {
  auto factory = make_generator_produce({}, 50);
  auto produce = factory(0);
  auto ctx = make_context();
  const auto first = produce(ctx).value().values;
  const auto second = produce(ctx).value().values;
  EXPECT_NE(first, second);
}

TEST(PassthroughTest, ForwardsBlockUnchanged) {
  auto process = make_passthrough_process()();
  auto ctx = make_context();
  data::Generator gen;
  auto block = gen.generate(20);
  const auto original = block.values;
  auto result = process(ctx, std::move(block));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().block.values, original);
  EXPECT_EQ(result.value().outliers, 0u);
  EXPECT_TRUE(result.value().scores.empty());
}

TEST(AggregateEdgeTest, ReducesRowsByWindow) {
  auto process = make_aggregate_edge(4)();
  auto ctx = make_context();
  data::Generator gen;
  auto block = gen.generate(100);
  auto result = process(ctx, std::move(block));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().block.rows, 25u);
  EXPECT_EQ(result.value().block.cols, 32u);
}

TEST(AggregateEdgeTest, AveragesValuesWithinWindow) {
  auto process = make_aggregate_edge(2)();
  auto ctx = make_context();
  data::DataBlock block;
  block.rows = 4;
  block.cols = 1;
  block.values = {1.0, 3.0, 10.0, 20.0};
  auto result = process(ctx, std::move(block));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().block.rows, 2u);
  EXPECT_DOUBLE_EQ(result.value().block.values[0], 2.0);
  EXPECT_DOUBLE_EQ(result.value().block.values[1], 15.0);
}

TEST(AggregateEdgeTest, RemainderWindowAveragesPartial) {
  auto process = make_aggregate_edge(4)();
  auto ctx = make_context();
  data::DataBlock block;
  block.rows = 5;
  block.cols = 1;
  block.values = {4.0, 4.0, 4.0, 4.0, 9.0};
  auto result = process(ctx, std::move(block));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().block.rows, 2u);
  EXPECT_DOUBLE_EQ(result.value().block.values[1], 9.0);
}

TEST(AggregateEdgeTest, LabelsMaxPooled) {
  auto process = make_aggregate_edge(2)();
  auto ctx = make_context();
  data::DataBlock block;
  block.rows = 4;
  block.cols = 1;
  block.values = {0, 0, 0, 0};
  block.labels = {0, 1, 0, 0};
  auto result = process(ctx, std::move(block));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().block.labels, (std::vector<std::uint8_t>{1, 0}));
}

TEST(AggregateEdgeTest, WindowOneIsPassthrough) {
  auto process = make_aggregate_edge(1)();
  auto ctx = make_context();
  data::Generator gen;
  auto block = gen.generate(10);
  const auto original = block.values;
  auto result = process(ctx, std::move(block));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().block.values, original);
}

TEST(AggregateEdgeTest, PreservesMessageIdentity) {
  auto process = make_aggregate_edge(4)();
  auto ctx = make_context();
  data::Generator gen;
  auto block = gen.generate(16);
  block.message_id = 55;
  block.producer_id = "device-9";
  block.produced_ns = 777;
  auto result = process(ctx, std::move(block));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().block.message_id, 55u);
  EXPECT_EQ(result.value().block.producer_id, "device-9");
  EXPECT_EQ(result.value().block.produced_ns, 777u);
}

TEST(ModelProcessTest, ScoresAndFlagsOutliers) {
  ModelProcessOptions options;
  options.contamination = 0.05;
  auto process = make_model_process(ml::ModelKind::kKMeans, {}, options)();
  auto ctx = make_context();
  data::GeneratorConfig config;
  config.clusters = 5;
  data::Generator gen(config);
  auto block = gen.generate(1000);
  auto result = process(ctx, std::move(block));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().scores.size(), 1000u);
  // ~5% contamination threshold flags about 50 rows.
  EXPECT_GT(result.value().outliers, 20u);
  EXPECT_LT(result.value().outliers, 100u);
}

TEST(ModelProcessTest, EachTaskGetsIndependentModel) {
  auto factory = make_model_process(ml::ModelKind::kKMeans);
  auto p1 = factory();
  auto p2 = factory();
  auto ctx = make_context();
  data::Generator gen;
  // Train p1 only; p2 must still behave as unfitted-first-call.
  ASSERT_TRUE(p1(ctx, gen.generate(200)).ok());
  ASSERT_TRUE(p2(ctx, gen.generate(200)).ok());
}

TEST(ModelProcessTest, PublishesModelToParameterService) {
  auto fabric = std::make_shared<net::Fabric>();
  ASSERT_TRUE(fabric->add_site({.id = "cloud"}).ok());
  auto server = std::make_shared<ps::ParameterServer>("cloud");
  auto client = std::make_shared<ps::ParameterClient>(server, fabric, "cloud");

  FunctionContext ctx;
  ctx.bind("pipe-0", "proc-0", "cloud", client, nullptr);

  ModelProcessOptions options;
  options.publish_interval = 2;
  auto process = make_model_process(ml::ModelKind::kKMeans, {}, options)();
  data::Generator gen;
  for (int i = 0; i < 4; ++i) {
    ctx.set_invocation(i);
    ASSERT_TRUE(process(ctx, gen.generate(100)).ok());
  }
  // Published at invocations 1 and 3.
  auto entry = server->get("model/proc-0");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry.value().version, 2u);

  // The published bytes load into a fresh model.
  ml::KMeans restored;
  EXPECT_TRUE(restored.load(entry.value().value).ok());
  EXPECT_TRUE(restored.fitted());
}

TEST(ModelProcessTest, PullKeyAdoptsSharedModel) {
  auto fabric = std::make_shared<net::Fabric>();
  ASSERT_TRUE(fabric->add_site({.id = "cloud"}).ok());
  auto server = std::make_shared<ps::ParameterServer>("cloud");
  auto client = std::make_shared<ps::ParameterClient>(server, fabric, "cloud");

  // Seed the shared slot with a model trained elsewhere.
  ml::KMeans seed;
  data::Generator gen;
  ASSERT_TRUE(seed.fit(gen.generate(500)).ok());
  server->set("shared-model", seed.save());

  FunctionContext ctx;
  ctx.bind("pipe-0", "proc-1", "cloud", client, nullptr);
  ModelProcessOptions options;
  options.pull_key = "shared-model";
  options.publish_interval = 1;
  auto process = make_model_process(ml::ModelKind::kKMeans, {}, options)();
  ASSERT_TRUE(process(ctx, gen.generate(100)).ok());
  // Publish went back to the shared key.
  EXPECT_GE(server->get("shared-model").value().version, 2u);
}

TEST(ModelProcessTest, InvalidBlockRejected) {
  auto process = make_model_process(ml::ModelKind::kKMeans)();
  auto ctx = make_context();
  data::DataBlock bad;
  bad.rows = 3;
  bad.cols = 2;  // no values
  EXPECT_FALSE(process(ctx, std::move(bad)).ok());
}

}  // namespace
}  // namespace pe::core::functions
