#include "core/multistage.h"

#include <gtest/gtest.h>

#include "core/functions.h"
#include "resource/pilot_manager.h"

namespace pe::core {
namespace {

class MultiStageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three-tier continuum: edge -> fog -> cloud, each its own site.
    fabric_ = std::make_shared<net::Fabric>();
    for (const char* site : {"edge", "fog", "cloud"}) {
      ASSERT_TRUE(fabric_->add_site({.id = site}).ok());
    }
    auto link = [&](const char* a, const char* b, int ms) {
      net::LinkSpec spec;
      spec.from = a;
      spec.to = b;
      spec.latency_min = spec.latency_max = std::chrono::milliseconds(ms);
      spec.bandwidth_min_bps = spec.bandwidth_max_bps = 1e9;
      ASSERT_TRUE(fabric_->add_bidirectional_link(spec).ok());
    };
    link("edge", "fog", 1);
    link("fog", "cloud", 2);
    link("edge", "cloud", 3);

    res::PilotManagerOptions options;
    options.startup_delay_factor = 0.0005;
    manager_ = std::make_unique<res::PilotManager>(fabric_, options);
    edge_ = manager_->submit(res::Flavors::raspi("edge", 4)).value();
    fog_ = manager_
               ->submit(res::Flavors::make("fog", res::Backend::kCloudVm, 4,
                                           16.0))
               .value();
    cloud_ = manager_->submit(res::Flavors::lrz_large("cloud")).value();
    broker_ = manager_
                  ->submit(res::Flavors::make(
                      "fog", res::Backend::kBrokerService, 4, 16.0))
                  .value();
    ASSERT_TRUE(manager_->wait_all_active().ok());
  }

  MultiStageConfig small_config() {
    MultiStageConfig config;
    config.edge_devices = 2;
    config.messages_per_device = 5;
    config.rows_per_message = 80;
    config.run_timeout = std::chrono::minutes(2);
    return config;
  }

  std::shared_ptr<net::Fabric> fabric_;
  std::unique_ptr<res::PilotManager> manager_;
  res::PilotPtr edge_, fog_, cloud_, broker_;
};

TEST_F(MultiStageTest, ThreeTierChainCompletesEveryMessage) {
  MultiStagePipeline pipeline(small_config());
  pipeline.set_fabric(fabric_)
      .set_pilot_broker(broker_)
      .set_pilot_edge(edge_)
      .set_produce_function(functions::make_generator_produce({}, 80))
      .add_stage({.name = "fog-aggregate",
                  .pilot = fog_,
                  .process = functions::make_aggregate_edge(4)})
      .add_stage({.name = "cloud-detect",
                  .pilot = cloud_,
                  .process =
                      functions::make_model_process(ml::ModelKind::kKMeans)});
  EXPECT_EQ(pipeline.stage_count(), 2u);

  auto report = pipeline.run();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().status.ok()) << report.value().status.to_string();
  EXPECT_EQ(report.value().messages_produced, 10u);
  EXPECT_EQ(report.value().messages_completed, 10u);
  ASSERT_EQ(report.value().stages.size(), 2u);
  EXPECT_EQ(report.value().stages[0].messages_in, 10u);
  EXPECT_EQ(report.value().stages[0].messages_out, 10u);
  EXPECT_EQ(report.value().stages[1].messages_in, 10u);
  EXPECT_EQ(report.value().stages[1].errors, 0u);
  EXPECT_GT(report.value().end_to_end_ms.mean, 0.0);
  EXPECT_EQ(report.value().end_to_end_ms.count, 10u);
}

TEST_F(MultiStageTest, FogStageShrinksBytesBeforeCloudHop) {
  MultiStagePipeline pipeline(small_config());
  pipeline.set_fabric(fabric_)
      .set_pilot_broker(broker_)
      .set_pilot_edge(edge_)
      .set_produce_function(functions::make_generator_produce({}, 80))
      .add_stage({.name = "fog-aggregate",
                  .pilot = fog_,
                  .process = functions::make_aggregate_edge(8)})
      .add_stage({.name = "cloud-sink",
                  .pilot = cloud_,
                  .process = functions::make_passthrough_process()});
  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().status.ok());
  // The fog->cloud hop (stage-1 topic fetch by cloud consumers) carries
  // ~1/8 the bytes of the edge ingress.
  const auto links = fabric_->link_stats();
  const auto ingress = links.at("edge->fog").bytes;    // producers -> broker
  const auto egress = links.at("fog->cloud").bytes;    // broker -> cloud stage
  EXPECT_LT(egress, ingress / 3);
}

TEST_F(MultiStageTest, SingleStageDegeneratesToTwoLayerPipeline) {
  MultiStagePipeline pipeline(small_config());
  pipeline.set_fabric(fabric_)
      .set_pilot_broker(broker_)
      .set_pilot_edge(edge_)
      .set_produce_function(functions::make_generator_produce({}, 80))
      .add_stage({.name = "cloud-only",
                  .pilot = cloud_,
                  .process =
                      functions::make_model_process(ml::ModelKind::kKMeans)});
  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().messages_completed, 10u);
}

TEST_F(MultiStageTest, FourStageDeepChain) {
  auto config = small_config();
  config.messages_per_device = 3;
  MultiStagePipeline pipeline(config);
  pipeline.set_fabric(fabric_)
      .set_pilot_broker(broker_)
      .set_pilot_edge(edge_)
      .set_produce_function(functions::make_generator_produce({}, 80));
  // Four stages across the three sites.
  pipeline
      .add_stage({.name = "s0",
                  .pilot = fog_,
                  .process = functions::make_aggregate_edge(2)})
      .add_stage({.name = "s1",
                  .pilot = fog_,
                  .process = functions::make_passthrough_process(),
                  .tasks = 1})
      .add_stage({.name = "s2",
                  .pilot = cloud_,
                  .process = functions::make_aggregate_edge(2)})
      .add_stage({.name = "s3",
                  .pilot = cloud_,
                  .process =
                      functions::make_model_process(ml::ModelKind::kKMeans),
                  .tasks = 1});
  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().status.ok()) << report.value().status.to_string();
  EXPECT_EQ(report.value().messages_completed, 6u);
  ASSERT_EQ(report.value().stages.size(), 4u);
  for (const auto& stage : report.value().stages) {
    EXPECT_EQ(stage.messages_in, 6u) << stage.name;
  }
}

TEST_F(MultiStageTest, ValidationCatchesMissingPieces) {
  {
    MultiStagePipeline pipeline(small_config());
    EXPECT_EQ(pipeline.run().status().code(), StatusCode::kInvalidArgument);
  }
  {
    MultiStagePipeline pipeline(small_config());
    pipeline.set_fabric(fabric_)
        .set_pilot_broker(broker_)
        .set_pilot_edge(edge_)
        .set_produce_function(functions::make_generator_produce({}, 10));
    // no stages
    EXPECT_EQ(pipeline.run().status().code(), StatusCode::kInvalidArgument);
  }
  {
    MultiStagePipeline pipeline(small_config());
    pipeline.set_fabric(fabric_)
        .set_pilot_broker(broker_)
        .set_pilot_edge(edge_)
        .set_produce_function(functions::make_generator_produce({}, 10))
        .add_stage({.name = "no-pilot",
                    .pilot = nullptr,
                    .process = functions::make_passthrough_process()});
    EXPECT_EQ(pipeline.run().status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(MultiStageTest, RunIsSingleShot) {
  MultiStagePipeline pipeline(small_config());
  pipeline.set_fabric(fabric_)
      .set_pilot_broker(broker_)
      .set_pilot_edge(edge_)
      .set_produce_function(functions::make_generator_produce({}, 80))
      .add_stage({.name = "sink",
                  .pilot = cloud_,
                  .process = functions::make_passthrough_process()});
  ASSERT_TRUE(pipeline.run().ok());
  EXPECT_EQ(pipeline.run().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(MultiStageTest, ReportToStringListsStages) {
  MultiStagePipeline pipeline(small_config());
  pipeline.set_fabric(fabric_)
      .set_pilot_broker(broker_)
      .set_pilot_edge(edge_)
      .set_produce_function(functions::make_generator_produce({}, 80))
      .add_stage({.name = "alpha",
                  .pilot = fog_,
                  .process = functions::make_passthrough_process()})
      .add_stage({.name = "omega",
                  .pilot = cloud_,
                  .process = functions::make_passthrough_process()});
  auto report = pipeline.run();
  ASSERT_TRUE(report.ok());
  const std::string s = report.value().to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("omega"), std::string::npos);
  EXPECT_NE(s.find("completed chain"), std::string::npos);
}

}  // namespace
}  // namespace pe::core
