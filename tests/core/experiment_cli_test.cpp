#include "core/experiment_cli.h"

#include <gtest/gtest.h>

namespace pe::core::cli {
namespace {

Result<Options> parse_args(std::vector<const char*> args) {
  args.insert(args.begin(), "pilot_edge_run");
  return parse(static_cast<int>(args.size()), args.data());
}

TEST(CliParseTest, DefaultsWithNoFlags) {
  auto options = parse_args({});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options.value().devices, 2u);
  EXPECT_EQ(options.value().model, "kmeans");
  EXPECT_EQ(options.value().topology, "single");
  EXPECT_FALSE(options.value().help);
}

TEST(CliParseTest, AllFlagsParse) {
  auto options = parse_args(
      {"--devices", "4", "--messages", "64", "--points", "10000",
       "--partitions", "8", "--processing-tasks", "3", "--model", "ae",
       "--mode", "hybrid", "--aggregate", "16", "--topology", "geo",
       "--ingest", "mqtt", "--time-scale", "25", "--produce-interval-ms",
       "5", "--json", "/tmp/x.json", "--csv", "/tmp/x.csv", "--verbose"});
  ASSERT_TRUE(options.ok());
  const Options& o = options.value();
  EXPECT_EQ(o.devices, 4u);
  EXPECT_EQ(o.messages_per_device, 64u);
  EXPECT_EQ(o.points, 10000u);
  EXPECT_EQ(o.partitions, 8u);
  EXPECT_EQ(o.processing_tasks, 3u);
  EXPECT_EQ(o.model, "ae");
  EXPECT_EQ(o.mode, "hybrid");
  EXPECT_EQ(o.aggregate_window, 16u);
  EXPECT_EQ(o.topology, "geo");
  EXPECT_EQ(o.ingest, "mqtt");
  EXPECT_DOUBLE_EQ(o.time_scale, 25.0);
  EXPECT_EQ(o.produce_interval_ms, 5u);
  EXPECT_EQ(o.json_path, "/tmp/x.json");
  EXPECT_EQ(o.csv_path, "/tmp/x.csv");
  EXPECT_TRUE(o.verbose);
}

TEST(CliParseTest, HelpShortCircuits) {
  auto options = parse_args({"--help"});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(options.value().help);
  EXPECT_TRUE(parse_args({"-h"}).value().help);
}

TEST(CliParseTest, RejectsUnknownFlag) {
  EXPECT_EQ(parse_args({"--bogus", "1"}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CliParseTest, RejectsMissingValue) {
  EXPECT_EQ(parse_args({"--devices"}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CliParseTest, RejectsBadNumbers) {
  EXPECT_FALSE(parse_args({"--devices", "zero"}).ok());
  EXPECT_FALSE(parse_args({"--time-scale", "-2"}).ok());
  EXPECT_FALSE(parse_args({"--time-scale", "abc"}).ok());
}

TEST(CliParseTest, RejectsBadEnums) {
  EXPECT_FALSE(parse_args({"--mode", "everywhere"}).ok());
  EXPECT_FALSE(parse_args({"--topology", "mars"}).ok());
  EXPECT_FALSE(parse_args({"--ingest", "carrier-pigeon"}).ok());
  EXPECT_FALSE(parse_args({"--model", "svm"}).ok());
}

TEST(CliParseTest, RejectsZeroDevices) {
  EXPECT_FALSE(parse_args({"--devices", "0"}).ok());
}

TEST(CliParseTest, ModelAliasesAccepted) {
  for (const char* model : {"baseline", "kmeans", "iforest", "ae"}) {
    EXPECT_TRUE(parse_args({"--model", model}).ok()) << model;
  }
}

TEST(CliUsageTest, MentionsEveryFlag) {
  const std::string u = usage();
  for (const char* flag :
       {"--devices", "--messages", "--points", "--partitions", "--model",
        "--mode", "--aggregate", "--topology", "--ingest", "--time-scale",
        "--json", "--csv", "--help"}) {
    EXPECT_NE(u.find(flag), std::string::npos) << flag;
  }
}

}  // namespace
}  // namespace pe::core::cli
