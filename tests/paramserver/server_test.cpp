#include "paramserver/server.h"

#include <gtest/gtest.h>

#include <thread>

#include "network/fabric.h"
#include "paramserver/client.h"

namespace pe::ps {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(ParameterServerTest, SetGetRoundTrip) {
  ParameterServer server("cloud");
  EXPECT_EQ(server.set("k", bytes_of("v1")), 1u);
  auto entry = server.get("k");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry.value().value, bytes_of("v1"));
  EXPECT_EQ(entry.value().version, 1u);
  EXPECT_GT(entry.value().updated_ns, 0u);
}

TEST(ParameterServerTest, SetBumpsVersion) {
  ParameterServer server("cloud");
  EXPECT_EQ(server.set("k", bytes_of("a")), 1u);
  EXPECT_EQ(server.set("k", bytes_of("b")), 2u);
  EXPECT_EQ(server.get("k").value().value, bytes_of("b"));
}

TEST(ParameterServerTest, GetMissingIsNotFound) {
  ParameterServer server("cloud");
  EXPECT_EQ(server.get("nope").status().code(), StatusCode::kNotFound);
}

TEST(ParameterServerTest, CompareAndSetSucceedsOnMatchingVersion) {
  ParameterServer server("cloud");
  server.set("k", bytes_of("a"));
  auto v = server.compare_and_set("k", 1, bytes_of("b"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 2u);
}

TEST(ParameterServerTest, CompareAndSetConflicts) {
  ParameterServer server("cloud");
  server.set("k", bytes_of("a"));
  server.set("k", bytes_of("b"));
  EXPECT_EQ(server.compare_and_set("k", 1, bytes_of("c")).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.stats().cas_conflicts, 1u);
}

TEST(ParameterServerTest, CompareAndSetZeroMeansCreate) {
  ParameterServer server("cloud");
  ASSERT_TRUE(server.compare_and_set("new", 0, bytes_of("x")).ok());
  EXPECT_EQ(server.compare_and_set("new", 0, bytes_of("y")).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ParameterServerTest, WatchWakesOnUpdate) {
  ParameterServer server("cloud");
  server.set("model", bytes_of("v1"));
  std::thread updater([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.set("model", bytes_of("v2"));
  });
  auto fresh = server.watch("model", 1, std::chrono::seconds(5));
  updater.join();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().version, 2u);
  EXPECT_EQ(fresh.value().value, bytes_of("v2"));
}

TEST(ParameterServerTest, WatchReturnsImmediatelyIfAlreadyNewer) {
  ParameterServer server("cloud");
  server.set("k", bytes_of("v1"));
  server.set("k", bytes_of("v2"));
  Stopwatch sw;
  auto fresh = server.watch("k", 1, std::chrono::seconds(5));
  ASSERT_TRUE(fresh.ok());
  EXPECT_LT(sw.elapsed_ms(), 100.0);
}

TEST(ParameterServerTest, WatchTimesOut) {
  ParameterServer server("cloud");
  server.set("k", bytes_of("v1"));
  EXPECT_EQ(
      server.watch("k", 1, std::chrono::milliseconds(20)).status().code(),
      StatusCode::kTimeout);
}

TEST(ParameterServerTest, IncrCounters) {
  ParameterServer server("cloud");
  EXPECT_EQ(server.incr("n"), 1);
  EXPECT_EQ(server.incr("n", 4), 5);
  EXPECT_EQ(server.incr("n", -2), 3);
  EXPECT_EQ(server.incr("other"), 1);
}

TEST(ParameterServerTest, EraseAndKeys) {
  ParameterServer server("cloud");
  server.set("a", {});
  server.set("b", {});
  EXPECT_EQ(server.size(), 2u);
  EXPECT_TRUE(server.contains("a"));
  ASSERT_TRUE(server.erase("a").ok());
  EXPECT_FALSE(server.contains("a"));
  EXPECT_EQ(server.erase("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(server.keys(), std::vector<std::string>{"b"});
}

TEST(ParameterServerTest, StatsTrackBytes) {
  ParameterServer server("cloud");
  server.set("k", Bytes(100, 1));
  ASSERT_TRUE(server.get("k").ok());
  const auto stats = server.stats();
  EXPECT_EQ(stats.sets, 1u);
  EXPECT_EQ(stats.gets, 1u);
  EXPECT_EQ(stats.bytes_in, 100u);
  EXPECT_EQ(stats.bytes_out, 100u);
}

TEST(ParameterServerTest, ConcurrentIncrementsAreAtomic) {
  ParameterServer server("cloud");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&server] {
      for (int i = 0; i < 500; ++i) server.incr("n");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(server.incr("n", 0), 2000);
}

TEST(ParameterClientTest, ChargesFabricBothWays) {
  auto fabric = std::make_shared<net::Fabric>();
  ASSERT_TRUE(fabric->add_site({.id = "cloud"}).ok());
  ASSERT_TRUE(fabric->add_site({.id = "edge"}).ok());
  net::LinkSpec spec;
  spec.from = "edge";
  spec.to = "cloud";
  spec.latency_min = spec.latency_max = std::chrono::microseconds(100);
  ASSERT_TRUE(fabric->add_bidirectional_link(spec).ok());

  auto server = std::make_shared<ParameterServer>("cloud");
  ParameterClient client(server, fabric, "edge");
  ASSERT_TRUE(client.set("w", Bytes(1000, 2)).ok());
  auto got = client.get("w");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().value.size(), 1000u);

  const auto stats = fabric->link_stats();
  EXPECT_GE(stats.at("edge->cloud").bytes, 1000u);
  EXPECT_GE(stats.at("cloud->edge").bytes, 1000u);
}

TEST(ParameterClientTest, LocalClientUsesLoopback) {
  auto fabric = std::make_shared<net::Fabric>();
  ASSERT_TRUE(fabric->add_site({.id = "cloud"}).ok());
  auto server = std::make_shared<ParameterServer>("cloud");
  ParameterClient client(server, fabric, "cloud");
  ASSERT_TRUE(client.set("k", bytes_of("v")).ok());
  EXPECT_TRUE(client.get("k").ok());
  EXPECT_GT(fabric->link_stats().at("cloud-loop").transfers, 0u);
}

TEST(ParameterClientTest, CasThroughClient) {
  auto fabric = std::make_shared<net::Fabric>();
  ASSERT_TRUE(fabric->add_site({.id = "cloud"}).ok());
  auto server = std::make_shared<ParameterServer>("cloud");
  ParameterClient client(server, fabric, "cloud");
  ASSERT_TRUE(client.compare_and_set("k", 0, bytes_of("a")).ok());
  EXPECT_FALSE(client.compare_and_set("k", 0, bytes_of("b")).ok());
}

}  // namespace
}  // namespace pe::ps
