// Snapshot/restore durability tests for the parameter server.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "paramserver/server.h"
#include "storage/log_dir.h"

namespace pe::ps {
namespace {

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("pe_ps_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

TEST_F(SnapshotTest, RoundTripRestoresEntriesVersionsAndCounters) {
  ParameterServer server("cloud");
  server.set("model/weights", Bytes{1, 2, 3});
  server.set("model/weights", Bytes{4, 5, 6});  // version 2
  server.set("model/bias", Bytes{9});
  server.incr("epoch", 3);
  server.incr("epoch", 2);
  ASSERT_TRUE(server.snapshot_to(dir_).ok());

  ParameterServer restored("edge");
  ASSERT_TRUE(restored.restore_from(dir_).ok());
  auto weights = restored.get("model/weights");
  ASSERT_TRUE(weights.ok());
  EXPECT_EQ(weights.value().value, (Bytes{4, 5, 6}));
  EXPECT_EQ(weights.value().version, 2u);
  auto bias = restored.get("model/bias");
  ASSERT_TRUE(bias.ok());
  EXPECT_EQ(bias.value().value, Bytes{9});
  // Counters come back too: the next incr continues the sequence.
  EXPECT_EQ(restored.incr("epoch", 0), 5);
  EXPECT_EQ(restored.size(), 2u);
}

TEST_F(SnapshotTest, RestoreReplacesPreexistingState) {
  ParameterServer a("cloud");
  a.set("keep", Bytes{1});
  ASSERT_TRUE(a.snapshot_to(dir_).ok());

  ParameterServer b("edge");
  b.set("stale", Bytes{0xff});
  ASSERT_TRUE(b.restore_from(dir_).ok());
  EXPECT_TRUE(b.contains("keep"));
  EXPECT_FALSE(b.contains("stale"));
}

TEST_F(SnapshotTest, RestoreFromEmptyLogIsNotFound) {
  ParameterServer server("cloud");
  EXPECT_FALSE(server.restore_from(dir_).ok());
}

TEST_F(SnapshotTest, IncompleteSnapshotIsIgnored) {
  ParameterServer server("cloud");
  server.set("k", Bytes{1});
  ASSERT_TRUE(server.snapshot_to(dir_).ok());

  // A later snapshot that crashed before its commit marker: simulate by
  // appending marker-less records directly to the log.
  {
    auto log = storage::LogDir::open(dir_, {});
    ASSERT_TRUE(log.ok());
    broker::Record r;
    r.key = "e:torn-key";
    r.value = Bytes(24, 0);
    ASSERT_TRUE(log.value()->append(r, 1).ok());
  }

  ParameterServer restored("edge");
  ASSERT_TRUE(restored.restore_from(dir_).ok());
  // The incomplete snapshot contributed nothing; the last complete one won.
  EXPECT_TRUE(restored.contains("k"));
  EXPECT_FALSE(restored.contains("torn-key"));
}

TEST_F(SnapshotTest, LatestCompleteSnapshotWins) {
  ParameterServer server("cloud");
  server.set("k", Bytes{1});
  ASSERT_TRUE(server.snapshot_to(dir_).ok());
  server.set("k", Bytes{2});
  server.set("extra", Bytes{7});
  ASSERT_TRUE(server.snapshot_to(dir_).ok());

  ParameterServer restored("edge");
  ASSERT_TRUE(restored.restore_from(dir_).ok());
  auto k = restored.get("k");
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k.value().value, Bytes{2});
  EXPECT_TRUE(restored.contains("extra"));
}

TEST_F(SnapshotTest, SnapshotSurvivesPowerLossAfterSync) {
  ParameterServer server("cloud");
  server.set("model", Bytes(256, 0x5a));
  {
    auto log = storage::LogDir::open(dir_, {});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(server.snapshot(*log.value()).ok());
    // snapshot() fsyncs before returning: a power cut right after loses
    // nothing.
    log.value()->simulate_power_loss(0.0);
  }
  ParameterServer restored("edge");
  ASSERT_TRUE(restored.restore_from(dir_).ok());
  auto model = restored.get("model");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().value.size(), 256u);
}

TEST_F(SnapshotTest, RepeatedSnapshotsDropOldSegments) {
  ParameterServer server("cloud");
  server.set("model", Bytes(4096, 1));
  storage::StorageConfig config;
  config.segment_max_bytes = 8192;  // each snapshot fills a segment
  auto log = storage::LogDir::open(dir_, config);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 6; ++i) {
    server.set("model", Bytes(4096, static_cast<std::uint8_t>(i)));
    ASSERT_TRUE(server.snapshot(*log.value()).ok());
  }
  // Whole-segment retention keeps the log bounded instead of growing by
  // one full snapshot per call.
  EXPECT_LE(log.value()->segment_count(), 3u);
  ParameterServer restored("edge");
  ASSERT_TRUE(restored.restore(*log.value()).ok());
  auto model = restored.get("model");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().value[0], 5);
}

}  // namespace
}  // namespace pe::ps
