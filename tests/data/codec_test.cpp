#include "data/codec.h"

#include <gtest/gtest.h>

#include "data/generator.h"

namespace pe::data {
namespace {

DataBlock sample_block(std::size_t rows = 20, bool labels = true) {
  Generator gen;
  auto block = gen.generate(rows);
  block.message_id = 77;
  block.producer_id = "device-3";
  block.produced_ns = 123456789;
  if (!labels) block.labels.clear();
  return block;
}

TEST(CodecTest, RoundTripWithLabels) {
  const auto block = sample_block();
  const Bytes encoded = Codec::encode(block);
  auto decoded = Codec::decode(encoded);
  ASSERT_TRUE(decoded.ok());
  const auto& out = decoded.value();
  EXPECT_EQ(out.message_id, 77u);
  EXPECT_EQ(out.producer_id, "device-3");
  EXPECT_EQ(out.produced_ns, 123456789u);
  EXPECT_EQ(out.rows, block.rows);
  EXPECT_EQ(out.cols, block.cols);
  EXPECT_EQ(out.values, block.values);
  EXPECT_EQ(out.labels, block.labels);
}

TEST(CodecTest, RoundTripWithoutLabels) {
  const auto block = sample_block(10, /*labels=*/false);
  auto decoded = Codec::decode(Codec::encode(block));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().labels.empty());
  EXPECT_EQ(decoded.value().values, block.values);
}

TEST(CodecTest, EncodedSizePredictsExactly) {
  const auto block = sample_block();
  EXPECT_EQ(Codec::encode(block).size(), Codec::encoded_size(block));
  const auto unlabeled = sample_block(10, false);
  EXPECT_EQ(Codec::encode(unlabeled).size(), Codec::encoded_size(unlabeled));
}

TEST(CodecTest, EncodedSizeDominatedByValues) {
  // Paper: serialized size ~ 8 bytes per value.
  const auto block = sample_block(1000);
  const double overhead =
      static_cast<double>(Codec::encoded_size(block)) -
      static_cast<double>(block.value_bytes());
  EXPECT_LT(overhead / static_cast<double>(block.value_bytes()), 0.05);
}

TEST(CodecTest, BadMagicRejected) {
  Bytes bogus = {'X', 'X', 'X', 'X', 0, 0, 0, 0};
  EXPECT_EQ(Codec::decode(bogus).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CodecTest, TruncatedPayloadRejected) {
  const auto block = sample_block();
  Bytes encoded = Codec::encode(block);
  encoded.resize(encoded.size() / 2);
  EXPECT_EQ(Codec::decode(encoded).status().code(), StatusCode::kOutOfRange);
}

TEST(CodecTest, EmptyBufferRejected) {
  EXPECT_FALSE(Codec::decode({}).ok());
}

TEST(CodecTest, ImplausibleDimensionsRejected) {
  // Craft a header claiming an enormous block.
  DataBlock tiny;
  tiny.rows = 1;
  tiny.cols = 1;
  tiny.values = {1.0};
  Bytes encoded = Codec::encode(tiny);
  // rows field starts at offset 4 (magic) + 8 (message_id) + 8 (produced).
  for (int i = 0; i < 8; ++i) encoded[4 + 8 + 8 + i] = 0xFF;
  EXPECT_FALSE(Codec::decode(encoded).ok());
}

TEST(CodecTest, ZeroRowBlockRoundTrips) {
  DataBlock block;
  block.cols = 32;
  auto decoded = Codec::decode(Codec::encode(block));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().rows, 0u);
  EXPECT_TRUE(decoded.value().values.empty());
}

}  // namespace
}  // namespace pe::data
