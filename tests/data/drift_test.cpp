// Concept drift in the generator + model adaptation under drift.
//
// Backs the paper's dynamism story: environments change ("seasonal peak
// loads, failures and other external events"), and a model that keeps
// training on the stream stays accurate while a frozen model decays.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.h"
#include "ml/kmeans.h"
#include "ml/outlier.h"

namespace pe::data {
namespace {

double center_distance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

TEST(DriftTest, StationaryByDefault) {
  Generator gen;
  const auto before = gen.centers();
  (void)gen.generate(10);
  (void)gen.generate(10);
  EXPECT_EQ(gen.centers(), before);
}

TEST(DriftTest, CentersMoveWithDrift) {
  GeneratorConfig config;
  config.drift_per_block = 0.5;
  Generator gen(config);
  const auto before = gen.centers();
  (void)gen.generate(10);  // first block samples pre-drift centers
  (void)gen.generate(10);
  (void)gen.generate(10);
  const auto after = gen.centers();
  EXPECT_GT(center_distance(before, after), 0.0);
}

TEST(DriftTest, DriftAccumulatesOverBlocks) {
  GeneratorConfig config;
  config.drift_per_block = 0.3;
  config.seed = 5;
  Generator gen(config);
  const auto origin = gen.centers();
  (void)gen.generate(5);
  (void)gen.generate(5);
  const auto early = center_distance(origin, gen.centers());
  for (int i = 0; i < 40; ++i) (void)gen.generate(5);
  const auto late = center_distance(origin, gen.centers());
  EXPECT_GT(late, early);
}

TEST(DriftTest, StreamingModelTracksDriftFrozenModelDecays) {
  GeneratorConfig config;
  config.clusters = 5;
  config.drift_per_block = 1.0;
  config.seed = 11;
  config.outlier_fraction = 0.0;  // clean signal: inlier distances only
  Generator gen(config);

  ml::KMeansConfig km;
  km.clusters = 5;
  km.max_center_weight = 100;  // bounded learning rate: can track drift
  ml::KMeans frozen(km), streaming(km);
  auto first = gen.generate(800);
  ASSERT_TRUE(frozen.fit(first).ok());
  ASSERT_TRUE(streaming.fit(first).ok());

  // Let the world drift while only `streaming` keeps learning.
  data::DataBlock last;
  for (int block_index = 0; block_index < 30; ++block_index) {
    last = gen.generate(800);
    ASSERT_TRUE(streaming.partial_fit(last).ok());
  }
  // Mean anomaly score of the *inliers* of the final block: the frozen
  // model sees drifted inliers as far from its stale centroids; the
  // adapting model still hugs them.
  auto mean_inlier_score = [&](const ml::KMeans& model) {
    const auto scores = model.score(last).value();
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      if (last.labels[i] == 0) {
        sum += scores[i];
        n += 1;
      }
    }
    return sum / static_cast<double>(n);
  };
  const double frozen_score = mean_inlier_score(frozen);
  const double streaming_score = mean_inlier_score(streaming);
  EXPECT_GT(frozen_score, streaming_score * 1.5)
      << "frozen " << frozen_score << " vs streaming " << streaming_score;
}

TEST(DriftTest, DriftKeepsBlocksValid) {
  GeneratorConfig config;
  config.drift_per_block = 2.0;  // aggressive
  Generator gen(config);
  for (int i = 0; i < 10; ++i) {
    const auto block = gen.generate(50);
    EXPECT_TRUE(block.valid());
    for (double v : block.values) EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace pe::data
