#include "data/generator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pe::data {
namespace {

TEST(GeneratorTest, BlockHasRequestedShape) {
  Generator gen;
  const auto block = gen.generate(100);
  EXPECT_EQ(block.rows, 100u);
  EXPECT_EQ(block.cols, 32u);  // paper: 32 features
  EXPECT_EQ(block.values.size(), 100u * 32u);
  EXPECT_TRUE(block.has_labels());
  EXPECT_TRUE(block.valid());
}

TEST(GeneratorTest, SameSeedSameData) {
  GeneratorConfig config;
  config.seed = 99;
  Generator a(config), b(config);
  const auto ba = a.generate(50);
  const auto bb = b.generate(50);
  EXPECT_EQ(ba.values, bb.values);
  EXPECT_EQ(ba.labels, bb.labels);
}

TEST(GeneratorTest, DifferentSeedsDifferentData) {
  GeneratorConfig c1, c2;
  c1.seed = 1;
  c2.seed = 2;
  Generator a(c1), b(c2);
  EXPECT_NE(a.generate(50).values, b.generate(50).values);
}

TEST(GeneratorTest, OutlierFractionApproximatelyRespected) {
  GeneratorConfig config;
  config.outlier_fraction = 0.10;
  Generator gen(config);
  const auto block = gen.generate(20000);
  std::size_t outliers = 0;
  for (auto l : block.labels) outliers += l;
  const double fraction = static_cast<double>(outliers) / 20000.0;
  EXPECT_NEAR(fraction, 0.10, 0.01);
}

TEST(GeneratorTest, ZeroOutlierFractionIsAllInliers) {
  GeneratorConfig config;
  config.outlier_fraction = 0.0;
  Generator gen(config);
  const auto block = gen.generate(1000);
  for (auto l : block.labels) EXPECT_EQ(l, 0);
}

TEST(GeneratorTest, InliersStayNearClusterCenters) {
  GeneratorConfig config;
  config.outlier_fraction = 0.0;
  config.cluster_std = 0.5;
  Generator gen(config);
  const auto block = gen.generate(500);
  const auto& centers = gen.centers();
  const std::size_t k = config.clusters;
  for (std::size_t r = 0; r < block.rows; ++r) {
    // Distance to the nearest center should be modest (~std * sqrt(d)).
    double best = 1e300;
    for (std::size_t c = 0; c < k; ++c) {
      double d2 = 0.0;
      for (std::size_t f = 0; f < block.cols; ++f) {
        const double d = block.values[r * block.cols + f] -
                         centers[c * block.cols + f];
        d2 += d * d;
      }
      best = std::min(best, d2);
    }
    EXPECT_LT(std::sqrt(best), 0.5 * std::sqrt(32.0) * 3.0);
  }
}

TEST(GeneratorTest, PaperMessageSizes) {
  // Paper: 25 points => ~7 KB, 10,000 points => ~2.6 MB (8 B per value).
  Generator gen;
  EXPECT_EQ(gen.generate(25).value_bytes(), 25u * 32u * 8u);      // 6.4 KB
  EXPECT_EQ(gen.generate(10000).value_bytes(), 10000u * 32u * 8u);  // 2.56 MB
}

TEST(GeneratorTest, ConfigClampsDegenerateValues) {
  GeneratorConfig config;
  config.features = 0;
  config.clusters = 0;
  Generator gen(config);
  const auto block = gen.generate(10);
  EXPECT_EQ(block.cols, 1u);
  EXPECT_TRUE(block.valid());
}

TEST(DataBlockTest, RowSpanViewsData) {
  Generator gen;
  auto block = gen.generate(3);
  auto row = block.row(1);
  EXPECT_EQ(row.size(), 32u);
  row[0] = 123.0;
  EXPECT_EQ(block.values[32], 123.0);
}

TEST(DataBlockTest, ValidityChecks) {
  DataBlock block;
  block.rows = 2;
  block.cols = 3;
  block.values.assign(6, 0.0);
  EXPECT_TRUE(block.valid());
  block.labels.assign(1, 0);  // wrong size
  EXPECT_FALSE(block.valid());
  block.labels.assign(2, 0);
  EXPECT_TRUE(block.valid());
  block.values.pop_back();
  EXPECT_FALSE(block.valid());
}

}  // namespace
}  // namespace pe::data
