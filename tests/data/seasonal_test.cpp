#include "data/seasonal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/autoencoder.h"
#include "ml/outlier.h"

namespace pe::data {
namespace {

TEST(SeasonalGeneratorTest, ShapeAndLabels) {
  SeasonalGenerator gen;
  const auto block = gen.generate(100);
  EXPECT_EQ(block.rows, 100u);
  EXPECT_EQ(block.cols, 32u);
  EXPECT_TRUE(block.valid());
  EXPECT_TRUE(block.has_labels());
  EXPECT_EQ(gen.position(), 100u);
}

TEST(SeasonalGeneratorTest, DeterministicPerSeed) {
  SeasonalConfig config;
  config.seed = 9;
  SeasonalGenerator a(config), b(config);
  EXPECT_EQ(a.generate(50).values, b.generate(50).values);
}

TEST(SeasonalGeneratorTest, TimeAdvancesAcrossCalls) {
  SeasonalGenerator a, b;
  const auto first = a.generate(50);
  const auto second = a.generate(50);
  EXPECT_NE(first.values, second.values);
  // Generating 100 at once equals 50+50 in sequence (same stream clock)
  // except for noise ordering; check the clock at least.
  (void)b.generate(100);
  EXPECT_EQ(a.position(), b.position());
}

TEST(SeasonalGeneratorTest, SignalIsPeriodicWithoutNoise) {
  SeasonalConfig config;
  config.noise_std = 0.0;
  config.anomaly_fraction = 0.0;
  config.period = 64;
  config.features = 4;
  SeasonalGenerator gen(config);
  const auto block = gen.generate(128);  // two full periods
  for (std::size_t f = 0; f < 4; ++f) {
    for (std::size_t r = 0; r < 64; ++r) {
      EXPECT_NEAR(block.values[r * 4 + f], block.values[(r + 64) * 4 + f],
                  1e-9);
    }
  }
}

TEST(SeasonalGeneratorTest, AmplitudeBoundsCleanSignal) {
  SeasonalConfig config;
  config.noise_std = 0.0;
  config.anomaly_fraction = 0.0;
  config.amplitude = 2.0;
  SeasonalGenerator gen(config);
  const auto block = gen.generate(500);
  for (double v : block.values) {
    EXPECT_LE(std::abs(v), 2.0 + 1e-9);
  }
}

TEST(SeasonalGeneratorTest, AnomalyFractionRoughlyRespected) {
  SeasonalConfig config;
  config.anomaly_fraction = 0.02;
  config.shift_duration = 4;
  SeasonalGenerator gen(config);
  const auto block = gen.generate(20000);
  std::size_t anomalies = 0;
  for (auto l : block.labels) anomalies += l;
  // Shifts multiply the labeled rows by ~duration/2 on average; allow a
  // generous band around trigger_rate * (1 + duration/2).
  const double fraction = static_cast<double>(anomalies) / 20000.0;
  EXPECT_GT(fraction, 0.01);
  EXPECT_LT(fraction, 0.15);
}

TEST(SeasonalGeneratorTest, ZeroAnomalyFractionIsClean) {
  SeasonalConfig config;
  config.anomaly_fraction = 0.0;
  SeasonalGenerator gen(config);
  const auto block = gen.generate(2000);
  for (auto l : block.labels) EXPECT_EQ(l, 0);
}

TEST(SeasonalGeneratorTest, SpikesAreDetectableByAutoEncoder) {
  SeasonalConfig config;
  config.anomaly_fraction = 0.03;
  config.spike_scale = 4.0;
  config.shift_magnitude = 4.0;
  config.seed = 77;
  SeasonalGenerator gen(config);

  ml::AutoEncoderConfig ae;
  ae.epochs_per_fit = 15;
  ml::AutoEncoder model(ae);
  // Train on a clean-ish stretch, then score a labeled stretch.
  auto train = gen.generate(2000);
  ASSERT_TRUE(model.fit(train).ok());
  auto eval = gen.generate(2000);
  auto scores = model.score(eval);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(ml::roc_auc(scores.value(), eval.labels), 0.8);
}

}  // namespace
}  // namespace pe::data
