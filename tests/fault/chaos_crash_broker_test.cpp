// kCrashBroker chaos fault: hard power-cut + in-place recovery of a
// durable broker while producers keep running.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "broker/broker.h"
#include "common/clock.h"
#include "fault/chaos_engine.h"

namespace pe::fault {
namespace {

using namespace std::chrono_literals;
namespace fs = std::filesystem;

broker::Record make_record(const std::string& key) {
  broker::Record r;
  r.key = key;
  r.value = Bytes(32, 0x42);
  return r;
}

class ChaosCrashBrokerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("pe_chaos_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

TEST_F(ChaosCrashBrokerTest, CrashBrokerWithoutBrokerIsFailedPrecondition) {
  FaultPlan plan;
  plan.crash_broker(Duration::zero());
  ChaosEngine engine(std::move(plan));
  ASSERT_TRUE(engine.start().ok());
  engine.join();
  ASSERT_EQ(engine.records().size(), 1u);
  EXPECT_EQ(engine.records()[0].status.code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ChaosCrashBrokerTest, CrashBrokerOnInMemoryBrokerFails) {
  auto broker = std::make_shared<broker::Broker>("cloud");
  FaultPlan plan;
  plan.crash_broker(Duration::zero());
  ChaosEngine engine(std::move(plan));
  engine.set_broker(broker);
  ASSERT_TRUE(engine.start().ok());
  engine.join();
  ASSERT_EQ(engine.records().size(), 1u);
  EXPECT_FALSE(engine.records()[0].status.ok());
}

TEST_F(ChaosCrashBrokerTest, DurableBrokerSurvivesMidPipelineCrash) {
  broker::BrokerOptions options;
  options.durable_dir = dir_;
  options.storage.flush_policy = storage::FlushPolicy::kEverySync;
  auto broker = std::make_shared<broker::Broker>("cloud", options);
  ASSERT_TRUE(broker->create_topic("events", {}).ok());
  const broker::TopicPartition tp{"events", 0};

  // Produce continuously while the chaos engine cuts power at +20ms.
  FaultPlan plan;
  plan.crash_broker(20ms, /*keep_fraction=*/0.0, "mid-pipeline power cut");
  ChaosEngine engine(std::move(plan), /*seed=*/11);
  engine.set_broker(broker);
  ASSERT_TRUE(engine.start().ok());

  std::uint64_t produced = 0;
  std::uint64_t committed = 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(80);
  while (Clock::now() < deadline) {
    auto off =
        broker->produce("events", 0,
                        {make_record("k" + std::to_string(produced))});
    if (off.ok()) {
      produced = off.value() + 1;
      if (produced % 5 == 0 &&
          broker->coordinator().commit_offset("g", tp, produced).ok()) {
        committed = produced;
      }
    }
    Clock::sleep_exact(std::chrono::milliseconds(1));
  }
  engine.join();

  ASSERT_EQ(engine.records().size(), 1u);
  ASSERT_TRUE(engine.records()[0].status.ok())
      << engine.records()[0].status.to_string();

  // The broker is live again and lost nothing that was acked: every
  // offset below the post-crash high watermark fetches back CRC-clean,
  // and the committed offset survived if one was recorded pre-crash.
  auto end = broker->end_offset("events", 0);
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(end.value(), produced);
  if (end.value() > 0) {
    broker::FetchSpec spec;
    spec.max_records = 10000;
    auto fetched = broker->fetch("events", 0, spec);
    ASSERT_TRUE(fetched.ok());
    ASSERT_EQ(fetched.value().size(), end.value());
    for (std::size_t i = 0; i < fetched.value().size(); ++i) {
      EXPECT_EQ(fetched.value()[i].offset, i);
    }
  }
  if (committed > 0) {
    auto restored = broker->coordinator().committed_offset("g", tp);
    ASSERT_TRUE(restored.has_value());
    EXPECT_GE(*restored, committed);
  }
  // After recovery the pipeline keeps going: a fresh produce lands at the
  // next offset.
  auto off = broker->produce("events", 0, {make_record("post")});
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.value(), produced);
}

}  // namespace
}  // namespace pe::fault
