// ChaosEngine: deterministic timeline resolution and fault application.
#include "fault/chaos_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "broker/broker.h"
#include "common/clock.h"
#include "network/fabric.h"
#include "taskexec/cluster.h"

namespace pe::fault {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<net::Fabric> make_two_site_fabric() {
  auto fabric = std::make_shared<net::Fabric>();
  EXPECT_TRUE(fabric->add_site({.id = "a", .kind = net::SiteKind::kEdge}).ok());
  EXPECT_TRUE(
      fabric->add_site({.id = "b", .kind = net::SiteKind::kCloud}).ok());
  net::LinkSpec spec;
  spec.from = "a";
  spec.to = "b";
  spec.latency_min = spec.latency_max = std::chrono::microseconds(100);
  spec.bandwidth_min_bps = spec.bandwidth_max_bps = 1e9;
  EXPECT_TRUE(fabric->add_bidirectional_link(spec).ok());
  return fabric;
}

FaultPlan jittered_plan() {
  FaultPlan plan;
  plan.jitter_fraction = 0.5;
  plan.preempt_pilot(100ms, "pilot-1");
  plan.crash_worker(200ms, "w-7");
  plan.partition_link(300ms, "a->b", 150ms);
  return plan;
}

TEST(ChaosEngineTest, SamePlanAndSeedResolveIdenticalTimelines) {
  ChaosEngine first(jittered_plan(), /*seed=*/7);
  ChaosEngine second(jittered_plan(), /*seed=*/7);
  EXPECT_EQ(first.sequence_signature(), second.sequence_signature());
  ASSERT_EQ(first.resolved_timeline().size(),
            second.resolved_timeline().size());
  for (std::size_t i = 0; i < first.resolved_timeline().size(); ++i) {
    EXPECT_EQ(first.resolved_timeline()[i].at,
              second.resolved_timeline()[i].at);
    EXPECT_EQ(first.resolved_timeline()[i].kind,
              second.resolved_timeline()[i].kind);
    EXPECT_EQ(first.resolved_timeline()[i].target,
              second.resolved_timeline()[i].target);
  }
}

TEST(ChaosEngineTest, DifferentSeedsResolveDifferentTimelines) {
  ChaosEngine first(jittered_plan(), /*seed=*/7);
  ChaosEngine second(jittered_plan(), /*seed=*/8);
  EXPECT_NE(first.sequence_signature(), second.sequence_signature());
}

TEST(ChaosEngineTest, DurationEventsExpandIntoRestorePairs) {
  FaultPlan plan;
  plan.partition_link(10ms, "a->b", 50ms);
  plan.drop_broker_partition(20ms, "t", 0, 5ms);
  ChaosEngine engine(std::move(plan));
  const auto& timeline = engine.resolved_timeline();
  ASSERT_EQ(timeline.size(), 4u);
  // Sorted by offset: partition@10ms, drop@20ms, restore-broker@25ms,
  // restore-link@60ms.
  EXPECT_EQ(timeline[0].kind, FaultKind::kPartitionLink);
  EXPECT_EQ(timeline[1].kind, FaultKind::kDropBrokerPartition);
  EXPECT_EQ(timeline[2].kind, FaultKind::kRestoreBrokerPartition);
  EXPECT_EQ(timeline[2].at, Duration(25ms));
  EXPECT_EQ(timeline[3].kind, FaultKind::kRestoreLink);
  EXPECT_EQ(timeline[3].at, Duration(60ms));
}

TEST(ChaosEngineTest, AppliesLinkAndBrokerFaults) {
  ScopedTimeScale fast(20.0);
  auto fabric = make_two_site_fabric();
  auto broker = std::make_shared<broker::Broker>("b");
  ASSERT_TRUE(broker->create_topic("t", {.partitions = 2}).ok());

  // Permanent faults so post-join assertions are race-free.
  FaultPlan plan;
  plan.partition_link(5ms, "a->b", Duration::zero());
  plan.drop_broker_partition(10ms, "t", 1, Duration::zero());
  ChaosEngine engine(std::move(plan));
  engine.set_fabric(fabric).set_broker(broker);
  ASSERT_TRUE(engine.start().ok());
  engine.join();

  const auto records = engine.records();
  ASSERT_EQ(records.size(), 2u);
  for (const auto& r : records) EXPECT_TRUE(r.status.ok());

  EXPECT_EQ(fabric->transfer("a", "b", 100).status().code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(fabric->transfer("b", "a", 100).ok());  // reverse unaffected
  EXPECT_TRUE(broker->produce("t", 0, {{"k", Bytes{1, 2, 3}, 0}}).ok());
  EXPECT_EQ(broker->produce("t", 1, {{"k", Bytes{1, 2, 3}, 0}}).status().code(),
            StatusCode::kUnavailable);

  ASSERT_TRUE(fabric->clear_link_fault("a", "b").ok());
  ASSERT_TRUE(broker->set_partition_offline("t", 1, false).ok());
  EXPECT_TRUE(fabric->transfer("a", "b", 100).ok());
  EXPECT_TRUE(broker->produce("t", 1, {{"k", Bytes{1, 2, 3}, 0}}).ok());
}

TEST(ChaosEngineTest, TimedFaultAutoRestores) {
  ScopedTimeScale fast(20.0);
  auto fabric = make_two_site_fabric();
  FaultPlan plan;
  plan.degrade_link(5ms, "a->b", 30ms, /*latency_factor=*/50.0,
                    /*bandwidth_factor=*/0.01);
  ChaosEngine engine(std::move(plan));
  engine.set_fabric(fabric);
  ASSERT_TRUE(engine.start().ok());
  engine.join();
  // After the restore event fired, the link is back to nominal.
  ASSERT_EQ(engine.records().size(), 2u);
  EXPECT_TRUE(engine.records()[1].status.ok());
  EXPECT_TRUE(fabric->transfer("a", "b", 100).ok());
}

TEST(ChaosEngineTest, UnboundSubsystemRecordsFailedPrecondition) {
  FaultPlan plan;
  plan.preempt_pilot(Duration::zero(), "p-1");
  plan.crash_worker(Duration::zero(), "w-1");
  plan.partition_link(Duration::zero(), "a->b", Duration::zero());
  ChaosEngine engine(std::move(plan));
  ASSERT_TRUE(engine.start().ok());
  engine.join();
  const auto records = engine.records();
  ASSERT_EQ(records.size(), 3u);
  for (const auto& r : records) {
    EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition)
        << to_string(r.kind);
  }
}

TEST(ChaosEngineTest, UnknownWorkerRecordsNotFound) {
  auto cluster = std::make_shared<exec::Cluster>("a", 1, 4.0, "c0");
  FaultPlan plan;
  plan.crash_worker(Duration::zero(), "no-such-worker");
  ChaosEngine engine(std::move(plan));
  engine.add_cluster(cluster);
  ASSERT_TRUE(engine.start().ok());
  engine.join();
  ASSERT_EQ(engine.records().size(), 1u);
  EXPECT_EQ(engine.records()[0].status.code(), StatusCode::kNotFound);
  cluster->shutdown();
}

// One worker-crash failover scenario, expected to end identically at any
// emulation speed: every chaos offset and timeout in the system is an
// emulated duration, so scaling time must not change outcomes.
struct ScenarioOutcome {
  StatusCode final_code = StatusCode::kInternal;
  int executions = 0;
  std::uint64_t redispatched = 0;
  std::string signature;
};

ScenarioOutcome run_worker_crash_scenario(double time_scale) {
  ScopedTimeScale scale(time_scale);
  auto cluster = std::make_shared<exec::Cluster>("a", 2, 8.0, "c0");
  EXPECT_TRUE(cluster->add_worker(2, 8.0).ok());

  auto executions = std::make_shared<std::atomic<int>>(0);
  auto release = std::make_shared<std::atomic<bool>>(false);
  exec::TaskSpec spec;
  spec.fn = [executions, release](exec::TaskContext& ctx) -> Status {
    executions->fetch_add(1);
    while (!ctx.stop_requested() && !release->load()) {
      Clock::sleep_exact(std::chrono::milliseconds(1));
    }
    if (ctx.stop_requested()) return Status::Cancelled("stopped");
    return Status::Ok();
  };
  auto handle = cluster->submit(std::move(spec));
  EXPECT_TRUE(handle.ok());
  while (executions->load() == 0) {
    Clock::sleep_exact(std::chrono::milliseconds(1));
  }
  const std::string victim =
      cluster->scheduler().task_info(handle.value().id()).value().worker_id;

  FaultPlan plan;
  plan.crash_worker(20ms, victim);
  ChaosEngine engine(std::move(plan), /*seed=*/3);
  engine.add_cluster(cluster);
  EXPECT_TRUE(engine.start().ok());
  engine.join();

  while (executions->load() < 2) {
    Clock::sleep_exact(std::chrono::milliseconds(1));
  }
  release->store(true);

  ScenarioOutcome outcome;
  outcome.final_code = handle.value().wait().code();
  outcome.executions = executions->load();
  outcome.redispatched = cluster->scheduler().stats().redispatched_tasks;
  outcome.signature = engine.sequence_signature();
  cluster->shutdown();
  return outcome;
}

TEST(ChaosEngineTest, WorkerCrashScenarioIdenticalAcrossTimeScales) {
  const auto slow = run_worker_crash_scenario(1.0);
  const auto fast = run_worker_crash_scenario(8.0);
  EXPECT_EQ(slow.final_code, StatusCode::kOk);
  EXPECT_EQ(fast.final_code, slow.final_code);
  EXPECT_EQ(fast.executions, slow.executions);
  EXPECT_EQ(fast.redispatched, slow.redispatched);
  // The plan carries no jitter, so both runs resolve byte-identical
  // timelines even though they sleep different wall durations.
  EXPECT_EQ(fast.signature, slow.signature);
}

}  // namespace
}  // namespace pe::fault
