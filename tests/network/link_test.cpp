#include "network/link.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pe::net {
namespace {

LinkSpec fast_spec() {
  LinkSpec spec;
  spec.from = "a";
  spec.to = "b";
  spec.latency_min = std::chrono::milliseconds(1);
  spec.latency_max = std::chrono::milliseconds(2);
  spec.bandwidth_min_bps = 800e6;
  spec.bandwidth_max_bps = 800e6;
  return spec;
}

TEST(LinkTest, TransferChargesLatency) {
  Link link(fast_spec());
  Stopwatch sw;
  const auto result = link.transfer(100);
  EXPECT_GE(sw.elapsed_ms(), 0.9);  // at least latency_min
  EXPECT_GE(result.propagation, std::chrono::milliseconds(1));
  EXPECT_LE(result.propagation, std::chrono::milliseconds(2));
  EXPECT_EQ(result.bytes, 100u);
}

TEST(LinkTest, TransmitTimeMatchesBandwidth) {
  LinkSpec spec = fast_spec();
  spec.bandwidth_min_bps = 8e6;  // 1 MB/s
  spec.bandwidth_max_bps = 8e6;
  Link link(spec);
  const auto result = link.transfer(100'000);  // 0.1 s at 1 MB/s
  const double tx_ms =
      std::chrono::duration<double, std::milli>(result.transmit_time).count();
  EXPECT_NEAR(tx_ms, 100.0, 5.0);
}

TEST(LinkTest, LatencySampleWithinBounds) {
  LinkSpec spec = fast_spec();
  spec.latency_min = std::chrono::milliseconds(5);
  spec.latency_max = std::chrono::milliseconds(9);
  Link link(spec);
  for (int i = 0; i < 10; ++i) {
    const auto r = link.transfer(10);
    EXPECT_GE(r.propagation, std::chrono::milliseconds(5));
    EXPECT_LE(r.propagation, std::chrono::milliseconds(9));
  }
}

TEST(LinkTest, ConcurrentTransfersQueueOnSharedChannel) {
  LinkSpec spec = fast_spec();
  spec.latency_min = spec.latency_max = std::chrono::microseconds(100);
  spec.bandwidth_min_bps = 8e6;  // 1 MB/s => 50 ms per 50 KB transfer
  spec.bandwidth_max_bps = 8e6;
  Link link(spec);

  Stopwatch sw;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&link] { link.transfer(50'000); });
  }
  for (auto& t : threads) t.join();
  // Four 50 ms transmissions must serialize: >= 200 ms wall time.
  EXPECT_GE(sw.elapsed_ms(), 180.0);
  const auto stats = link.stats();
  EXPECT_EQ(stats.transfers, 4u);
  EXPECT_EQ(stats.bytes, 200'000u);
  EXPECT_GT(stats.total_queue_delay, Duration::zero());
}

TEST(LinkTest, TimeScaleShrinksWallTime) {
  LinkSpec spec = fast_spec();
  spec.latency_min = spec.latency_max = std::chrono::milliseconds(100);
  Link link(spec);
  ScopedTimeScale scale(20.0);
  Stopwatch sw;
  const auto r = link.transfer(10);
  EXPECT_LT(sw.elapsed_ms(), 50.0);  // 100 ms nominal at 20x
  // Reported propagation stays in emulated time.
  EXPECT_GE(r.propagation, std::chrono::milliseconds(99));
}

TEST(LinkTest, StatsAccumulate) {
  Link link(fast_spec());
  link.transfer(10);
  link.transfer(20);
  const auto stats = link.stats();
  EXPECT_EQ(stats.transfers, 2u);
  EXPECT_EQ(stats.bytes, 30u);
}

}  // namespace
}  // namespace pe::net
