#include "network/fabric.h"

#include <gtest/gtest.h>

namespace pe::net {
namespace {

std::unique_ptr<Fabric> make_two_site_fabric() {
  auto fabric = std::make_unique<Fabric>();
  EXPECT_TRUE(fabric->add_site({.id = "a", .kind = SiteKind::kEdge}).ok());
  EXPECT_TRUE(fabric->add_site({.id = "b", .kind = SiteKind::kCloud}).ok());
  LinkSpec spec;
  spec.from = "a";
  spec.to = "b";
  spec.latency_min = spec.latency_max = std::chrono::milliseconds(1);
  spec.bandwidth_min_bps = spec.bandwidth_max_bps = 1e9;
  EXPECT_TRUE(fabric->add_bidirectional_link(spec).ok());
  return fabric;
}

TEST(FabricTest, DuplicateSiteRejected) {
  Fabric fabric;
  ASSERT_TRUE(fabric.add_site({.id = "x"}).ok());
  EXPECT_EQ(fabric.add_site({.id = "x"}).code(), StatusCode::kAlreadyExists);
}

TEST(FabricTest, LinkRequiresKnownSites) {
  Fabric fabric;
  ASSERT_TRUE(fabric.add_site({.id = "x"}).ok());
  LinkSpec spec;
  spec.from = "x";
  spec.to = "nowhere";
  EXPECT_EQ(fabric.add_link(spec).code(), StatusCode::kNotFound);
  spec.from = "nowhere";
  spec.to = "x";
  EXPECT_EQ(fabric.add_link(spec).code(), StatusCode::kNotFound);
}

TEST(FabricTest, SelfLinkRejected) {
  Fabric fabric;
  ASSERT_TRUE(fabric.add_site({.id = "x"}).ok());
  LinkSpec spec;
  spec.from = "x";
  spec.to = "x";
  EXPECT_EQ(fabric.add_link(spec).code(), StatusCode::kInvalidArgument);
}

TEST(FabricTest, DuplicateLinkRejected) {
  auto fabric_ptr = make_two_site_fabric();
  Fabric& fabric = *fabric_ptr;
  LinkSpec spec;
  spec.from = "a";
  spec.to = "b";
  EXPECT_EQ(fabric.add_link(spec).code(), StatusCode::kAlreadyExists);
}

TEST(FabricTest, TransferAcrossLink) {
  auto fabric_ptr = make_two_site_fabric();
  Fabric& fabric = *fabric_ptr;
  auto result = fabric.transfer("a", "b", 1000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().bytes, 1000u);
  EXPECT_GE(result.value().propagation, std::chrono::milliseconds(1));
}

TEST(FabricTest, TransferWithoutLinkIsUnavailable) {
  Fabric fabric;
  ASSERT_TRUE(fabric.add_site({.id = "a"}).ok());
  ASSERT_TRUE(fabric.add_site({.id = "c"}).ok());
  EXPECT_EQ(fabric.transfer("a", "c", 10).status().code(),
            StatusCode::kUnavailable);
}

TEST(FabricTest, TransferUnknownSiteIsNotFound) {
  auto fabric_ptr = make_two_site_fabric();
  Fabric& fabric = *fabric_ptr;
  EXPECT_EQ(fabric.transfer("a", "zz", 10).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(fabric.transfer("zz", "a", 10).status().code(),
            StatusCode::kNotFound);
}

TEST(FabricTest, LoopbackIsImplicitAndFast) {
  auto fabric_ptr = make_two_site_fabric();
  Fabric& fabric = *fabric_ptr;
  Stopwatch sw;
  auto result = fabric.transfer("a", "a", 1000);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(sw.elapsed_ms(), 10.0);
}

TEST(FabricTest, EstimatesReflectLinkSpec) {
  auto fabric_ptr = make_two_site_fabric();
  Fabric& fabric = *fabric_ptr;
  auto lat = fabric.estimated_latency("a", "b");
  ASSERT_TRUE(lat.ok());
  EXPECT_EQ(lat.value(), std::chrono::milliseconds(1));
  auto bw = fabric.estimated_bandwidth_bps("a", "b");
  ASSERT_TRUE(bw.ok());
  EXPECT_DOUBLE_EQ(bw.value(), 1e9);
}

TEST(FabricTest, EstimateForMissingLinkFails) {
  Fabric fabric;
  ASSERT_TRUE(fabric.add_site({.id = "a"}).ok());
  ASSERT_TRUE(fabric.add_site({.id = "b"}).ok());
  EXPECT_EQ(fabric.estimated_latency("a", "b").status().code(),
            StatusCode::kUnavailable);
}

TEST(FabricTest, LinkStatsKeyedByDirection) {
  auto fabric_ptr = make_two_site_fabric();
  Fabric& fabric = *fabric_ptr;
  ASSERT_TRUE(fabric.transfer("a", "b", 100).ok());
  ASSERT_TRUE(fabric.transfer("b", "a", 50).ok());
  ASSERT_TRUE(fabric.transfer("a", "a", 10).ok());
  const auto stats = fabric.link_stats();
  EXPECT_EQ(stats.at("a->b").bytes, 100u);
  EXPECT_EQ(stats.at("b->a").bytes, 50u);
  EXPECT_EQ(stats.at("a-loop").bytes, 10u);
}

TEST(FabricTest, SitesListsAll) {
  auto fabric_ptr = make_two_site_fabric();
  Fabric& fabric = *fabric_ptr;
  EXPECT_EQ(fabric.sites().size(), 2u);
  EXPECT_TRUE(fabric.has_site("a"));
  EXPECT_FALSE(fabric.has_site("q"));
  EXPECT_EQ(fabric.site("b").value().kind, SiteKind::kCloud);
}

TEST(PaperTopologyTest, HasPaperSitesAndWanParameters) {
  auto fabric = Fabric::make_paper_topology();
  ASSERT_TRUE(fabric->has_site("lrz-eu"));
  ASSERT_TRUE(fabric->has_site("jetstream-us"));
  ASSERT_TRUE(fabric->has_site("edge-us"));

  // Paper: RTT 140-160 ms => one-way mean ~75 ms.
  auto lat = fabric->estimated_latency("jetstream-us", "lrz-eu");
  ASSERT_TRUE(lat.ok());
  const double ms = std::chrono::duration<double, std::milli>(lat.value()).count();
  EXPECT_GE(ms, 70.0);
  EXPECT_LE(ms, 80.0);

  // Paper: 60-100 Mbit/s.
  auto bw = fabric->estimated_bandwidth_bps("jetstream-us", "lrz-eu");
  ASSERT_TRUE(bw.ok());
  EXPECT_NEAR(bw.value(), 80e6, 1e6);
}

TEST(PaperTopologyTest, SingleSiteVariantOnlyHasLrz) {
  auto fabric = Fabric::make_single_site_topology();
  EXPECT_TRUE(fabric->has_site("lrz-eu"));
  EXPECT_EQ(fabric->sites().size(), 1u);
}

}  // namespace
}  // namespace pe::net
