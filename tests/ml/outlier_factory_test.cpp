#include <gtest/gtest.h>

#include "data/generator.h"
#include "ml/baseline.h"
#include "ml/factory.h"
#include "ml/outlier.h"

namespace pe::ml {
namespace {

// ---------- metrics ----------

TEST(OutlierMetricsTest, ThresholdClassification) {
  const std::vector<double> scores = {0.1, 0.9, 0.8, 0.2};
  const std::vector<std::uint8_t> labels = {0, 1, 0, 0};
  const auto m = evaluate_threshold(scores, labels, 0.5);
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.true_negatives, 2u);
  EXPECT_EQ(m.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(m.precision(), 0.5);
  EXPECT_DOUBLE_EQ(m.recall(), 1.0);
  EXPECT_NEAR(m.f1(), 2.0 / 3.0, 1e-12);
}

TEST(OutlierMetricsTest, EmptyDenominatorsAreZero) {
  ClassificationMetrics m;
  EXPECT_EQ(m.precision(), 0.0);
  EXPECT_EQ(m.recall(), 0.0);
  EXPECT_EQ(m.f1(), 0.0);
}

TEST(OutlierMetricsTest, PerfectSeparationAucOne) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<std::uint8_t> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 1.0);
}

TEST(OutlierMetricsTest, InvertedSeparationAucZero) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<std::uint8_t> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.0);
}

TEST(OutlierMetricsTest, TiesGetAverageRank) {
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const std::vector<std::uint8_t> labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.5);
}

TEST(OutlierMetricsTest, SingleClassIsChance) {
  EXPECT_DOUBLE_EQ(roc_auc({0.1, 0.2}, {0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(roc_auc({0.1, 0.2}, {1, 1}), 0.5);
}

TEST(OutlierMetricsTest, QuantileMatchesSortedOrder) {
  std::vector<double> scores = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(score_quantile(scores, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(score_quantile(scores, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(score_quantile(scores, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(score_quantile({}, 0.5), 0.0);
}

// ---------- baseline ----------

TEST(BaselineTest, AlwaysFittedAndZeroScores) {
  Baseline model;
  EXPECT_TRUE(model.fitted());
  data::Generator gen;
  auto block = gen.generate(10);
  ASSERT_TRUE(model.fit(block).ok());
  ASSERT_TRUE(model.partial_fit(block).ok());
  auto scores = model.score(block);
  ASSERT_TRUE(scores.ok());
  for (double s : scores.value()) EXPECT_EQ(s, 0.0);
  EXPECT_EQ(model.parameter_count(), 0u);
  EXPECT_TRUE(model.load(model.save()).ok());
}

TEST(BaselineTest, InvalidBlockRejected) {
  Baseline model;
  data::DataBlock bad;
  bad.rows = 2;
  bad.cols = 2;  // values missing
  EXPECT_FALSE(model.fit(bad).ok());
  EXPECT_FALSE(model.score(bad).ok());
}

// ---------- factory ----------

struct FactoryCase {
  ModelKind kind;
  const char* name;
};

class FactoryTest : public ::testing::TestWithParam<FactoryCase> {};

TEST_P(FactoryTest, CreatesWorkingModel) {
  auto model = make_model(GetParam().kind);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->kind(), GetParam().kind);
  EXPECT_EQ(model->name(), GetParam().name);

  data::Generator gen;
  auto block = gen.generate(300);
  ASSERT_TRUE(model->partial_fit(block).ok());
  auto scores = model->score(block);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores.value().size(), 300u);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, FactoryTest,
    ::testing::Values(FactoryCase{ModelKind::kBaseline, "baseline"},
                      FactoryCase{ModelKind::kKMeans, "kmeans"},
                      FactoryCase{ModelKind::kIsolationForest,
                                  "isolation-forest"},
                      FactoryCase{ModelKind::kAutoEncoder, "auto-encoder"}));

TEST(FactoryConfigTest, OverridesApply) {
  ConfigMap config;
  config.set_int("kmeans.clusters", 7);
  auto model = make_model(ModelKind::kKMeans, config);
  data::Generator gen;
  ASSERT_TRUE(model->fit(gen.generate(100)).ok());
  EXPECT_EQ(model->parameter_count(), 7u * 32u);

  ConfigMap forest_config;
  forest_config.set_int("iforest.trees", 3);
  auto forest = make_model(ModelKind::kIsolationForest, forest_config);
  ASSERT_TRUE(forest->fit(gen.generate(100)).ok());
  // 3 trees worth of nodes, far fewer than the default 100.
  auto dflt = make_model(ModelKind::kIsolationForest);
  ASSERT_TRUE(dflt->fit(gen.generate(100)).ok());
  EXPECT_LT(forest->parameter_count(), dflt->parameter_count());
}

TEST(ParseModelKindTest, AcceptsAliases) {
  EXPECT_EQ(parse_model_kind("baseline").value(), ModelKind::kBaseline);
  EXPECT_EQ(parse_model_kind("kmeans").value(), ModelKind::kKMeans);
  EXPECT_EQ(parse_model_kind("k-means").value(), ModelKind::kKMeans);
  EXPECT_EQ(parse_model_kind("iforest").value(),
            ModelKind::kIsolationForest);
  EXPECT_EQ(parse_model_kind("isolation-forest").value(),
            ModelKind::kIsolationForest);
  EXPECT_EQ(parse_model_kind("ae").value(), ModelKind::kAutoEncoder);
  EXPECT_EQ(parse_model_kind("autoencoder").value(),
            ModelKind::kAutoEncoder);
  EXPECT_FALSE(parse_model_kind("svm").ok());
}

// Every real model must actually detect the generator's injected
// outliers — the accuracy backbone behind the performance experiments.
class DetectionQualityTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(DetectionQualityTest, AucWellAboveChance) {
  ConfigMap config;
  config.set_int("ae.epochs", 30);
  auto model = make_model(GetParam(), config);
  data::GeneratorConfig gen_config;
  gen_config.clusters = 5;
  gen_config.seed = 3;
  data::Generator gen(gen_config);
  // Train on one block of the stream, score a fresh one: outliers in the
  // training data must not grant amnesty to *new* outliers.
  auto train = gen.generate(1500);
  auto eval = gen.generate(1500);
  ASSERT_TRUE(model->partial_fit(train).ok());
  auto scores = model->score(eval);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(roc_auc(scores.value(), eval.labels), 0.85)
      << "model " << model->name();
}

INSTANTIATE_TEST_SUITE_P(RealModels, DetectionQualityTest,
                         ::testing::Values(ModelKind::kKMeans,
                                           ModelKind::kIsolationForest,
                                           ModelKind::kAutoEncoder));

}  // namespace
}  // namespace pe::ml
