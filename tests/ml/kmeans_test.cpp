#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "ml/outlier.h"

namespace pe::ml {
namespace {

data::DataBlock make_block(std::size_t rows, double outlier_fraction = 0.05,
                           std::uint64_t seed = 7) {
  data::GeneratorConfig config;
  config.clusters = 5;
  config.outlier_fraction = outlier_fraction;
  config.seed = seed;
  data::Generator gen(config);
  return gen.generate(rows);
}

TEST(KMeansTest, UnfittedModelRefusesToScore) {
  KMeans model;
  EXPECT_FALSE(model.fitted());
  EXPECT_EQ(model.score(make_block(10)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(KMeansTest, FitOnEmptyBlockRejected) {
  KMeans model;
  data::DataBlock empty;
  EXPECT_EQ(model.fit(empty).code(), StatusCode::kInvalidArgument);
}

TEST(KMeansTest, FitProducesRequestedClusters) {
  KMeansConfig config;
  config.clusters = 5;
  KMeans model(config);
  ASSERT_TRUE(model.fit(make_block(500, 0.0)).ok());
  EXPECT_TRUE(model.fitted());
  EXPECT_EQ(model.features(), 32u);
  EXPECT_EQ(model.centers().size(), 5u * 32u);
  EXPECT_EQ(model.parameter_count(), 5u * 32u);
}

TEST(KMeansTest, ScoresOutliersHigherThanInliers) {
  KMeansConfig config;
  config.clusters = 5;
  KMeans model(config);
  auto block = make_block(2000, 0.05);
  ASSERT_TRUE(model.fit(block).ok());
  auto scores = model.score(block);
  ASSERT_TRUE(scores.ok());
  const double auc = roc_auc(scores.value(), block.labels);
  EXPECT_GT(auc, 0.95);  // far-away uniform outliers are easy
}

TEST(KMeansTest, PredictAssignsNearestCluster) {
  KMeansConfig config;
  config.clusters = 5;
  KMeans model(config);
  auto block = make_block(500, 0.0);
  ASSERT_TRUE(model.fit(block).ok());
  auto assign = model.predict(block);
  ASSERT_TRUE(assign.ok());
  ASSERT_EQ(assign.value().size(), 500u);
  for (auto a : assign.value()) EXPECT_LT(a, 5u);
}

TEST(KMeansTest, FitReducesInertiaVsRandomInit) {
  KMeansConfig config;
  config.clusters = 5;
  auto block = make_block(1000, 0.0);

  // One iteration vs full fit: inertia must not increase.
  KMeansConfig one_iter = config;
  one_iter.max_iterations = 1;
  KMeans rough(one_iter);
  ASSERT_TRUE(rough.fit(block).ok());
  KMeans refined(config);
  ASSERT_TRUE(refined.fit(block).ok());
  EXPECT_LE(refined.inertia(block).value(),
            rough.inertia(block).value() * 1.01);
}

TEST(KMeansTest, PartialFitBootstrapsThenRefines) {
  KMeansConfig config;
  config.clusters = 5;
  KMeans model(config);
  // One generator => all blocks share the same cluster layout (a
  // continuous stream from one source).
  data::GeneratorConfig gen_config;
  gen_config.clusters = 5;
  gen_config.outlier_fraction = 0.0;
  gen_config.seed = 7;
  data::Generator gen(gen_config);

  auto first = gen.generate(300);
  ASSERT_TRUE(model.partial_fit(first).ok());
  EXPECT_TRUE(model.fitted());
  const auto inertia_before = model.inertia(first).value();

  for (int i = 0; i < 6; ++i) {
    auto block = gen.generate(300);
    ASSERT_TRUE(model.partial_fit(block).ok());
  }
  // Streaming updates on the same distribution must not blow up the fit.
  const auto inertia_after = model.inertia(first).value();
  EXPECT_LT(inertia_after, inertia_before * 2.0);
}

TEST(KMeansTest, FeatureMismatchRejected) {
  KMeans model;
  ASSERT_TRUE(model.fit(make_block(100)).ok());
  data::DataBlock narrow;
  narrow.rows = 2;
  narrow.cols = 4;
  narrow.values.assign(8, 0.0);
  EXPECT_EQ(model.score(narrow).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(model.partial_fit(narrow).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(model.predict(narrow).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(KMeansTest, FewerRowsThanClustersStillFits) {
  KMeansConfig config;
  config.clusters = 25;
  KMeans model(config);
  ASSERT_TRUE(model.fit(make_block(10, 0.0)).ok());
  EXPECT_TRUE(model.fitted());
  auto scores = model.score(make_block(10, 0.0));
  ASSERT_TRUE(scores.ok());
}

TEST(KMeansTest, SaveLoadRoundTripPreservesScores) {
  KMeansConfig config;
  config.clusters = 5;
  KMeans model(config);
  auto block = make_block(500);
  ASSERT_TRUE(model.fit(block).ok());
  const auto before = model.score(block).value();

  KMeans restored;
  ASSERT_TRUE(restored.load(model.save()).ok());
  const auto after = restored.score(block).value();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i], after[i]);
  }
}

TEST(KMeansTest, LoadGarbageRejected) {
  KMeans model;
  EXPECT_FALSE(model.load(Bytes{1, 2, 3}).ok());
  Bytes zeros(16, 0);  // claims 0 clusters
  EXPECT_FALSE(model.load(zeros).ok());
}

TEST(KMeansTest, DeterministicWithSameSeed) {
  KMeansConfig config;
  config.clusters = 5;
  config.seed = 42;
  auto block = make_block(500);
  KMeans a(config), b(config);
  ASSERT_TRUE(a.fit(block).ok());
  ASSERT_TRUE(b.fit(block).ok());
  EXPECT_EQ(a.centers(), b.centers());
}

// Scoring cost should grow roughly linearly with cluster count — the
// knob behind the paper's "model complexity" axis.
class KMeansClusterSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KMeansClusterSweep, FitsAndScoresAtEveryK) {
  KMeansConfig config;
  config.clusters = GetParam();
  KMeans model(config);
  auto block = make_block(400);
  ASSERT_TRUE(model.fit(block).ok());
  auto scores = model.score(block);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores.value().size(), 400u);
  EXPECT_EQ(model.parameter_count(), GetParam() * 32u);
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansClusterSweep,
                         ::testing::Values(1, 2, 5, 10, 25, 50));

}  // namespace
}  // namespace pe::ml
