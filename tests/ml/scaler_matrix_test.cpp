#include <gtest/gtest.h>

#include "data/generator.h"
#include "ml/matrix.h"
#include "ml/scaler.h"

namespace pe::ml {
namespace {

// ---------- Matrix ----------

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_EQ(m.storage()[1], 7.0);
}

TEST(MatrixTest, RowSpans) {
  Matrix m(2, 2);
  m(1, 0) = 3.0;
  auto row = m.row(1);
  EXPECT_EQ(row[0], 3.0);
  row[1] = 4.0;
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(MatrixTest, MatmulMatchesHandComputation) {
  Matrix a(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, std::vector<double>{7, 8, 9, 10, 11, 12});
  Matrix out;
  matmul(a, b, out);
  ASSERT_EQ(out.rows(), 2u);
  ASSERT_EQ(out.cols(), 2u);
  EXPECT_EQ(out(0, 0), 58.0);
  EXPECT_EQ(out(0, 1), 64.0);
  EXPECT_EQ(out(1, 0), 139.0);
  EXPECT_EQ(out(1, 1), 154.0);
}

TEST(MatrixTest, MatmulBtEqualsMatmulWithTranspose) {
  Matrix a(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  Matrix b(4, 3, std::vector<double>{1, 0, 1, 2, 1, 0, 0, 3, 1, 1, 1, 1});
  Matrix bt(3, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) bt(c, r) = b(r, c);
  }
  Matrix direct, viaT;
  matmul_bt(a, b, direct);
  matmul(a, bt, viaT);
  ASSERT_EQ(direct.rows(), viaT.rows());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct.storage()[i], viaT.storage()[i]);
  }
}

TEST(MatrixTest, MatmulAtEqualsTransposedMatmul) {
  Matrix a(3, 2, std::vector<double>{1, 2, 3, 4, 5, 6});
  Matrix b(3, 4, std::vector<double>{1, 0, 1, 2, 1, 0, 0, 3, 1, 1, 1, 1});
  Matrix at(2, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) at(c, r) = a(r, c);
  }
  Matrix direct, viaT;
  matmul_at(a, b, direct);
  matmul(at, b, viaT);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct.storage()[i], viaT.storage()[i]);
  }
}

TEST(MatrixTest, MatmulReusesOutputBuffer) {
  Matrix a(2, 2, std::vector<double>{1, 0, 0, 1});
  Matrix b(2, 2, std::vector<double>{5, 6, 7, 8});
  Matrix out(2, 2, 99.0);  // stale values must be cleared
  matmul(a, b, out);
  EXPECT_EQ(out(0, 0), 5.0);
  EXPECT_EQ(out(1, 1), 8.0);
}

// ---------- StandardScaler ----------

data::DataBlock block_from(const std::vector<double>& values,
                           std::size_t cols) {
  data::DataBlock b;
  b.cols = cols;
  b.rows = values.size() / cols;
  b.values = values;
  return b;
}

TEST(ScalerTest, ComputesMeanAndStd) {
  StandardScaler scaler(1);
  auto b = block_from({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}, 1);
  ASSERT_TRUE(scaler.partial_fit(b).ok());
  EXPECT_DOUBLE_EQ(scaler.mean()[0], 5.0);
  EXPECT_NEAR(scaler.stddev()[0], 2.138, 0.01);  // sample stddev
  EXPECT_EQ(scaler.samples_seen(), 8u);
}

TEST(ScalerTest, StreamingMatchesBatch) {
  data::Generator gen;
  auto all = gen.generate(300);
  StandardScaler batch(32), stream(32);
  ASSERT_TRUE(batch.partial_fit(all).ok());

  for (std::size_t start = 0; start < 300; start += 50) {
    data::DataBlock chunk;
    chunk.cols = 32;
    chunk.rows = 50;
    chunk.values.assign(all.values.begin() + start * 32,
                        all.values.begin() + (start + 50) * 32);
    ASSERT_TRUE(stream.partial_fit(chunk).ok());
  }
  for (std::size_t f = 0; f < 32; ++f) {
    EXPECT_NEAR(batch.mean()[f], stream.mean()[f], 1e-9);
    EXPECT_NEAR(batch.stddev()[f], stream.stddev()[f], 1e-9);
  }
}

TEST(ScalerTest, TransformStandardizes) {
  StandardScaler scaler;
  data::Generator gen;
  auto block = gen.generate(1000);
  ASSERT_TRUE(scaler.partial_fit(block).ok());
  auto copy = block;
  ASSERT_TRUE(scaler.transform(copy).ok());
  // Per-feature mean ~0, std ~1 after standardization.
  for (std::size_t f = 0; f < 3; ++f) {
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t r = 0; r < copy.rows; ++r) {
      sum += copy.values[r * 32 + f];
      sum_sq += copy.values[r * 32 + f] * copy.values[r * 32 + f];
    }
    const double mean = sum / 1000.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(sum_sq / 1000.0 - mean * mean, 1.0, 0.01);
  }
}

TEST(ScalerTest, InverseTransformRoundTrips) {
  StandardScaler scaler;
  data::Generator gen;
  auto block = gen.generate(100);
  ASSERT_TRUE(scaler.partial_fit(block).ok());
  auto copy = block;
  ASSERT_TRUE(scaler.transform(copy).ok());
  ASSERT_TRUE(scaler.inverse_transform(copy).ok());
  for (std::size_t i = 0; i < block.values.size(); ++i) {
    EXPECT_NEAR(copy.values[i], block.values[i], 1e-9);
  }
}

TEST(ScalerTest, ConstantFeatureDoesNotDivideByZero) {
  StandardScaler scaler(1);
  auto b = block_from({3.0, 3.0, 3.0, 3.0}, 1);
  ASSERT_TRUE(scaler.partial_fit(b).ok());
  ASSERT_TRUE(scaler.transform(b).ok());
  for (double v : b.values) EXPECT_EQ(v, 0.0);
}

TEST(ScalerTest, UnfittedTransformRejected) {
  StandardScaler scaler(2);
  auto b = block_from({1.0, 2.0}, 2);
  EXPECT_EQ(scaler.transform(b).code(), StatusCode::kFailedPrecondition);
}

TEST(ScalerTest, FeatureMismatchRejected) {
  StandardScaler scaler(2);
  auto b = block_from({1.0, 2.0}, 2);
  ASSERT_TRUE(scaler.partial_fit(b).ok());
  auto wrong = block_from({1.0, 2.0, 3.0}, 3);
  EXPECT_EQ(scaler.partial_fit(wrong).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(scaler.transform(wrong).code(), StatusCode::kInvalidArgument);
}

TEST(ScalerTest, SaveLoadRoundTrip) {
  StandardScaler scaler;
  data::Generator gen;
  ASSERT_TRUE(scaler.partial_fit(gen.generate(200)).ok());
  Bytes buf;
  ByteWriter w(buf);
  scaler.save(w);
  StandardScaler restored;
  ByteReader r(buf);
  ASSERT_TRUE(restored.load(r).ok());
  EXPECT_EQ(restored.samples_seen(), scaler.samples_seen());
  EXPECT_EQ(restored.mean(), scaler.mean());
  EXPECT_EQ(restored.stddev(), scaler.stddev());
}

TEST(ScalerTest, LazyFeatureInference) {
  StandardScaler scaler;  // features unknown until first block
  data::Generator gen;
  ASSERT_TRUE(scaler.partial_fit(gen.generate(10)).ok());
  EXPECT_EQ(scaler.features(), 32u);
}

}  // namespace
}  // namespace pe::ml
