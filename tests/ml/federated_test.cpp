#include "ml/federated.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "ml/autoencoder.h"
#include "ml/kmeans.h"
#include "ml/outlier.h"

namespace pe::ml::fed {
namespace {

data::DataBlock party_block(std::uint64_t seed, std::size_t rows = 400) {
  data::GeneratorConfig config;
  config.clusters = 5;
  config.seed = seed;          // same seed -> same cluster layout
  data::Generator gen(config);
  return gen.generate(rows);
}

AutoEncoderConfig ae_config() {
  AutoEncoderConfig config;
  config.epochs_per_fit = 8;
  return config;
}

TEST(FedAvgAutoEncoderTest, AverageOfIdenticalModelsIsIdentical) {
  AutoEncoder model(ae_config());
  ASSERT_TRUE(model.fit(party_block(1)).ok());
  const Bytes saved = model.save();

  auto averaged = average_autoencoders({saved, saved, saved});
  ASSERT_TRUE(averaged.ok());
  AutoEncoder restored;
  ASSERT_TRUE(restored.load(averaged.value()).ok());
  // Network weights match up to float rounding (w/3 summed thrice);
  // scores can differ by a hair more because pooling three identical
  // scalers changes the sample-variance denominator ((3c-1) vs (c-1)).
  for (std::size_t l = 0; l < model.layer_weights().size(); ++l) {
    const auto& a = model.layer_weights()[l].storage();
    const auto& b = restored.layer_weights()[l].storage();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i], b[i], 1e-12);
    }
  }
  auto block = party_block(9);
  const auto a = model.score(block).value();
  const auto b = restored.score(block).value();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 0.01);
  }
}

TEST(FedAvgAutoEncoderTest, GlobalModelStillDetectsOutliers) {
  // Three parties train on local data from the same underlying process.
  std::vector<Bytes> locals;
  std::vector<double> weights;
  AutoEncoderConfig config = ae_config();
  for (std::uint64_t p = 0; p < 3; ++p) {
    config.seed = 100;  // common init helps averaging, like FedAvg rounds
    AutoEncoder party(config);
    auto block = party_block(50 + p);  // different local data
    ASSERT_TRUE(party.fit(block).ok());
    locals.push_back(party.save());
    weights.push_back(static_cast<double>(block.rows));
  }
  auto averaged = average_autoencoders(locals, weights);
  ASSERT_TRUE(averaged.ok());
  AutoEncoder global;
  ASSERT_TRUE(global.load(averaged.value()).ok());

  auto eval = party_block(99, 1500);
  auto scores = global.score(eval);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(roc_auc(scores.value(), eval.labels), 0.8);
}

TEST(FedAvgAutoEncoderTest, WeightsAreActualWeightedMeans) {
  AutoEncoderConfig config = ae_config();
  config.seed = 5;
  AutoEncoder a(config), b(config);
  ASSERT_TRUE(a.fit(party_block(1)).ok());
  ASSERT_TRUE(b.fit(party_block(2)).ok());
  auto averaged = average_autoencoders({a.save(), b.save()}, {3.0, 1.0});
  ASSERT_TRUE(averaged.ok());
  AutoEncoder global;
  ASSERT_TRUE(global.load(averaged.value()).ok());

  const double wa = a.layer_weights()[0].storage()[0];
  const double wb = b.layer_weights()[0].storage()[0];
  const double wg = global.layer_weights()[0].storage()[0];
  EXPECT_NEAR(wg, 0.75 * wa + 0.25 * wb, 1e-12);
}

TEST(FedAvgAutoEncoderTest, ArchitectureMismatchRejected) {
  AutoEncoder standard(ae_config());
  ASSERT_TRUE(standard.fit(party_block(1)).ok());
  AutoEncoderConfig small = ae_config();
  small.hidden_layers = {8, 8};
  AutoEncoder tiny(small);
  ASSERT_TRUE(tiny.fit(party_block(2)).ok());
  EXPECT_FALSE(average_autoencoders({standard.save(), tiny.save()}).ok());
}

TEST(FedAvgAutoEncoderTest, InputValidation) {
  EXPECT_FALSE(average_autoencoders({}).ok());
  AutoEncoder model(ae_config());
  ASSERT_TRUE(model.fit(party_block(1)).ok());
  EXPECT_FALSE(average_autoencoders({model.save()}, {1.0, 2.0}).ok());
  EXPECT_FALSE(average_autoencoders({model.save()}, {0.0}).ok());
  EXPECT_FALSE(average_autoencoders({model.save()}, {-1.0}).ok());
  EXPECT_FALSE(average_autoencoders({Bytes{1, 2, 3}}).ok());
}

TEST(FedAvgKMeansTest, AverageOfIdenticalModelsIsIdentical) {
  KMeansConfig config;
  config.clusters = 5;
  KMeans model(config);
  ASSERT_TRUE(model.fit(party_block(1)).ok());
  auto averaged = average_kmeans({model.save(), model.save()});
  ASSERT_TRUE(averaged.ok());
  KMeans restored;
  ASSERT_TRUE(restored.load(averaged.value()).ok());
  const auto& a = model.centers();
  const auto& b = restored.centers();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(FedAvgKMeansTest, CentersAreWeightedMeans) {
  KMeansConfig config;
  config.clusters = 2;
  config.seed = 3;
  KMeans a(config), b(config);
  ASSERT_TRUE(a.fit(party_block(1, 100)).ok());
  ASSERT_TRUE(b.fit(party_block(1, 100)).ok());  // same data+seed => equal
  auto averaged = average_kmeans({a.save(), b.save()}, {1.0, 1.0});
  ASSERT_TRUE(averaged.ok());
  KMeans global;
  ASSERT_TRUE(global.load(averaged.value()).ok());
  EXPECT_NEAR(global.centers()[0],
              0.5 * a.centers()[0] + 0.5 * b.centers()[0], 1e-12);
  // Counts pool across parties.
  std::uint64_t total = 0;
  for (auto c : global.center_counts()) total += c;
  EXPECT_EQ(total, 200u);
}

TEST(FedAvgKMeansTest, GlobalModelScores) {
  std::vector<Bytes> locals;
  KMeansConfig config;
  config.clusters = 5;
  config.seed = 7;
  for (std::uint64_t p = 0; p < 3; ++p) {
    KMeans party(config);
    ASSERT_TRUE(party.fit(party_block(60 + p)).ok());
    locals.push_back(party.save());
  }
  auto averaged = average_kmeans(locals);
  ASSERT_TRUE(averaged.ok());
  KMeans global;
  ASSERT_TRUE(global.load(averaged.value()).ok());
  auto eval = party_block(99, 1000);
  auto scores = global.score(eval);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores.value().size(), 1000u);
}

TEST(FedAvgKMeansTest, ShapeMismatchRejected) {
  KMeansConfig five;
  five.clusters = 5;
  KMeansConfig three;
  three.clusters = 3;
  KMeans a(five), b(three);
  ASSERT_TRUE(a.fit(party_block(1)).ok());
  ASSERT_TRUE(b.fit(party_block(2)).ok());
  EXPECT_FALSE(average_kmeans({a.save(), b.save()}).ok());
}

}  // namespace
}  // namespace pe::ml::fed
