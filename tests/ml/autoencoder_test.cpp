#include "ml/autoencoder.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "ml/outlier.h"

namespace pe::ml {
namespace {

data::DataBlock make_block(std::size_t rows, double outlier_fraction = 0.05,
                           std::uint64_t seed = 7) {
  data::GeneratorConfig config;
  config.clusters = 5;
  config.outlier_fraction = outlier_fraction;
  config.seed = seed;
  data::Generator gen(config);
  return gen.generate(rows);
}

AutoEncoderConfig small_config() {
  AutoEncoderConfig config;
  config.epochs_per_fit = 10;
  config.batch_size = 32;
  return config;
}

TEST(AutoEncoderTest, UnfittedRefusesToScore) {
  AutoEncoder model;
  EXPECT_FALSE(model.fitted());
  EXPECT_EQ(model.score(make_block(5)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AutoEncoderTest, PaperArchitectureParameterCount) {
  // Input 32, hidden [64, 32, 32, 64], output 32:
  // 33*64 + 65*32 + 33*32 + 33*64 + 65*32 = 9,440 parameters.
  AutoEncoder model;
  ASSERT_TRUE(model.fit(make_block(100)).ok());
  EXPECT_EQ(model.parameter_count(), 9440u);
}

TEST(AutoEncoderTest, ExtraInputLayerVariantAddsLayer) {
  AutoEncoderConfig config = small_config();
  config.extra_input_layer = true;
  AutoEncoder model(config);
  ASSERT_TRUE(model.fit(make_block(100)).ok());
  // Adds a 32->32 layer: 9,440 + 33*32 = 10,496.
  EXPECT_EQ(model.parameter_count(), 10496u);
}

TEST(AutoEncoderTest, TrainingReducesLoss) {
  AutoEncoderConfig config;
  config.epochs_per_fit = 1;
  AutoEncoder model(config);
  auto block = make_block(400, 0.0);
  ASSERT_TRUE(model.fit(block).ok());
  const double first = model.last_loss();
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(model.partial_fit(block).ok());
  }
  EXPECT_LT(model.last_loss(), first * 0.7);
}

TEST(AutoEncoderTest, DetectsInjectedOutliers) {
  AutoEncoderConfig config = small_config();
  config.epochs_per_fit = 30;
  AutoEncoder model(config);
  auto block = make_block(1500, 0.05);
  ASSERT_TRUE(model.fit(block).ok());
  auto scores = model.score(block);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(roc_auc(scores.value(), block.labels), 0.85);
}

TEST(AutoEncoderTest, ScoresAreNonNegative) {
  AutoEncoder model(small_config());
  auto block = make_block(200);
  ASSERT_TRUE(model.fit(block).ok());
  for (double s : model.score(block).value()) EXPECT_GE(s, 0.0);
}

TEST(AutoEncoderTest, TrainingRowCapBoundsEpochCost) {
  AutoEncoderConfig config = small_config();
  config.max_training_rows = 64;
  AutoEncoder model(config);
  auto big = make_block(5000);
  ASSERT_TRUE(model.fit(big).ok());  // fast because only 64 rows train
  auto scores = model.score(big);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores.value().size(), 5000u);  // scoring covers all rows
}

TEST(AutoEncoderTest, FeatureMismatchRejected) {
  AutoEncoder model(small_config());
  ASSERT_TRUE(model.fit(make_block(100)).ok());
  data::DataBlock narrow;
  narrow.rows = 1;
  narrow.cols = 3;
  narrow.values.assign(3, 0.0);
  EXPECT_EQ(model.partial_fit(narrow).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(model.score(narrow).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AutoEncoderTest, SaveLoadRoundTripPreservesScores) {
  AutoEncoder model(small_config());
  auto block = make_block(300);
  ASSERT_TRUE(model.fit(block).ok());
  const auto before = model.score(block).value();

  AutoEncoder restored;
  ASSERT_TRUE(restored.load(model.save()).ok());
  EXPECT_EQ(restored.parameter_count(), model.parameter_count());
  const auto after = restored.score(block).value();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i], after[i], 1e-12);
  }
}

TEST(AutoEncoderTest, LoadedModelCanKeepTraining) {
  AutoEncoder model(small_config());
  auto block = make_block(300);
  ASSERT_TRUE(model.fit(block).ok());
  AutoEncoder restored(small_config());
  ASSERT_TRUE(restored.load(model.save()).ok());
  EXPECT_TRUE(restored.partial_fit(block).ok());
}

TEST(AutoEncoderTest, LoadGarbageRejected) {
  AutoEncoder model;
  EXPECT_FALSE(model.load(Bytes{1}).ok());
}

TEST(AutoEncoderTest, DeterministicWithSameSeed) {
  AutoEncoderConfig config = small_config();
  config.seed = 5;
  auto block = make_block(200);
  AutoEncoder a(config), b(config);
  ASSERT_TRUE(a.fit(block).ok());
  ASSERT_TRUE(b.fit(block).ok());
  const auto sa = a.score(block).value();
  const auto sb = b.score(block).value();
  for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

TEST(AutoEncoderTest, CustomLayerShapes) {
  AutoEncoderConfig config = small_config();
  config.hidden_layers = {8, 4, 8};
  AutoEncoder model(config);
  ASSERT_TRUE(model.fit(make_block(100)).ok());
  // 33*8 + 9*4 + 5*8 + 9*32 = 264 + 36 + 40 + 288 = 628.
  EXPECT_EQ(model.parameter_count(), 628u);
}

}  // namespace
}  // namespace pe::ml
