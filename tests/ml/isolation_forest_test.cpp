#include "ml/isolation_forest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.h"
#include "ml/outlier.h"

namespace pe::ml {
namespace {

data::DataBlock make_block(std::size_t rows, double outlier_fraction = 0.05,
                           std::uint64_t seed = 7) {
  data::GeneratorConfig config;
  config.clusters = 5;
  config.outlier_fraction = outlier_fraction;
  config.seed = seed;
  data::Generator gen(config);
  return gen.generate(rows);
}

TEST(IsolationForestTest, AveragePathLengthMatchesFormula) {
  EXPECT_EQ(IsolationForest::average_path_length(0), 0.0);
  EXPECT_EQ(IsolationForest::average_path_length(1), 0.0);
  EXPECT_EQ(IsolationForest::average_path_length(2), 1.0);
  // c(256) ~ 10.24 (standard reference value).
  EXPECT_NEAR(IsolationForest::average_path_length(256), 10.24, 0.1);
  // Monotone in n.
  EXPECT_LT(IsolationForest::average_path_length(64),
            IsolationForest::average_path_length(256));
}

TEST(IsolationForestTest, UnfittedRefusesToScore) {
  IsolationForest model;
  EXPECT_FALSE(model.fitted());
  EXPECT_EQ(model.score(make_block(5)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(IsolationForestTest, FitBuildsConfiguredTreeCount) {
  IsolationForestConfig config;
  config.trees = 100;  // paper default
  IsolationForest model(config);
  ASSERT_TRUE(model.fit(make_block(1000)).ok());
  EXPECT_EQ(model.tree_count(), 100u);
  EXPECT_GT(model.parameter_count(), 0u);
}

TEST(IsolationForestTest, ScoresInUnitRange) {
  IsolationForest model;
  auto block = make_block(1000);
  ASSERT_TRUE(model.fit(block).ok());
  auto scores = model.score(block);
  ASSERT_TRUE(scores.ok());
  for (double s : scores.value()) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(IsolationForestTest, DetectsInjectedOutliers) {
  IsolationForest model;
  auto block = make_block(2000, 0.05);
  ASSERT_TRUE(model.fit(block).ok());
  auto scores = model.score(block);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(roc_auc(scores.value(), block.labels), 0.9);
}

TEST(IsolationForestTest, ObviousOutlierScoresAboveHalf) {
  IsolationForest model;
  auto block = make_block(1000, 0.0);
  ASSERT_TRUE(model.fit(block).ok());
  data::DataBlock probe;
  probe.rows = 1;
  probe.cols = 32;
  probe.values.assign(32, 1000.0);  // absurdly far away
  auto scores = model.score(probe);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores.value()[0], 0.6);
}

TEST(IsolationForestTest, PartialFitRefreshesTreesIncrementally) {
  IsolationForestConfig config;
  config.trees = 20;
  config.refresh_fraction = 0.25;  // 5 trees per update
  IsolationForest model(config);
  ASSERT_TRUE(model.partial_fit(make_block(500, 0.05, 1)).ok());
  EXPECT_EQ(model.tree_count(), 20u);
  ASSERT_TRUE(model.partial_fit(make_block(500, 0.05, 2)).ok());
  EXPECT_EQ(model.tree_count(), 20u);  // stays constant

  // After enough updates on shifted data, the model still detects
  // outliers of the new distribution.
  for (int i = 3; i < 12; ++i) {
    ASSERT_TRUE(model.partial_fit(make_block(500, 0.05, i)).ok());
  }
  auto block = make_block(1000, 0.05, 50);
  auto scores = model.score(block);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(roc_auc(scores.value(), block.labels), 0.8);
}

TEST(IsolationForestTest, FeatureMismatchRejected) {
  IsolationForest model;
  ASSERT_TRUE(model.fit(make_block(200)).ok());
  data::DataBlock narrow;
  narrow.rows = 1;
  narrow.cols = 3;
  narrow.values.assign(3, 0.0);
  EXPECT_EQ(model.score(narrow).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(model.partial_fit(narrow).code(), StatusCode::kInvalidArgument);
}

TEST(IsolationForestTest, ConstantDataProducesUniformScores) {
  IsolationForest model;
  data::DataBlock block;
  block.rows = 100;
  block.cols = 4;
  block.values.assign(400, 3.0);  // every point identical
  ASSERT_TRUE(model.fit(block).ok());
  auto scores = model.score(block);
  ASSERT_TRUE(scores.ok());
  for (double s : scores.value()) {
    EXPECT_DOUBLE_EQ(s, scores.value()[0]);
  }
}

TEST(IsolationForestTest, SaveLoadRoundTripPreservesScores) {
  IsolationForestConfig config;
  config.trees = 10;
  IsolationForest model(config);
  auto block = make_block(500);
  ASSERT_TRUE(model.fit(block).ok());
  const auto before = model.score(block).value();

  IsolationForest restored;
  ASSERT_TRUE(restored.load(model.save()).ok());
  EXPECT_EQ(restored.tree_count(), 10u);
  const auto after = restored.score(block).value();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i], after[i]);
  }
}

TEST(IsolationForestTest, LoadGarbageRejected) {
  IsolationForest model;
  EXPECT_FALSE(model.load(Bytes{9, 9}).ok());
}

TEST(IsolationForestTest, DeterministicWithSameSeed) {
  IsolationForestConfig config;
  config.trees = 5;
  config.seed = 11;
  auto block = make_block(500);
  IsolationForest a(config), b(config);
  ASSERT_TRUE(a.fit(block).ok());
  ASSERT_TRUE(b.fit(block).ok());
  const auto sa = a.score(block).value();
  const auto sb = b.score(block).value();
  for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

class ForestSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ForestSizeSweep, AucImprovesOrHoldsWithMoreTrees) {
  IsolationForestConfig config;
  config.trees = GetParam();
  IsolationForest model(config);
  auto block = make_block(1500, 0.05);
  ASSERT_TRUE(model.fit(block).ok());
  auto scores = model.score(block);
  ASSERT_TRUE(scores.ok());
  // Even small forests should beat chance comfortably on this data.
  EXPECT_GT(roc_auc(scores.value(), block.labels), 0.8);
}

INSTANTIATE_TEST_SUITE_P(TreeCounts, ForestSizeSweep,
                         ::testing::Values(5, 20, 50, 100));

}  // namespace
}  // namespace pe::ml
