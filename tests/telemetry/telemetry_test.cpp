#include <gtest/gtest.h>

#include "telemetry/collector.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"

namespace pe::tel {
namespace {

// ---------- spans ----------

TEST(MessageSpanTest, DerivedLatencies) {
  MessageSpan span;
  span.produced_ns = 1'000'000;        // t = 1 ms
  span.broker_ns = 3'000'000;          // t = 3 ms
  span.consumed_ns = 6'000'000;        // t = 6 ms
  span.process_start_ns = 6'500'000;   // t = 6.5 ms
  span.process_end_ns = 11'000'000;    // t = 11 ms
  EXPECT_TRUE(span.complete());
  EXPECT_DOUBLE_EQ(span.end_to_end_ms(), 10.0);
  EXPECT_DOUBLE_EQ(span.ingress_ms(), 2.0);
  EXPECT_DOUBLE_EQ(span.broker_residency_ms(), 3.0);
  EXPECT_DOUBLE_EQ(span.consumer_queue_ms(), 0.5);
  EXPECT_DOUBLE_EQ(span.processing_ms(), 4.5);
}

TEST(MessageSpanTest, MissingStagesYieldZero) {
  MessageSpan span;
  span.produced_ns = 100;
  EXPECT_FALSE(span.complete());
  EXPECT_EQ(span.end_to_end_ms(), 0.0);
  EXPECT_EQ(span.broker_residency_ms(), 0.0);
}

TEST(MessageSpanTest, OutOfOrderTimestampsClampToZero) {
  // Clock skew guard: b < a reports 0 instead of negative.
  EXPECT_EQ(MessageSpan::ms_between(100, 50), 0.0);
}

// ---------- collector ----------

TEST(SpanCollectorTest, TracksLifecycle) {
  SpanCollector collector;
  collector.on_produced(1, "device-0", 0, 1024, 25, 1000);
  EXPECT_EQ(collector.total_count(), 1u);
  EXPECT_EQ(collector.completed_count(), 0u);

  collector.on_sent(1, 2000);
  collector.on_broker(1, 3000);
  collector.on_consumed(1, 4000);
  collector.on_process_start(1, 5000);
  collector.on_process_end(1, 6000);
  EXPECT_EQ(collector.completed_count(), 1u);

  const auto spans = collector.completed();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].producer_id, "device-0");
  EXPECT_EQ(spans[0].payload_bytes, 1024u);
  EXPECT_EQ(spans[0].rows, 25u);
  EXPECT_EQ(spans[0].broker_ns, 3000u);
}

TEST(SpanCollectorTest, UpdatesForUnknownIdAreIgnored) {
  SpanCollector collector;
  collector.on_sent(99, 1000);  // never produced
  EXPECT_EQ(collector.total_count(), 0u);
}

TEST(SpanCollectorTest, SnapshotIncludesIncomplete) {
  SpanCollector collector;
  collector.on_produced(1, "d", 0, 10, 1, 100);
  collector.on_produced(2, "d", 0, 10, 1, 200);
  collector.on_process_end(1, 300);
  EXPECT_EQ(collector.snapshot().size(), 2u);
  EXPECT_EQ(collector.completed().size(), 1u);
  collector.clear();
  EXPECT_EQ(collector.total_count(), 0u);
}

// ---------- report ----------

std::vector<MessageSpan> make_spans(std::size_t n,
                                    std::uint64_t gap_ns = 1'000'000) {
  std::vector<MessageSpan> spans;
  for (std::size_t i = 0; i < n; ++i) {
    MessageSpan s;
    s.message_id = i;
    s.payload_bytes = 1000;
    s.rows = 10;
    s.produced_ns = 1'000'000 + i * gap_ns;
    s.broker_ns = s.produced_ns + 500'000;
    s.consumed_ns = s.broker_ns + 300'000;
    s.process_start_ns = s.consumed_ns + 100'000;
    s.process_end_ns = s.process_start_ns + 2'000'000;
    spans.push_back(s);
  }
  return spans;
}

TEST(RunReportTest, AggregatesThroughputAndLatency) {
  const auto report = build_report(make_spans(11), "test-run");
  EXPECT_EQ(report.messages, 11u);
  EXPECT_EQ(report.payload_bytes, 11'000u);
  EXPECT_EQ(report.rows, 110u);
  // Window: first produce (1 ms) to last process end (ends at
  // 1 + 10 + 0.5 + 0.3 + 0.1 + 2 = 13.9 ms) => 12.9 ms.
  EXPECT_NEAR(report.window_seconds, 0.0129, 1e-6);
  EXPECT_NEAR(report.messages_per_second, 11.0 / 0.0129, 1.0);
  EXPECT_NEAR(report.end_to_end_ms.mean, 2.9, 1e-9);
  EXPECT_NEAR(report.ingress_ms.mean, 0.5, 1e-9);
  EXPECT_NEAR(report.processing_ms.mean, 2.0, 1e-9);
  EXPECT_EQ(report.label, "test-run");
}

TEST(RunReportTest, IgnoresIncompleteSpans) {
  auto spans = make_spans(3);
  spans[1].process_end_ns = 0;
  const auto report = build_report(spans);
  EXPECT_EQ(report.messages, 2u);
}

TEST(RunReportTest, EmptyInputIsAllZero) {
  const auto report = build_report({});
  EXPECT_EQ(report.messages, 0u);
  EXPECT_EQ(report.messages_per_second, 0.0);
  EXPECT_EQ(report.window_seconds, 0.0);
}

TEST(RunReportTest, CsvRowMatchesHeaderArity) {
  const auto report = build_report(make_spans(2), "x");
  const std::string header = RunReport::csv_header();
  const std::string row = report.to_csv_row();
  const auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count(header), count(row));
}

TEST(RunReportTest, ToStringMentionsKeyNumbers) {
  const auto report = build_report(make_spans(2), "label-x");
  const std::string s = report.to_string();
  EXPECT_NE(s.find("label-x"), std::string::npos);
  EXPECT_NE(s.find("throughput"), std::string::npos);
  EXPECT_NE(s.find("processing"), std::string::npos);
}

// ---------- metrics registry ----------

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  registry.counter("a").add();
  registry.counter("a").add(4);
  registry.counter("b").add(2);
  const auto counters = registry.counters();
  EXPECT_EQ(counters.at("a"), 5u);
  EXPECT_EQ(counters.at("b"), 2u);
}

TEST(MetricsRegistryTest, GaugesHoldLatest) {
  MetricsRegistry registry;
  registry.gauge("g").set(1.5);
  registry.gauge("g").set(2.5);
  EXPECT_DOUBLE_EQ(registry.gauges().at("g"), 2.5);
}

TEST(MetricsRegistryTest, HistogramsSummarize) {
  MetricsRegistry registry;
  registry.histogram("h").record(1.0);
  registry.histogram("h").record(3.0);
  const auto h = registry.histograms().at("h");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.mean, 2.0);
}

TEST(MetricsRegistryTest, ReferencesAreStable) {
  MetricsRegistry registry;
  Counter& c = registry.counter("stable");
  registry.counter("other").add();
  c.add(10);
  EXPECT_EQ(registry.counters().at("stable"), 10u);
}

TEST(MetricsRegistryTest, ToStringListsEverything) {
  MetricsRegistry registry;
  registry.counter("count.x").add();
  registry.gauge("gauge.y").set(1.0);
  registry.histogram("hist.z").record(2.0);
  const std::string s = registry.to_string();
  EXPECT_NE(s.find("count.x"), std::string::npos);
  EXPECT_NE(s.find("gauge.y"), std::string::npos);
  EXPECT_NE(s.find("hist.z"), std::string::npos);
}

TEST(MetricsRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace pe::tel
