#include "telemetry/energy.h"

#include <gtest/gtest.h>

namespace pe::tel {
namespace {

EnergyInputs base_inputs() {
  EnergyInputs in;
  in.window_seconds = 10.0;
  in.edge_busy_seconds = 8.0;
  in.cloud_busy_seconds = 5.0;
  in.edge_devices = 4;
  in.cloud_cores = 10;
  in.wan_bytes = 100'000'000;  // 100 MB
  in.lan_bytes = 10'000'000;
  return in;
}

TEST(EnergyModelTest, BreakdownArithmetic) {
  EnergyModelConfig config;
  config.edge_device = {2.0, 3.0};
  config.cloud_core = {4.0, 10.0};
  config.wan_joules_per_byte = 1e-8;
  config.lan_joules_per_byte = 1e-9;
  EnergyModel model(config);

  const auto out = model.estimate(base_inputs());
  EXPECT_DOUBLE_EQ(out.edge_idle_j, 2.0 * 4 * 10.0);
  EXPECT_DOUBLE_EQ(out.edge_active_j, 3.0 * 8.0);
  EXPECT_DOUBLE_EQ(out.cloud_idle_j, 4.0 * 10 * 10.0);
  EXPECT_DOUBLE_EQ(out.cloud_active_j, 10.0 * 5.0);
  EXPECT_DOUBLE_EQ(out.wan_transfer_j, 1.0);
  EXPECT_DOUBLE_EQ(out.lan_transfer_j, 0.01);
  EXPECT_DOUBLE_EQ(out.total_j(), 80.0 + 24.0 + 400.0 + 50.0 + 1.0 + 0.01);
}

TEST(EnergyModelTest, MoreWanBytesMoreEnergy) {
  EnergyModel model;
  auto in = base_inputs();
  const double before = model.estimate(in).total_j();
  in.wan_bytes *= 10;
  EXPECT_GT(model.estimate(in).total_j(), before);
}

TEST(EnergyModelTest, MoreBusyTimeMoreEnergy) {
  EnergyModel model;
  auto in = base_inputs();
  const double before = model.estimate(in).total_j();
  in.cloud_busy_seconds *= 2;
  EXPECT_GT(model.estimate(in).total_j(), before);
}

TEST(EnergyModelTest, ZeroInputsZeroEnergy) {
  EnergyModel model;
  const auto out = model.estimate(EnergyInputs{});
  EXPECT_DOUBLE_EQ(out.total_j(), 0.0);
  EXPECT_DOUBLE_EQ(out.joules_per_mb(0.0), 0.0);
}

TEST(EnergyModelTest, NegativeDurationsClamped) {
  EnergyModel model;
  EnergyInputs in;
  in.window_seconds = -5.0;
  in.edge_busy_seconds = -1.0;
  in.cloud_busy_seconds = -1.0;
  in.edge_devices = 3;
  const auto out = model.estimate(in);
  EXPECT_DOUBLE_EQ(out.total_j(), 0.0);
}

TEST(EnergyModelTest, JoulesPerMb) {
  EnergyModelConfig config;
  config.edge_device = {0.0, 0.0};
  config.cloud_core = {0.0, 0.0};
  config.wan_joules_per_byte = 1e-6;
  EnergyModel model(config);
  EnergyInputs in;
  in.wan_bytes = 2'000'000;  // 2 J
  const auto out = model.estimate(in);
  EXPECT_DOUBLE_EQ(out.joules_per_mb(2.0), 1.0);
}

TEST(EnergyModelTest, InputsFromRunReport) {
  RunReport report;
  report.window_seconds = 4.0;
  report.produce_window_seconds = 3.0;
  report.messages = 10;
  report.processing_ms.mean = 200.0;  // 0.2 s x 10 msgs = 2 s busy

  EnergyModel model;
  const auto in = model.inputs_from_run(report, 2, 8, 111, 222);
  EXPECT_DOUBLE_EQ(in.window_seconds, 4.0);
  EXPECT_DOUBLE_EQ(in.edge_busy_seconds, 6.0);  // 3 s x 2 devices
  EXPECT_DOUBLE_EQ(in.cloud_busy_seconds, 2.0);
  EXPECT_EQ(in.edge_devices, 2u);
  EXPECT_EQ(in.cloud_cores, 8u);
  EXPECT_EQ(in.wan_bytes, 111u);
  EXPECT_EQ(in.lan_bytes, 222u);
}

TEST(EnergyModelTest, ToStringListsComponents) {
  EnergyModel model;
  const auto out = model.estimate(base_inputs());
  const std::string s = out.to_string();
  EXPECT_NE(s.find("energy [J]"), std::string::npos);
  EXPECT_NE(s.find("wan"), std::string::npos);
}

// Shape: the edge-centric deployment trades WAN energy for device
// compute energy — the trade-off the paper's future work targets.
TEST(EnergyModelTest, HybridReducesWanEnergyShare) {
  EnergyModel model;
  auto cloud_centric = base_inputs();
  auto hybrid = base_inputs();
  hybrid.wan_bytes /= 8;          // 8x edge aggregation
  hybrid.edge_busy_seconds *= 1.2;  // extra edge compute for aggregation
  const auto cc = model.estimate(cloud_centric);
  const auto hy = model.estimate(hybrid);
  EXPECT_LT(hy.wan_transfer_j, cc.wan_transfer_j);
  EXPECT_GT(hy.edge_active_j, cc.edge_active_j);
}

}  // namespace
}  // namespace pe::tel
