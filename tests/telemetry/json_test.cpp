#include "telemetry/json.h"

#include <gtest/gtest.h>

namespace pe::tel {
namespace {

TEST(JsonWriterTest, SimpleObject) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("run-1");
  w.key("count").value(std::uint64_t{42});
  w.key("ok").value(true);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"name":"run-1","count":42,"ok":true})");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter w;
  w.begin_object();
  w.key("list");
  w.begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.key("inner");
  w.begin_object();
  w.key("x").value(1.5);
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,2],"inner":{"x":1.5}})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("a\"b\\c\nd\te");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriterTest, ControlCharactersEscapedAsUnicode) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value(std::string("a\x01z"));
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\u0001z\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::nan(""));
  w.value(1.0);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,1]");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("a");
  w.begin_array();
  w.end_array();
  w.key("o");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":[],"o":{}})");
}

TEST(ReportJsonTest, ContainsAllSections) {
  RunReport report;
  report.label = "json-run";
  report.messages = 3;
  report.payload_bytes = 999;
  report.window_seconds = 1.5;
  report.messages_per_second = 2.0;
  report.end_to_end_ms.count = 3;
  report.end_to_end_ms.mean = 7.5;

  const std::string json = to_json(report);
  EXPECT_NE(json.find(R"("label":"json-run")"), std::string::npos);
  EXPECT_NE(json.find(R"("messages":3)"), std::string::npos);
  EXPECT_NE(json.find(R"("component_rates")"), std::string::npos);
  EXPECT_NE(json.find(R"("end_to_end")"), std::string::npos);
  EXPECT_NE(json.find(R"("mean":7.5)"), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace pe::tel
