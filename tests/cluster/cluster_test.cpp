// BrokerCluster functional coverage: deterministic sharding, leader
// routing, synchronous + catch-up replication, ack policies, epoch
// fencing, and the cluster clients' retry behavior.
#include "cluster/broker_cluster.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "cluster/cluster_client.h"
#include "cluster/shard_map.h"

namespace pe::cluster {
namespace {

using namespace std::chrono_literals;

broker::Record make_record(const std::string& key, std::size_t value_size = 32,
                           std::uint8_t fill = 0x5a) {
  broker::Record r;
  r.key = key;
  r.value = Bytes(value_size, fill);
  return r;
}

/// Spins (wall-bounded) until `pred` holds; cluster timings are a few
/// emulated milliseconds, so two wall seconds is generous.
template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds wall_budget = 2000ms) {
  Stopwatch sw;
  while (sw.elapsed_ms() < static_cast<double>(wall_budget.count())) {
    if (pred()) return true;
    Clock::sleep_exact(1ms);
  }
  return pred();
}

ClusterOptions fast_options(std::uint32_t brokers = 3,
                            std::uint32_t rf = 3) {
  ClusterOptions o;
  o.brokers = brokers;
  o.replication_factor = rf;
  o.heartbeat_interval = 1ms;
  o.session_timeout = 6ms;
  o.ack_timeout = 40ms;
  return o;
}

TEST(ShardMapTest, DeterministicAcrossCalls) {
  for (std::uint32_t p = 0; p < 8; ++p) {
    EXPECT_EQ(assign_replicas("telemetry", p, 5, 3),
              assign_replicas("telemetry", p, 5, 3));
  }
  EXPECT_EQ(stable_hash("telemetry"), stable_hash("telemetry"));
  EXPECT_NE(stable_hash("telemetry"), stable_hash("telemetrz"));
}

TEST(ShardMapTest, ReplicaSetsAreDistinctAndCapped) {
  auto replicas = assign_replicas("t", 0, 5, 3);
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_EQ(std::set<BrokerId>(replicas.begin(), replicas.end()).size(), 3u);
  // RF capped at the broker count.
  EXPECT_EQ(assign_replicas("t", 0, 2, 3).size(), 2u);
  EXPECT_TRUE(assign_replicas("t", 0, 0, 3).empty());
}

TEST(ShardMapTest, LeadersRotateAcrossPartitions) {
  // Consecutive partitions anchor at consecutive ring positions, so a
  // multi-partition topic spreads its leaders over the cluster.
  std::set<BrokerId> leaders;
  for (std::uint32_t p = 0; p < 5; ++p) {
    leaders.insert(assign_replicas("events", p, 5, 3)[0]);
  }
  EXPECT_EQ(leaders.size(), 5u);
}

TEST(ClusterTest, CreateTopicAssignsLeadersAndReplicas) {
  BrokerCluster cluster(fast_options());
  ClusterTopicConfig four;
  four.partitions = 4;
  ASSERT_TRUE(cluster.create_topic("events", four).ok());
  EXPECT_TRUE(cluster.has_topic("events"));
  EXPECT_EQ(cluster.partition_count("events"), 4u);
  for (std::uint32_t p = 0; p < 4; ++p) {
    auto meta = cluster.metadata("events", p);
    ASSERT_TRUE(meta.ok());
    EXPECT_EQ(meta.value().replicas.size(), 3u);
    EXPECT_NE(meta.value().leader, kNoBroker);
    EXPECT_EQ(meta.value().epoch, 1u);
    // The leader is the preferred (first) replica on a fresh cluster.
    EXPECT_EQ(meta.value().leader, meta.value().replicas[0]);
  }
  // The offsets topic exists on every member.
  EXPECT_TRUE(cluster.has_topic(kOffsetsTopic));
  for (BrokerId id = 0; id < cluster.broker_count(); ++id) {
    EXPECT_TRUE(cluster.broker(id)->has_topic(kOffsetsTopic));
  }
}

TEST(ClusterTest, ProduceViaNonLeaderFailsNotLeaderAndIsTransient) {
  BrokerCluster cluster(fast_options());
  ASSERT_TRUE(cluster.create_topic("events").ok());
  auto leader = cluster.leader("events", 0);
  ASSERT_TRUE(leader.ok());
  const BrokerId wrong = (leader.value() + 1) % cluster.broker_count();
  auto produced = cluster.produce(wrong, "events", 0, {make_record("k")});
  ASSERT_FALSE(produced.ok());
  EXPECT_EQ(produced.status().code(), StatusCode::kNotLeader);
  // Clients treat NOT_LEADER as transient: refresh metadata and retry.
  EXPECT_TRUE(produced.status().is_transient());
}

TEST(ClusterTest, ReplicationConvergesWithIdenticalContent) {
  BrokerCluster cluster(fast_options());
  ASSERT_TRUE(cluster.create_topic("events").ok());
  auto leader = cluster.leader("events", 0);
  ASSERT_TRUE(leader.ok());
  std::vector<broker::Record> batch;
  for (int i = 0; i < 50; ++i) {
    batch.push_back(make_record("k" + std::to_string(i), 64,
                                static_cast<std::uint8_t>(i)));
  }
  auto produced = cluster.produce(leader.value(), "events", 0,
                                  std::move(batch), AckPolicy::kAll);
  ASSERT_TRUE(produced.ok()) << produced.status().to_string();
  ASSERT_TRUE(
      wait_until([&] { return cluster.replicas_converged("events", 0); }));

  auto meta = cluster.metadata("events", 0);
  ASSERT_TRUE(meta.ok());
  broker::FetchSpec spec;
  spec.offset = 0;
  spec.max_records = 100;
  std::vector<std::vector<broker::ConsumedRecord>> per_replica;
  for (BrokerId r : meta.value().replicas) {
    auto fetched = cluster.broker(r)->fetch("events", 0, spec);
    ASSERT_TRUE(fetched.ok()) << fetched.status().to_string();
    per_replica.push_back(std::move(fetched).value());
  }
  for (std::size_t r = 1; r < per_replica.size(); ++r) {
    ASSERT_EQ(per_replica[r].size(), per_replica[0].size());
    for (std::size_t i = 0; i < per_replica[0].size(); ++i) {
      EXPECT_EQ(per_replica[r][i].offset, per_replica[0][i].offset);
      EXPECT_EQ(per_replica[r][i].record.key, per_replica[0][i].record.key);
      EXPECT_EQ(per_replica[r][i].record.value.to_bytes(),
                per_replica[0][i].record.value.to_bytes());
    }
  }
  // Everything quorum-replicated => fully readable.
  auto hw = cluster.high_watermark("events", 0);
  ASSERT_TRUE(hw.ok());
  EXPECT_EQ(hw.value(), 50u);
}

TEST(ClusterTest, QuorumAcksTolerateOneIsolatedFollowerButNotTwo) {
  BrokerCluster cluster(fast_options());
  ASSERT_TRUE(cluster.create_topic("events").ok());
  auto meta = cluster.metadata("events", 0);
  ASSERT_TRUE(meta.ok());
  const BrokerId leader = meta.value().leader;
  std::vector<BrokerId> followers;
  for (BrokerId r : meta.value().replicas) {
    if (r != leader) followers.push_back(r);
  }
  ASSERT_EQ(followers.size(), 2u);

  ASSERT_TRUE(cluster.set_broker_isolated(followers[0], true).ok());
  auto produced = cluster.produce(leader, "events", 0, {make_record("a")},
                                  AckPolicy::kQuorum);
  EXPECT_TRUE(produced.ok()) << produced.status().to_string();

  ASSERT_TRUE(cluster.set_broker_isolated(followers[1], true).ok());
  produced = cluster.produce(leader, "events", 0, {make_record("b")},
                             AckPolicy::kQuorum);
  ASSERT_FALSE(produced.ok());
  EXPECT_EQ(produced.status().code(), StatusCode::kTimeout);
  EXPECT_TRUE(produced.status().is_transient());

  // acks=leader still succeeds with the whole quorum gone.
  produced = cluster.produce(leader, "events", 0, {make_record("c")},
                             AckPolicy::kLeader);
  EXPECT_TRUE(produced.ok()) << produced.status().to_string();
}

TEST(ClusterTest, HighWatermarkHidesUnreplicatedRecords) {
  BrokerCluster cluster(fast_options());
  ASSERT_TRUE(cluster.create_topic("events").ok());
  auto meta = cluster.metadata("events", 0);
  ASSERT_TRUE(meta.ok());
  const BrokerId leader = meta.value().leader;
  for (BrokerId r : meta.value().replicas) {
    if (r != leader) ASSERT_TRUE(cluster.set_broker_isolated(r, true).ok());
  }
  auto produced = cluster.produce(leader, "events", 0, {make_record("a")},
                                  AckPolicy::kLeader);
  ASSERT_TRUE(produced.ok());
  // On the leader but on no follower: invisible to consumers.
  auto hw = cluster.high_watermark("events", 0);
  ASSERT_TRUE(hw.ok());
  EXPECT_EQ(hw.value(), 0u);
  broker::FetchSpec spec;
  spec.offset = 0;
  auto fetched = cluster.fetch(leader, "events", 0, spec);
  ASSERT_TRUE(fetched.ok());
  EXPECT_TRUE(fetched.value().empty());
  // Replication drains once a follower reconnects; the record surfaces.
  for (BrokerId r : meta.value().replicas) {
    if (r != leader) {
      ASSERT_TRUE(cluster.set_broker_isolated(r, false).ok());
      break;
    }
  }
  ASSERT_TRUE(wait_until([&] {
    auto watermark = cluster.high_watermark("events", 0);
    return watermark.ok() && watermark.value() == 1u;
  }));
}

TEST(ClusterTest, StaleEpochCommitIsFenced) {
  BrokerCluster cluster(fast_options());
  const broker::TopicPartition tp{"events", 0};
  ASSERT_TRUE(cluster.create_topic("events").ok());
  const std::uint64_t epoch = cluster.offsets_epoch();
  ASSERT_GT(epoch, 0u);
  EXPECT_TRUE(cluster.commit_offset("g", tp, 10, epoch).ok());
  auto stale = cluster.commit_offset("g", tp, 5, epoch - 1);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.code(), StatusCode::kNotLeader);
  // The fenced commit did not land.
  auto committed = cluster.committed_offset("g", tp);
  ASSERT_TRUE(committed.has_value());
  EXPECT_EQ(*committed, 10u);
}

TEST(ClusterClientTest, ProducerRetriesAcrossLeaderKill) {
  auto cluster = std::make_shared<BrokerCluster>(fast_options());
  ASSERT_TRUE(cluster->create_topic("events").ok());
  ClusterProducer producer(cluster);
  ASSERT_TRUE(producer.send("events", 0, make_record("before")).ok());

  auto leader = cluster->leader("events", 0);
  ASSERT_TRUE(leader.ok());
  ASSERT_TRUE(cluster->kill_broker(leader.value()).ok());

  // The send lands after the failover via NOT_LEADER/UNAVAILABLE retries
  // with capped backoff — no manual metadata handling.
  auto sent = producer.send("events", 0, make_record("after"));
  ASSERT_TRUE(sent.ok()) << sent.status().to_string();
  EXPECT_GE(cluster->failover_count(), 1u);
  EXPECT_GE(producer.stats().retries, 1u);
  auto new_leader = cluster->leader("events", 0);
  ASSERT_TRUE(new_leader.ok());
  EXPECT_NE(new_leader.value(), leader.value());
}

TEST(ClusterClientTest, ConsumerGroupEndToEnd) {
  auto cluster = std::make_shared<BrokerCluster>(fast_options());
  ClusterTopicConfig two;
  two.partitions = 2;
  ASSERT_TRUE(cluster->create_topic("events", two).ok());
  ClusterProducer producer(cluster);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(producer
                    .send("events", static_cast<std::uint32_t>(i % 2),
                          make_record("k" + std::to_string(i)))
                    .ok());
  }
  ClusterConsumer consumer(cluster, "readers");
  ASSERT_TRUE(consumer.subscribe({"events"}).ok());
  std::size_t consumed = 0;
  ASSERT_TRUE(wait_until([&] {
    auto polled = consumer.poll(5ms);
    if (polled.ok()) consumed += polled.value().size();
    return consumed >= 40;
  }));
  EXPECT_EQ(consumed, 40u);
  ASSERT_TRUE(consumer.commit().ok());
  // Commits are replicated: every member's __offsets replica converges.
  ASSERT_TRUE(
      wait_until([&] { return cluster->replicas_converged(kOffsetsTopic, 0); }));
  const broker::TopicPartition p0{"events", 0};
  const broker::TopicPartition p1{"events", 1};
  auto c0 = cluster->committed_offset("readers", p0);
  auto c1 = cluster->committed_offset("readers", p1);
  ASSERT_TRUE(c0.has_value());
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(*c0 + *c1, 40u);
  EXPECT_TRUE(consumer.close().ok());
}

TEST(ClusterClientTest, ThrottledProduceIsRetriedTransparently) {
  // Quota buckets refill in emulated time (wall x scale): speed up the
  // wait-out-the-hint half. Declared first so the scale is restored only
  // after the cluster (and its background threads) shut down.
  ScopedTimeScale scale(10.0);
  auto options = fast_options();
  options.admission.default_quota.bytes_per_sec = 20'000.0;
  options.admission.default_quota.burst_seconds = 1.0;
  auto cluster = std::make_shared<BrokerCluster>(options);
  ClusterTopicConfig one;
  one.partitions = 1;
  ASSERT_TRUE(cluster->create_topic("metrics", one).ok());

  RetryConfig retry;
  retry.max_attempts = 16;
  ClusterProducer producer(cluster, retry);

  // The first batch is larger than the whole burst depth: admitted
  // against the full bucket, leaving the client's quota in debt...
  std::vector<broker::Record> big;
  for (int i = 0; i < 250; ++i) {
    big.push_back(make_record("k" + std::to_string(i)));
  }
  ASSERT_TRUE(producer.send_batch("metrics", 0, std::move(big)).ok());

  // ...so the next send is throttled at the leader. The throttle is
  // transient: the producer backs off by at least the broker's
  // retry-after hint and succeeds — the caller never sees an error.
  ASSERT_TRUE(producer.send("metrics", 0, make_record("tail")).ok());
  const auto stats = producer.stats();
  EXPECT_EQ(stats.send_errors, 0u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GE(stats.throttle_waits, 1u);
  EXPECT_EQ(stats.records_sent, 251u);

  // Quotas gate clients only; replication is exempt, so the throttled
  // records still replicate to a full quorum.
  ASSERT_TRUE(wait_until([&] {
    return cluster->replicas_converged("metrics", 0);
  }));
}

}  // namespace
}  // namespace pe::cluster
