// Failover correctness: the guarantees DESIGN.md §10 promises, exercised
// the hard way — leaders killed mid-pipeline, committed offsets raced
// against offsets-leader elections, torn durable tails, and divergent
// deposed leaders.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "cluster/broker_cluster.h"
#include "cluster/cluster_client.h"
#include "fault/chaos_engine.h"

namespace pe::cluster {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

broker::Record make_record(const std::string& key, std::size_t value_size = 64,
                           std::uint8_t fill = 0x7e) {
  broker::Record r;
  r.key = key;
  r.value = Bytes(value_size, fill);
  return r;
}

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds wall_budget = 5000ms) {
  Stopwatch sw;
  while (sw.elapsed_ms() < static_cast<double>(wall_budget.count())) {
    if (pred()) return true;
    Clock::sleep_exact(1ms);
  }
  return pred();
}

ClusterOptions fast_options() {
  ClusterOptions o;
  o.brokers = 3;
  o.replication_factor = 3;
  o.heartbeat_interval = 1ms;
  o.session_timeout = 6ms;
  o.ack_timeout = 60ms;
  return o;
}

/// Reads the whole committed log of a partition through the cluster and
/// returns offset -> record key.
std::map<std::uint64_t, std::string> committed_log(
    BrokerCluster& cluster, const std::string& topic,
    std::uint32_t partition) {
  std::map<std::uint64_t, std::string> out;
  auto leader = cluster.leader(topic, partition);
  if (!leader.ok() || leader.value() == kNoBroker) return out;
  auto start = cluster.log_start_offset(topic, partition);
  auto hw = cluster.high_watermark(topic, partition);
  if (!start.ok() || !hw.ok()) return out;
  std::uint64_t offset = start.value();
  while (offset < hw.value()) {
    broker::FetchSpec spec;
    spec.offset = offset;
    spec.max_records = 512;
    auto fetched = cluster.fetch(leader.value(), topic, partition, spec);
    if (!fetched.ok() || fetched.value().empty()) break;
    for (const auto& r : fetched.value()) {
      out.emplace(r.offset, r.record.key);
      offset = r.offset + 1;
    }
  }
  return out;
}

class ClusterFailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("pe_cluster_failover_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name()))
               .string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

// The acceptance scenario: a partition leader dies mid-pipeline while a
// producer streams records at acks=quorum and a consumer group commits.
// Nothing that was acknowledged — record or offset commit — may be lost,
// and the cluster must recover within the bounded failover window.
TEST_F(ClusterFailoverTest, LeaderKillZeroCommittedOffsetLoss) {
  auto options = fast_options();
  options.durable_root = dir_;
  auto cluster = std::make_shared<BrokerCluster>(options);
  ASSERT_TRUE(cluster->create_topic("pipeline").ok());
  auto initial_leader = cluster->leader("pipeline", 0);
  ASSERT_TRUE(initial_leader.ok());
  const std::string leader_name =
      "broker-" + std::to_string(initial_leader.value());
  const broker::TopicPartition tp{"pipeline", 0};

  std::atomic<bool> stop{false};
  std::mutex acked_mutex;
  std::vector<std::pair<std::uint64_t, std::string>> acked;
  std::atomic<std::uint64_t> acked_count{0};
  std::thread producer_thread([&] {
    ClusterProducer producer(cluster, RetryConfig{}, AckPolicy::kQuorum);
    for (std::uint64_t i = 0; !stop.load(); ++i) {
      const std::string key = "m" + std::to_string(i);
      auto sent = producer.send("pipeline", 0, make_record(key));
      if (sent.ok()) {
        std::lock_guard<std::mutex> hold(acked_mutex);
        acked.emplace_back(sent.value(), key);
        acked_count.fetch_add(1);
      }
    }
  });

  // The consumer commits after every poll; `committed_floor` tracks the
  // highest position whose commit returned OK — the cluster owes us at
  // least that much after any failover.
  std::atomic<std::uint64_t> committed_floor{0};
  std::thread consumer_thread([&] {
    ClusterConsumerConfig config;
    config.auto_commit = false;
    ClusterConsumer consumer(cluster, "pipeline-readers", config);
    if (!consumer.subscribe({"pipeline"}).ok()) return;
    while (!stop.load()) {
      auto polled = consumer.poll(2ms);
      if (!polled.ok()) continue;
      if (consumer.commit().ok()) {
        if (auto pos = consumer.position(tp)) {
          committed_floor.store(*pos);
        }
      }
    }
    (void)consumer.close();
  });

  // Let the pipeline build up steam, then kill the leader through the
  // chaos engine's broker-targeted crash.
  ASSERT_TRUE(wait_until([&] { return acked_count.load() >= 50; }));
  fault::FaultPlan plan;
  plan.crash_cluster_broker(Duration::zero(), leader_name);
  fault::ChaosEngine engine(std::move(plan));
  engine.set_broker_cluster(cluster);
  ASSERT_TRUE(engine.start().ok());
  engine.join();
  ASSERT_FALSE(cluster->broker_alive(initial_leader.value()));

  // Bounded failover: a new leader within the session timeout plus a few
  // controller ticks (all wall-bounded here).
  ASSERT_TRUE(wait_until([&] {
    return cluster->failover_count() >= 1 && cluster->all_partitions_led();
  }));
  auto new_leader = cluster->leader("pipeline", 0);
  ASSERT_TRUE(new_leader.ok());
  EXPECT_NE(new_leader.value(), initial_leader.value());

  // The pipeline keeps moving after the failover.
  const std::uint64_t at_failover = acked_count.load();
  ASSERT_TRUE(wait_until([&] {
    return acked_count.load() >= at_failover + 50;
  }));
  stop.store(true);
  producer_thread.join();
  consumer_thread.join();

  // Zero acked-record loss: every offset the producer was given back is
  // still present on the new leader with the content that was sent.
  const auto log = committed_log(*cluster, "pipeline", 0);
  std::vector<std::pair<std::uint64_t, std::string>> acked_copy;
  {
    std::lock_guard<std::mutex> hold(acked_mutex);
    acked_copy = acked;
  }
  ASSERT_GE(acked_copy.size(), 100u);
  for (const auto& [offset, key] : acked_copy) {
    auto it = log.find(offset);
    ASSERT_NE(it, log.end()) << "acked offset " << offset << " lost";
    EXPECT_EQ(it->second, key) << "content diverged at offset " << offset;
  }

  // Zero committed-offset loss: the group's offset never regressed below
  // the highest successfully committed position.
  if (committed_floor.load() > 0) {
    auto committed = cluster->committed_offset("pipeline-readers", tp);
    ASSERT_TRUE(committed.has_value());
    EXPECT_GE(*committed, committed_floor.load());
  }
}

// Concurrent group commits racing two consecutive offsets-leader
// failovers: replay on the new leader must not resurrect stale offsets —
// each group's committed offset stays >= its highest OK-acked commit.
TEST_F(ClusterFailoverTest, OffsetsReplayUnderCommitRace) {
  auto cluster = std::make_shared<BrokerCluster>(fast_options());
  ASSERT_TRUE(cluster->create_topic("events").ok());
  const std::vector<std::string> groups = {"group-a", "group-b"};
  const broker::TopicPartition tp{"events", 0};

  std::atomic<bool> stop{false};
  std::vector<std::atomic<std::uint64_t>> max_ok(groups.size());
  std::vector<std::thread> committers;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    committers.emplace_back([&, g] {
      RetryConfig retry;
      for (std::uint64_t offset = 1; !stop.load(); ++offset) {
        Duration delay = retry.initial_backoff;
        for (std::size_t attempt = 0; attempt < retry.max_attempts;
             ++attempt) {
          if (attempt > 0) {
            Clock::sleep_scaled(delay);
            delay = std::min(delay * 2, retry.max_backoff);
          }
          // Fresh epoch per attempt, exactly like ClusterConsumer.
          auto s = cluster->commit_offset(groups[g], tp, offset,
                                          cluster->offsets_epoch());
          if (s.ok()) {
            max_ok[g].store(offset);
            break;
          }
          if (!s.is_transient()) break;
        }
      }
    });
  }

  auto check_floors = [&] {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const std::uint64_t floor = max_ok[g].load();
      if (floor == 0) continue;
      auto committed = cluster->committed_offset(groups[g], tp);
      ASSERT_TRUE(committed.has_value()) << groups[g];
      EXPECT_GE(*committed, floor) << groups[g] << " regressed after replay";
    }
  };

  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(wait_until([&] {
      for (auto& m : max_ok) {
        if (m.load() == 0) return false;
      }
      return true;
    }));
    auto leader = cluster->leader(kOffsetsTopic, 0);
    ASSERT_TRUE(leader.ok());
    const std::uint64_t epoch_before = cluster->offsets_epoch();
    const std::uint64_t failovers_before = cluster->failover_count();
    ASSERT_TRUE(cluster->kill_broker(leader.value()).ok());
    ASSERT_TRUE(wait_until([&] {
      return cluster->failover_count() > failovers_before &&
             cluster->all_partitions_led();
    }));
    // Epoch fencing: the pre-failover epoch is dead.
    EXPECT_GT(cluster->offsets_epoch(), epoch_before);
    auto stale = cluster->commit_offset(groups[0], tp, 1, epoch_before);
    ASSERT_FALSE(stale.ok());
    EXPECT_EQ(stale.code(), StatusCode::kNotLeader);
    check_floors();
    // Bring the member back before the next round so a quorum survives
    // the second kill.
    ASSERT_TRUE(cluster->restore_broker(leader.value()).ok());
  }

  // Let commits land on the post-failover leader, then final check.
  const std::uint64_t resume_target = max_ok[0].load() + 5;
  ASSERT_TRUE(wait_until([&] { return max_ok[0].load() >= resume_target; }));
  stop.store(true);
  for (auto& t : committers) t.join();
  check_floors();
}

// A follower that died mid-write recovers with a torn tail, truncates it,
// and catches back up — served from the leader's mmap'd segments (the
// recovered leader's hot window is empty, so every catch-up read is a
// cold segment read).
TEST_F(ClusterFailoverTest, FollowerCatchUpFromRecoveredSegments) {
  auto options = fast_options();
  options.durable_root = dir_;
  options.storage.segment_max_bytes = 4096;  // force several segments
  options.storage.flush_every_n = 64;        // leave an unsynced tail
  auto cluster = std::make_shared<BrokerCluster>(options);
  ASSERT_TRUE(cluster->create_topic("wal").ok());
  auto meta = cluster->metadata("wal", 0);
  ASSERT_TRUE(meta.ok());
  const BrokerId leader = meta.value().leader;
  std::vector<BrokerId> followers;
  for (BrokerId r : meta.value().replicas) {
    if (r != leader) followers.push_back(r);
  }
  ASSERT_EQ(followers.size(), 2u);

  // One follower misses everything; quorum = leader + the other follower.
  ASSERT_TRUE(cluster->set_broker_isolated(followers[1], true).ok());
  for (int i = 0; i < 200; ++i) {
    auto produced =
        cluster->produce(leader, "wal", 0,
                         {make_record("k" + std::to_string(i), 100)},
                         AckPolicy::kQuorum);
    ASSERT_TRUE(produced.ok()) << produced.status().to_string();
  }

  // Power-cut the whole quorum: the leader loses most of its unsynced
  // tail (torn frame for recovery to truncate), the caught-up follower
  // keeps its full log on disk.
  ASSERT_TRUE(cluster->kill_broker(leader).ok());
  ASSERT_TRUE(cluster->kill_broker(followers[0]).ok());
  ASSERT_TRUE(cluster->restore_broker(followers[0], /*keep_fraction=*/1.0)
                  .ok());
  ASSERT_TRUE(wait_until([&] { return cluster->all_partitions_led(); }));
  auto new_leader = cluster->leader("wal", 0);
  ASSERT_TRUE(new_leader.ok());
  EXPECT_EQ(new_leader.value(), followers[0]);

  // The stale follower reconnects and the torn-tail leader rejoins; both
  // refill from the recovered leader's segment files.
  ASSERT_TRUE(cluster->set_broker_isolated(followers[1], false).ok());
  ASSERT_TRUE(cluster->restore_broker(leader, /*keep_fraction=*/0.35).ok());
  ASSERT_TRUE(wait_until([&] {
    return cluster->replicas_converged("wal", 0);
  }));

  // All three replicas hold the identical 200-record log.
  broker::FetchSpec spec;
  spec.offset = 0;
  spec.max_records = 400;
  for (BrokerId r : meta.value().replicas) {
    auto fetched = cluster->broker(r)->fetch("wal", 0, spec);
    ASSERT_TRUE(fetched.ok())
        << "replica " << r << ": " << fetched.status().to_string();
    ASSERT_EQ(fetched.value().size(), 200u) << "replica " << r;
    for (std::size_t i = 0; i < fetched.value().size(); ++i) {
      ASSERT_EQ(fetched.value()[i].offset, i) << "replica " << r;
      ASSERT_EQ(fetched.value()[i].record.key, "k" + std::to_string(i))
          << "replica " << r;
    }
  }
  auto hw = cluster->high_watermark("wal", 0);
  ASSERT_TRUE(hw.ok());
  EXPECT_EQ(hw.value(), 200u);
}

// A deposed leader holding acks=leader records the quorum never saw must
// truncate them before rejoining: the post-failover log wins, and the
// casualties never reappear on any replica.
TEST_F(ClusterFailoverTest, DeposedLeaderTruncatesDivergentSuffix) {
  auto cluster = std::make_shared<BrokerCluster>(fast_options());
  ASSERT_TRUE(cluster->create_topic("div").ok());
  auto meta = cluster->metadata("div", 0);
  ASSERT_TRUE(meta.ok());
  const BrokerId leader = meta.value().leader;
  std::vector<BrokerId> followers;
  for (BrokerId r : meta.value().replicas) {
    if (r != leader) followers.push_back(r);
  }

  std::vector<broker::Record> base;
  for (int i = 0; i < 20; ++i) {
    base.push_back(make_record("base-" + std::to_string(i)));
  }
  auto produced =
      cluster->produce(leader, "div", 0, std::move(base), AckPolicy::kAll);
  ASSERT_TRUE(produced.ok()) << produced.status().to_string();
  ASSERT_TRUE(wait_until([&] { return cluster->replicas_converged("div", 0); }));

  // Cut the leader off from its followers and let it take acks=leader
  // records nobody replicates.
  for (BrokerId f : followers) {
    ASSERT_TRUE(cluster->set_broker_isolated(f, true).ok());
  }
  for (int i = 0; i < 5; ++i) {
    auto orphaned = cluster->produce(leader, "div", 0,
                                     {make_record("lost-" + std::to_string(i))},
                                     AckPolicy::kLeader);
    ASSERT_TRUE(orphaned.ok());
  }
  EXPECT_EQ(cluster->broker(leader)->end_offset("div", 0).value(), 25u);

  // The leader dies; the healed followers elect among themselves at
  // offset 20 and the log moves on without the orphans.
  ASSERT_TRUE(cluster->kill_broker(leader).ok());
  for (BrokerId f : followers) {
    ASSERT_TRUE(cluster->set_broker_isolated(f, false).ok());
  }
  ASSERT_TRUE(wait_until([&] {
    auto l = cluster->leader("div", 0);
    return l.ok() && l.value() != kNoBroker && l.value() != leader;
  }));
  auto new_leader = cluster->leader("div", 0);
  ASSERT_TRUE(new_leader.ok());
  std::vector<broker::Record> fresh;
  for (int i = 0; i < 10; ++i) {
    fresh.push_back(make_record("new-" + std::to_string(i)));
  }
  produced = cluster->produce(new_leader.value(), "div", 0, std::move(fresh),
                              AckPolicy::kQuorum);
  ASSERT_TRUE(produced.ok()) << produced.status().to_string();
  EXPECT_EQ(produced.value(), 20u) << "new epoch must start at the quorum end";

  // The deposed leader rejoins: its divergent suffix is truncated and
  // replaced by the new epoch's records.
  ASSERT_TRUE(cluster->restore_broker(leader).ok());
  ASSERT_TRUE(wait_until([&] { return cluster->replicas_converged("div", 0); }));
  broker::FetchSpec spec;
  spec.offset = 0;
  spec.max_records = 100;
  for (BrokerId r : meta.value().replicas) {
    auto fetched = cluster->broker(r)->fetch("div", 0, spec);
    ASSERT_TRUE(fetched.ok()) << fetched.status().to_string();
    ASSERT_EQ(fetched.value().size(), 30u) << "replica " << r;
    for (std::size_t i = 0; i < 20; ++i) {
      EXPECT_EQ(fetched.value()[i].record.key, "base-" + std::to_string(i));
    }
    for (std::size_t i = 20; i < 30; ++i) {
      EXPECT_EQ(fetched.value()[i].record.key,
                "new-" + std::to_string(i - 20))
          << "replica " << r;
    }
  }
}

// A dead deposed leader whose divergent suffix reaches past the produce
// target must not count toward acks=quorum: its matching end offset is
// garbage awaiting truncation, and counting it would let "quorum-acked"
// records exist on a single live log.
TEST_F(ClusterFailoverTest, DeadDivergentReplicaCannotSatisfyQuorum) {
  auto cluster = std::make_shared<BrokerCluster>(fast_options());
  ASSERT_TRUE(cluster->create_topic("fence").ok());
  auto meta = cluster->metadata("fence", 0);
  ASSERT_TRUE(meta.ok());
  const BrokerId leader = meta.value().leader;
  std::vector<BrokerId> followers;
  for (BrokerId r : meta.value().replicas) {
    if (r != leader) followers.push_back(r);
  }
  ASSERT_EQ(followers.size(), 2u);

  std::vector<broker::Record> base;
  for (int i = 0; i < 20; ++i) {
    base.push_back(make_record("base-" + std::to_string(i)));
  }
  auto produced =
      cluster->produce(leader, "fence", 0, std::move(base), AckPolicy::kAll);
  ASSERT_TRUE(produced.ok()) << produced.status().to_string();
  ASSERT_TRUE(
      wait_until([&] { return cluster->replicas_converged("fence", 0); }));

  // The leader takes acks=leader orphans nobody replicates (end 25 vs the
  // followers' 20), then dies. One follower is elected at 20; the dead
  // deposed leader sits at a raw end of 25 with a pending truncation.
  for (BrokerId f : followers) {
    ASSERT_TRUE(cluster->set_broker_isolated(f, true).ok());
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster
                    ->produce(leader, "fence", 0,
                              {make_record("lost-" + std::to_string(i))},
                              AckPolicy::kLeader)
                    .ok());
  }
  ASSERT_TRUE(cluster->kill_broker(leader).ok());
  ASSERT_TRUE(cluster->set_broker_isolated(followers[0], false).ok());
  ASSERT_TRUE(wait_until([&] {
    auto l = cluster->leader("fence", 0);
    return l.ok() && l.value() == followers[0];
  }));

  // Quorum needs 2 of 3, but the only eligible replica is the new leader:
  // the other follower is isolated and the dead leader's 25-record log is
  // divergent garbage. The produce must time out — even though the dead
  // leader's raw end (25) reaches past the target (21..25).
  auto fenced = cluster->produce(followers[0], "fence", 0,
                                 {make_record("after-failover")},
                                 AckPolicy::kQuorum);
  ASSERT_FALSE(fenced.ok())
      << "quorum satisfied by a dead divergent replica";
  EXPECT_EQ(fenced.status().code(), StatusCode::kTimeout);

  // With a real second replica back, the retried produce quorum-acks.
  ASSERT_TRUE(cluster->set_broker_isolated(followers[1], false).ok());
  ASSERT_TRUE(wait_until([&] {
    return cluster
        ->produce(followers[0], "fence", 0, {make_record("after-heal")},
                  AckPolicy::kQuorum)
        .ok();
  }));

  // The orphans never resurface once the deposed leader rejoins.
  ASSERT_TRUE(cluster->restore_broker(leader).ok());
  ASSERT_TRUE(
      wait_until([&] { return cluster->replicas_converged("fence", 0); }));
  const auto log = committed_log(*cluster, "fence", 0);
  for (const auto& [offset, key] : log) {
    EXPECT_NE(key.rfind("lost-", 0), 0u)
        << "divergent record resurfaced at offset " << offset;
  }
}

// Replication — both the synchronous produce-path push and the catch-up
// pump — must preserve the leader's broker timestamps: the same offset
// carries the same timestamp on every replica, so offset_for_timestamp
// and age-based retention stay consistent across a failover.
TEST_F(ClusterFailoverTest, ReplicationPreservesLeaderTimestamps) {
  auto cluster = std::make_shared<BrokerCluster>(fast_options());
  ASSERT_TRUE(cluster->create_topic("ts").ok());
  auto meta = cluster->metadata("ts", 0);
  ASSERT_TRUE(meta.ok());
  const BrokerId leader = meta.value().leader;
  std::vector<BrokerId> followers;
  for (BrokerId r : meta.value().replicas) {
    if (r != leader) followers.push_back(r);
  }
  ASSERT_EQ(followers.size(), 2u);

  // followers[0] receives the records via the synchronous push;
  // followers[1] is lagging and gets them from the catch-up pump later.
  ASSERT_TRUE(cluster->set_broker_isolated(followers[1], true).ok());
  for (int i = 0; i < 25; ++i) {
    auto produced = cluster->produce(leader, "ts", 0,
                                     {make_record("t" + std::to_string(i))},
                                     AckPolicy::kQuorum);
    ASSERT_TRUE(produced.ok()) << produced.status().to_string();
    Clock::sleep_exact(std::chrono::microseconds(200));  // distinct stamps
  }
  ASSERT_TRUE(cluster->set_broker_isolated(followers[1], false).ok());
  ASSERT_TRUE(
      wait_until([&] { return cluster->replicas_converged("ts", 0); }));

  broker::FetchSpec spec;
  spec.offset = 0;
  spec.max_records = 50;
  auto on_leader = cluster->broker(leader)->fetch("ts", 0, spec);
  ASSERT_TRUE(on_leader.ok());
  ASSERT_EQ(on_leader.value().size(), 25u);
  for (BrokerId f : followers) {
    auto on_follower = cluster->broker(f)->fetch("ts", 0, spec);
    ASSERT_TRUE(on_follower.ok()) << on_follower.status().to_string();
    ASSERT_EQ(on_follower.value().size(), 25u) << "replica " << f;
    for (std::size_t i = 0; i < 25; ++i) {
      EXPECT_EQ(on_follower.value()[i].broker_timestamp_ns,
                on_leader.value()[i].broker_timestamp_ns)
          << "timestamp diverged on replica " << f << " at offset " << i;
    }
  }

  // offset_for_timestamp answers identically on every replica.
  const std::uint64_t probe =
      on_leader.value()[12].broker_timestamp_ns;
  for (BrokerId r : meta.value().replicas) {
    auto off = cluster->broker(r)->offset_for_timestamp("ts", 0, probe);
    ASSERT_TRUE(off.ok());
    EXPECT_EQ(off.value(), 12u) << "replica " << r;
  }
}

}  // namespace
}  // namespace pe::cluster
