#include "storage/segment.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "storage/crc32c.h"

namespace pe::storage {
namespace {

namespace fs = std::filesystem;

broker::Record make_record(const std::string& key, std::size_t value_size,
                           std::uint8_t fill = 0x5a) {
  broker::Record r;
  r.key = key;
  r.value = Bytes(value_size, fill);
  r.client_timestamp_ns = 7;
  return r;
}

class SegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("pe_segment_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string seg_path() const { return (dir_ / "seg").string(); }

  /// Writes frames straight to a file, returning the raw bytes written.
  Bytes write_frames(std::uint64_t base, int count, std::size_t value_size) {
    Bytes all;
    for (int i = 0; i < count; ++i) {
      encode_frame(all, base + static_cast<std::uint64_t>(i),
                   1000 + static_cast<std::uint64_t>(i) * 10,
                   make_record("k" + std::to_string(i), value_size));
    }
    std::ofstream out(seg_path(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(all.data()),
              static_cast<std::streamsize>(all.size()));
    return all;
  }

  fs::path dir_;
};

TEST(Crc32c, KnownVectorAndSensitivity) {
  // RFC 3720 test vector: 32 zero bytes.
  const Bytes zeros(32, 0);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  Bytes flipped = zeros;
  flipped[7] ^= 1;
  EXPECT_NE(crc32c(flipped.data(), flipped.size()), 0x8A9136AAu);
}

TEST(Crc32c, SeedChains) {
  const Bytes data{1, 2, 3, 4, 5, 6};
  const std::uint32_t whole = crc32c(data.data(), data.size());
  const std::uint32_t first = crc32c(data.data(), 3);
  EXPECT_EQ(crc32c(data.data() + 3, 3, first), whole);
}

TEST(Frame, EncodeParseRoundTrip) {
  Bytes buf;
  auto record = make_record("key", 100, 0x42);
  encode_frame(buf, 17, 12345, record);

  FrameView v;
  ASSERT_EQ(parse_frame(buf.data(), buf.size(), &v), FrameParse::kOk);
  EXPECT_EQ(v.offset, 17u);
  EXPECT_EQ(v.broker_timestamp_ns, 12345u);
  EXPECT_EQ(v.client_timestamp_ns, 7u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(v.key), v.key_len),
            "key");
  ASSERT_EQ(v.value_len, 100u);
  EXPECT_EQ(v.value[0], 0x42);
  EXPECT_EQ(v.frame_bytes, buf.size());
}

TEST(Frame, TruncationIsTorn) {
  Bytes buf;
  encode_frame(buf, 0, 1, make_record("k", 64));
  FrameView v;
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_EQ(parse_frame(buf.data(), cut, &v), FrameParse::kTorn)
        << "prefix of " << cut << " bytes parsed as a whole frame";
  }
}

TEST(Frame, BitFlipIsTorn) {
  Bytes buf;
  encode_frame(buf, 0, 1, make_record("k", 64));
  for (std::size_t i = kFrameHeaderBytes; i < buf.size(); i += 13) {
    Bytes corrupt = buf;
    corrupt[i] ^= 0x80;
    FrameView v;
    EXPECT_EQ(parse_frame(corrupt.data(), corrupt.size(), &v),
              FrameParse::kTorn)
        << "bit flip at byte " << i << " went undetected";
  }
}

TEST(SegmentFileName, RoundTrip) {
  EXPECT_EQ(segment_file_name(0), "00000000000000000000.seg");
  EXPECT_EQ(segment_file_name(1234), "00000000000000001234.seg");
  std::uint64_t base = 99;
  ASSERT_TRUE(parse_segment_file_name("00000000000000001234.seg", &base));
  EXPECT_EQ(base, 1234u);
  EXPECT_FALSE(parse_segment_file_name("1234.seg", &base));
  EXPECT_FALSE(parse_segment_file_name("0000000000000000123x.seg", &base));
  EXPECT_FALSE(parse_segment_file_name("00000000000000001234.log", &base));
}

TEST_F(SegmentTest, ScanRecoversAllFrames) {
  const Bytes raw = write_frames(10, 5, 32);
  Segment segment(seg_path(), 10, 4096);
  auto scanned = segment.scan();
  ASSERT_TRUE(scanned.ok()) << scanned.status().to_string();
  EXPECT_EQ(scanned.value().valid_bytes, raw.size());
  EXPECT_EQ(scanned.value().torn_bytes, 0u);
  EXPECT_EQ(segment.base_offset(), 10u);
  EXPECT_EQ(segment.end_offset(), 15u);
  EXPECT_EQ(segment.record_count(), 5u);
  EXPECT_EQ(segment.first_timestamp_ns(), 1000u);
  EXPECT_EQ(segment.last_timestamp_ns(), 1040u);
}

TEST_F(SegmentTest, ScanTruncatesTornTail) {
  const Bytes raw = write_frames(0, 4, 32);
  // Append half a frame's worth of garbage: a crash mid-write.
  {
    std::ofstream out(seg_path(), std::ios::binary | std::ios::app);
    const Bytes garbage(25, 0xee);
    out.write(reinterpret_cast<const char*>(garbage.data()), 25);
  }
  Segment segment(seg_path(), 0, 4096);
  auto scanned = segment.scan();
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned.value().valid_bytes, raw.size());
  EXPECT_EQ(scanned.value().torn_bytes, 25u);
  EXPECT_EQ(segment.record_count(), 4u);
}

TEST_F(SegmentTest, PositionOfWalksFromSparseIndex) {
  // Small index interval => several index entries; large => one.
  write_frames(100, 50, 64);
  for (std::uint64_t interval : {64u, 1u << 20}) {
    Segment segment(seg_path(), 100, interval);
    ASSERT_TRUE(segment.scan().ok());
    auto mapped = segment.mapping();
    ASSERT_TRUE(mapped.ok());
    for (std::uint64_t off = 100; off < 150; ++off) {
      auto pos = segment.position_of(off);
      ASSERT_TRUE(pos.ok()) << pos.status().to_string();
      FrameView v;
      ASSERT_EQ(parse_frame(mapped.value()->data() + pos.value(),
                            mapped.value()->size() - pos.value(), &v),
                FrameParse::kOk);
      EXPECT_EQ(v.offset, off);
    }
    EXPECT_FALSE(segment.position_of(99).ok());
    EXPECT_FALSE(segment.position_of(150).ok());
  }
}

TEST_F(SegmentTest, OffsetForTimestamp) {
  write_frames(0, 20, 32);  // timestamps 1000, 1010, ..., 1190
  Segment segment(seg_path(), 0, 64);
  ASSERT_TRUE(segment.scan().ok());
  EXPECT_EQ(segment.offset_for_timestamp(0).value(), 0u);
  EXPECT_EQ(segment.offset_for_timestamp(1000).value(), 0u);
  EXPECT_EQ(segment.offset_for_timestamp(1001).value(), 1u);
  EXPECT_EQ(segment.offset_for_timestamp(1100).value(), 10u);
  EXPECT_EQ(segment.offset_for_timestamp(1190).value(), 19u);
  // Past the newest record: end offset.
  EXPECT_EQ(segment.offset_for_timestamp(1191).value(), 20u);
}

TEST_F(SegmentTest, MappingSurvivesUnlink) {
  write_frames(0, 3, 16);
  Segment segment(seg_path(), 0, 4096);
  ASSERT_TRUE(segment.scan().ok());
  auto mapped = segment.mapping();
  ASSERT_TRUE(mapped.ok());
  std::shared_ptr<MmapRegion> region = mapped.value();
  fs::remove(seg_path());
  // The mapping remains readable after the file is gone (retention
  // unlinks segments that consumers may still be reading).
  FrameView v;
  EXPECT_EQ(parse_frame(region->data(), region->size(), &v), FrameParse::kOk);
  EXPECT_EQ(v.offset, 0u);
}

}  // namespace
}  // namespace pe::storage
