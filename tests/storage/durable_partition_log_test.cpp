#include "broker/partition_log.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace pe::broker {
namespace {

namespace fs = std::filesystem;

Record make_record(const std::string& key, std::size_t value_size = 10,
                   std::uint8_t fill = 0x42) {
  Record r;
  r.key = key;
  r.value = Bytes(value_size, fill);
  return r;
}

class DurablePartitionLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("pe_dplog_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

TEST_F(DurablePartitionLogTest, WritesThroughAndServesHotFetches) {
  PartitionLog log({}, dir_);
  ASSERT_TRUE(log.durable());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(log.append(make_record(std::to_string(i))).value(),
              static_cast<std::uint64_t>(i));
  }
  ASSERT_NE(log.log_dir(), nullptr);
  EXPECT_EQ(log.log_dir()->end_offset(), 5u);

  FetchSpec spec;
  spec.offset = 2;
  auto fetched = log.fetch(spec);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 3u);
  EXPECT_EQ(fetched.value()[0].record.key, "2");
}

TEST_F(DurablePartitionLogTest, ColdFetchServesRecordsBelowHotWindow) {
  // Hot window keeps only the last 3 records; the durable tier keeps all.
  RetentionPolicy retention;
  retention.max_records = 3;
  PartitionLog log(retention, dir_);
  for (int i = 0; i < 10; ++i) {
    (void)log.append(make_record("k" + std::to_string(i), 32,
                           static_cast<std::uint8_t>(i)));
  }
  // In-memory-only logs would have retained offset 0 away; the durable
  // tier still serves it (whole-segment retention has nothing to drop at
  // this size).
  FetchSpec spec;
  spec.offset = 0;
  spec.max_records = 100;
  auto fetched = log.fetch(spec);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(fetched.value()[i].offset, i);
    EXPECT_EQ(fetched.value()[i].record.key, "k" + std::to_string(i));
    ASSERT_FALSE(fetched.value()[i].record.value.empty());
    EXPECT_EQ(fetched.value()[i].record.value[0],
              static_cast<std::uint8_t>(i));
  }
}

// Satellite regression: the first record must count toward max_bytes on
// BOTH tiers — an oversized first record is returned alone, not starved.
TEST_F(DurablePartitionLogTest, MaxBytesFirstRecordRuleHoldsOnBothTiers) {
  RetentionPolicy retention;
  retention.max_records = 2;  // pushes early records out of the hot window
  PartitionLog log(retention, dir_);
  (void)log.append(make_record("cold-big", 4096));
  (void)log.append(make_record("cold-next", 16));
  (void)log.append(make_record("hot-big", 4096));
  (void)log.append(make_record("hot-next", 16));

  FetchSpec spec;
  spec.max_bytes = 10;  // smaller than any record
  spec.offset = 0;      // cold path
  auto cold = log.fetch(spec);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold.value().size(), 1u);
  EXPECT_EQ(cold.value()[0].record.key, "cold-big");

  spec.offset = 2;  // hot path
  auto hot = log.fetch(spec);
  ASSERT_TRUE(hot.ok());
  ASSERT_EQ(hot.value().size(), 1u);
  EXPECT_EQ(hot.value()[0].record.key, "hot-big");
}

TEST_F(DurablePartitionLogTest, ReopenResumesOffsetSequence) {
  {
    PartitionLog log({}, dir_);
    for (int i = 0; i < 6; ++i) (void)log.append(make_record(std::to_string(i)));
    ASSERT_TRUE(log.sync().ok());
  }
  PartitionLog log({}, dir_);
  EXPECT_EQ(log.recovery_report().records_recovered, 6u);
  EXPECT_EQ(log.end_offset(), 6u);
  EXPECT_EQ(log.append(make_record("six")).value(), 6u);
  // The pre-crash records are below the (empty) hot window: cold path.
  FetchSpec spec;
  spec.offset = 3;
  auto fetched = log.fetch(spec);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 4u);
  EXPECT_EQ(fetched.value()[0].record.key, "3");
  EXPECT_EQ(fetched.value()[3].record.key, "six");
}

TEST_F(DurablePartitionLogTest, PowerLossThenReopenTruncatesTornTail) {
  storage::StorageConfig config;
  config.flush_policy = storage::FlushPolicy::kNever;
  std::uint64_t synced = 0;
  {
    PartitionLog log({}, dir_, config);
    for (int i = 0; i < 4; ++i) (void)log.append(make_record("durable", 64));
    ASSERT_TRUE(log.sync().ok());
    synced = log.log_dir()->synced_offset();
    ASSERT_EQ(synced, 4u);
    for (int i = 0; i < 4; ++i) (void)log.append(make_record("dirty", 64));
    log.simulate_power_loss(0.3);
  }
  PartitionLog log({}, dir_, config);
  const auto& report = log.recovery_report();
  EXPECT_GE(report.records_recovered, synced);
  EXPECT_LT(report.records_recovered, 8u);
  EXPECT_GT(report.torn_bytes_truncated, 0u);
  EXPECT_EQ(log.end_offset(), report.next_offset);
  // Only whole, CRC-clean records are served — fetching the full range
  // returns exactly the recovered prefix.
  FetchSpec spec;
  spec.max_records = 100;
  auto fetched = log.fetch(spec);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().size(), report.records_recovered);
}

// Satellite: offset_for_timestamp answers correctly whether the target
// record sits in the hot deque or only in the cold segments.
TEST_F(DurablePartitionLogTest, OffsetForTimestampSpansBothTiers) {
  RetentionPolicy retention;
  retention.max_records = 4;
  PartitionLog log(retention, dir_);
  std::vector<std::uint64_t> stamps;
  for (int i = 0; i < 12; ++i) {
    const std::uint64_t off = log.append(make_record("k", 16)).value();
    FetchSpec spec;
    spec.offset = off;
    auto fetched = log.fetch(spec);
    ASSERT_TRUE(fetched.ok());
    stamps.push_back(fetched.value()[0].broker_timestamp_ns);
  }
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    // Each append issues a disk write, so timestamps are strictly
    // increasing at ns resolution; the lookups below rely on it.
    ASSERT_LT(stamps[i - 1], stamps[i]);
  }
  // Hot window holds offsets [8, 12); everything earlier is cold-only.
  EXPECT_EQ(log.offset_for_timestamp(0), 0u);
  EXPECT_EQ(log.offset_for_timestamp(stamps[2]), 2u);    // cold tier
  EXPECT_EQ(log.offset_for_timestamp(stamps[6] + 1), 7u);
  EXPECT_EQ(log.offset_for_timestamp(stamps[10]), 10u);  // hot tier
  EXPECT_EQ(log.offset_for_timestamp(stamps[11] + 1), 12u);
}

// Satellite: combined retention — all three bounds active at once; the
// tightest bound wins and the boundary record survives.
TEST(RetentionPolicyTest, CombinedBoundsTightestWins) {
  RetentionPolicy retention;
  retention.max_records = 100;        // loose
  retention.max_bytes = 5 * (50 + kRecordWireOverheadBytes + 1);  // ~5 recs
  retention.max_age = std::chrono::hours(24);  // loose
  PartitionLog log(retention);
  for (int i = 0; i < 20; ++i) {
    (void)log.append(make_record(std::to_string(i), 50));
  }
  EXPECT_LE(log.byte_size(), retention.max_bytes);
  EXPECT_GT(log.record_count(), 0u);
  EXPECT_EQ(log.end_offset(), 20u);
  EXPECT_EQ(log.log_start_offset(), 20u - log.record_count());
  // The oldest retained record is still fetchable; one below it is gone.
  FetchSpec spec;
  spec.offset = log.log_start_offset();
  EXPECT_TRUE(log.fetch(spec).ok());
  if (log.log_start_offset() > 0) {
    spec.offset = log.log_start_offset() - 1;
    EXPECT_FALSE(log.fetch(spec).ok());
  }
}

TEST(RetentionPolicyTest, MaxRecordsBoundIsExact) {
  RetentionPolicy retention;
  retention.max_records = 3;
  PartitionLog log(retention);
  for (int i = 0; i < 10; ++i) (void)log.append(make_record("k"));
  EXPECT_EQ(log.record_count(), 3u);
  EXPECT_EQ(log.log_start_offset(), 7u);
}

TEST(RetentionPolicyTest, ZeroMeansUnlimited) {
  PartitionLog log;  // all bounds zero
  for (int i = 0; i < 64; ++i) (void)log.append(make_record("k", 128));
  EXPECT_EQ(log.record_count(), 64u);
  EXPECT_EQ(log.log_start_offset(), 0u);
}

// Regression (PR 7 tentpole satellite): a failed durable append must
// surface to the producer as a transient error and must NOT advance the
// offset sequence past what is actually on disk. Before the fix, the
// failure was WARN-logged and the record acked from memory — a silent
// durability hole.
TEST_F(DurablePartitionLogTest, FailedDurableAppendIsNeverAcked) {
  PartitionLog log({}, dir_);
  ASSERT_TRUE(log.append(make_record("ok")).ok());
  auto& errors =
      tel::MetricsRegistry::global().counter("storage.append_errors");
  const std::uint64_t errors_before = errors.value();

  log.log_dir()->inject_append_failures(1);
  auto failed = log.append(make_record("lost"));
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().is_transient());  // producer may retry
  EXPECT_EQ(errors.value(), errors_before + 1);
  // Neither tier moved: the in-memory end matches the durable end.
  EXPECT_EQ(log.end_offset(), 1u);
  EXPECT_EQ(log.log_dir()->end_offset(), 1u);

  // The retry lands on the very offset the failure did not burn, and the
  // consumer-visible sequence stays dense.
  auto retried = log.append(make_record("retried"));
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.value(), 1u);
  FetchSpec spec;
  spec.max_records = 100;
  auto fetched = log.fetch(spec);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 2u);
  EXPECT_EQ(fetched.value()[0].record.key, "ok");
  EXPECT_EQ(fetched.value()[1].record.key, "retried");
}

TEST_F(DurablePartitionLogTest, FailedBatchAppendKeepsTiersAligned) {
  PartitionLog log({}, dir_);
  std::vector<Record> warmup = {make_record("w0"), make_record("w1")};
  ASSERT_TRUE(log.append_batch(std::move(warmup)).ok());

  log.log_dir()->inject_append_failures(1);
  std::vector<Record> doomed = {make_record("d0"), make_record("d1"),
                                make_record("d2")};
  auto failed = log.append_batch(std::move(doomed));
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().is_transient());
  // The whole batch was rejected before any frame hit the buffer, so no
  // partial prefix exists and both tiers agree.
  EXPECT_EQ(log.end_offset(), log.log_dir()->end_offset());

  std::vector<Record> retry = {make_record("r0"), make_record("r1")};
  auto retried = log.append_batch(std::move(retry));
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(log.end_offset(), log.log_dir()->end_offset());
  // Dense, gap-free consumer view across warmup + retry.
  FetchSpec spec;
  spec.max_records = 100;
  auto fetched = log.fetch(spec);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), log.end_offset());
  for (std::size_t i = 0; i < fetched.value().size(); ++i) {
    EXPECT_EQ(fetched.value()[i].offset, i);
  }
}

// Durable retention drops whole segments only: the hot window may shrink
// to max_records, but the cold tier keeps everything in the active
// segment, so log_start_offset only moves at segment boundaries.
TEST_F(DurablePartitionLogTest, DurableRetentionMovesStartBySegments) {
  RetentionPolicy retention;
  retention.max_records = 4;
  storage::StorageConfig config;
  config.segment_max_bytes = 512;
  PartitionLog log(retention, dir_, config);
  for (int i = 0; i < 40; ++i) (void)log.append(make_record("k", 100));
  const std::uint64_t start = log.log_start_offset();
  EXPECT_GT(start, 0u);          // old segments were dropped...
  EXPECT_EQ(log.end_offset(), 40u);
  EXPECT_GE(log.record_count(), retention.max_records);
  // ...and the start offset equals a retained segment's base, so every
  // offset from start to end is fetchable with no hole.
  FetchSpec spec;
  spec.offset = start;
  spec.max_records = 100;
  auto fetched = log.fetch(spec);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().size(), 40u - start);
  spec.offset = start - 1;
  EXPECT_FALSE(log.fetch(spec).ok());
}

}  // namespace
}  // namespace pe::broker
