// Durability contract tests for the broker: committed offsets survive a
// hard crash with zero loss, acked records come back at the same offset
// with identical payloads, torn tails are truncated (never served), and
// topic metadata replays from the write-ahead intent log.
#include "broker/broker.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "broker/consumer.h"
#include "broker/producer.h"
#include "network/fabric.h"

namespace pe::broker {
namespace {

namespace fs = std::filesystem;

Record make_record(const std::string& key, std::size_t value_size = 32,
                   std::uint8_t fill = 0x42) {
  Record r;
  r.key = key;
  r.value = Bytes(value_size, fill);
  return r;
}

class DurableBrokerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("pe_dbroker_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::shared_ptr<Broker> make_broker(storage::StorageConfig storage = {}) {
    BrokerOptions options;
    options.durable_dir = dir_;
    options.storage = storage;
    return std::make_shared<Broker>("cloud", options);
  }

  std::string dir_;
};

TEST_F(DurableBrokerTest, InMemoryBrokerRefusesCrashAndRecover) {
  Broker broker("cloud");
  EXPECT_FALSE(broker.durable());
  EXPECT_FALSE(broker.crash_and_recover().ok());
}

TEST_F(DurableBrokerTest, TopicsAndRecordsSurviveCrash) {
  storage::StorageConfig storage;
  storage.flush_policy = storage::FlushPolicy::kEverySync;  // ack == durable
  auto broker = make_broker(storage);
  TopicConfig config;
  config.partitions = 2;
  ASSERT_TRUE(broker->create_topic("events", config).ok());
  std::vector<Bytes> sent;
  for (int i = 0; i < 20; ++i) {
    Bytes value(48, static_cast<std::uint8_t>(i));
    sent.push_back(value);
    Record r;
    r.key = "k" + std::to_string(i);
    r.value = value;
    ASSERT_TRUE(broker->produce("events", i % 2, {std::move(r)}).ok());
  }

  auto report = broker->crash_and_recover(/*keep_fraction=*/0.0);
  ASSERT_TRUE(report.ok()) << report.status().to_string();

  ASSERT_TRUE(broker->has_topic("events"));
  EXPECT_EQ(broker->partition_count("events"), 2u);
  // Every produced record is back at the same offset, payload identical.
  for (std::uint32_t p = 0; p < 2; ++p) {
    FetchSpec spec;
    spec.max_records = 100;
    auto fetched = broker->fetch("events", p, spec);
    ASSERT_TRUE(fetched.ok()) << fetched.status().to_string();
    ASSERT_EQ(fetched.value().size(), 10u);
    for (std::size_t i = 0; i < fetched.value().size(); ++i) {
      const auto& r = fetched.value()[i];
      EXPECT_EQ(r.offset, i);
      const int seq = static_cast<int>(p + 2 * i);
      EXPECT_EQ(r.record.key, "k" + std::to_string(seq));
      EXPECT_TRUE(r.record.value == Payload(sent[static_cast<std::size_t>(
                                        seq)]))
          << "payload mismatch at partition " << p << " offset " << i;
    }
  }
}

TEST_F(DurableBrokerTest, CommittedOffsetsSurviveCrashWithZeroLoss) {
  storage::StorageConfig storage;
  storage.flush_policy = storage::FlushPolicy::kEverySync;
  auto broker = make_broker(storage);
  ASSERT_TRUE(broker->create_topic("events", {}).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        broker->produce("events", 0, {make_record(std::to_string(i))}).ok());
  }
  const TopicPartition tp{"events", 0};
  ASSERT_TRUE(broker->coordinator().commit_offset("g1", tp, 4).ok());
  ASSERT_TRUE(broker->coordinator().commit_offset("g1", tp, 7).ok());
  ASSERT_TRUE(broker->coordinator().commit_offset("g2", tp, 2).ok());

  ASSERT_TRUE(broker->crash_and_recover().ok());

  // The offsets log is fsynced per commit: zero committed-offset loss.
  auto g1 = broker->coordinator().committed_offset("g1", tp);
  auto g2 = broker->coordinator().committed_offset("g2", tp);
  ASSERT_TRUE(g1.has_value());
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(*g1, 7u);
  EXPECT_EQ(*g2, 2u);
  // And the records at those offsets are re-fetchable.
  FetchSpec spec;
  spec.offset = *g1;
  auto fetched = broker->fetch("events", 0, spec);
  ASSERT_TRUE(fetched.ok());
  ASSERT_FALSE(fetched.value().empty());
  EXPECT_EQ(fetched.value()[0].record.key, "7");
}

TEST_F(DurableBrokerTest, TornTailIsTruncatedNotServed) {
  storage::StorageConfig storage;
  storage.flush_policy = storage::FlushPolicy::kNever;
  auto broker = make_broker(storage);
  ASSERT_TRUE(broker->create_topic("events", {}).ok());
  // Nothing is ever fsynced (kNever): all 8 records are dirty when the
  // power cut keeps half the tail bytes, cutting a frame mid-write.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        broker->produce("events", 0, {make_record("dirty", 64)}).ok());
  }
  auto report = broker->crash_and_recover(/*keep_fraction=*/0.5);
  ASSERT_TRUE(report.ok());

  auto end = broker->end_offset("events", 0);
  ASSERT_TRUE(end.ok());
  EXPECT_LE(end.value(), 8u);
  // Whatever survived is a dense, CRC-clean prefix: fetching the whole
  // range succeeds and returns exactly end_offset records.
  FetchSpec spec;
  spec.max_records = 100;
  auto fetched = broker->fetch("events", 0, spec);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().size(), end.value());
  for (std::size_t i = 0; i < fetched.value().size(); ++i) {
    EXPECT_EQ(fetched.value()[i].offset, i);
    EXPECT_EQ(fetched.value()[i].record.value.size(), 64u);
  }
  // Fetching past the truncated end is OUT_OF_RANGE, not garbage.
  spec.offset = end.value() + 1;
  EXPECT_FALSE(broker->fetch("events", 0, spec).ok());
}

TEST_F(DurableBrokerTest, DeletedTopicStaysDeletedAfterCrash) {
  auto broker = make_broker();
  ASSERT_TRUE(broker->create_topic("keep", {}).ok());
  ASSERT_TRUE(broker->create_topic("drop", {}).ok());
  ASSERT_TRUE(broker->produce("drop", 0, {make_record("x")}).ok());
  ASSERT_TRUE(broker->delete_topic("drop").ok());
  ASSERT_TRUE(broker->crash_and_recover().ok());
  EXPECT_TRUE(broker->has_topic("keep"));
  EXPECT_FALSE(broker->has_topic("drop"));
  // Re-creating the deleted topic starts from offset 0 — its old log
  // directory is gone, not resurrected.
  ASSERT_TRUE(broker->create_topic("drop", {}).ok());
  auto end = broker->end_offset("drop", 0);
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(end.value(), 0u);
}

TEST_F(DurableBrokerTest, FreshProcessReopensTheSameDirectory) {
  {
    auto broker = make_broker();
    ASSERT_TRUE(broker->create_topic("events", {}).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          broker->produce("events", 0, {make_record(std::to_string(i))})
              .ok());
    }
    ASSERT_TRUE(broker->coordinator()
                    .commit_offset("g", {"events", 0}, 3)
                    .ok());
  }  // broker destroyed: simulates clean process exit
  auto broker = make_broker();
  ASSERT_TRUE(broker->has_topic("events"));
  auto committed = broker->coordinator().committed_offset("g", {"events", 0});
  ASSERT_TRUE(committed.has_value());
  EXPECT_EQ(*committed, 3u);
  // Offsets resume, no reuse.
  auto off = broker->produce("events", 0, {make_record("5")});
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.value(), 5u);
}

// Satellite e2e: consumer crashes uncommitted, the broker hard-restarts,
// and a replacement consumer in the same group replays exactly from the
// last committed offset (at-least-once, no committed work lost).
TEST_F(DurableBrokerTest, ConsumerCrashBrokerRestartResumeFromCommitted) {
  auto fabric = std::make_shared<net::Fabric>();
  ASSERT_TRUE(fabric->add_site({.id = "cloud"}).ok());
  ASSERT_TRUE(fabric->add_site({.id = "edge"}).ok());
  net::LinkSpec link;
  link.from = "edge";
  link.to = "cloud";
  link.latency_min = link.latency_max = std::chrono::microseconds(200);
  link.bandwidth_min_bps = link.bandwidth_max_bps = 1e9;
  ASSERT_TRUE(fabric->add_bidirectional_link(link).ok());
  storage::StorageConfig storage;
  storage.flush_policy = storage::FlushPolicy::kEverySync;
  auto broker = make_broker(storage);
  ASSERT_TRUE(broker->create_topic("events", {}).ok());

  Producer producer(broker, fabric, "edge");
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        producer.send("events", 0, make_record(std::to_string(i))).ok());
  }

  ConsumerConfig config;
  config.max_poll_records = 5;  // several polls to drain the topic
  std::uint64_t committed_position = 0;
  {
    Consumer consumer(broker, fabric, "edge", "workers", config);
    ASSERT_TRUE(consumer.subscribe({"events"}).ok());
    auto first = consumer.poll(std::chrono::milliseconds(100));
    ASSERT_FALSE(first.empty());
    ASSERT_TRUE(consumer.commit().ok());  // processed the first batch
    committed_position = first.back().offset + 1;
    // Poll more but crash before committing: these must be redelivered.
    auto second = consumer.poll(std::chrono::milliseconds(100));
    consumer.crash();
  }

  ASSERT_TRUE(broker->crash_and_recover().ok());

  Consumer replacement(broker, fabric, "edge", "workers", config);
  ASSERT_TRUE(replacement.subscribe({"events"}).ok());
  std::vector<ConsumedRecord> replayed;
  for (int attempt = 0; attempt < 10 && replayed.size() < 12 -
                                            committed_position;
       ++attempt) {
    auto batch = replacement.poll(std::chrono::milliseconds(100));
    replayed.insert(replayed.end(), batch.begin(), batch.end());
  }
  ASSERT_FALSE(replayed.empty());
  // Replay starts exactly at the committed position — uncommitted
  // deliveries repeat, committed ones do not.
  EXPECT_EQ(replayed.front().offset, committed_position);
  EXPECT_EQ(replayed.front().record.key,
            std::to_string(committed_position));
  EXPECT_EQ(replayed.back().offset, 11u);
  replacement.close();
}

}  // namespace
}  // namespace pe::broker
