#include "storage/log_dir.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"

namespace pe::storage {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kNoByteLimit = ~0ull;

broker::Record make_record(const std::string& key, std::size_t value_size,
                           std::uint8_t fill = 0x11) {
  broker::Record r;
  r.key = key;
  r.value = Bytes(value_size, fill);
  return r;
}

class LogDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("pe_logdir_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::unique_ptr<LogDir> open(StorageConfig config = {},
                               RecoveryReport* report = nullptr) {
    auto opened = LogDir::open(dir_, config, report);
    EXPECT_TRUE(opened.ok()) << opened.status().to_string();
    return opened.ok() ? std::move(opened).value() : nullptr;
  }

  std::string dir_;
};

TEST_F(LogDirTest, AppendFetchRoundTrip) {
  auto log = open();
  for (int i = 0; i < 10; ++i) {
    auto appended =
        log->append(make_record("k" + std::to_string(i), 32,
                                static_cast<std::uint8_t>(i)),
                    1000 + static_cast<std::uint64_t>(i));
    ASSERT_TRUE(appended.ok());
    EXPECT_EQ(appended.value(), static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(log->start_offset(), 0u);
  EXPECT_EQ(log->end_offset(), 10u);
  EXPECT_EQ(log->record_count(), 10u);

  auto fetched = log->fetch(3, 4, kNoByteLimit);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& r = fetched.value()[i];
    EXPECT_EQ(r.offset, 3 + i);
    EXPECT_EQ(r.broker_timestamp_ns, 1003 + i);
    EXPECT_EQ(r.record.key, "k" + std::to_string(3 + i));
    ASSERT_EQ(r.record.value.size(), 32u);
    EXPECT_EQ(r.record.value[0], static_cast<std::uint8_t>(3 + i));
  }
}

TEST_F(LogDirTest, FetchBoundsAndEmpty) {
  auto log = open();
  EXPECT_TRUE(log->fetch(0, 10, kNoByteLimit).ok());  // empty log, offset 0
  ASSERT_TRUE(log->append(make_record("k", 8), 1).ok());
  EXPECT_FALSE(log->fetch(2, 10, kNoByteLimit).ok());  // beyond end
  auto at_end = log->fetch(1, 10, kNoByteLimit);
  ASSERT_TRUE(at_end.ok());
  EXPECT_TRUE(at_end.value().empty());
}

TEST_F(LogDirTest, MaxBytesCountsFirstRecordEvenWhenOversized) {
  auto log = open();
  ASSERT_TRUE(log->append(make_record("big", 4096), 1).ok());
  ASSERT_TRUE(log->append(make_record("next", 16), 2).ok());
  // A byte budget smaller than the first record still ships that record
  // (and only it): an oversized record must not wedge the consumer.
  auto fetched = log->fetch(0, 10, 64);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 1u);
  EXPECT_EQ(fetched.value()[0].record.key, "big");
}

TEST_F(LogDirTest, PayloadsAreZeroCopyViewsIntoTheMapping) {
  auto log = open();
  ASSERT_TRUE(log->append(make_record("k", 64, 0xab), 1).ok());
  auto a = log->fetch(0, 1, kNoByteLimit);
  auto b = log->fetch(0, 1, kNoByteLimit);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Both fetches alias the same mapped bytes — no per-fetch copies.
  EXPECT_EQ(a.value()[0].record.value.data(), b.value()[0].record.value.data());
  EXPECT_NE(a.value()[0].record.value.shared().get(), nullptr);
}

TEST_F(LogDirTest, RollsSegmentsAtConfiguredSize) {
  StorageConfig config;
  config.segment_max_bytes = 512;
  auto log = open(config);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(log->append(make_record("k", 100), 1 + i).ok());
  }
  EXPECT_GT(log->segment_count(), 3u);
  // Every record is still fetchable across the segment boundaries.
  auto fetched = log->fetch(0, 100, kNoByteLimit);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(fetched.value()[i].offset, i);
  }
}

TEST_F(LogDirTest, ReopenResumesOffsetSequence) {
  {
    auto log = open();
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(
          log->append(make_record("k" + std::to_string(i), 24), 10 + i).ok());
    }
  }  // clean close syncs
  RecoveryReport report;
  auto log = open({}, &report);
  EXPECT_EQ(report.records_recovered, 7u);
  EXPECT_EQ(report.torn_bytes_truncated, 0u);
  EXPECT_EQ(report.next_offset, 7u);
  EXPECT_EQ(log->end_offset(), 7u);
  auto appended = log->append(make_record("k7", 24), 17);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended.value(), 7u);
  auto fetched = log->fetch(0, 100, kNoByteLimit);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 8u);
  EXPECT_EQ(fetched.value()[5].record.key, "k5");
}

TEST_F(LogDirTest, PowerLossTruncatesTornTailOnRecovery) {
  StorageConfig config;
  config.flush_policy = FlushPolicy::kNever;
  {
    auto log = open(config);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(log->append(make_record("durable" + std::to_string(i), 32),
                              1 + i)
                      .ok());
    }
    ASSERT_TRUE(log->sync().ok());  // first 4 are now power-loss durable
    for (int i = 4; i < 8; ++i) {
      // Varying sizes keep the cut below off any frame boundary.
      ASSERT_TRUE(log->append(make_record("dirty" + std::to_string(i),
                                          30 + static_cast<std::size_t>(i) *
                                                   7),
                              1 + i)
                      .ok());
    }
    // The cut keeps half of the unsynced tail bytes: some dirty records
    // survive whole, the one at the cut is torn mid-frame.
    log->simulate_power_loss(0.5);
    // A crashed log refuses writes.
    EXPECT_FALSE(log->append(make_record("late", 8), 9).ok());
  }
  RecoveryReport report;
  auto log = open(config, &report);
  EXPECT_GE(report.records_recovered, 4u) << "synced records lost";
  EXPECT_LT(report.records_recovered, 8u) << "unsynced tail fully survived "
                                             "a half-cut power loss";
  EXPECT_GT(report.torn_bytes_truncated, 0u);
  // The survivors are exactly offsets [0, n): dense, no holes, and all
  // fetchable with intact payloads.
  const std::uint64_t n = log->end_offset();
  auto fetched = log->fetch(0, 100, kNoByteLimit);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), n);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fetched.value()[i].record.key,
              "durable" + std::to_string(i));
  }
  // Appends resume at the truncation point.
  auto appended = log->append(make_record("resumed", 8), 99);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended.value(), n);
}

TEST_F(LogDirTest, EverySyncPolicyKeepsSyncedOffsetCurrent) {
  StorageConfig config;
  config.flush_policy = FlushPolicy::kEverySync;
  auto log = open(config);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(log->append(make_record("k", 16), 1 + i).ok());
    EXPECT_EQ(log->synced_offset(), static_cast<std::uint64_t>(i + 1));
  }
}

TEST_F(LogDirTest, EveryNRecordsPolicySyncsInBatches) {
  StorageConfig config;
  config.flush_policy = FlushPolicy::kEveryNRecords;
  config.flush_every_n = 4;
  auto log = open(config);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(log->append(make_record("k", 16), 1 + i).ok());
  }
  EXPECT_EQ(log->synced_offset(), 0u);
  ASSERT_TRUE(log->append(make_record("k", 16), 4).ok());
  EXPECT_EQ(log->synced_offset(), 4u);
}

TEST_F(LogDirTest, RetentionDropsWholeSegmentsNeverActive) {
  StorageConfig config;
  config.segment_max_bytes = 400;
  auto log = open(config);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        log->append(make_record("k" + std::to_string(i), 64), 1 + i).ok());
  }
  const std::size_t before = log->segment_count();
  ASSERT_GT(before, 2u);
  const std::size_t dropped =
      log->apply_retention(/*max_records=*/10, 0, 0);
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(log->segment_count(), before - dropped);
  // At least max_records records remain, end offset is untouched, and
  // the start moved to a segment boundary.
  EXPECT_GE(log->record_count(), 10u);
  EXPECT_EQ(log->end_offset(), 30u);
  EXPECT_GT(log->start_offset(), 0u);
  EXPECT_FALSE(log->fetch(0, 1, kNoByteLimit).ok());
  EXPECT_TRUE(log->fetch(log->start_offset(), 1, kNoByteLimit).ok());
  // With only the minimum left, nothing more can be dropped.
  EXPECT_EQ(log->apply_retention(log->record_count(), 0, 0), 0u);
}

TEST_F(LogDirTest, RetentionByAgeDropsOldSegments) {
  StorageConfig config;
  config.segment_max_bytes = 300;
  auto log = open(config);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(log->append(make_record("k", 64),
                            1000 + static_cast<std::uint64_t>(i) * 100)
                    .ok());
  }
  // Everything with a timestamp below 2000 is expired; segments wholly
  // older than that go, the active segment never does.
  const std::size_t dropped = log->apply_retention(0, 0, 2000);
  EXPECT_GT(dropped, 0u);
  EXPECT_GE(log->segment_count(), 1u);
  for (const auto& info : log->segments()) {
    if (!info.active) {
      EXPECT_GE(info.last_timestamp_ns, 2000u);
    }
  }
}

TEST_F(LogDirTest, FetchedViewOutlivesRetentionUnlink) {
  StorageConfig config;
  config.segment_max_bytes = 200;
  auto log = open(config);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(log->append(make_record("k", 64, 0x77), 1 + i).ok());
  }
  auto fetched = log->fetch(0, 1, kNoByteLimit);
  ASSERT_TRUE(fetched.ok());
  broker::Payload payload = fetched.value()[0].record.value;
  ASSERT_GT(log->apply_retention(2, 0, 0), 0u);  // unlinks old segments
  // The view still reads the unlinked segment's pages.
  EXPECT_EQ(payload.size(), 64u);
  EXPECT_EQ(payload[0], 0x77);
}

TEST_F(LogDirTest, OffsetForTimestampAcrossSegments) {
  StorageConfig config;
  config.segment_max_bytes = 300;
  auto log = open(config);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(log->append(make_record("k", 64),
                            1000 + static_cast<std::uint64_t>(i) * 10)
                    .ok());
  }
  ASSERT_GT(log->segment_count(), 2u);
  EXPECT_EQ(log->offset_for_timestamp(0), 0u);
  EXPECT_EQ(log->offset_for_timestamp(1000), 0u);
  EXPECT_EQ(log->offset_for_timestamp(1005), 1u);
  EXPECT_EQ(log->offset_for_timestamp(1150), 15u);
  EXPECT_EQ(log->offset_for_timestamp(1190), 19u);
  EXPECT_EQ(log->offset_for_timestamp(5000), 20u);
}

TEST_F(LogDirTest, IntervalFlusherSyncsInBackground) {
  StorageConfig config;
  config.flush_policy = FlushPolicy::kIntervalMs;
  config.flush_interval = std::chrono::milliseconds(5);
  auto log = open(config);
  ASSERT_TRUE(log->append(make_record("k", 16), 1).ok());
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (log->synced_offset() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(log->synced_offset(), 1u);
}

// --- group commit ---

TEST_F(LogDirTest, GroupCommitEverySyncAppendersReturnDurable) {
  // The kEverySync contract under concurrency: when append() returns, the
  // record is fsynced — even though most appenders never run an fsync
  // themselves (they piggyback on the group leader's). TSan runs of this
  // test double as the data-race check on the leader/waiter handoff.
  StorageConfig config;
  config.flush_policy = FlushPolicy::kEverySync;
  auto log = open(config);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> violations{0};
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto appended = log->append(
            make_record("t" + std::to_string(t) + "_" + std::to_string(i),
                        64),
            1 + static_cast<std::uint64_t>(i));
        if (!appended.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Exclusive synced_offset must already cover our offset.
        if (appended.value() >= log->synced_offset()) {
          violations.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(log->end_offset(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(log->synced_offset(), log->end_offset());
}

TEST_F(LogDirTest, GroupCommitSharesFsyncsAcrossAppenders) {
  StorageConfig config;
  config.flush_policy = FlushPolicy::kEverySync;
  auto log = open(config);
  auto& fsyncs = tel::MetricsRegistry::global().counter("storage.fsyncs");
  const std::uint64_t before = fsyncs.value();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(log->append(make_record("k", 64), 1).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  // Serialized per-append fsyncs would cost exactly kThreads*kPerThread;
  // group commit must do strictly better once appenders overlap. (Worst
  // case — zero overlap — equals it, but 4 racing threads always share.)
  EXPECT_LE(fsyncs.value() - before,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(log->synced_offset(), log->end_offset());
}

// --- batched appends ---

TEST_F(LogDirTest, AppendBatchRoundTripAndPerRecordTimestamps) {
  auto log = open();
  std::vector<broker::Record> records;
  std::vector<TimestampedRecord> batch;
  for (int i = 0; i < 10; ++i) {
    records.push_back(make_record("k" + std::to_string(i), 32,
                                  static_cast<std::uint8_t>(i)));
  }
  for (int i = 0; i < 10; ++i) {
    batch.push_back({&records[i], 1000 + static_cast<std::uint64_t>(i)});
  }
  auto first = log->append_batch(batch);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 0u);
  EXPECT_EQ(log->end_offset(), 10u);
  auto fetched = log->fetch(0, 100, kNoByteLimit);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 10u);
  for (int i = 0; i < 10; ++i) {
    const auto& cr = fetched.value()[static_cast<std::size_t>(i)];
    EXPECT_EQ(cr.offset, static_cast<std::uint64_t>(i));
    EXPECT_EQ(cr.broker_timestamp_ns, 1000 + static_cast<std::uint64_t>(i));
    EXPECT_EQ(cr.record.key, "k" + std::to_string(i));
    EXPECT_EQ(cr.record.value, records[static_cast<std::size_t>(i)].value);
  }
  EXPECT_EQ(log->offset_for_timestamp(1005), 5u);
}

TEST_F(LogDirTest, AppendBatchDoesAtMostOneFsyncUnderEverySync) {
  StorageConfig config;
  config.flush_policy = FlushPolicy::kEverySync;
  auto log = open(config);
  std::vector<broker::Record> records;
  for (int i = 0; i < 100; ++i) records.push_back(make_record("k", 128));
  std::vector<TimestampedRecord> batch;
  for (const auto& r : records) batch.push_back({&r, 7});
  auto& fsyncs = tel::MetricsRegistry::global().counter("storage.fsyncs");
  const std::uint64_t before = fsyncs.value();
  ASSERT_TRUE(log->append_batch(batch).ok());
  EXPECT_LE(fsyncs.value() - before, 1u);
  EXPECT_EQ(log->end_offset(), 100u);
  EXPECT_EQ(log->synced_offset(), 100u);
}

TEST_F(LogDirTest, AppendBatchRollsSegmentsMidBatch) {
  StorageConfig config;
  config.segment_max_bytes = 1024;
  auto log = open(config);
  std::vector<broker::Record> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back(make_record("k" + std::to_string(i), 200,
                                  static_cast<std::uint8_t>(i)));
  }
  std::vector<TimestampedRecord> batch;
  for (const auto& r : records) batch.push_back({&r, 5});
  ASSERT_TRUE(log->append_batch(batch).ok());
  EXPECT_EQ(log->end_offset(), 20u);
  EXPECT_GT(log->segment_count(), 1u);
  auto fetched = log->fetch(0, 100, kNoByteLimit);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fetched.value()[static_cast<std::size_t>(i)].record.key,
              "k" + std::to_string(i));
  }
}

// --- injected append failures ---

TEST_F(LogDirTest, InjectedAppendFailureConsumesNoOffset) {
  StorageConfig config;
  config.flush_policy = FlushPolicy::kEverySync;
  auto log = open(config);
  ASSERT_TRUE(log->append(make_record("a", 16), 1).ok());
  log->inject_append_failures(1);
  auto failed = log->append(make_record("b", 16), 2);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().is_transient());
  EXPECT_EQ(log->end_offset(), 1u);  // the failed append left no trace
  auto retried = log->append(make_record("b", 16), 2);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.value(), 1u);  // same offset the failure did not burn
}

// --- recovery: tail-only empty-segment recycling ---

TEST_F(LogDirTest, RecoveryRecyclesEmptyTailSegment) {
  StorageConfig config;
  {
    auto log = open(config);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(log->append(make_record("k" + std::to_string(i), 32),
                              1 + static_cast<std::uint64_t>(i))
                      .ok());
    }
  }  // clean close
  // A crash between roll's file creation and the first append leaves an
  // empty tail segment; model it directly.
  { std::ofstream(fs::path(dir_) / segment_file_name(5)); }
  RecoveryReport report;
  auto log = open(config, &report);
  EXPECT_EQ(report.segments_deleted, 1u);
  EXPECT_FALSE(fs::exists(fs::path(dir_) / segment_file_name(5)));
  EXPECT_EQ(log->end_offset(), 5u);
  // The offset sequence resumes exactly where the data ends.
  auto appended = log->append(make_record("next", 32), 10);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended.value(), 5u);
}

TEST_F(LogDirTest, RecoveryKeepsLoneEmptySegment) {
  // A brand-new log that crashed before its first append: the only
  // segment is empty and must NOT be recycled — it carries the offset
  // sequence base.
  { std::ofstream(fs::path(dir_) / segment_file_name(0)); }
  RecoveryReport report;
  auto log = open({}, &report);
  EXPECT_EQ(report.segments_deleted, 0u);
  EXPECT_EQ(log->end_offset(), 0u);
  ASSERT_TRUE(log->append(make_record("first", 16), 1).ok());
  EXPECT_EQ(log->end_offset(), 1u);
}

// --- offset_for_timestamp: empty active segment ---

TEST_F(LogDirTest, OffsetForTimestampOnEmptyLog) {
  auto log = open();
  EXPECT_EQ(log->offset_for_timestamp(0), 0u);
  EXPECT_EQ(log->offset_for_timestamp(12345), 0u);
}

TEST_F(LogDirTest, OffsetForTimestampWithEmptyActiveSegmentAfterTruncate) {
  auto log = open();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(log->append(make_record("k", 32),
                            1000 + static_cast<std::uint64_t>(i))
                    .ok());
  }
  // Truncating at the log start leaves a single, empty active segment —
  // the binary search must not land on it and fall into the error path.
  ASSERT_TRUE(log->truncate_suffix(0).ok());
  EXPECT_EQ(log->end_offset(), 0u);
  EXPECT_EQ(log->offset_for_timestamp(500), 0u);
  EXPECT_EQ(log->offset_for_timestamp(1003), 0u);
  EXPECT_EQ(log->offset_for_timestamp(99999), 0u);
}

}  // namespace
}  // namespace pe::storage
