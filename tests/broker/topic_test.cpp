#include "broker/topic.h"

#include <gtest/gtest.h>

#include <set>

namespace pe::broker {
namespace {

TEST(TopicTest, CreatesRequestedPartitions) {
  Topic topic("t", TopicConfig{.partitions = 4});
  EXPECT_EQ(topic.partition_count(), 4u);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_NE(topic.partition(p), nullptr);
  }
  EXPECT_EQ(topic.partition(4), nullptr);
}

TEST(TopicTest, ZeroPartitionsClampedToOne) {
  Topic topic("t", TopicConfig{.partitions = 0});
  EXPECT_EQ(topic.partition_count(), 1u);
}

TEST(TopicTest, KeyHashPartitionerIsStablePerKey) {
  Topic topic("t", TopicConfig{.partitions = 8});
  Record r;
  r.key = "device-3";
  const auto p0 = topic.select_partition(r);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(topic.select_partition(r), p0);
  }
}

TEST(TopicTest, KeyHashSpreadsDistinctKeys) {
  Topic topic("t", TopicConfig{.partitions = 8});
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 64; ++i) {
    Record r;
    r.key = "device-" + std::to_string(i);
    seen.insert(topic.select_partition(r));
  }
  EXPECT_GE(seen.size(), 4u);  // hash spreads over most partitions
}

TEST(TopicTest, EmptyKeyFallsBackToRoundRobin) {
  Topic topic("t", TopicConfig{.partitions = 3});
  Record r;  // empty key
  std::vector<std::uint32_t> order;
  for (int i = 0; i < 6; ++i) order.push_back(topic.select_partition(r));
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 0, 1, 2}));
}

TEST(TopicTest, RoundRobinPartitionerIgnoresKey) {
  TopicConfig config{.partitions = 2};
  config.partitioner = PartitionerKind::kRoundRobin;
  Topic topic("t", config);
  Record r;
  r.key = "same-key";
  EXPECT_EQ(topic.select_partition(r), 0u);
  EXPECT_EQ(topic.select_partition(r), 1u);
  EXPECT_EQ(topic.select_partition(r), 0u);
}

TEST(TopicTest, TotalsAggregateAcrossPartitions) {
  Topic topic("t", TopicConfig{.partitions = 2});
  Record r;
  r.value = Bytes(10, 1);
  (void)topic.partition(0)->append(r);
  (void)topic.partition(1)->append(r);
  (void)topic.partition(1)->append(r);
  EXPECT_EQ(topic.total_records(), 3u);
  EXPECT_EQ(topic.total_bytes(), 3 * (10 + kRecordWireOverheadBytes));
}

}  // namespace
}  // namespace pe::broker
