// BatchAccumulator coverage: size/linger/close/manual triggers, sink
// error accounting, per-partition separation, and the linger==0
// flush-per-add mode.
#include "broker/batch_accumulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace pe::broker {
namespace {

using namespace std::chrono_literals;

Record make_record(const std::string& key, std::size_t value_size = 16) {
  Record r;
  r.key = key;
  r.value = Bytes(value_size, 0x11);
  return r;
}

/// Thread-safe sink capturing every flushed batch (the flusher thread and
/// the add() caller may both flush).
struct SinkCapture {
  struct Batch {
    std::string topic;
    std::uint32_t partition;
    std::vector<Record> records;
  };

  BatchAccumulator::FlushFn fn() {
    return [this](const std::string& topic, std::uint32_t partition,
                  std::vector<Record> records) {
      std::lock_guard<std::mutex> lock(mu);
      batches.push_back({topic, partition, std::move(records)});
      return result;
    };
  }

  std::size_t batch_count() {
    std::lock_guard<std::mutex> lock(mu);
    return batches.size();
  }

  std::size_t record_count() {
    std::lock_guard<std::mutex> lock(mu);
    std::size_t n = 0;
    for (const auto& b : batches) n += b.records.size();
    return n;
  }

  std::mutex mu;
  std::vector<Batch> batches;
  Status result = Status::Ok();
};

/// Wall-bounded wait for an asynchronous (flusher-thread) effect.
template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds wall_budget = 2000ms) {
  Stopwatch sw;
  while (sw.elapsed_ms() < static_cast<double>(wall_budget.count())) {
    if (pred()) return true;
    Clock::sleep_exact(1ms);
  }
  return pred();
}

TEST(BatchAccumulatorTest, SizeTriggerFlushesSynchronously) {
  SinkCapture capture;
  BatchConfig config;
  config.linger = std::chrono::seconds(60);  // never fires here
  config.batch_max_bytes = 3 * make_record("k").wire_size();
  BatchAccumulator acc(config, capture.fn());

  ASSERT_TRUE(acc.add("t", 0, make_record("k")).ok());
  ASSERT_TRUE(acc.add("t", 0, make_record("k")).ok());
  EXPECT_EQ(capture.batch_count(), 0u);  // below the size threshold
  ASSERT_TRUE(acc.add("t", 0, make_record("k")).ok());  // trips the size

  EXPECT_EQ(capture.batch_count(), 1u);
  EXPECT_EQ(capture.record_count(), 3u);
  const auto stats = acc.stats();
  EXPECT_EQ(stats.records_enqueued, 3u);
  EXPECT_EQ(stats.records_flushed, 3u);
  EXPECT_EQ(stats.batches_flushed, 1u);
  EXPECT_EQ(stats.flushes_on_size, 1u);
  EXPECT_EQ(stats.flushes_on_time, 0u);
}

TEST(BatchAccumulatorTest, LingerTriggerFlushesFromBackgroundThread) {
  // 200ms emulated linger at 100x = 2ms wall: the flusher fires without
  // any further add() calls.
  ScopedTimeScale scale(100.0);
  SinkCapture capture;
  BatchConfig config;
  config.linger = std::chrono::milliseconds(200);
  config.batch_max_bytes = 1ull << 20;
  BatchAccumulator acc(config, capture.fn());

  ASSERT_TRUE(acc.add("t", 0, make_record("k")).ok());
  ASSERT_TRUE(wait_until([&] { return capture.batch_count() >= 1; }));
  EXPECT_EQ(capture.record_count(), 1u);
  const auto stats = acc.stats();
  EXPECT_EQ(stats.flushes_on_time, 1u);
  EXPECT_EQ(stats.flushes_on_size, 0u);
}

TEST(BatchAccumulatorTest, CloseFlushesPendingAndRejectsFurtherAdds) {
  SinkCapture capture;
  BatchConfig config;
  config.linger = std::chrono::seconds(60);
  config.batch_max_bytes = 1ull << 20;
  BatchAccumulator acc(config, capture.fn());

  ASSERT_TRUE(acc.add("t", 0, make_record("a")).ok());
  ASSERT_TRUE(acc.add("t", 0, make_record("b")).ok());
  ASSERT_TRUE(acc.close().ok());

  EXPECT_EQ(capture.batch_count(), 1u);
  EXPECT_EQ(capture.record_count(), 2u);
  EXPECT_EQ(acc.stats().flushes_on_close, 1u);

  EXPECT_EQ(acc.add("t", 0, make_record("c")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(acc.close().ok());  // idempotent
}

TEST(BatchAccumulatorTest, ManualFlushDrainsPending) {
  SinkCapture capture;
  BatchConfig config;
  config.linger = std::chrono::seconds(60);
  BatchAccumulator acc(config, capture.fn());

  ASSERT_TRUE(acc.add("t", 0, make_record("a")).ok());
  ASSERT_TRUE(acc.flush().ok());
  EXPECT_EQ(capture.batch_count(), 1u);
  EXPECT_EQ(acc.stats().flushes_manual, 1u);
  // Nothing pending: flushing again is a no-op, not an error.
  ASSERT_TRUE(acc.flush().ok());
  EXPECT_EQ(capture.batch_count(), 1u);
}

TEST(BatchAccumulatorTest, SinkErrorsAreCountedAndSurfaced) {
  SinkCapture capture;
  capture.result = Status::Unavailable("broker down");
  BatchConfig config;
  config.linger = std::chrono::seconds(60);
  config.batch_max_bytes = 2 * make_record("k").wire_size();
  BatchAccumulator acc(config, capture.fn());

  ASSERT_TRUE(acc.add("t", 0, make_record("k")).ok());
  // The size-triggered flush returns the sink's error to the caller.
  EXPECT_EQ(acc.add("t", 0, make_record("k")).code(),
            StatusCode::kUnavailable);

  const auto stats = acc.stats();
  EXPECT_EQ(stats.flush_errors, 1u);
  EXPECT_EQ(stats.records_dropped, 2u);  // the sink owns any retries
  EXPECT_EQ(acc.last_error().code(), StatusCode::kUnavailable);
}

TEST(BatchAccumulatorTest, PartitionsBatchIndependently) {
  SinkCapture capture;
  BatchConfig config;
  config.linger = std::chrono::seconds(60);
  BatchAccumulator acc(config, capture.fn());

  ASSERT_TRUE(acc.add("t", 0, make_record("a")).ok());
  ASSERT_TRUE(acc.add("t", 0, make_record("b")).ok());
  ASSERT_TRUE(acc.add("t", 1, make_record("c")).ok());
  ASSERT_TRUE(acc.add("u", 0, make_record("d")).ok());
  ASSERT_TRUE(acc.flush().ok());

  ASSERT_EQ(capture.batch_count(), 3u);
  std::size_t t0 = 0, t1 = 0, u0 = 0;
  {
    std::lock_guard<std::mutex> lock(capture.mu);
    for (const auto& b : capture.batches) {
      if (b.topic == "t" && b.partition == 0) t0 = b.records.size();
      if (b.topic == "t" && b.partition == 1) t1 = b.records.size();
      if (b.topic == "u" && b.partition == 0) u0 = b.records.size();
    }
  }
  EXPECT_EQ(t0, 2u);
  EXPECT_EQ(t1, 1u);
  EXPECT_EQ(u0, 1u);
}

TEST(BatchAccumulatorTest, ZeroLingerFlushesEveryAdd) {
  SinkCapture capture;
  BatchConfig config;
  config.linger = Duration::zero();
  BatchAccumulator acc(config, capture.fn());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(acc.add("t", 0, make_record("k")).ok());
  }
  EXPECT_EQ(capture.batch_count(), 3u);
  EXPECT_EQ(acc.stats().batches_flushed, 3u);
  EXPECT_EQ(acc.stats().records_flushed, 3u);
}

}  // namespace
}  // namespace pe::broker
