// End-to-end producer/consumer client tests over a fabric.
#include <gtest/gtest.h>

#include <set>

#include "broker/consumer.h"
#include "broker/producer.h"
#include "network/fabric.h"

namespace pe::broker {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = std::make_shared<net::Fabric>();
    ASSERT_TRUE(fabric_->add_site({.id = "cloud"}).ok());
    ASSERT_TRUE(fabric_->add_site({.id = "edge"}).ok());
    net::LinkSpec spec;
    spec.from = "edge";
    spec.to = "cloud";
    spec.latency_min = spec.latency_max = std::chrono::microseconds(200);
    spec.bandwidth_min_bps = spec.bandwidth_max_bps = 1e9;
    ASSERT_TRUE(fabric_->add_bidirectional_link(spec).ok());

    broker_ = std::make_shared<Broker>("cloud");
    ASSERT_TRUE(broker_->create_topic("t", TopicConfig{.partitions = 2}).ok());
  }

  Record make_record(const std::string& key, std::size_t size = 16) {
    Record r;
    r.key = key;
    r.value = Bytes(size, 0x7);
    return r;
  }

  std::shared_ptr<net::Fabric> fabric_;
  std::shared_ptr<Broker> broker_;
};

TEST_F(ClientTest, ProduceConsumeRoundTrip) {
  Producer producer(broker_, fabric_, "edge");
  auto meta = producer.send("t", 0, make_record("hello"));
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value().offset, 0u);
  EXPECT_GT(meta.value().transfer.propagation, Duration::zero());

  Consumer consumer(broker_, fabric_, "cloud", "g");
  ASSERT_TRUE(consumer.assign({{"t", 0}}).ok());
  auto records = consumer.poll(std::chrono::milliseconds(100));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].record.key, "hello");
  EXPECT_EQ(consumer.stats().records_received, 1u);
}

TEST_F(ClientTest, KeyedSendIsStablePartition) {
  Producer producer(broker_, fabric_, "edge");
  auto m1 = producer.send("t", make_record("device-1"));
  auto m2 = producer.send("t", make_record("device-1"));
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m1.value().partition, m2.value().partition);
  EXPECT_EQ(m2.value().offset, m1.value().offset + 1);
}

TEST_F(ClientTest, SendBatchIsOneTransfer) {
  Producer producer(broker_, fabric_, "edge");
  std::vector<Record> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(make_record("k"));
  auto meta = producer.send_batch("t", 1, std::move(batch));
  ASSERT_TRUE(meta.ok());
  const auto stats = fabric_->link_stats();
  EXPECT_EQ(stats.at("edge->cloud").transfers, 1u);
  EXPECT_EQ(producer.stats().records_sent, 10u);
}

TEST_F(ClientTest, EmptyBatchRejected) {
  Producer producer(broker_, fabric_, "edge");
  EXPECT_EQ(producer.send_batch("t", 0, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ClientTest, SendToUnknownTopicCountsError) {
  Producer producer(broker_, fabric_, "edge");
  EXPECT_FALSE(producer.send("nope", make_record("k")).ok());
  EXPECT_EQ(producer.stats().send_errors, 1u);
}

TEST_F(ClientTest, SubscribeSpreadsPartitionsAcrossConsumers) {
  Consumer c1(broker_, fabric_, "cloud", "g");
  Consumer c2(broker_, fabric_, "cloud", "g");
  ASSERT_TRUE(c1.subscribe({"t"}).ok());
  ASSERT_TRUE(c2.subscribe({"t"}).ok());
  // Trigger rebalance pickup.
  (void)c1.poll(std::chrono::milliseconds(10));
  (void)c2.poll(std::chrono::milliseconds(10));
  EXPECT_EQ(c1.assignment().size() + c2.assignment().size(), 2u);
}

TEST_F(ClientTest, PollDrainsAllPartitions) {
  Producer producer(broker_, fabric_, "edge");
  ASSERT_TRUE(producer.send("t", 0, make_record("a")).ok());
  ASSERT_TRUE(producer.send("t", 1, make_record("b")).ok());

  Consumer consumer(broker_, fabric_, "cloud", "g");
  ASSERT_TRUE(consumer.subscribe({"t"}).ok());
  std::size_t total = 0;
  for (int i = 0; i < 10 && total < 2; ++i) {
    total += consumer.poll(std::chrono::milliseconds(50)).size();
  }
  EXPECT_EQ(total, 2u);
}

TEST_F(ClientTest, OffsetResetLatestSkipsOldData) {
  Producer producer(broker_, fabric_, "edge");
  ASSERT_TRUE(producer.send("t", 0, make_record("old")).ok());

  ConsumerConfig config;
  config.offset_reset = OffsetReset::kLatest;
  Consumer consumer(broker_, fabric_, "cloud", "g-latest", config);
  ASSERT_TRUE(consumer.assign({{"t", 0}}).ok());
  EXPECT_TRUE(consumer.poll(std::chrono::milliseconds(20)).empty());

  ASSERT_TRUE(producer.send("t", 0, make_record("new")).ok());
  auto records = consumer.poll(std::chrono::milliseconds(100));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].record.key, "new");
}

TEST_F(ClientTest, CommittedOffsetsResumeAfterRestart) {
  Producer producer(broker_, fabric_, "edge");
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(producer.send("t", 0, make_record(std::to_string(i))).ok());
  }
  {
    Consumer consumer(broker_, fabric_, "cloud", "g-resume");
    ASSERT_TRUE(consumer.assign({{"t", 0}}).ok());
    ConsumerConfig config;
    auto records = consumer.poll(std::chrono::milliseconds(100));
    ASSERT_GE(records.size(), 1u);  // auto-commit on poll
  }
  Consumer resumed(broker_, fabric_, "cloud", "g-resume");
  ASSERT_TRUE(resumed.assign({{"t", 0}}).ok());
  // All four were fetched and committed by the first consumer.
  EXPECT_TRUE(resumed.poll(std::chrono::milliseconds(20)).empty());
}

TEST_F(ClientTest, SeekRewindsPosition) {
  Producer producer(broker_, fabric_, "edge");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(producer.send("t", 0, make_record(std::to_string(i))).ok());
  }
  ConsumerConfig config;
  config.auto_commit = false;
  Consumer consumer(broker_, fabric_, "cloud", "g-seek", config);
  ASSERT_TRUE(consumer.assign({{"t", 0}}).ok());
  ASSERT_EQ(consumer.poll(std::chrono::milliseconds(100)).size(), 3u);

  ASSERT_TRUE(consumer.seek({"t", 0}, 1).ok());
  auto again = consumer.poll(std::chrono::milliseconds(100));
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(again[0].offset, 1u);
}

TEST_F(ClientTest, SeekUnassignedPartitionFails) {
  Consumer consumer(broker_, fabric_, "cloud", "g");
  EXPECT_EQ(consumer.seek({"t", 0}, 0).code(), StatusCode::kNotFound);
}

TEST_F(ClientTest, AssignValidatesTopicAndPartition) {
  Consumer consumer(broker_, fabric_, "cloud", "g");
  EXPECT_EQ(consumer.assign({{"nope", 0}}).code(), StatusCode::kNotFound);
  EXPECT_EQ(consumer.assign({{"t", 7}}).code(), StatusCode::kOutOfRange);
}

TEST_F(ClientTest, PositionTracksConsumption) {
  Producer producer(broker_, fabric_, "edge");
  ASSERT_TRUE(producer.send("t", 0, make_record("a")).ok());
  Consumer consumer(broker_, fabric_, "cloud", "g");
  ASSERT_TRUE(consumer.assign({{"t", 0}}).ok());
  EXPECT_EQ(consumer.position({"t", 0}).value(), 0u);
  ASSERT_EQ(consumer.poll(std::chrono::milliseconds(100)).size(), 1u);
  EXPECT_EQ(consumer.position({"t", 0}).value(), 1u);
  EXPECT_EQ(consumer.position({"t", 1}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ClientTest, CloseLeavesGroupAndRebalances) {
  auto c1 = std::make_unique<Consumer>(broker_, fabric_, "cloud", "g");
  Consumer c2(broker_, fabric_, "cloud", "g");
  ASSERT_TRUE(c1->subscribe({"t"}).ok());
  ASSERT_TRUE(c2.subscribe({"t"}).ok());
  c1.reset();  // destructor leaves the group
  (void)c2.poll(std::chrono::milliseconds(20));
  EXPECT_EQ(c2.assignment().size(), 2u);
}

TEST_F(ClientTest, PollTimeoutWithNoDataReturnsEmpty) {
  Consumer consumer(broker_, fabric_, "cloud", "g");
  ASSERT_TRUE(consumer.subscribe({"t"}).ok());
  Stopwatch sw;
  EXPECT_TRUE(consumer.poll(std::chrono::milliseconds(30)).empty());
  EXPECT_GE(sw.elapsed_ms(), 25.0);
}

TEST_F(ClientTest, EvictedConsumerFailsOverWithoutLossOrDuplication) {
  // Kafka-style session failover: a consumer that stops polling is
  // evicted, its partition moves to the survivor, and consumption resumes
  // from the last committed offset — every record delivered exactly once.
  broker_->coordinator().set_session_timeout(std::chrono::milliseconds(150));
  Producer producer(broker_, fabric_, "edge");

  Consumer survivor(broker_, fabric_, "cloud", "g-failover");
  Consumer laggard(broker_, fabric_, "cloud", "g-failover");
  ASSERT_TRUE(survivor.subscribe({"t"}).ok());
  ASSERT_TRUE(laggard.subscribe({"t"}).ok());
  (void)survivor.poll(std::chrono::milliseconds(1));
  (void)laggard.poll(std::chrono::milliseconds(1));
  ASSERT_EQ(survivor.assignment().size() + laggard.assignment().size(), 2u);

  auto key = [](int i) { return "k" + std::to_string(i); };
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(producer.send("t", i % 2, make_record(key(i))).ok());
  }
  std::multiset<std::string> seen;
  auto drain = [&seen](Consumer& consumer) {
    for (const auto& r : consumer.poll(std::chrono::milliseconds(50))) {
      seen.insert(r.record.key);
    }
  };
  // The laggard consumes its share once, then never polls again — it will
  // miss heartbeats and expire. Auto-commit is deferred to the NEXT poll
  // (at-least-once), so give it one empty poll to persist its handoff
  // point; a hard crash without that poll is covered by
  // CrashAfterPollRedeliversUncommittedRecords below.
  drain(laggard);
  (void)laggard.poll(std::chrono::milliseconds(1));
  drain(survivor);

  for (int i = 20; i < 40; ++i) {
    ASSERT_TRUE(producer.send("t", i % 2, make_record(key(i))).ok());
  }
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (seen.size() < 40 && Clock::now() < deadline) {
    drain(survivor);
  }
  ASSERT_EQ(seen.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(seen.count(key(i)), 1u) << "record " << key(i);
  }
  // The survivor took over the evicted member's partition.
  EXPECT_EQ(survivor.assignment().size(), 2u);
  EXPECT_EQ(broker_->coordinator().members("g-failover").size(), 1u);
}

TEST_F(ClientTest, AutoCommitIsDeferredToNextPoll) {
  // At-least-once semantics: records handed out by poll() are committed
  // at the START of the next poll, never in the same call that delivered
  // them. A crash between the two polls must leave the offsets
  // uncommitted so the records are redelivered.
  Producer producer(broker_, fabric_, "edge");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(producer.send("t", 0, make_record(std::to_string(i))).ok());
  }
  Consumer consumer(broker_, fabric_, "cloud", "g-defer");
  ASSERT_TRUE(consumer.assign({{"t", 0}}).ok());
  ASSERT_EQ(consumer.poll(std::chrono::milliseconds(100)).size(), 3u);
  // Delivered but not yet committed.
  EXPECT_FALSE(
      broker_->coordinator().committed_offset("g-defer", {"t", 0}).has_value());
  // The next poll (even an empty one) persists the previous positions.
  (void)consumer.poll(std::chrono::milliseconds(1));
  const auto committed =
      broker_->coordinator().committed_offset("g-defer", {"t", 0});
  ASSERT_TRUE(committed.has_value());
  EXPECT_EQ(*committed, 3u);
}

TEST_F(ClientTest, CrashAfterPollRedeliversUncommittedRecords) {
  // A consumer that crashes after poll() but before the next poll's
  // deferred auto-commit must NOT lose data: the survivor inherits the
  // partition at the last committed offset and re-reads everything the
  // victim saw but never committed (at-least-once, duplicates allowed).
  broker_->coordinator().set_session_timeout(std::chrono::milliseconds(150));
  Producer producer(broker_, fabric_, "edge");

  Consumer survivor(broker_, fabric_, "cloud", "g-crash");
  Consumer victim(broker_, fabric_, "cloud", "g-crash");
  ASSERT_TRUE(survivor.subscribe({"t"}).ok());
  ASSERT_TRUE(victim.subscribe({"t"}).ok());
  (void)survivor.poll(std::chrono::milliseconds(1));
  (void)victim.poll(std::chrono::milliseconds(1));
  ASSERT_EQ(survivor.assignment().size() + victim.assignment().size(), 2u);

  auto key = [](int i) { return "k" + std::to_string(i); };
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(producer.send("t", i % 2, make_record(key(i))).ok());
  }

  // The victim drains its share once; under deferred auto-commit those
  // positions are NOT yet committed when it crashes.
  std::multiset<std::string> victim_saw;
  for (const auto& r : victim.poll(std::chrono::milliseconds(50))) {
    victim_saw.insert(r.record.key);
  }
  ASSERT_FALSE(victim_saw.empty());
  victim.crash();  // hard stop: no commit, no leave-group

  std::multiset<std::string> survivor_saw;
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (survivor_saw.size() < 20 && Clock::now() < deadline) {
    for (const auto& r : survivor.poll(std::chrono::milliseconds(50))) {
      survivor_saw.insert(r.record.key);
    }
  }
  // No loss: the survivor alone re-reads all 20 records — its own 10 plus
  // every record the victim had seen but never committed.
  ASSERT_EQ(survivor_saw.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(survivor_saw.count(key(i)), 1u) << "record " << key(i);
  }
  for (const auto& k : victim_saw) {
    EXPECT_EQ(survivor_saw.count(k), 1u) << "redelivered " << k;
  }
  EXPECT_EQ(survivor.assignment().size(), 2u);
  EXPECT_EQ(broker_->coordinator().members("g-crash").size(), 1u);
}

TEST_F(ClientTest, FetchChargesDownlink) {
  Producer producer(broker_, fabric_, "edge");
  ASSERT_TRUE(producer.send("t", 0, make_record("k", 1000)).ok());
  Consumer consumer(broker_, fabric_, "edge", "g");  // consumer on edge
  ASSERT_TRUE(consumer.assign({{"t", 0}}).ok());
  ASSERT_EQ(consumer.poll(std::chrono::milliseconds(100)).size(), 1u);
  const auto stats = fabric_->link_stats();
  EXPECT_EQ(stats.at("cloud->edge").transfers, 1u);
  EXPECT_GT(stats.at("cloud->edge").bytes, 1000u);
}

// Regression: fetch_max_bytes bounds the whole poll, not each partition.
// The old code handed every partition the full budget, so a wide
// assignment returned partitions x budget bytes per poll.
TEST_F(ClientTest, PollSharesFetchMaxBytesAcrossPartitions) {
  ASSERT_TRUE(
      broker_->create_topic("wide", TopicConfig{.partitions = 3}).ok());
  Producer producer(broker_, fabric_, "edge");
  const std::uint64_t wire = make_record("k", 1024).wire_size();
  for (std::uint32_t p = 0; p < 3; ++p) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(producer.send("wide", p, make_record("k", 1024)).ok());
    }
  }

  ConsumerConfig config;
  config.fetch_max_bytes = 2 * wire + wire / 2;  // ~2.5 records
  Consumer consumer(broker_, fabric_, "cloud", "g-budget", config);
  ASSERT_TRUE(consumer.assign({{"wide", 0}, {"wide", 1}, {"wide", 2}}).ok());

  auto first = consumer.poll(std::chrono::milliseconds(100));
  ASSERT_FALSE(first.empty());
  std::uint64_t bytes = 0;
  for (const auto& r : first) bytes += r.record.wire_size();
  // Shared budget: at most ~budget bytes plus one record of overshoot
  // where the residual budget was smaller than a record — never the old
  // 3 x 2.5 records.
  EXPECT_LE(bytes, config.fetch_max_bytes + wire);
  EXPECT_LT(first.size(), 6u);

  // The budget resets per poll, so subsequent polls drain the rest.
  std::size_t total = first.size();
  for (int i = 0; i < 50 && total < 12; ++i) {
    total += consumer.poll(std::chrono::milliseconds(20)).size();
  }
  EXPECT_EQ(total, 12u);
}

// Producer-side batching: enqueued records coalesce into one transfer and
// one broker produce per flush.
TEST_F(ClientTest, BatchingProducerCoalescesEnqueues) {
  Producer producer(broker_, fabric_, "edge");
  BatchConfig config;
  config.linger = std::chrono::seconds(60);  // only explicit flushes
  config.batch_max_bytes = 1ull << 20;
  producer.enable_batching(config);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(producer.enqueue("t", 0, make_record("k")).ok());
  }
  const auto before = fabric_->link_stats().at("edge->cloud").transfers;
  ASSERT_TRUE(producer.flush().ok());
  const auto after = fabric_->link_stats().at("edge->cloud").transfers;
  EXPECT_EQ(after - before, 1u);  // 10 records, one wire transfer
  EXPECT_EQ(producer.stats().records_sent, 10u);
  EXPECT_EQ(producer.batch_stats().records_flushed, 10u);

  Consumer consumer(broker_, fabric_, "cloud", "g-batch");
  ASSERT_TRUE(consumer.assign({{"t", 0}}).ok());
  EXPECT_EQ(consumer.poll(std::chrono::milliseconds(100)).size(), 10u);
  ASSERT_TRUE(producer.close().ok());
  EXPECT_EQ(producer.enqueue("t", 0, make_record("k")).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace pe::broker
