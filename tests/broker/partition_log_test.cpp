#include "broker/partition_log.h"

#include <gtest/gtest.h>

#include <thread>

namespace pe::broker {
namespace {

Record make_record(const std::string& key, std::size_t value_size = 10) {
  Record r;
  r.key = key;
  r.value = Bytes(value_size, 0x42);
  return r;
}

TEST(PartitionLogTest, AppendAssignsDenseOffsets) {
  PartitionLog log;
  EXPECT_EQ(log.append(make_record("a")).value(), 0u);
  EXPECT_EQ(log.append(make_record("b")).value(), 1u);
  EXPECT_EQ(log.append(make_record("c")).value(), 2u);
  EXPECT_EQ(log.end_offset(), 3u);
  EXPECT_EQ(log.log_start_offset(), 0u);
  EXPECT_EQ(log.record_count(), 3u);
}

TEST(PartitionLogTest, AppendBatchReturnsFirstOffset) {
  PartitionLog log;
  (void)log.append(make_record("x"));
  std::vector<Record> batch = {make_record("a"), make_record("b")};
  EXPECT_EQ(log.append_batch(std::move(batch)).value(), 1u);
  EXPECT_EQ(log.end_offset(), 3u);
}

TEST(PartitionLogTest, FetchReturnsFromOffset) {
  PartitionLog log;
  for (int i = 0; i < 5; ++i) (void)log.append(make_record(std::to_string(i)));
  FetchSpec spec;
  spec.offset = 2;
  auto result = log.fetch(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 3u);
  EXPECT_EQ(result.value()[0].offset, 2u);
  EXPECT_EQ(result.value()[0].record.key, "2");
  EXPECT_GT(result.value()[0].broker_timestamp_ns, 0u);
}

TEST(PartitionLogTest, FetchRespectsMaxRecords) {
  PartitionLog log;
  for (int i = 0; i < 10; ++i) (void)log.append(make_record("k"));
  FetchSpec spec;
  spec.max_records = 4;
  auto result = log.fetch(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 4u);
}

TEST(PartitionLogTest, FetchRespectsMaxBytesButReturnsAtLeastOne) {
  PartitionLog log;
  (void)log.append(make_record("a", 1000));
  (void)log.append(make_record("b", 1000));
  FetchSpec spec;
  spec.max_bytes = 10;  // smaller than a single record
  auto result = log.fetch(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);  // never starves
}

TEST(PartitionLogTest, FetchAtEndReturnsEmptyNonBlocking) {
  PartitionLog log;
  (void)log.append(make_record("a"));
  FetchSpec spec;
  spec.offset = 1;
  auto result = log.fetch(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(PartitionLogTest, FetchBeyondEndIsOutOfRange) {
  PartitionLog log;
  FetchSpec spec;
  spec.offset = 5;
  EXPECT_EQ(log.fetch(spec).status().code(), StatusCode::kOutOfRange);
}

TEST(PartitionLogTest, LongPollWakesOnAppend) {
  PartitionLog log;
  FetchSpec spec;
  spec.offset = 0;
  spec.max_wait = std::chrono::seconds(5);

  std::thread appender([&log] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    (void)log.append(make_record("late"));
  });
  Stopwatch sw;
  auto result = log.fetch(spec);
  appender.join();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_LT(sw.elapsed_ms(), 4000.0);  // woke well before the deadline
}

TEST(PartitionLogTest, LongPollTimesOutEmpty) {
  PartitionLog log;
  FetchSpec spec;
  spec.max_wait = std::chrono::milliseconds(30);
  Stopwatch sw;
  auto result = log.fetch(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
  EXPECT_GE(sw.elapsed_ms(), 25.0);
}

TEST(PartitionLogTest, RetentionByRecordsTrimsHead) {
  PartitionLog log(RetentionPolicy{.max_records = 3, .max_bytes = 0});
  for (int i = 0; i < 5; ++i) (void)log.append(make_record(std::to_string(i)));
  EXPECT_EQ(log.record_count(), 3u);
  EXPECT_EQ(log.log_start_offset(), 2u);
  EXPECT_EQ(log.end_offset(), 5u);

  FetchSpec spec;
  spec.offset = 0;
  EXPECT_EQ(log.fetch(spec).status().code(), StatusCode::kOutOfRange);
  spec.offset = 2;
  auto result = log.fetch(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().front().record.key, "2");
}

TEST(PartitionLogTest, RetentionByBytesKeepsAtLeastOneRecord) {
  PartitionLog log(RetentionPolicy{.max_records = 0, .max_bytes = 50});
  (void)log.append(make_record("big", 500));
  EXPECT_EQ(log.record_count(), 1u);  // single record always retained
  (void)log.append(make_record("big2", 500));
  EXPECT_EQ(log.record_count(), 1u);
  EXPECT_EQ(log.log_start_offset(), 1u);
}

TEST(PartitionLogTest, YoungLogWithLargeMaxAgeRetainsEverything) {
  // Regression: when the clock reading is smaller than max_age the cutoff
  // `now - max_age` used to wrap to a huge unsigned value and evict every
  // entry but the newest. The subtraction must saturate at zero instead.
  PartitionLog log(RetentionPolicy{
      .max_records = 0, .max_bytes = 0, .max_age = Duration::max()});
  for (int i = 0; i < 5; ++i) (void)log.append(make_record(std::to_string(i)));
  EXPECT_EQ(log.record_count(), 5u);
  EXPECT_EQ(log.log_start_offset(), 0u);
}

TEST(PartitionLogTest, FetchReturnsSharedPayloadViews) {
  // Zero-copy data plane: every fetch of the same offset hands out a view
  // of the one payload buffer stored at append time, not a fresh copy.
  PartitionLog log;
  (void)log.append(make_record("a", 100));
  FetchSpec spec;
  auto first = log.fetch(spec);
  auto second = log.fetch(spec);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first.value().size(), 1u);
  ASSERT_EQ(second.value().size(), 1u);
  const Payload& p1 = first.value()[0].record.value;
  const Payload& p2 = second.value()[0].record.value;
  EXPECT_EQ(p1.data(), p2.data());
  EXPECT_EQ(p1.shared().get(), p2.shared().get());
  // The log's own entry plus the two fetched views share one buffer.
  EXPECT_GE(p1.use_count(), 3);
}

TEST(PartitionLogTest, ByteSizeTracksWireSize) {
  PartitionLog log;
  (void)log.append(make_record("ab", 100));  // 2 + 100 + overhead
  EXPECT_EQ(log.byte_size(), 102u + kRecordWireOverheadBytes);
}

TEST(PartitionLogTest, ConcurrentAppendsKeepOffsetsUnique) {
  PartitionLog log;
  constexpr int kThreads = 4, kPer = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPer; ++i) (void)log.append(make_record("k"));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.end_offset(), static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_EQ(log.record_count(), static_cast<std::uint64_t>(kThreads * kPer));
}

}  // namespace
}  // namespace pe::broker
