#include "broker/broker.h"

#include <gtest/gtest.h>

namespace pe::broker {
namespace {

Record make_record(const std::string& key, std::size_t size = 8) {
  Record r;
  r.key = key;
  r.value = Bytes(size, 0x1);
  return r;
}

class BrokerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_shared<Broker>("cloud", "b0");
    ASSERT_TRUE(broker_->create_topic("t", TopicConfig{.partitions = 2}).ok());
  }
  std::shared_ptr<Broker> broker_;
};

TEST_F(BrokerTest, CreateDuplicateTopicFails) {
  EXPECT_EQ(broker_->create_topic("t", {}).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(BrokerTest, CreateTopicValidation) {
  EXPECT_EQ(broker_->create_topic("", {}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(broker_->create_topic("x", TopicConfig{.partitions = 0}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BrokerTest, DeleteTopicRemovesIt) {
  ASSERT_TRUE(broker_->delete_topic("t").ok());
  EXPECT_FALSE(broker_->has_topic("t"));
  EXPECT_EQ(broker_->delete_topic("t").code(), StatusCode::kNotFound);
  EXPECT_EQ(broker_->partition_count("t"), 0u);
}

TEST_F(BrokerTest, TopicNamesListsAll) {
  ASSERT_TRUE(broker_->create_topic("u", {}).ok());
  const auto names = broker_->topic_names();
  EXPECT_EQ(names.size(), 2u);
}

TEST_F(BrokerTest, ProduceAndFetchRoundTrip) {
  std::vector<Record> batch;
  batch.push_back(make_record("k1"));
  batch.push_back(make_record("k2"));
  auto offset = broker_->produce("t", 0, std::move(batch));
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(offset.value(), 0u);

  FetchSpec spec;
  auto fetched = broker_->fetch("t", 0, spec);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 2u);
  EXPECT_EQ(fetched.value()[0].topic, "t");
  EXPECT_EQ(fetched.value()[0].partition, 0u);
  EXPECT_EQ(fetched.value()[0].record.key, "k1");
  EXPECT_EQ(fetched.value()[1].offset, 1u);
}

TEST_F(BrokerTest, ProduceToUnknownTopicOrPartitionFails) {
  EXPECT_EQ(broker_->produce("nope", 0, {make_record("k")}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(broker_->produce("t", 9, {make_record("k")}).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(BrokerTest, FetchErrorsPropagate) {
  EXPECT_EQ(broker_->fetch("nope", 0, {}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(broker_->fetch("t", 9, {}).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(BrokerTest, WatermarksTrackAppends) {
  EXPECT_EQ(broker_->end_offset("t", 0).value(), 0u);
  ASSERT_TRUE(broker_->produce("t", 0, {make_record("k")}).ok());
  EXPECT_EQ(broker_->end_offset("t", 0).value(), 1u);
  EXPECT_EQ(broker_->log_start_offset("t", 0).value(), 0u);
  EXPECT_EQ(broker_->end_offset("t", 1).value(), 0u);  // other partition
}

TEST_F(BrokerTest, SelectPartitionUsesTopicPartitioner) {
  Record keyed = make_record("stable-key");
  auto p1 = broker_->select_partition("t", keyed);
  auto p2 = broker_->select_partition("t", keyed);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1.value(), p2.value());
  EXPECT_EQ(broker_->select_partition("nope", keyed).status().code(),
            StatusCode::kNotFound);
}

TEST_F(BrokerTest, StatsCountTraffic) {
  ASSERT_TRUE(broker_->produce("t", 0, {make_record("k", 100)}).ok());
  ASSERT_TRUE(broker_->fetch("t", 0, {}).ok());
  const auto stats = broker_->stats();
  EXPECT_EQ(stats.produce_requests, 1u);
  EXPECT_EQ(stats.fetch_requests, 1u);
  EXPECT_EQ(stats.records_in, 1u);
  EXPECT_EQ(stats.records_out, 1u);
  EXPECT_EQ(stats.bytes_in, stats.bytes_out);
  EXPECT_GT(stats.bytes_in, 100u);
}

TEST_F(BrokerTest, RetainedBytesSumAcrossTopics) {
  ASSERT_TRUE(broker_->produce("t", 0, {make_record("k", 50)}).ok());
  EXPECT_GT(broker_->retained_bytes(), 50u);
}

TEST_F(BrokerTest, CoordinatorIsWiredToTopics) {
  auto joined = broker_->coordinator().join("g", "m", {"t"});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined.value().partitions.size(), 2u);
}

}  // namespace
}  // namespace pe::broker
