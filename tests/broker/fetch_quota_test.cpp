// Fetch-side admission quotas (the consume mirror of the produce path):
// debt-based token buckets that admit while non-negative and are charged
// for what a fetch actually carried, Kafka consumer-quota style. Covers
// the controller gate, the broker fetch() integration, and the
// Consumer::poll overload that surfaces the throttle to callers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "broker/admission.h"
#include "broker/broker.h"
#include "broker/consumer.h"
#include "broker/producer.h"
#include "common/clock.h"
#include "network/fabric.h"

namespace pe::broker {
namespace {

using namespace std::chrono_literals;

TEST(FetchQuotaControllerTest, AdmitsUntilDebtThenThrottlesWithHint) {
  AdmissionConfig config;
  config.default_fetch_quota.bytes_per_sec = 10e6;  // 10 MB/s, 10 MB burst
  AdmissionController controller(config);

  // Buckets start full: admitted.
  ASSERT_TRUE(controller.admit_fetch("worker-1").ok());
  // A fetch twice the burst lands the client ~10 MB in debt...
  controller.charge_fetch("worker-1", 100, 20'000'000);
  auto throttled = controller.admit_fetch("worker-1");
  ASSERT_FALSE(throttled.ok());
  EXPECT_EQ(throttled.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(throttled.is_transient());
  // ...which refills in about a second.
  EXPECT_GE(throttled.retry_after(), 100ms);
  EXPECT_LE(throttled.retry_after(), 5s);

  // Other clients and anonymous (internal) fetches are unaffected.
  EXPECT_TRUE(controller.admit_fetch("worker-2").ok());
  EXPECT_TRUE(controller.admit_fetch("").ok());
}

TEST(FetchQuotaControllerTest, DebtRefillsAndAdmitsAgain) {
  AdmissionConfig config;
  config.default_fetch_quota.bytes_per_sec = 50e6;  // 50 MB/s
  AdmissionController controller(config);
  ASSERT_TRUE(controller.admit_fetch("w").ok());
  // ~5 MB of debt refills in ~100 ms of real time.
  controller.charge_fetch("w", 10, 55'000'000);
  ASSERT_FALSE(controller.admit_fetch("w").ok());

  const auto deadline = Clock::now() + 5s;
  bool admitted = false;
  while (Clock::now() < deadline) {
    if (controller.admit_fetch("w").ok()) {
      admitted = true;
      break;
    }
    Clock::sleep_exact(10ms);
  }
  EXPECT_TRUE(admitted) << "fetch debt never refilled";
}

TEST(FetchQuotaControllerTest, FetchAndProduceQuotasAreIndependent) {
  AdmissionConfig config;
  config.default_quota.bytes_per_sec = 10e6;
  config.default_fetch_quota.bytes_per_sec = 10e6;
  AdmissionController controller(config);

  // Drown the fetch side in debt; the produce side must be untouched.
  controller.charge_fetch("c", 1000, 100'000'000);
  ASSERT_FALSE(controller.admit_fetch("c").ok());
  EXPECT_TRUE(controller.admit("c", 10, 1000).ok());

  // Replacing the produce quota must NOT reset the fetch debt (the two
  // live in one ClientState; set_quota swaps only its own buckets).
  controller.set_quota("c", ClientQuota{.bytes_per_sec = 1e6});
  EXPECT_FALSE(controller.admit_fetch("c").ok());
}

TEST(FetchQuotaControllerTest, RecordRateDimensionAlsoGates) {
  AdmissionConfig config;
  config.default_fetch_quota.records_per_sec = 1000;  // no byte limit
  AdmissionController controller(config);
  ASSERT_TRUE(controller.admit_fetch("w").ok());
  controller.charge_fetch("w", 5000, 0);
  auto throttled = controller.admit_fetch("w");
  EXPECT_EQ(throttled.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(throttled.retry_after(), Duration::zero());
}

TEST(FetchQuotaBrokerTest, FetchGateCountsAndExemptsAnonymous) {
  BrokerOptions options;
  options.admission.default_fetch_quota.bytes_per_sec = 1000;  // tiny
  auto broker = std::make_shared<Broker>("cloud", options);
  ASSERT_TRUE(broker->create_topic("t", TopicConfig{}).ok());
  for (int i = 0; i < 50; ++i) {
    Record r;
    r.key = "k";
    r.value = Bytes(256, 0x1);
    std::vector<Record> batch;
    batch.push_back(std::move(r));
    ASSERT_TRUE(broker->produce("t", 0, std::move(batch)).ok());
  }

  FetchSpec spec;
  spec.offset = 0;
  // First identified fetch is admitted (full bucket), then charged far
  // past the 1 kB/s quota.
  auto first = broker->fetch("t", 0, spec, "hungry");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().size(), 50u);

  auto second = broker->fetch("t", 0, spec, "hungry");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(second.status().is_transient());
  EXPECT_EQ(broker->stats().fetch_throttled, 1u);

  // Anonymous (internal) fetches bypass the gate entirely.
  EXPECT_TRUE(broker->fetch("t", 0, spec).ok());
  // And an explicit per-client override beats the default quota.
  broker->set_client_fetch_quota("vip", ClientQuota{});  // unlimited
  EXPECT_TRUE(broker->fetch("t", 0, spec, "vip").ok());
  EXPECT_TRUE(broker->fetch("t", 0, spec, "vip").ok());
}

TEST(FetchQuotaConsumerTest, PollSurfacesThrottleAndRecovers) {
  BrokerOptions options;
  // 1 MB/s with a 10 kB burst, against 256 kB fetches: every admitted
  // fetch leaves ~0.25 s of debt, so the next poll is reliably refused.
  options.admission.default_fetch_quota.bytes_per_sec = 1e6;
  options.admission.default_fetch_quota.burst_seconds = 0.01;
  auto broker = std::make_shared<Broker>("cloud", options);
  auto fabric = std::make_shared<net::Fabric>();
  ASSERT_TRUE(fabric->add_site({.id = "cloud"}).ok());
  ASSERT_TRUE(broker->create_topic("t", TopicConfig{}).ok());
  for (int i = 0; i < 100; ++i) {
    Record r;
    r.key = "k" + std::to_string(i);
    r.value = Bytes(20 * 1024, 0x2);
    std::vector<Record> batch;
    batch.push_back(std::move(r));
    ASSERT_TRUE(broker->produce("t", 0, std::move(batch)).ok());
  }

  ConsumerConfig config;
  config.max_poll_records = 1000;
  // Cap each fetch well under the backlog so draining takes several
  // fetches — the quota gate must refuse at least one of them.
  config.fetch_max_bytes = 256 * 1024;
  Consumer consumer(broker, fabric, "cloud", "g", config);
  ASSERT_TRUE(consumer.subscribe({"t"}).ok());

  Status throttle;
  auto first = consumer.poll(1s, &throttle);
  ASSERT_TRUE(throttle.ok()) << throttle.to_string();
  ASSERT_FALSE(first.empty());

  std::size_t total = first.size();
  bool saw_throttle = false;
  const auto deadline = Clock::now() + 10s;
  while (total < 100 && Clock::now() < deadline) {
    auto out = consumer.poll(50ms, &throttle);
    total += out.size();
    if (!throttle.ok()) {
      saw_throttle = true;
      EXPECT_EQ(throttle.code(), StatusCode::kResourceExhausted);
      EXPECT_GT(throttle.retry_after(), Duration::zero());
      // Back off as the broker asked instead of hammering it.
      Clock::sleep_exact(std::min<Duration>(throttle.retry_after(), 500ms));
    }
  }
  // The quota slowed the consumer down but lost nothing.
  EXPECT_EQ(total, 100u);
  EXPECT_TRUE(saw_throttle);
  EXPECT_GE(consumer.stats().throttled_polls, 1u);
  EXPECT_GE(broker->stats().fetch_throttled, 1u);
}

}  // namespace
}  // namespace pe::broker
