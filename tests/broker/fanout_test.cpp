// Concurrent fan-out over a single partition: one producer appends while
// four independent consumer groups poll the same data. Exercises the
// zero-copy read path under contention — run under PE_SANITIZE=thread to
// prove the shared-payload handover is race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "broker/consumer.h"
#include "broker/producer.h"
#include "network/fabric.h"

namespace pe::broker {
namespace {

constexpr int kGroups = 4;
constexpr int kRecords = 200;

struct SeenRecord {
  std::uint64_t offset;
  std::string key;
  std::size_t size;
  std::uint8_t first_byte;
  // Address of the payload buffer — identical across groups iff the
  // broker hands out shared views instead of copies.
  const std::uint8_t* data;
};

TEST(FanOutTest, FourGroupsSeeIdenticalSharedRecordsConcurrently) {
  auto fabric = std::make_shared<net::Fabric>();
  ASSERT_TRUE(fabric->add_site({.id = "s"}).ok());
  auto broker = std::make_shared<Broker>("s");
  ASSERT_TRUE(
      broker->create_topic("fan", TopicConfig{.partitions = 1}).ok());

  // Producer runs concurrently with the consumers so fetch races against
  // append, not just against other fetches.
  std::thread producer_thread([&] {
    Producer producer(broker, fabric, "s");
    for (int i = 0; i < kRecords; ++i) {
      Record r;
      r.key = "k" + std::to_string(i);
      r.value = Bytes(64 + static_cast<std::size_t>(i % 7),
                      static_cast<std::uint8_t>(i & 0xff));
      ASSERT_TRUE(producer.send("fan", 0, std::move(r)).ok());
    }
  });

  std::vector<std::vector<SeenRecord>> per_group(kGroups);
  std::atomic<int> failures{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kGroups);
  for (int g = 0; g < kGroups; ++g) {
    consumers.emplace_back([&, g] {
      Consumer consumer(broker, fabric, "s", "fan-g" + std::to_string(g));
      if (!consumer.assign({{"fan", 0}}).ok()) {
        failures.fetch_add(1);
        return;
      }
      auto& seen = per_group[static_cast<std::size_t>(g)];
      const auto deadline = Clock::now() + std::chrono::seconds(20);
      while (seen.size() < static_cast<std::size_t>(kRecords) &&
             Clock::now() < deadline) {
        for (const auto& r : consumer.poll(std::chrono::milliseconds(50))) {
          seen.push_back({r.offset, r.record.key, r.record.value.size(),
                          r.record.value.empty() ? std::uint8_t{0}
                                                 : r.record.value[0],
                          r.record.value.data()});
        }
      }
    });
  }
  producer_thread.join();
  for (auto& t : consumers) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Every group independently read the full partition in order.
  for (int g = 0; g < kGroups; ++g) {
    const auto& seen = per_group[static_cast<std::size_t>(g)];
    ASSERT_EQ(seen.size(), static_cast<std::size_t>(kRecords))
        << "group " << g;
    for (int i = 0; i < kRecords; ++i) {
      const auto& r = seen[static_cast<std::size_t>(i)];
      EXPECT_EQ(r.offset, static_cast<std::uint64_t>(i)) << "group " << g;
      EXPECT_EQ(r.key, "k" + std::to_string(i)) << "group " << g;
      EXPECT_EQ(r.size, 64 + static_cast<std::size_t>(i % 7))
          << "group " << g;
      EXPECT_EQ(r.first_byte, static_cast<std::uint8_t>(i & 0xff))
          << "group " << g;
      // Zero-copy: all groups observe the very buffer stored at append
      // time, not per-fetch copies.
      EXPECT_EQ(r.data, per_group[0][static_cast<std::size_t>(i)].data)
          << "group " << g << " record " << i;
    }
  }
}

}  // namespace
}  // namespace pe::broker
