#include "broker/group_coordinator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "common/clock.h"

namespace pe::broker {
namespace {

GroupCoordinator make_coordinator(std::uint32_t partitions = 6) {
  return GroupCoordinator([partitions](const std::string& topic) {
    return topic == "t" ? partitions : 0u;
  });
}

TEST(GroupCoordinatorTest, SingleMemberGetsAllPartitions) {
  auto gc = make_coordinator(4);
  auto a = gc.join("g", "m1", {"t"});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().partitions.size(), 4u);
  EXPECT_EQ(a.value().generation, 1u);
}

TEST(GroupCoordinatorTest, UnknownTopicRejected) {
  auto gc = make_coordinator();
  EXPECT_EQ(gc.join("g", "m1", {"nope"}).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(gc.members("g").empty());
}

TEST(GroupCoordinatorTest, EmptySubscriptionRejected) {
  auto gc = make_coordinator();
  EXPECT_EQ(gc.join("g", "m1", {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GroupCoordinatorTest, RangeAssignmentSplitsEvenly) {
  auto gc = make_coordinator(6);
  ASSERT_TRUE(gc.join("g", "m1", {"t"}).ok());
  ASSERT_TRUE(gc.join("g", "m2", {"t"}).ok());
  ASSERT_TRUE(gc.join("g", "m3", {"t"}).ok());
  std::size_t total = 0;
  std::set<std::uint32_t> seen;
  for (const auto& m : {"m1", "m2", "m3"}) {
    auto a = gc.assignment("g", m);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.value().partitions.size(), 2u);
    for (const auto& tp : a.value().partitions) {
      EXPECT_EQ(tp.topic, "t");
      seen.insert(tp.partition);
      total += 1;
    }
  }
  EXPECT_EQ(total, 6u);
  EXPECT_EQ(seen.size(), 6u);  // disjoint cover
}

TEST(GroupCoordinatorTest, UnevenSplitGivesExtrasToFirstMembers) {
  auto gc = make_coordinator(5);
  ASSERT_TRUE(gc.join("g", "a", {"t"}).ok());
  ASSERT_TRUE(gc.join("g", "b", {"t"}).ok());
  EXPECT_EQ(gc.assignment("g", "a").value().partitions.size(), 3u);
  EXPECT_EQ(gc.assignment("g", "b").value().partitions.size(), 2u);
}

TEST(GroupCoordinatorTest, MoreMembersThanPartitionsLeavesSomeIdle) {
  auto gc = make_coordinator(2);
  ASSERT_TRUE(gc.join("g", "a", {"t"}).ok());
  ASSERT_TRUE(gc.join("g", "b", {"t"}).ok());
  ASSERT_TRUE(gc.join("g", "c", {"t"}).ok());
  std::size_t total = 0;
  for (const auto& m : {"a", "b", "c"}) {
    auto a = gc.assignment("g", m);
    ASSERT_TRUE(a.ok());  // idle members still have an (empty) assignment
    total += a.value().partitions.size();
  }
  EXPECT_EQ(total, 2u);
}

TEST(GroupCoordinatorTest, JoinBumpsGeneration) {
  auto gc = make_coordinator();
  ASSERT_TRUE(gc.join("g", "a", {"t"}).ok());
  EXPECT_EQ(gc.generation("g"), 1u);
  ASSERT_TRUE(gc.join("g", "b", {"t"}).ok());
  EXPECT_EQ(gc.generation("g"), 2u);
}

TEST(GroupCoordinatorTest, LeaveRebalancesRemaining) {
  auto gc = make_coordinator(4);
  ASSERT_TRUE(gc.join("g", "a", {"t"}).ok());
  ASSERT_TRUE(gc.join("g", "b", {"t"}).ok());
  ASSERT_TRUE(gc.leave("g", "a").ok());
  auto b = gc.assignment("g", "b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().partitions.size(), 4u);
  EXPECT_EQ(gc.assignment("g", "a").status().code(), StatusCode::kNotFound);
}

TEST(GroupCoordinatorTest, LeaveUnknownMemberFails) {
  auto gc = make_coordinator();
  ASSERT_TRUE(gc.join("g", "a", {"t"}).ok());
  EXPECT_EQ(gc.leave("g", "zz").code(), StatusCode::kNotFound);
  EXPECT_EQ(gc.leave("nope", "a").code(), StatusCode::kNotFound);
}

TEST(GroupCoordinatorTest, CommitAndFetchOffsets) {
  auto gc = make_coordinator();
  const TopicPartition tp{"t", 1};
  EXPECT_FALSE(gc.committed_offset("g", tp).has_value());
  ASSERT_TRUE(gc.commit_offset("g", tp, 42).ok());
  EXPECT_EQ(gc.committed_offset("g", tp).value(), 42u);
  ASSERT_TRUE(gc.commit_offset("g", tp, 43).ok());
  EXPECT_EQ(gc.committed_offset("g", tp).value(), 43u);
}

TEST(GroupCoordinatorTest, CommitsSurviveRebalance) {
  auto gc = make_coordinator(2);
  ASSERT_TRUE(gc.join("g", "a", {"t"}).ok());
  ASSERT_TRUE(gc.commit_offset("g", {"t", 0}, 10).ok());
  ASSERT_TRUE(gc.join("g", "b", {"t"}).ok());  // rebalance
  EXPECT_EQ(gc.committed_offset("g", {"t", 0}).value(), 10u);
}

TEST(GroupCoordinatorTest, MembersListsSortedIds) {
  auto gc = make_coordinator();
  ASSERT_TRUE(gc.join("g", "zed", {"t"}).ok());
  ASSERT_TRUE(gc.join("g", "ann", {"t"}).ok());
  const auto members = gc.members("g");
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], "ann");
  EXPECT_EQ(members[1], "zed");
}

TEST(GroupCoordinatorTest, SessionTimeoutEvictsSilentMemberExactlyOnce) {
  auto gc = make_coordinator(4);
  gc.set_session_timeout(std::chrono::milliseconds(30));
  ASSERT_TRUE(gc.join("g", "live", {"t"}).ok());
  ASSERT_TRUE(gc.join("g", "dead", {"t"}).ok());
  ASSERT_EQ(gc.generation("g"), 2u);

  // Several polling threads heartbeat the live member concurrently (each
  // heartbeat also runs the eviction scan); the silent member must be
  // evicted exactly once with exactly one rebalance, despite the races.
  std::atomic<bool> stop{false};
  std::vector<std::thread> pollers;
  for (int i = 0; i < 4; ++i) {
    pollers.emplace_back([&] {
      while (!stop.load()) {
        EXPECT_TRUE(gc.heartbeat("g", "live").ok());
        Clock::sleep_exact(std::chrono::milliseconds(1));
      }
    });
  }
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (gc.members("g").size() > 1 && Clock::now() < deadline) {
    Clock::sleep_exact(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& t : pollers) t.join();

  const auto members = gc.members("g");
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members[0], "live");
  // One eviction, one rebalance: generation moved exactly once past the
  // two joins, and the survivor now owns every partition.
  EXPECT_EQ(gc.generation("g"), 3u);
  auto a = gc.assignment("g", "live");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().partitions.size(), 4u);
  EXPECT_EQ(gc.assignment("g", "dead").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(gc.heartbeat("g", "dead").code(), StatusCode::kNotFound);
}

TEST(GroupCoordinatorTest, IndependentGroupsDoNotInterfere) {
  auto gc = make_coordinator(4);
  ASSERT_TRUE(gc.join("g1", "a", {"t"}).ok());
  ASSERT_TRUE(gc.join("g2", "a", {"t"}).ok());
  EXPECT_EQ(gc.assignment("g1", "a").value().partitions.size(), 4u);
  EXPECT_EQ(gc.assignment("g2", "a").value().partitions.size(), 4u);
  EXPECT_EQ(gc.generation("g1"), 1u);
}

#if PE_LOCK_ORDER_ENABLED

// Regression coverage for the coordinator <-> registry lock-order
// inversion: join() used to resolve partition counts through the
// callback while holding the coordinator lock, which (with a
// broker-backed callback that takes the registry lock) ran against the
// registry -> coordinator order used everywhere else. join() now
// resolves all counts before locking.
TEST(GroupCoordinatorLockOrderTest, JoinCallbackRunsWithoutCoordinatorLock) {
  // Stands in for the broker registry: rank 1 in the broker domain,
  // below the coordinator's rank 3.
  Mutex registry("test.registry", lock_rank(kLockDomainBroker, 1));
  GroupCoordinator gc([&](const std::string& topic) {
    MutexLock lock(registry);
    return topic == "t" ? 4u : 0u;
  });

  // Establish the canonical registry -> coordinator edge, as the broker
  // does when it calls into the coordinator from registry paths.
  std::atomic<bool> stop{false};
  std::thread committer([&] {
    while (!stop.load()) {
      MutexLock lock(registry);
      (void)gc.commit_offset("g", {"t", 0}, 1);
    }
  });

  // Under the old implementation each join would acquire
  // coordinator -> registry and the detector would abort on the cycle
  // (and on the in-domain rank drop 3 -> 1).
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(gc.join("g", "m" + std::to_string(i % 4), {"t"}).ok());
  }
  stop.store(true);
  committer.join();
  EXPECT_EQ(gc.assignment("g", "m0").value().partitions.size(), 1u);
}

TEST(GroupCoordinatorLockOrderTest, OldAcquisitionOrderWouldAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Documents what the detector does if the old order ever returns:
  // taking a registry-rank mutex under a coordinator-rank mutex is an
  // in-domain rank drop and dies immediately, before any cycle forms.
  EXPECT_DEATH(
      {
        Mutex registry("test.registry", lock_rank(kLockDomainBroker, 1));
        Mutex coordinator("test.coordinator",
                          lock_rank(kLockDomainBroker, 3));
        MutexLock lc(coordinator);
        MutexLock lr(registry);
      },
      "lock-rank violation");
}

#endif  // PE_LOCK_ORDER_ENABLED

}  // namespace
}  // namespace pe::broker
