// Tests for time-based retention, timestamp seek, and consumer-group
// liveness (heartbeats / session eviction).
#include <gtest/gtest.h>

#include "broker/consumer.h"
#include "broker/producer.h"
#include "network/fabric.h"

namespace pe::broker {
namespace {

Record make_record(const std::string& key, std::size_t size = 8) {
  Record r;
  r.key = key;
  r.value = Bytes(size, 0x3);
  return r;
}

TEST(TimeRetentionTest, OldRecordsAgeOut) {
  RetentionPolicy retention;
  retention.max_age = std::chrono::milliseconds(30);
  PartitionLog log(retention);
  (void)log.append(make_record("old"));
  Clock::sleep_exact(std::chrono::milliseconds(40));
  (void)log.append(make_record("new"));  // retention enforced on append
  EXPECT_EQ(log.record_count(), 1u);
  EXPECT_EQ(log.log_start_offset(), 1u);
  FetchSpec spec;
  spec.offset = 1;
  EXPECT_EQ(log.fetch(spec).value().front().record.key, "new");
}

TEST(TimeRetentionTest, LastRecordNeverAgedOut) {
  RetentionPolicy retention;
  retention.max_age = std::chrono::milliseconds(5);
  PartitionLog log(retention);
  (void)log.append(make_record("only"));
  Clock::sleep_exact(std::chrono::milliseconds(10));
  (void)log.append(make_record("second"));
  // The newest record survives even if technically old at next append.
  EXPECT_GE(log.record_count(), 1u);
}

TEST(OffsetForTimestampTest, FindsFirstAtOrAfter) {
  PartitionLog log;
  (void)log.append(make_record("a"));
  Clock::sleep_exact(std::chrono::milliseconds(5));
  const std::uint64_t mid_ns = Clock::now_ns();
  Clock::sleep_exact(std::chrono::milliseconds(5));
  (void)log.append(make_record("b"));
  (void)log.append(make_record("c"));

  EXPECT_EQ(log.offset_for_timestamp(0), 0u);
  EXPECT_EQ(log.offset_for_timestamp(mid_ns), 1u);
  EXPECT_EQ(log.offset_for_timestamp(Clock::now_ns() + 1'000'000'000ull),
            log.end_offset());
}

TEST(OffsetForTimestampTest, EmptyLogReturnsEnd) {
  PartitionLog log;
  EXPECT_EQ(log.offset_for_timestamp(123), 0u);
}

class LivenessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = std::make_shared<net::Fabric>();
    ASSERT_TRUE(fabric_->add_site({.id = "s"}).ok());
    broker_ = std::make_shared<Broker>("s");
    ASSERT_TRUE(broker_->create_topic("t", TopicConfig{.partitions = 2}).ok());
  }
  std::shared_ptr<net::Fabric> fabric_;
  std::shared_ptr<Broker> broker_;
};

TEST_F(LivenessTest, SilentMemberIsEvicted) {
  broker_->coordinator().set_session_timeout(std::chrono::milliseconds(30));
  ASSERT_TRUE(broker_->coordinator().join("g", "alive", {"t"}).ok());
  ASSERT_TRUE(broker_->coordinator().join("g", "silent", {"t"}).ok());
  EXPECT_EQ(broker_->coordinator().members("g").size(), 2u);

  // Only "alive" heartbeats past the session timeout.
  for (int i = 0; i < 5; ++i) {
    Clock::sleep_exact(std::chrono::milliseconds(10));
    ASSERT_TRUE(broker_->coordinator().heartbeat("g", "alive").ok());
  }
  const auto members = broker_->coordinator().members("g");
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members[0], "alive");
  // The survivor owns everything after the eviction rebalance.
  EXPECT_EQ(broker_->coordinator().assignment("g", "alive").value()
                .partitions.size(),
            2u);
}

TEST_F(LivenessTest, HeartbeatUnknownMemberFails) {
  EXPECT_EQ(broker_->coordinator().heartbeat("none", "x").code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(broker_->coordinator().join("g", "m", {"t"}).ok());
  EXPECT_EQ(broker_->coordinator().heartbeat("g", "ghost").code(),
            StatusCode::kNotFound);
}

TEST_F(LivenessTest, DisabledTimeoutNeverEvicts) {
  ASSERT_TRUE(broker_->coordinator().join("g", "m", {"t"}).ok());
  Clock::sleep_exact(std::chrono::milliseconds(20));
  ASSERT_TRUE(broker_->coordinator().join("g", "m2", {"t"}).ok());
  EXPECT_EQ(broker_->coordinator().members("g").size(), 2u);
}

TEST_F(LivenessTest, PollingConsumerStaysAliveAndInheritsDeadPeersWork) {
  broker_->coordinator().set_session_timeout(std::chrono::milliseconds(40));
  Consumer survivor(broker_, fabric_, "s", "g");
  ASSERT_TRUE(survivor.subscribe({"t"}).ok());
  {
    Consumer doomed(broker_, fabric_, "s", "g");
    ASSERT_TRUE(doomed.subscribe({"t"}).ok());
    (void)survivor.poll(std::chrono::milliseconds(5));
    (void)doomed.poll(std::chrono::milliseconds(5));
    // Simulate a crash: `doomed` stops polling but never leaves. Keep it
    // alive in scope so no clean leave() happens... then drop it without
    // close by detaching: we cannot skip the destructor, so emulate the
    // silent death via the coordinator directly below instead.
  }
  // After the destructor the group has one member; re-add a silent one.
  ASSERT_TRUE(broker_->coordinator().join("g", "zombie", {"t"}).ok());
  const auto deadline = Clock::now() + std::chrono::seconds(2);
  bool sole_owner = false;
  while (Clock::now() < deadline && !sole_owner) {
    (void)survivor.poll(std::chrono::milliseconds(10));
    sole_owner = survivor.assignment().size() == 2;
  }
  EXPECT_TRUE(sole_owner);  // zombie evicted, survivor owns both partitions
}

TEST_F(LivenessTest, EvictedConsumerRejoinsOnNextPoll) {
  broker_->coordinator().set_session_timeout(std::chrono::milliseconds(25));
  Consumer consumer(broker_, fabric_, "s", "g");
  ASSERT_TRUE(consumer.subscribe({"t"}).ok());
  // Consumer goes silent long enough to be evicted...
  Clock::sleep_exact(std::chrono::milliseconds(40));
  // ...someone else touches the group, causing the eviction sweep.
  ASSERT_TRUE(broker_->coordinator().join("g", "other", {"t"}).ok());
  EXPECT_EQ(broker_->coordinator().members("g").size(), 1u);
  // Next poll rejoins automatically.
  (void)consumer.poll(std::chrono::milliseconds(10));
  EXPECT_EQ(broker_->coordinator().members("g").size(), 2u);
  EXPECT_FALSE(consumer.assignment().empty());
}

TEST_F(LivenessTest, SeekToTimestampThroughConsumer) {
  Producer producer(broker_, fabric_, "s");
  ASSERT_TRUE(producer.send("t", 0, make_record("first")).ok());
  Clock::sleep_exact(std::chrono::milliseconds(5));
  const std::uint64_t cut_ns = Clock::now_ns();
  Clock::sleep_exact(std::chrono::milliseconds(5));
  ASSERT_TRUE(producer.send("t", 0, make_record("second")).ok());

  ConsumerConfig config;
  config.auto_commit = false;
  Consumer consumer(broker_, fabric_, "s", "g2", config);
  ASSERT_TRUE(consumer.assign({{"t", 0}}).ok());
  ASSERT_EQ(consumer.poll(std::chrono::milliseconds(50)).size(), 2u);

  ASSERT_TRUE(consumer.seek_to_timestamp({"t", 0}, cut_ns).ok());
  auto records = consumer.poll(std::chrono::milliseconds(50));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].record.key, "second");
  EXPECT_EQ(consumer.seek_to_timestamp({"t", 9}, cut_ns).code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace pe::broker
