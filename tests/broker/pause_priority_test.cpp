// Consumer pause/resume (backpressure) and scheduler priorities.
#include <gtest/gtest.h>

#include "broker/consumer.h"
#include "broker/producer.h"
#include "network/fabric.h"
#include "taskexec/scheduler.h"

namespace pe::broker {
namespace {

class PauseResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = std::make_shared<net::Fabric>();
    ASSERT_TRUE(fabric_->add_site({.id = "s"}).ok());
    broker_ = std::make_shared<Broker>("s");
    ASSERT_TRUE(broker_->create_topic("t", TopicConfig{.partitions = 2}).ok());
    producer_ = std::make_unique<Producer>(broker_, fabric_, "s");
  }

  void send(std::uint32_t partition, const std::string& key) {
    Record r;
    r.key = key;
    r.value = Bytes{1};
    ASSERT_TRUE(producer_->send("t", partition, std::move(r)).ok());
  }

  std::shared_ptr<net::Fabric> fabric_;
  std::shared_ptr<Broker> broker_;
  std::unique_ptr<Producer> producer_;
};

TEST_F(PauseResumeTest, PausedPartitionIsSkipped) {
  Consumer consumer(broker_, fabric_, "s", "g");
  ASSERT_TRUE(consumer.assign({{"t", 0}, {"t", 1}}).ok());
  send(0, "p0");
  send(1, "p1");

  ASSERT_TRUE(consumer.pause({"t", 0}).ok());
  EXPECT_TRUE(consumer.paused({"t", 0}));
  auto records = consumer.poll(std::chrono::milliseconds(50));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].record.key, "p1");

  ASSERT_TRUE(consumer.resume({"t", 0}).ok());
  EXPECT_FALSE(consumer.paused({"t", 0}));
  records = consumer.poll(std::chrono::milliseconds(50));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].record.key, "p0");
}

TEST_F(PauseResumeTest, AllPausedPollReturnsEmptyAfterTimeout) {
  Consumer consumer(broker_, fabric_, "s", "g");
  ASSERT_TRUE(consumer.assign({{"t", 0}}).ok());
  send(0, "k");
  ASSERT_TRUE(consumer.pause({"t", 0}).ok());
  Stopwatch sw;
  EXPECT_TRUE(consumer.poll(std::chrono::milliseconds(30)).empty());
  EXPECT_GE(sw.elapsed_ms(), 25.0);
}

TEST_F(PauseResumeTest, Validation) {
  Consumer consumer(broker_, fabric_, "s", "g");
  ASSERT_TRUE(consumer.assign({{"t", 0}}).ok());
  EXPECT_EQ(consumer.pause({"t", 1}).code(), StatusCode::kNotFound);
  EXPECT_EQ(consumer.resume({"t", 0}).code(), StatusCode::kNotFound);
  ASSERT_TRUE(consumer.pause({"t", 0}).ok());
  ASSERT_TRUE(consumer.pause({"t", 0}).ok());  // idempotent
  ASSERT_TRUE(consumer.resume({"t", 0}).ok());
  EXPECT_EQ(consumer.resume({"t", 0}).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pe::broker

namespace pe::exec {
namespace {

TEST(PriorityTest, HigherPriorityDispatchesFirst) {
  Scheduler scheduler;
  auto worker = std::make_shared<Worker>(
      WorkerSpec{.id = "w", .site = "s", .cores = 1, .memory_gb = 4.0});
  ASSERT_TRUE(scheduler.add_worker(worker).ok());

  // Block the single core so submissions queue.
  std::atomic<bool> release{false};
  TaskSpec blocker;
  blocker.fn = [&](TaskContext&) {
    while (!release.load()) Clock::sleep_exact(std::chrono::milliseconds(1));
    return Status::Ok();
  };
  auto blocker_handle = scheduler.submit(std::move(blocker));
  ASSERT_TRUE(blocker_handle.ok());

  std::mutex order_mutex;
  std::vector<std::string> order;
  auto make = [&](const std::string& name, std::int32_t priority) {
    TaskSpec spec;
    spec.name = name;
    spec.priority = priority;
    spec.fn = [&order, &order_mutex, name](TaskContext&) {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(name);
      return Status::Ok();
    };
    return spec;
  };
  std::vector<TaskHandle> handles;
  for (auto&& [name, priority] :
       std::vector<std::pair<std::string, std::int32_t>>{
           {"low-1", 0}, {"low-2", 0}, {"high", 10}, {"mid", 5},
           {"low-3", 0}, {"urgent", 20}}) {
    auto handle = scheduler.submit(make(name, priority));
    ASSERT_TRUE(handle.ok());
    handles.push_back(std::move(handle).value());
  }

  release.store(true);
  ASSERT_TRUE(blocker_handle.value().wait().ok());
  for (auto& h : handles) ASSERT_TRUE(h.wait().ok());

  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], "urgent");
  EXPECT_EQ(order[1], "high");
  EXPECT_EQ(order[2], "mid");
  // FIFO within the same priority level.
  EXPECT_EQ(order[3], "low-1");
  EXPECT_EQ(order[4], "low-2");
  EXPECT_EQ(order[5], "low-3");
}

TEST(PriorityTest, EqualPriorityKeepsFifo) {
  Scheduler scheduler;
  auto worker = std::make_shared<Worker>(
      WorkerSpec{.id = "w", .site = "s", .cores = 1, .memory_gb = 4.0});
  ASSERT_TRUE(scheduler.add_worker(worker).ok());
  std::atomic<bool> release{false};
  TaskSpec blocker;
  blocker.fn = [&](TaskContext&) {
    while (!release.load()) Clock::sleep_exact(std::chrono::milliseconds(1));
    return Status::Ok();
  };
  auto bh = scheduler.submit(std::move(blocker));
  std::vector<int> order;
  std::mutex m;
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 5; ++i) {
    TaskSpec spec;
    spec.fn = [&order, &m, i](TaskContext&) {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(i);
      return Status::Ok();
    };
    handles.push_back(scheduler.submit(std::move(spec)).value());
  }
  release.store(true);
  ASSERT_TRUE(bh.ok());
  (void)bh.value().wait();
  for (auto& h : handles) ASSERT_TRUE(h.wait().ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace pe::exec
