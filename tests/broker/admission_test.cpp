// Admission-control coverage: token-bucket refill math driven with
// synthetic emulated timestamps, per-client quota gating (throttle is
// transient and recovers), race-free hot-window reservations, and the
// broker-wide cap held under a concurrent produce storm.
#include "broker/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "broker/broker.h"

namespace pe::broker {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

constexpr std::uint64_t kSecondNs = 1'000'000'000ull;

TEST(TokenBucketTest, StartsFullAndReportsRetryAfterOnDeficit) {
  TokenBucket bucket(/*rate_per_sec=*/100.0, /*burst=*/50.0);
  EXPECT_DOUBLE_EQ(bucket.available(0), 50.0);
  EXPECT_TRUE(bucket.try_acquire(50.0, 0));

  Duration retry{};
  EXPECT_FALSE(bucket.try_acquire(1.0, 0, &retry));
  // Deficit of 1 token at 100 tokens/s refills in 10 emulated ms.
  EXPECT_GE(retry, 9ms);
  EXPECT_LE(retry, 11ms);
}

TEST(TokenBucketTest, RefillsAtRateCappedAtBurst) {
  TokenBucket bucket(100.0, 50.0);
  ASSERT_TRUE(bucket.try_acquire(50.0, 0));

  // 0.2 emulated seconds later ~20 tokens are back (19.9 admits, 25
  // does not — the margin keeps the check off exact float boundaries).
  EXPECT_FALSE(bucket.try_acquire(25.0, kSecondNs / 5));
  EXPECT_TRUE(bucket.try_acquire(19.9, kSecondNs / 5));

  // A long idle period refills to the burst depth, not rate * elapsed.
  EXPECT_DOUBLE_EQ(bucket.available(100 * kSecondNs), 50.0);
}

TEST(TokenBucketTest, OversizedRequestOverdrawsOnlyAFullBucket) {
  TokenBucket bucket(100.0, 50.0);
  // Bigger than the whole burst: can never accumulate, so a full bucket
  // lets it through and goes into debt.
  ASSERT_TRUE(bucket.try_acquire(120.0, 0));

  Duration retry{};
  EXPECT_FALSE(bucket.try_acquire(1.0, 0, &retry));
  // Debt of 70 plus the request refills in ~0.71 emulated seconds.
  EXPECT_GE(retry, 700ms);

  // While in debt, another oversized request is NOT admitted — the
  // overdraft only applies at full depth, keeping the long-run rate
  // bounded.
  EXPECT_FALSE(bucket.try_acquire(120.0, 0));

  // Once the debt refills the bucket serves again.
  EXPECT_TRUE(bucket.try_acquire(1.0, kSecondNs));
}

TEST(TokenBucketTest, CanAcquireDoesNotConsumeUntilCommit) {
  TokenBucket bucket(10.0, 10.0);
  EXPECT_TRUE(bucket.can_acquire(10.0, 0));
  EXPECT_TRUE(bucket.can_acquire(10.0, 0));  // nothing was taken
  bucket.commit(10.0);
  EXPECT_FALSE(bucket.can_acquire(1.0, 0));
}

TEST(AdmissionControllerTest, EmptyClientIdIsQuotaExempt) {
  AdmissionConfig config;
  config.default_quota.bytes_per_sec = 10.0;
  config.default_quota.records_per_sec = 1.0;
  AdmissionController admission(config);
  // Internal produces (dead-letter routing, replication) must drain.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(admission.admit("", 1000, 1'000'000).ok());
  }
}

TEST(AdmissionControllerTest, ThrottleIsTransientAndRecovers) {
  // Client buckets refill in emulated time (wall elapsed x scale): run
  // the refill fast so the recovery half takes a few wall milliseconds.
  ScopedTimeScale scale(200.0);
  AdmissionConfig config;
  config.default_quota.bytes_per_sec = 1e6;
  config.default_quota.burst_seconds = 1.0;
  AdmissionController admission(config);

  ASSERT_TRUE(admission.admit("edge-client", 1, 1'000'000).ok());
  auto throttled = admission.admit("edge-client", 1, 500'000);
  ASSERT_FALSE(throttled.ok());
  EXPECT_EQ(throttled.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(throttled.is_transient());
  ASSERT_GT(throttled.retry_after(), Duration::zero());

  // Waiting out the hint makes the same request succeed — throttled, not
  // dropped.
  Status retried = throttled;
  for (int attempt = 0; attempt < 50 && !retried.ok(); ++attempt) {
    Clock::sleep_scaled(retried.retry_after() > Duration::zero()
                            ? retried.retry_after()
                            : Duration(1ms));
    retried = admission.admit("edge-client", 1, 500'000);
  }
  EXPECT_TRUE(retried.ok());
}

TEST(AdmissionControllerTest, RecordQuotaGatesIndependentlyOfBytes) {
  AdmissionConfig config;
  config.default_quota.records_per_sec = 100.0;  // bytes unlimited
  AdmissionController admission(config);
  ASSERT_TRUE(admission.admit("c", 100, 1).ok());
  auto throttled = admission.admit("c", 10, 1);
  ASSERT_FALSE(throttled.ok());
  EXPECT_TRUE(throttled.is_transient());
}

TEST(AdmissionControllerTest, ExplicitQuotaOverridesDefault) {
  AdmissionConfig config;
  config.default_quota.bytes_per_sec = 1.0;  // default would throttle all
  AdmissionController admission(config);
  ClientQuota generous;
  generous.bytes_per_sec = 1e9;
  admission.set_quota("vip", generous);
  EXPECT_TRUE(admission.admit("vip", 1, 1'000'000).ok());
  EXPECT_TRUE(admission.admit("vip", 1, 1'000'000).ok());
  // The default-quota client's first oversized request overdraws its full
  // bucket (progress guarantee); from then on it is in deep debt.
  EXPECT_TRUE(admission.admit("anyone-else", 1, 1'000'000).ok());
  EXPECT_FALSE(admission.admit("anyone-else", 1, 1'000'000).ok());
}

TEST(AdmissionControllerTest, RetryAfterRespectsConfiguredFloor) {
  AdmissionConfig config;
  config.default_quota.bytes_per_sec = 1000.0;
  config.min_retry_after = std::chrono::seconds(2);
  AdmissionController admission(config);
  ASSERT_TRUE(admission.admit("c", 1, 1000).ok());
  auto throttled = admission.admit("c", 1, 100);
  ASSERT_FALSE(throttled.ok());
  EXPECT_GE(throttled.retry_after(), Duration(std::chrono::seconds(2)));
}

TEST(AdmissionControllerTest, HotWindowReservationSeesInflightBytes) {
  AdmissionConfig config;
  config.max_hot_window_bytes = 1000;
  AdmissionController admission(config);

  ASSERT_TRUE(admission.reserve_hot(600).ok());
  // A concurrent reservation counts the in-flight 600: 600+600 > 1000.
  auto rejected = admission.reserve_hot(600);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.is_transient());
  EXPECT_GT(rejected.retry_after(), Duration::zero());

  // A failed reservation must not leak in-flight bytes: releasing the
  // first admits the second.
  admission.release_hot(600);
  EXPECT_TRUE(admission.reserve_hot(600).ok());
  admission.release_hot(600);
}

TEST(AdmissionControllerTest, OversizedBatchAdmittedOnlyWhenEmpty) {
  AdmissionConfig config;
  config.max_hot_window_bytes = 1000;
  AdmissionController admission(config);

  // Empty broker: a batch bigger than the whole cap still makes progress.
  ASSERT_TRUE(admission.reserve_hot(5000).ok());
  EXPECT_FALSE(admission.reserve_hot(1).ok());  // while it is in flight
  admission.release_hot(5000);

  // With any hot bytes on the books the oversize exemption is off.
  admission.hot_bytes_counter()->store(10);
  EXPECT_FALSE(admission.reserve_hot(5000).ok());
}

TEST(AdmissionControllerTest, ZeroCapIsUnbounded) {
  AdmissionController admission(AdmissionConfig{});
  EXPECT_TRUE(admission.reserve_hot(1ull << 40).ok());
  admission.release_hot(1ull << 40);
}

class AdmissionBrokerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("pe_admission_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(AdmissionBrokerTest, HotTrimKeepsTrimmedRecordsFetchable) {
  BrokerOptions options;
  options.durable_dir = dir_;
  auto broker = std::make_shared<Broker>("cloud", options);
  TopicConfig tc;
  tc.retention.hot_max_bytes = 2048;
  ASSERT_TRUE(broker->create_topic("t", tc).ok());

  constexpr int kRecords = 64;
  for (int i = 0; i < kRecords; ++i) {
    Record r;
    r.key = "k" + std::to_string(i);
    r.value = Bytes(256, 0x3c);
    std::vector<Record> batch;
    batch.push_back(std::move(r));
    ASSERT_TRUE(broker->produce("t", 0, std::move(batch)).ok());
  }
  // The in-memory deque was trimmed to the per-partition bound...
  EXPECT_LE(broker->hot_window_bytes(), 2048u);
  // ...but nothing was lost: the full log reads back from offset 0 via
  // the durable (cold) tier.
  std::uint64_t pos = 0;
  int fetched_total = 0;
  while (pos < kRecords) {
    FetchSpec spec;
    spec.offset = pos;
    spec.max_records = 16;
    spec.max_bytes = 1ull << 20;
    auto fetched = broker->fetch("t", 0, spec);
    ASSERT_TRUE(fetched.ok());
    ASSERT_FALSE(fetched.value().empty());
    for (const auto& cr : fetched.value()) {
      EXPECT_EQ(cr.record.key, "k" + std::to_string(cr.offset));
    }
    fetched_total += static_cast<int>(fetched.value().size());
    pos = fetched.value().back().offset + 1;
  }
  EXPECT_EQ(fetched_total, kRecords);
}

TEST_F(AdmissionBrokerTest, FourThreadStormNeverExceedsCap) {
  constexpr std::uint64_t kCap = 64 * 1024;
  BrokerOptions options;
  options.durable_dir = dir_;
  options.admission.max_hot_window_bytes = kCap;
  auto broker = std::make_shared<Broker>("cloud", options);
  TopicConfig tc;
  tc.partitions = 4;
  // Per-partition hot bound well under the broker-wide cap so appends
  // keep draining the window (the cap throttles, the trim frees).
  tc.retention.hot_max_bytes = kCap / 8;
  ASSERT_TRUE(broker->create_topic("t", tc).ok());

  constexpr int kThreads = 4;
  constexpr int kBatchesPerThread = 50;
  constexpr int kRecordsPerBatch = 8;
  std::atomic<std::uint64_t> acked{0};
  std::atomic<std::uint64_t> throttled{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<bool> over_cap{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string client = "storm-" + std::to_string(t);
      for (int b = 0; b < kBatchesPerThread; ++b) {
        std::vector<Record> batch;
        for (int r = 0; r < kRecordsPerBatch; ++r) {
          Record rec;
          rec.key = "k";
          rec.value = Bytes(512, 0x3c);
          batch.push_back(std::move(rec));
        }
        bool sent = false;
        for (int attempt = 0; attempt < 500 && !sent; ++attempt) {
          auto copy = batch;
          auto result = broker->produce(
              "t", static_cast<std::uint32_t>((t + b) % 4), std::move(copy),
              client);
          if (broker->hot_window_bytes() > kCap) over_cap.store(true);
          if (result.ok()) {
            sent = true;
            acked.fetch_add(kRecordsPerBatch);
          } else if (result.status().is_transient()) {
            throttled.fetch_add(1);
            auto wait = result.status().retry_after();
            if (wait <= Duration::zero()) wait = Duration(1ms);
            Clock::sleep_scaled(wait);
          } else {
            break;  // permanent error: counted as dropped below
          }
        }
        if (!sent) dropped.fetch_add(kRecordsPerBatch);
      }
    });
  }
  for (auto& th : threads) th.join();

  // The cap held at every observation point, and backpressure (not loss)
  // absorbed the storm: every record was eventually acked and appended.
  EXPECT_FALSE(over_cap.load());
  EXPECT_EQ(dropped.load(), 0u);
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kBatchesPerThread *
      kRecordsPerBatch;
  EXPECT_EQ(acked.load(), kTotal);
  std::uint64_t appended = 0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    auto end = broker->end_offset("t", p);
    ASSERT_TRUE(end.ok());
    appended += end.value();
  }
  EXPECT_EQ(appended, kTotal);
  EXPECT_LE(broker->hot_window_bytes(), kCap);
  const auto stats = broker->stats();
  EXPECT_EQ(stats.throttled, throttled.load());
}

}  // namespace
}  // namespace pe::broker
