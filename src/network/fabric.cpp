#include "network/fabric.h"

namespace pe::net {
namespace {

std::string link_key(const SiteId& from, const SiteId& to) {
  return from + std::string(1, '\0') + to;
}

}  // namespace

Fabric::Fabric(LinkSpec loopback) : loopback_spec_(std::move(loopback)) {}

LinkSpec Fabric::default_loopback() {
  LinkSpec spec;
  spec.from = "<loopback>";
  spec.to = "<loopback>";
  spec.latency_min = std::chrono::microseconds(50);
  spec.latency_max = std::chrono::microseconds(150);
  spec.bandwidth_min_bps = 10e9;
  spec.bandwidth_max_bps = 10e9;
  return spec;
}

Status Fabric::add_site(Site site) {
  MutexLock lock(mutex_);
  if (sites_.count(site.id) > 0) {
    return Status::AlreadyExists("site '" + site.id + "' already registered");
  }
  sites_.emplace(site.id, std::move(site));
  return Status::Ok();
}

Status Fabric::add_link(LinkSpec spec) {
  MutexLock lock(mutex_);
  if (sites_.count(spec.from) == 0) {
    return Status::NotFound("unknown source site '" + spec.from + "'");
  }
  if (sites_.count(spec.to) == 0) {
    return Status::NotFound("unknown destination site '" + spec.to + "'");
  }
  if (spec.from == spec.to) {
    return Status::InvalidArgument("self-link; loopback is implicit");
  }
  const std::string key = link_key(spec.from, spec.to);
  if (links_.count(key) > 0) {
    return Status::AlreadyExists("link " + spec.from + "->" + spec.to +
                                 " already exists");
  }
  links_.emplace(key, std::make_unique<Link>(std::move(spec), next_seed_++));
  return Status::Ok();
}

Status Fabric::add_bidirectional_link(LinkSpec spec) {
  LinkSpec reverse = spec;
  std::swap(reverse.from, reverse.to);
  if (auto s = add_link(std::move(spec)); !s.ok()) return s;
  return add_link(std::move(reverse));
}

bool Fabric::has_site(const SiteId& id) const {
  MutexLock lock(mutex_);
  return sites_.count(id) > 0;
}

Result<Site> Fabric::site(const SiteId& id) const {
  MutexLock lock(mutex_);
  auto it = sites_.find(id);
  if (it == sites_.end()) {
    return Status::NotFound("unknown site '" + id + "'");
  }
  return it->second;
}

std::vector<Site> Fabric::sites() const {
  MutexLock lock(mutex_);
  std::vector<Site> out;
  out.reserve(sites_.size());
  for (const auto& [_, s] : sites_) out.push_back(s);
  return out;
}

Link* Fabric::find_link(const SiteId& from, const SiteId& to) const {
  auto it = links_.find(link_key(from, to));
  return it == links_.end() ? nullptr : it->second.get();
}

Link* Fabric::loopback_for(const SiteId& site) const {
  auto it = loopbacks_.find(site);
  if (it == loopbacks_.end()) {
    LinkSpec spec = loopback_spec_;
    spec.from = site;
    spec.to = site;
    it = loopbacks_
             .emplace(site, std::make_unique<Link>(
                                std::move(spec),
                                std::hash<std::string>{}(site)))
             .first;
  }
  return it->second.get();
}

Result<TransferResult> Fabric::transfer(const SiteId& from, const SiteId& to,
                                        std::uint64_t bytes) {
  Link* link = nullptr;
  {
    MutexLock lock(mutex_);
    if (sites_.count(from) == 0) {
      return Status::NotFound("unknown source site '" + from + "'");
    }
    if (sites_.count(to) == 0) {
      return Status::NotFound("unknown destination site '" + to + "'");
    }
    link = (from == to) ? loopback_for(from) : find_link(from, to);
    if (link == nullptr) {
      return Status::Unavailable("no link " + from + "->" + to);
    }
  }
  if (link->partitioned()) {
    return Status::Unavailable("link " + from + "->" + to + " partitioned");
  }
  // Transfer outside the fabric lock: links serialize themselves.
  return link->transfer(bytes);
}

Status Fabric::inject_link_fault(const SiteId& from, const SiteId& to,
                                 LinkFault fault) {
  Link* link = nullptr;
  {
    MutexLock lock(mutex_);
    if (sites_.count(from) == 0 || sites_.count(to) == 0) {
      return Status::NotFound("unknown site");
    }
    link = (from == to) ? loopback_for(from) : find_link(from, to);
  }
  if (link == nullptr) {
    return Status::Unavailable("no link " + from + "->" + to);
  }
  link->set_fault(fault);
  return Status::Ok();
}

Status Fabric::clear_link_fault(const SiteId& from, const SiteId& to) {
  return inject_link_fault(from, to, LinkFault{});
}

Result<Duration> Fabric::estimated_latency(const SiteId& from,
                                           const SiteId& to) const {
  MutexLock lock(mutex_);
  if (sites_.count(from) == 0 || sites_.count(to) == 0) {
    return Status::NotFound("unknown site");
  }
  if (from == to) return loopback_spec_.mean_latency();
  const Link* link = find_link(from, to);
  if (link == nullptr) return Status::Unavailable("no link " + from + "->" + to);
  return link->spec().mean_latency();
}

Result<double> Fabric::estimated_bandwidth_bps(const SiteId& from,
                                               const SiteId& to) const {
  MutexLock lock(mutex_);
  if (sites_.count(from) == 0 || sites_.count(to) == 0) {
    return Status::NotFound("unknown site");
  }
  if (from == to) return loopback_spec_.mean_bandwidth_bps();
  const Link* link = find_link(from, to);
  if (link == nullptr) return Status::Unavailable("no link " + from + "->" + to);
  return link->spec().mean_bandwidth_bps();
}

std::map<std::string, LinkStats> Fabric::link_stats() const {
  MutexLock lock(mutex_);
  std::map<std::string, LinkStats> out;
  for (const auto& [key, link] : links_) {
    out[link->spec().from + "->" + link->spec().to] = link->stats();
  }
  for (const auto& [site, link] : loopbacks_) {
    out[site + "-loop"] = link->stats();
  }
  return out;
}

std::shared_ptr<Fabric> Fabric::make_paper_topology() {
  auto fabric = std::make_shared<Fabric>();
  (void)fabric->add_site(Site{.id = "lrz-eu",
                              .kind = SiteKind::kCloud,
                              .region = "eu-de",
                              .description = "LRZ Compute Cloud, Garching"});
  (void)fabric->add_site(Site{.id = "jetstream-us",
                              .kind = SiteKind::kCloud,
                              .region = "us-east",
                              .description = "XSEDE Jetstream, Indiana"});
  (void)fabric->add_site(Site{.id = "edge-us",
                              .kind = SiteKind::kEdge,
                              .region = "us-east",
                              .description = "Edge devices near Jetstream"});
  // Paper Section III: RTT 140-160 ms => one-way 70-80 ms; bandwidth
  // fluctuated 60-100 Mbit/s (iPerf).
  LinkSpec wan;
  wan.from = "jetstream-us";
  wan.to = "lrz-eu";
  wan.latency_min = std::chrono::milliseconds(70);
  wan.latency_max = std::chrono::milliseconds(80);
  wan.bandwidth_min_bps = 60e6;
  wan.bandwidth_max_bps = 100e6;
  (void)fabric->add_bidirectional_link(wan);
  // Edge devices connect to their nearby cloud over a metro link.
  LinkSpec metro;
  metro.from = "edge-us";
  metro.to = "jetstream-us";
  metro.latency_min = std::chrono::milliseconds(2);
  metro.latency_max = std::chrono::milliseconds(5);
  metro.bandwidth_min_bps = 500e6;
  metro.bandwidth_max_bps = 1000e6;
  (void)fabric->add_bidirectional_link(metro);
  // Edge to remote (EU) cloud: metro + WAN combined characteristics.
  LinkSpec edge_wan;
  edge_wan.from = "edge-us";
  edge_wan.to = "lrz-eu";
  edge_wan.latency_min = std::chrono::milliseconds(72);
  edge_wan.latency_max = std::chrono::milliseconds(85);
  edge_wan.bandwidth_min_bps = 60e6;
  edge_wan.bandwidth_max_bps = 100e6;
  (void)fabric->add_bidirectional_link(edge_wan);
  return fabric;
}

std::shared_ptr<Fabric> Fabric::make_single_site_topology() {
  auto fabric = std::make_shared<Fabric>();
  (void)fabric->add_site(Site{.id = "lrz-eu",
                              .kind = SiteKind::kCloud,
                              .region = "eu-de",
                              .description = "LRZ Compute Cloud, Garching"});
  return fabric;
}

}  // namespace pe::net
