// Sites: named locations in the edge-to-cloud continuum.
//
// A site is one administrative/geographic location (e.g. "lrz-eu" cloud,
// "jetstream-us" cloud, "factory-floor" edge). Pilots are placed on sites;
// all traffic between different sites is charged to the fabric link that
// connects them.
#pragma once

#include <string>

namespace pe::net {

using SiteId = std::string;

/// Coarse continuum layer a site belongs to; used by placement policies.
enum class SiteKind {
  kEdge,
  kCloud,
  kHpc,
};

constexpr const char* to_string(SiteKind k) {
  switch (k) {
    case SiteKind::kEdge: return "edge";
    case SiteKind::kCloud: return "cloud";
    case SiteKind::kHpc: return "hpc";
  }
  return "?";
}

struct Site {
  SiteId id;
  SiteKind kind = SiteKind::kCloud;
  std::string region;       // e.g. "eu-de", "us-east"
  std::string description;  // free-form, for reports
};

}  // namespace pe::net
