// Network fabric: the registry of sites and the links between them.
//
// Every cross-site byte in the system (broker produce/fetch, parameter
// server access) is charged to a fabric transfer. Same-site traffic uses an
// implicit loopback link with datacenter-class parameters.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "network/link.h"
#include "network/site.h"

namespace pe::net {

class Fabric {
 public:
  /// `loopback` describes same-site traffic; defaults to 10 Gbit/s,
  /// 50-150 us latency (datacenter LAN).
  explicit Fabric(LinkSpec loopback = default_loopback());

  static LinkSpec default_loopback();

  /// Registers a site. Fails with ALREADY_EXISTS on duplicate id.
  Status add_site(Site site);

  /// Adds a directed link. Both endpoints must be registered sites.
  Status add_link(LinkSpec spec);

  /// Adds links in both directions with the same spec.
  Status add_bidirectional_link(LinkSpec spec);

  bool has_site(const SiteId& id) const;
  Result<Site> site(const SiteId& id) const;
  std::vector<Site> sites() const;

  /// Moves `bytes` from one site to another, blocking the caller for the
  /// emulated transfer time. Unknown sites fail with NOT_FOUND; a missing
  /// inter-site link fails with UNAVAILABLE (no default route — topology
  /// must be explicit, matching the paper's explicit resource allocation).
  Result<TransferResult> transfer(const SiteId& from, const SiteId& to,
                                  std::uint64_t bytes);

  /// Mean one-way latency estimate between two sites (loopback if equal).
  Result<Duration> estimated_latency(const SiteId& from, const SiteId& to) const;

  /// Mean bandwidth estimate in bits/s between two sites.
  Result<double> estimated_bandwidth_bps(const SiteId& from, const SiteId& to) const;

  /// Per-link stats keyed "from->to" (loopback reported as "<site>-loop").
  std::map<std::string, LinkStats> link_stats() const;

  // --- chaos injection (fault module) ---
  /// Applies a runtime fault to the directed link from->to (loopback when
  /// the sites are equal). While `fault.partitioned`, transfer() on that
  /// link fails with UNAVAILABLE; degradation factors scale the sampled
  /// latency/bandwidth. NOT_FOUND / UNAVAILABLE when the link is unknown.
  Status inject_link_fault(const SiteId& from, const SiteId& to,
                           LinkFault fault);
  /// Restores the link to its nominal spec.
  Status clear_link_fault(const SiteId& from, const SiteId& to);

  /// Convenience builder: the paper's two-site topology — LRZ cloud in
  /// Europe, Jetstream cloud in the US, WAN at 140-160 ms RTT and
  /// 60-100 Mbit/s, matching Section III measurements.
  static std::shared_ptr<Fabric> make_paper_topology();

  /// Single cloud site "lrz-eu" only (baseline experiments, Fig. 2).
  static std::shared_ptr<Fabric> make_single_site_topology();

 private:
  Link* find_link(const SiteId& from, const SiteId& to) const
      PE_REQUIRES(mutex_);
  Link* loopback_for(const SiteId& site) const PE_REQUIRES(mutex_);

  // Registry lock only: transfer() resolves the link under it, then
  // sleeps/charges on the Link's own mutex with this one released.
  mutable Mutex mutex_{"net.fabric"};
  LinkSpec loopback_spec_;
  std::map<SiteId, Site> sites_ PE_GUARDED_BY(mutex_);
  // Directed links keyed by "from\0to"; loopbacks created lazily per site.
  mutable std::map<std::string, std::unique_ptr<Link>> links_
      PE_GUARDED_BY(mutex_);
  mutable std::map<SiteId, std::unique_ptr<Link>> loopbacks_
      PE_GUARDED_BY(mutex_);
  std::uint64_t next_seed_ PE_GUARDED_BY(mutex_) = 1000;
};

}  // namespace pe::net
