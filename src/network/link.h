// A directed network link between two sites.
//
// Models one-way propagation latency (with jitter) plus a shared,
// serialized transmission channel (bandwidth). Concurrent transfers queue
// on the channel exactly like packets on a saturated WAN uplink: each
// transfer reserves the next free slot of channel time, then the calling
// thread sleeps until its transmission plus propagation completes.
//
// All sleeps go through Clock::sleep_scaled so the global time_scale can
// accelerate emulation; reported TransferResult durations are in emulated
// (unscaled) time.
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "network/site.h"

namespace pe::net {

/// Static description of a link's quality.
struct LinkSpec {
  SiteId from;
  SiteId to;
  /// One-way propagation latency bounds; actual latency per message is
  /// uniform in [min,max] (paper: intercontinental RTT 140-160 ms).
  Duration latency_min = std::chrono::microseconds(100);
  Duration latency_max = std::chrono::microseconds(200);
  /// Bandwidth bounds in bits/s; fluctuates per transfer
  /// (paper: 60-100 Mbit/s via iPerf).
  double bandwidth_min_bps = 10e9;
  double bandwidth_max_bps = 10e9;

  Duration mean_latency() const { return (latency_min + latency_max) / 2; }
  double mean_bandwidth_bps() const {
    return (bandwidth_min_bps + bandwidth_max_bps) / 2.0;
  }
};

/// Outcome of one transfer, in emulated time.
struct TransferResult {
  Duration queue_delay{};     // waiting for the shared channel
  Duration transmit_time{};   // size / bandwidth
  Duration propagation{};     // latency sample
  std::uint64_t bytes = 0;

  Duration total() const { return queue_delay + transmit_time + propagation; }
};

/// Cumulative link statistics.
struct LinkStats {
  std::uint64_t transfers = 0;
  std::uint64_t bytes = 0;
  Duration total_queue_delay{};
  Duration total_transmit_time{};
};

/// Runtime fault applied on top of a link's static spec (chaos injection).
/// Degradation multiplies sampled latency and divides sampled bandwidth;
/// a partitioned link refuses transfers entirely.
struct LinkFault {
  double latency_factor = 1.0;    // >= 1 slows the link down
  double bandwidth_factor = 1.0;  // <= 1 shrinks the pipe
  bool partitioned = false;

  bool degrades() const {
    return latency_factor != 1.0 || bandwidth_factor != 1.0 || partitioned;
  }
};

class Link {
 public:
  explicit Link(LinkSpec spec, std::uint64_t seed = 7);

  /// Blocks the caller for the emulated duration of moving `bytes` across
  /// this link and returns the per-component timing breakdown.
  TransferResult transfer(std::uint64_t bytes);

  /// Applies/replaces the runtime fault (chaos injection).
  void set_fault(LinkFault fault);
  /// Restores nominal spec behaviour.
  void clear_fault();
  LinkFault fault() const;
  /// A partitioned link refuses transfers (Fabric surfaces UNAVAILABLE).
  bool partitioned() const;

  const LinkSpec& spec() const { return spec_; }
  LinkStats stats() const;

 private:
  const LinkSpec spec_;
  mutable Mutex mutex_{"net.link"};
  Rng rng_ PE_GUARDED_BY(mutex_);
  // Next instant (real/scaled clock) at which the shared channel is free.
  TimePoint channel_free_at_ PE_GUARDED_BY(mutex_);
  LinkStats stats_ PE_GUARDED_BY(mutex_);
  LinkFault fault_ PE_GUARDED_BY(mutex_);
};

}  // namespace pe::net
