#include "network/link.h"

#include <algorithm>

namespace pe::net {

Link::Link(LinkSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed), channel_free_at_(Clock::now()) {}

TransferResult Link::transfer(std::uint64_t bytes) {
  TransferResult result;
  result.bytes = bytes;

  const double scale = Clock::time_scale();
  TimePoint complete_at;
  {
    MutexLock lock(mutex_);

    // Sample per-transfer link quality, degraded by any active fault.
    const double bw = rng_.uniform(spec_.bandwidth_min_bps,
                                   spec_.bandwidth_max_bps) *
                      std::max(fault_.bandwidth_factor, 1e-9);
    const auto lat_ns = static_cast<std::int64_t>(
        rng_.uniform(static_cast<double>(spec_.latency_min.count()),
                     static_cast<double>(spec_.latency_max.count())) *
        fault_.latency_factor);
    result.propagation = Duration(lat_ns);
    const double tx_seconds = static_cast<double>(bytes) * 8.0 / bw;
    result.transmit_time = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(tx_seconds));

    // Reserve channel time: serialized shared medium. Bookkeeping happens
    // in scaled (real) clock time so emulation stays consistent when
    // time_scale != 1.
    const auto tx_scaled =
        std::chrono::duration_cast<Duration>(result.transmit_time / scale);
    const auto now = Clock::now();
    const TimePoint start = std::max(now, channel_free_at_);
    result.queue_delay = std::chrono::duration_cast<Duration>(
        (start - now) * scale);
    channel_free_at_ = start + tx_scaled;

    const auto prop_scaled =
        std::chrono::duration_cast<Duration>(result.propagation / scale);
    complete_at = channel_free_at_ + prop_scaled;

    stats_.transfers += 1;
    stats_.bytes += bytes;
    stats_.total_queue_delay += result.queue_delay;
    stats_.total_transmit_time += result.transmit_time;
  }

  // Block the caller until the message "arrives" (outside the lock, so
  // other transfers can queue behind us concurrently).
  const auto now = Clock::now();
  if (complete_at > now) {
    Clock::sleep_exact(complete_at - now);
  }
  return result;
}

void Link::set_fault(LinkFault fault) {
  MutexLock lock(mutex_);
  fault_ = fault;
}

void Link::clear_fault() {
  MutexLock lock(mutex_);
  fault_ = LinkFault{};
}

LinkFault Link::fault() const {
  MutexLock lock(mutex_);
  return fault_;
}

bool Link::partitioned() const {
  MutexLock lock(mutex_);
  return fault_.partitioned;
}

LinkStats Link::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace pe::net
