// CRC32C (Castagnoli) checksum, the polynomial Kafka and ext4 use for
// record framing. Software table implementation (reflected 0x82F63B78);
// header-only so the frame codec and the recovery scanner share one
// definition without a link dependency.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace pe::storage {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable =
    make_crc32c_table();

}  // namespace detail

/// One-shot CRC32C over a buffer. `seed` chains partial checksums:
/// crc32c(ab) == crc32c(b, crc32c(a)).
inline std::uint32_t crc32c(const void* data, std::size_t size,
                            std::uint32_t seed = 0) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = detail::kCrc32cTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace pe::storage
