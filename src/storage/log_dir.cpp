#include "storage/log_dir.h"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <thread>

#include "common/buffer_pool.h"
#include "common/clock.h"
#include "common/logging.h"
#include "telemetry/metrics.h"

namespace pe::storage {

namespace fs = std::filesystem;

namespace {

std::uint64_t frame_size_of(const broker::Record& record) {
  return kFrameHeaderBytes + kFrameBodyFixedBytes + record.key.size() +
         record.value.size();
}

/// How many consecutive covering fsyncs one group-commit leader runs for
/// bytes that are not its own before handing leadership to a waiter.
constexpr int kLeaderChoreBudget = 8;

}  // namespace

LogDir::LogDir(std::string dir, StorageConfig config)
    : dir_(std::move(dir)), config_(config) {}

Result<std::unique_ptr<LogDir>> LogDir::open(std::string dir,
                                             StorageConfig config,
                                             RecoveryReport* report) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("create_directories '" + dir +
                            "': " + ec.message());
  }
  std::unique_ptr<LogDir> log(new LogDir(std::move(dir), config));
  RecoveryReport local;
  {
    MutexLock lock(log->mutex_);
    if (auto s = log->recover_locked(&local); !s.ok()) return s;
  }
  if (report != nullptr) *report = local;
  if (config.flush_policy == FlushPolicy::kIntervalMs) {
    log->flusher_ = std::thread([raw = log.get()] {
      UniqueLock lock(raw->mutex_);
      while (!raw->stop_flusher_) {
        raw->flusher_cv_.wait_for(lock, raw->config_.flush_interval,
                                  [raw]() PE_NO_THREAD_SAFETY_ANALYSIS {
                                    return raw->stop_flusher_;
                                  });
        if (raw->stop_flusher_) break;
        if (raw->writer_ && raw->writer_->dirty_records() > 0) {
          // Group sync: the fsync runs with the mutex released, so the
          // interval flusher no longer stalls concurrent appenders.
          if (auto s = raw->group_sync_locked(lock); !s.ok()) {
            PE_LOG_WARN("storage flusher: " << s.to_string());
          }
        }
      }
    });
  }
  return log;
}

LogDir::~LogDir() {
  stop_flusher();
  UniqueLock lock(mutex_);
  wait_sync_idle_locked(lock);
  if (!closed_ && writer_) writer_->close();  // clean shutdown syncs
  writer_.reset();
}

void LogDir::stop_flusher() {
  {
    MutexLock lock(mutex_);
    stop_flusher_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

Status LogDir::recover_locked(RecoveryReport* report) {
  const auto t0 = Clock::now();
  auto& metrics = tel::MetricsRegistry::global();

  // Collect segment files in base-offset order.
  std::vector<std::pair<std::uint64_t, std::string>> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    std::uint64_t base = 0;
    const std::string name = entry.path().filename().string();
    if (parse_segment_file_name(name, &base)) {
      files.emplace_back(base, entry.path().string());
    }
  }
  if (ec) {
    return Status::Internal("list '" + dir_ + "': " + ec.message());
  }
  std::sort(files.begin(), files.end());

  segments_.clear();
  bool tail_is_torn = false;
  for (const auto& [base, path] : files) {
    if (tail_is_torn ||
        (!segments_.empty() && segments_.back()->end_offset() != base)) {
      // Unreachable past a torn/corrupt segment or an offset gap: these
      // records can no longer be served contiguously. Delete them — the
      // durability contract only covers the contiguous synced prefix.
      PE_LOG_WARN("storage recovery: deleting discontiguous segment "
                  << path);
      std::error_code rm_ec;
      fs::remove(path, rm_ec);
      if (rm_ec) {
        return Status::Internal("recovery: remove discontiguous segment '" +
                                path + "': " + rm_ec.message());
      }
      report->segments_deleted += 1;
      continue;
    }
    auto segment = std::make_unique<Segment>(path, base,
                                             config_.index_interval_bytes);
    auto scanned = segment->scan();
    if (!scanned.ok()) return scanned.status();
    report->segments_scanned += 1;
    report->records_recovered += segment->record_count();
    report->bytes_recovered += scanned.value().valid_bytes;
    if (scanned.value().torn_bytes > 0) {
      report->torn_bytes_truncated += scanned.value().torn_bytes;
      metrics.counter("storage.torn_bytes_truncated")
          .add(scanned.value().torn_bytes);
      tail_is_torn = true;  // anything after this segment is unreachable
    }
    // Empty (fully-torn or rolled-but-never-written) segments stay in the
    // list for now; only *trailing* empties are recycled, below. Deleting
    // one mid-scan would silently splice the list and let a later segment
    // pass the contiguity check it should fail.
    segments_.push_back(std::move(segment));
  }

  // Recycle empty segments only from the tail: a crash can leave a
  // rolled-but-never-appended (or fully-torn) trailing file, and the next
  // roll recreates it at the same base offset. At least one segment
  // always survives to carry the offset sequence.
  while (segments_.size() > 1 && segments_.back()->record_count() == 0) {
    std::error_code rm_ec;
    fs::remove(segments_.back()->path(), rm_ec);
    if (rm_ec) {
      // Not fatal: keep it as the active segment instead — the writer
      // open below truncates the file to its zero valid bytes.
      PE_LOG_WARN("storage recovery: cannot recycle empty tail segment '"
                  << segments_.back()->path() << "': " << rm_ec.message()
                  << "; keeping it as the active segment");
      break;
    }
    report->segments_deleted += 1;
    segments_.pop_back();
  }

  if (segments_.empty()) {
    auto segment = std::make_unique<Segment>(
        (fs::path(dir_) / segment_file_name(0)).string(), 0,
        config_.index_interval_bytes);
    segments_.push_back(std::move(segment));
    metrics.counter("storage.segments_created").add();
  }

  // The last surviving segment becomes the active one; its writer's open
  // truncates the torn tail off the file and fsyncs the valid prefix.
  auto writer = SegmentWriter::open(segments_.back().get());
  if (!writer.ok()) return writer.status();
  writer_ = std::move(writer).value();

  report->start_offset = segments_.front()->base_offset();
  report->next_offset = segments_.back()->end_offset();
  report->elapsed = std::chrono::duration_cast<Duration>(Clock::now() - t0);
  metrics.histogram("storage.recovery_ms")
      .record(std::chrono::duration_cast<
                  std::chrono::duration<double, std::milli>>(report->elapsed)
                  .count());
  return Status::Ok();
}

std::uint64_t LogDir::end_offset_locked() const {
  return segments_.back()->end_offset();
}

void LogDir::wait_sync_idle_locked(UniqueLock& lock) {
  sync_cv_.wait(lock, [this]() PE_NO_THREAD_SAFETY_ANALYSIS {
    return !sync_in_flight_;
  });
}

Status LogDir::group_sync_locked(UniqueLock& lock) {
  // What this caller needs covered: everything appended to the active
  // segment so far. Identified by base offset, not pointer — base offsets
  // are monotone and never reused, so the check survives rolls, retention
  // and truncation without dangling.
  const std::uint64_t base = segments_.back()->base_offset();
  const std::uint64_t target = segments_.back()->bytes();
  for (;;) {
    if (closed_) {
      return Status::FailedPrecondition("log dir closed (crashed)");
    }
    if (segments_.back()->base_offset() != base) {
      // The log rolled past our segment while we waited. Rolling seals
      // (syncs) the outgoing segment, so our bytes are already durable.
      return Status::Ok();
    }
    if (writer_->synced_bytes() >= target) return Status::Ok();
    if (!sync_in_flight_) break;
    // A leader is fsyncing right now with the mutex released; wait for
    // its result — it may already cover our bytes. Wake on ANY progress
    // (coverage, roll, close), not just on the sync slot going idle: a
    // covered waiter that kept sleeping until idle would snooze through
    // the next leader's whole fsync and never contribute its next record
    // to that leader's group.
    sync_cv_.wait(lock, [&]() PE_NO_THREAD_SAFETY_ANALYSIS {
      return closed_ || segments_.back()->base_offset() != base ||
             writer_->synced_bytes() >= target || !sync_in_flight_;
    });
  }
  // Become the sync leader: snapshot what the fsync will cover, run it
  // with the mutex released (concurrent appenders keep writing and park
  // behind sync_in_flight_), publish the marks, wake the covered
  // waiters — then DRAIN: if new bytes landed while the fsync ran, loop
  // and cover them too instead of handing leadership off. A handoff per
  // group costs a cv wake + mutex convoy + snapshot latency per fsync;
  // the drain loop keeps the disk continuously busy with zero handoffs,
  // which is where the group-commit throughput actually comes from. The
  // chore budget bounds how long one caller does chores for everyone
  // else's bytes before a parked waiter takes over.
  sync_in_flight_ = true;
  Status my_sync = Status::Ok();
  for (int chores = 0;; ++chores) {
    // Group window: one scheduling quantum with the lock dropped (flag
    // already set, so the writer cannot be replaced) lets appenders that
    // are mid-wakeup land their bytes in the buffer and ride THIS fsync
    // instead of the next one. Uncontended, the yield is ~a microsecond.
    lock.unlock();
    std::this_thread::yield();
    lock.lock();
    SegmentWriter* writer = writer_.get();
    const SegmentWriter::SyncMark mark = writer->begin_sync();
    lock.unlock();
    const Status synced = writer->sync_file_only();
    lock.lock();
    // The fsync that covers THIS caller's bytes is the first one; chore
    // rounds only sync bytes of waiters who will re-check on wake and
    // re-lead (re-reporting any persistent error to their own callers).
    if (chores == 0) my_sync = synced;
    if (!synced.ok()) break;
    writer->note_synced(mark);
    sync_cv_.notify_all();  // covered waiters return immediately
    if (closed_) break;
    if (segments_.back()->bytes() <= writer->synced_bytes()) break;
    if (chores + 1 >= kLeaderChoreBudget) break;
  }
  sync_in_flight_ = false;
  sync_cv_.notify_all();
  return my_sync;
}

Status LogDir::policy_sync_locked(UniqueLock& lock) {
  switch (config_.flush_policy) {
    case FlushPolicy::kEverySync:
      return group_sync_locked(lock);
    case FlushPolicy::kEveryNRecords:
      if (writer_->dirty_records() >= config_.flush_every_n) {
        return group_sync_locked(lock);
      }
      return Status::Ok();
    case FlushPolicy::kIntervalMs:
    case FlushPolicy::kNever:
      return Status::Ok();
  }
  return Status::Ok();
}

Status LogDir::roll_locked(UniqueLock& lock) {
  const std::uint64_t active_base = segments_.back()->base_offset();
  // The writer is about to be replaced: no group sync may be fsyncing
  // through it. Waiting can release the lock, so re-check the world.
  wait_sync_idle_locked(lock);
  if (closed_) {
    return Status::FailedPrecondition("log dir closed (crashed)");
  }
  if (segments_.back()->base_offset() != active_base) {
    return Status::Ok();  // another appender rolled while we waited
  }
  // Seal the active segment: everything in it becomes durable at the
  // roll, so a sealed segment is never part of the unsynced tail.
  if (auto s = writer_->sync(); !s.ok()) return s;
  const std::uint64_t base = end_offset_locked();
  auto segment = std::make_unique<Segment>(
      (fs::path(dir_) / segment_file_name(base)).string(), base,
      config_.index_interval_bytes);
  auto writer = SegmentWriter::open(segment.get());
  if (!writer.ok()) return writer.status();
  segments_.push_back(std::move(segment));
  writer_ = std::move(writer).value();
  tel::MetricsRegistry::global().counter("storage.segments_created").add();
  return Status::Ok();
}

Result<std::uint64_t> LogDir::append(const broker::Record& record,
                                     std::uint64_t broker_timestamp_ns) {
  UniqueLock lock(mutex_);
  if (closed_) return Status::FailedPrecondition("log dir closed (crashed)");
  if (inject_append_failures_ > 0) {
    --inject_append_failures_;
    return Status::Unavailable("injected append failure");
  }
  if (segments_.back()->record_count() > 0 &&
      segments_.back()->bytes() + frame_size_of(record) >
          config_.segment_max_bytes) {
    if (auto s = roll_locked(lock); !s.ok()) return s;
  }
  const std::uint64_t offset = end_offset_locked();
  if (auto s = writer_->append(record, offset, broker_timestamp_ns);
      !s.ok()) {
    return s;
  }
  if (auto s = policy_sync_locked(lock); !s.ok()) return s;
  return offset;
}

Result<std::uint64_t> LogDir::append_batch(
    const std::vector<TimestampedRecord>& records) {
  UniqueLock lock(mutex_);
  if (closed_) return Status::FailedPrecondition("log dir closed (crashed)");
  if (inject_append_failures_ > 0) {
    --inject_append_failures_;
    return Status::Unavailable("injected append failure");
  }
  if (records.empty()) return end_offset_locked();

  std::uint64_t batch_bytes = 0;
  for (const TimestampedRecord& tr : records) {
    batch_bytes += frame_size_of(*tr.record);
  }
  // One pooled encode buffer per segment chunk (usually one per batch):
  // all frames of a chunk are encoded back to back and hit the file in a
  // single write().
  Bytes buf = BufferPool::global().acquire(static_cast<std::size_t>(
      std::min<std::uint64_t>(batch_bytes, config_.segment_max_bytes)));
  std::vector<FrameMeta> frames;
  frames.reserve(records.size());

  bool have_first = false;
  std::uint64_t first = 0;
  Status failed = Status::Ok();
  std::size_t i = 0;
  while (i < records.size()) {
    if (segments_.back()->record_count() > 0 &&
        segments_.back()->bytes() + frame_size_of(*records[i].record) >
            config_.segment_max_bytes) {
      if (auto s = roll_locked(lock); !s.ok()) {
        failed = s;
        break;
      }
    }
    // Chunk: the consecutive run of frames that fits the active segment.
    buf.clear();
    frames.clear();
    std::uint64_t seg_bytes = segments_.back()->bytes();
    std::uint64_t seg_records = segments_.back()->record_count();
    std::uint64_t offset = end_offset_locked();
    while (i < records.size()) {
      const broker::Record& record = *records[i].record;
      const std::uint64_t frame_size = frame_size_of(record);
      if ((seg_records > 0 || !frames.empty()) &&
          seg_bytes + frame_size > config_.segment_max_bytes) {
        break;  // next chunk after a roll
      }
      FrameMeta meta;
      meta.offset = offset;
      meta.broker_timestamp_ns = records[i].broker_timestamp_ns;
      meta.buf_pos = buf.size();
      encode_frame(buf, offset, meta.broker_timestamp_ns, record);
      meta.frame_bytes = buf.size() - meta.buf_pos;
      frames.push_back(meta);
      seg_bytes += meta.frame_bytes;
      ++seg_records;
      ++offset;
      ++i;
    }
    if (!frames.empty() && !have_first) {
      have_first = true;
      first = frames.front().offset;
    }
    if (auto s = writer_->append_encoded(buf, frames); !s.ok()) {
      failed = s;
      break;
    }
  }
  BufferPool::global().release(std::move(buf));
  if (!failed.ok()) return failed;
  // At most one policy sync covers the whole batch (rolls mid-batch seal
  // their outgoing segment with their own sync, as every roll does).
  if (auto s = policy_sync_locked(lock); !s.ok()) return s;
  return first;
}

Status LogDir::sync() {
  UniqueLock lock(mutex_);
  if (closed_) return Status::FailedPrecondition("log dir closed (crashed)");
  return group_sync_locked(lock);
}

void LogDir::inject_append_failures(std::uint64_t n) {
  MutexLock lock(mutex_);
  inject_append_failures_ = n;
}

std::size_t LogDir::segment_index_locked(std::uint64_t offset) const {
  // Last segment whose base_offset <= offset.
  std::size_t lo = 0, hi = segments_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (segments_[mid]->base_offset() <= offset) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo - 1;  // precondition: offset >= segments_.front()->base_offset()
}

Result<std::vector<broker::ConsumedRecord>> LogDir::fetch(
    std::uint64_t offset, std::size_t max_records,
    std::uint64_t max_bytes) const {
  MutexLock lock(mutex_);
  const std::uint64_t start = segments_.front()->base_offset();
  const std::uint64_t end = end_offset_locked();
  if (offset < start) {
    return Status::OutOfRange("fetch offset " + std::to_string(offset) +
                              " below log start " + std::to_string(start));
  }
  if (offset > end) {
    return Status::OutOfRange("fetch offset " + std::to_string(offset) +
                              " beyond end offset " + std::to_string(end));
  }
  std::vector<broker::ConsumedRecord> out;
  if (offset == end) return out;

  std::uint64_t bytes = 0;
  std::size_t seg_idx = segment_index_locked(offset);
  while (seg_idx < segments_.size() && out.size() < max_records) {
    const Segment& segment = *segments_[seg_idx];
    if (segment.record_count() == 0) break;  // empty active segment
    auto mapped = segment.mapping();
    if (!mapped.ok()) return mapped.status();
    const std::shared_ptr<MmapRegion>& region = mapped.value();
    const std::uint64_t from =
        out.empty() ? offset : segment.base_offset();
    auto pos = segment.position_of(from);
    if (!pos.ok()) return pos.status();
    std::uint64_t p = pos.value();
    std::uint64_t at = from;
    while (at < segment.end_offset() && out.size() < max_records) {
      FrameView frame;
      if (p >= region->size() ||
          parse_frame(region->data() + p, region->size() - p, &frame) !=
              FrameParse::kOk) {
        return Status::Internal("segment '" + segment.path() +
                                "' fetch walk hit invalid frame at byte " +
                                std::to_string(p));
      }
      const std::uint64_t wire = frame.key_len + frame.value_len +
                                 broker::kRecordWireOverheadBytes;
      // The first record always ships, even when it alone exceeds the
      // byte budget — a single oversized record must not stall a
      // consumer forever.
      if (!out.empty() && bytes + wire > max_bytes) {
        return out;
      }
      broker::ConsumedRecord cr;
      cr.offset = frame.offset;
      cr.broker_timestamp_ns = frame.broker_timestamp_ns;
      cr.record.key.assign(reinterpret_cast<const char*>(frame.key),
                           frame.key_len);
      cr.record.client_timestamp_ns = frame.client_timestamp_ns;
      // Zero-copy: the payload aliases the mapping, which stays alive via
      // the shared owner even after retention unlinks or remaps the file.
      cr.record.value =
          broker::Payload::view(region, frame.value, frame.value_len);
      bytes += wire;
      out.push_back(std::move(cr));
      p += frame.frame_bytes;
      ++at;
    }
    ++seg_idx;
  }
  return out;
}

std::uint64_t LogDir::start_offset() const {
  MutexLock lock(mutex_);
  return segments_.front()->base_offset();
}

std::uint64_t LogDir::end_offset() const {
  MutexLock lock(mutex_);
  return end_offset_locked();
}

std::uint64_t LogDir::synced_offset() const {
  MutexLock lock(mutex_);
  return writer_ ? writer_->synced_offset() : end_offset_locked();
}

std::uint64_t LogDir::record_count() const {
  MutexLock lock(mutex_);
  return end_offset_locked() - segments_.front()->base_offset();
}

std::uint64_t LogDir::byte_size() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& s : segments_) total += s->bytes();
  return total;
}

std::size_t LogDir::segment_count() const {
  MutexLock lock(mutex_);
  return segments_.size();
}

std::vector<SegmentInfo> LogDir::segments() const {
  MutexLock lock(mutex_);
  std::vector<SegmentInfo> out;
  out.reserve(segments_.size());
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = *segments_[i];
    SegmentInfo info;
    info.base_offset = s.base_offset();
    info.end_offset = s.end_offset();
    info.bytes = s.bytes();
    info.first_timestamp_ns = s.first_timestamp_ns();
    info.last_timestamp_ns = s.last_timestamp_ns();
    info.active = i + 1 == segments_.size();
    out.push_back(info);
  }
  return out;
}

std::uint64_t LogDir::offset_for_timestamp(std::uint64_t ts_ns) const {
  MutexLock lock(mutex_);
  // First non-empty segment whose last timestamp is >= ts (segments are
  // timestamp-ordered because appends are). Empty segments — a fresh log,
  // or an active segment right after a boundary truncation — hold no
  // candidate records, so they are ordered as "older than everything":
  // without this the binary search can land on the empty active segment
  // and fall through to the error path below.
  std::size_t lo = 0, hi = segments_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (segments_[mid]->record_count() == 0 ||
        segments_[mid]->last_timestamp_ns() < ts_ns) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == segments_.size()) return end_offset_locked();
  auto found = segments_[lo]->offset_for_timestamp(ts_ns);
  if (!found.ok()) {
    PE_LOG_WARN("offset_for_timestamp: " << found.status().to_string());
    return end_offset_locked();
  }
  return found.value();
}

Status LogDir::truncate_suffix(std::uint64_t offset) {
  UniqueLock lock(mutex_);
  if (closed_) return Status::FailedPrecondition("log dir closed (crashed)");
  if (offset >= end_offset_locked()) return Status::Ok();
  if (offset < segments_.front()->base_offset()) {
    return Status::OutOfRange(
        "truncate offset " + std::to_string(offset) + " below log start " +
        std::to_string(segments_.front()->base_offset()));
  }
  // The writer (and possibly files) are about to be mutated: wait out any
  // in-flight group fsync first, then re-validate — the wait can release
  // the lock.
  wait_sync_idle_locked(lock);
  if (closed_) return Status::FailedPrecondition("log dir closed (crashed)");
  if (offset >= end_offset_locked()) return Status::Ok();
  // The writer holds the active segment's fd; close it before unlinking
  // or resizing files (a fresh writer reopens the new tail below). From
  // here until that reopen the log has no writer: any early error return
  // must close the LogDir, or the next append/sync would dereference a
  // null writer_.
  if (writer_) writer_->close();
  writer_.reset();
  // (analysis can't follow the lambda; mutex_ is held for the whole call)
  auto fail_closed = [this](Status s) PE_NO_THREAD_SAFETY_ANALYSIS {
    closed_ = true;
    PE_LOG_ERROR("truncate_suffix failed mid-cut, closing log dir '"
                 << dir_ << "': " << s.to_string());
    return s;
  };

  std::error_code ec;
  while (!segments_.empty() && segments_.back()->base_offset() >= offset) {
    fs::remove(segments_.back()->path(), ec);
    segments_.pop_back();
  }
  if (segments_.empty()) {
    // Whole log discarded: recreate an empty active segment based at the
    // cut so the offset sequence resumes there (offsets are never reused).
    segments_.push_back(std::make_unique<Segment>(
        (fs::path(dir_) / segment_file_name(offset)).string(), offset,
        config_.index_interval_bytes));
  } else if (segments_.back()->end_offset() > offset) {
    // Boundary segment: cut the file at the first discarded frame and
    // rebuild the segment's metadata/index from the surviving prefix.
    Segment* tail = segments_.back().get();
    auto pos = tail->position_of(offset);
    if (!pos.ok()) return fail_closed(pos.status());
    fs::resize_file(tail->path(), pos.value(), ec);
    if (ec) {
      return fail_closed(Status::Internal("truncate '" + tail->path() +
                                          "': " + ec.message()));
    }
    auto rebuilt = std::make_unique<Segment>(tail->path(),
                                             tail->base_offset(),
                                             config_.index_interval_bytes);
    auto scanned = rebuilt->scan();
    if (!scanned.ok()) return fail_closed(scanned.status());
    segments_.back() = std::move(rebuilt);
  }

  auto writer = SegmentWriter::open(segments_.back().get());
  if (!writer.ok()) return fail_closed(writer.status());
  writer_ = std::move(writer).value();
  tel::MetricsRegistry::global().counter("storage.suffix_truncations").add();
  return group_sync_locked(lock);  // the cut itself must survive a crash
}

std::size_t LogDir::apply_retention(std::uint64_t max_records,
                                    std::uint64_t max_bytes,
                                    std::uint64_t min_timestamp_ns) {
  MutexLock lock(mutex_);
  std::size_t dropped = 0;
  std::uint64_t total_records =
      end_offset_locked() - segments_.front()->base_offset();
  std::uint64_t total_bytes = 0;
  for (const auto& s : segments_) total_bytes += s->bytes();

  while (segments_.size() > 1) {
    const Segment& oldest = *segments_.front();
    const bool over_records =
        max_records > 0 &&
        total_records - oldest.record_count() >= max_records;
    const bool over_bytes =
        max_bytes > 0 && total_bytes - oldest.bytes() >= max_bytes;
    const bool expired = min_timestamp_ns > 0 &&
                         oldest.last_timestamp_ns() < min_timestamp_ns;
    if (!over_records && !over_bytes && !expired) break;
    total_records -= oldest.record_count();
    total_bytes -= oldest.bytes();
    std::error_code ec;
    fs::remove(oldest.path(), ec);  // mapped views outlive the unlink
    if (ec) {
      PE_LOG_WARN("retention: remove '" << oldest.path()
                                        << "': " << ec.message());
    }
    segments_.erase(segments_.begin());
    dropped += 1;
  }
  if (dropped > 0) {
    tel::MetricsRegistry::global()
        .counter("storage.segments_dropped")
        .add(dropped);
  }
  return dropped;
}

void LogDir::simulate_power_loss(double keep_fraction) {
  stop_flusher();
  UniqueLock lock(mutex_);
  if (closed_) return;
  // Close FIRST, then drain: new appenders and parked group-sync waiters
  // observe closed_ and bail immediately, so only the one in-flight
  // leader (if any) is left to finish. Draining before closing would let
  // a steady stream of appenders start fresh syncs and starve the cut.
  closed_ = true;
  sync_cv_.notify_all();
  wait_sync_idle_locked(lock);
  if (writer_) {
    if (auto s = writer_->truncate_unsynced(keep_fraction); !s.ok()) {
      PE_LOG_WARN("simulate_power_loss: " << s.to_string());
    }
    writer_.reset();
  }
}

}  // namespace pe::storage
