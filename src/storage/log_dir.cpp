#include "storage/log_dir.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "common/clock.h"
#include "common/logging.h"
#include "telemetry/metrics.h"

namespace pe::storage {

namespace fs = std::filesystem;

LogDir::LogDir(std::string dir, StorageConfig config)
    : dir_(std::move(dir)), config_(config) {}

Result<std::unique_ptr<LogDir>> LogDir::open(std::string dir,
                                             StorageConfig config,
                                             RecoveryReport* report) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("create_directories '" + dir +
                            "': " + ec.message());
  }
  std::unique_ptr<LogDir> log(new LogDir(std::move(dir), config));
  RecoveryReport local;
  {
    MutexLock lock(log->mutex_);
    if (auto s = log->recover_locked(&local); !s.ok()) return s;
  }
  if (report != nullptr) *report = local;
  if (config.flush_policy == FlushPolicy::kIntervalMs) {
    log->flusher_ = std::thread([raw = log.get()] {
      UniqueLock lock(raw->mutex_);
      while (!raw->stop_flusher_) {
        raw->flusher_cv_.wait_for(lock, raw->config_.flush_interval,
                                  [raw]() PE_NO_THREAD_SAFETY_ANALYSIS {
                                    return raw->stop_flusher_;
                                  });
        if (raw->stop_flusher_) break;
        if (raw->writer_ && raw->writer_->dirty_records() > 0) {
          if (auto s = raw->sync_locked(); !s.ok()) {
            PE_LOG_WARN("storage flusher: " << s.to_string());
          }
        }
      }
    });
  }
  return log;
}

LogDir::~LogDir() {
  stop_flusher();
  MutexLock lock(mutex_);
  if (!closed_ && writer_) writer_->close();  // clean shutdown syncs
  writer_.reset();
}

void LogDir::stop_flusher() {
  {
    MutexLock lock(mutex_);
    stop_flusher_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

Status LogDir::recover_locked(RecoveryReport* report) {
  const auto t0 = Clock::now();
  auto& metrics = tel::MetricsRegistry::global();

  // Collect segment files in base-offset order.
  std::vector<std::pair<std::uint64_t, std::string>> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    std::uint64_t base = 0;
    const std::string name = entry.path().filename().string();
    if (parse_segment_file_name(name, &base)) {
      files.emplace_back(base, entry.path().string());
    }
  }
  if (ec) {
    return Status::Internal("list '" + dir_ + "': " + ec.message());
  }
  std::sort(files.begin(), files.end());

  segments_.clear();
  bool tail_is_torn = false;
  for (const auto& [base, path] : files) {
    if (tail_is_torn ||
        (!segments_.empty() && segments_.back()->end_offset() != base)) {
      // Unreachable past a torn/corrupt segment or an offset gap: these
      // records can no longer be served contiguously. Delete them — the
      // durability contract only covers the contiguous synced prefix.
      PE_LOG_WARN("storage recovery: deleting discontiguous segment "
                  << path);
      fs::remove(path, ec);
      report->segments_deleted += 1;
      continue;
    }
    auto segment = std::make_unique<Segment>(path, base,
                                             config_.index_interval_bytes);
    auto scanned = segment->scan();
    if (!scanned.ok()) return scanned.status();
    report->segments_scanned += 1;
    report->records_recovered += segment->record_count();
    report->bytes_recovered += scanned.value().valid_bytes;
    if (scanned.value().torn_bytes > 0) {
      report->torn_bytes_truncated += scanned.value().torn_bytes;
      metrics.counter("storage.torn_bytes_truncated")
          .add(scanned.value().torn_bytes);
      tail_is_torn = true;  // anything after this segment is unreachable
    }
    if (segment->record_count() == 0 && !segments_.empty()) {
      // Fully-torn (or empty) trailing segment: recycle the file only if
      // it is the tail; keep scanning state consistent either way.
      fs::remove(path, ec);
      report->segments_deleted += 1;
      continue;
    }
    segments_.push_back(std::move(segment));
  }

  if (segments_.empty()) {
    auto segment = std::make_unique<Segment>(
        (fs::path(dir_) / segment_file_name(0)).string(), 0,
        config_.index_interval_bytes);
    segments_.push_back(std::move(segment));
    metrics.counter("storage.segments_created").add();
  }

  // The last surviving segment becomes the active one; its writer's open
  // truncates the torn tail off the file and fsyncs the valid prefix.
  auto writer = SegmentWriter::open(segments_.back().get());
  if (!writer.ok()) return writer.status();
  writer_ = std::move(writer).value();

  report->start_offset = segments_.front()->base_offset();
  report->next_offset = segments_.back()->end_offset();
  report->elapsed = std::chrono::duration_cast<Duration>(Clock::now() - t0);
  metrics.histogram("storage.recovery_ms")
      .record(std::chrono::duration_cast<
                  std::chrono::duration<double, std::milli>>(report->elapsed)
                  .count());
  return Status::Ok();
}

std::uint64_t LogDir::end_offset_locked() const {
  return segments_.back()->end_offset();
}

Status LogDir::roll_locked() {
  // Seal the active segment: everything in it becomes durable at the
  // roll, so a sealed segment is never part of the unsynced tail.
  if (auto s = writer_->sync(); !s.ok()) return s;
  const std::uint64_t base = end_offset_locked();
  auto segment = std::make_unique<Segment>(
      (fs::path(dir_) / segment_file_name(base)).string(), base,
      config_.index_interval_bytes);
  auto writer = SegmentWriter::open(segment.get());
  if (!writer.ok()) return writer.status();
  segments_.push_back(std::move(segment));
  writer_ = std::move(writer).value();
  tel::MetricsRegistry::global().counter("storage.segments_created").add();
  return Status::Ok();
}

Result<std::uint64_t> LogDir::append(const broker::Record& record,
                                     std::uint64_t broker_timestamp_ns) {
  MutexLock lock(mutex_);
  if (closed_) return Status::FailedPrecondition("log dir closed (crashed)");
  Segment* active = segments_.back().get();
  if (active->record_count() > 0 &&
      active->bytes() + kFrameHeaderBytes + kFrameBodyFixedBytes +
              record.key.size() + record.value.size() >
          config_.segment_max_bytes) {
    if (auto s = roll_locked(); !s.ok()) return s;
  }
  const std::uint64_t offset = end_offset_locked();
  if (auto s = writer_->append(record, offset, broker_timestamp_ns);
      !s.ok()) {
    return s;
  }
  switch (config_.flush_policy) {
    case FlushPolicy::kEverySync:
      if (auto s = sync_locked(); !s.ok()) return s;
      break;
    case FlushPolicy::kEveryNRecords:
      if (writer_->dirty_records() >= config_.flush_every_n) {
        if (auto s = sync_locked(); !s.ok()) return s;
      }
      break;
    case FlushPolicy::kIntervalMs:
    case FlushPolicy::kNever:
      break;
  }
  return offset;
}

Status LogDir::sync() {
  MutexLock lock(mutex_);
  if (closed_) return Status::FailedPrecondition("log dir closed (crashed)");
  return sync_locked();
}

Status LogDir::sync_locked() { return writer_->sync(); }

std::size_t LogDir::segment_index_locked(std::uint64_t offset) const {
  // Last segment whose base_offset <= offset.
  std::size_t lo = 0, hi = segments_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (segments_[mid]->base_offset() <= offset) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo - 1;  // precondition: offset >= segments_.front()->base_offset()
}

Result<std::vector<broker::ConsumedRecord>> LogDir::fetch(
    std::uint64_t offset, std::size_t max_records,
    std::uint64_t max_bytes) const {
  MutexLock lock(mutex_);
  const std::uint64_t start = segments_.front()->base_offset();
  const std::uint64_t end = end_offset_locked();
  if (offset < start) {
    return Status::OutOfRange("fetch offset " + std::to_string(offset) +
                              " below log start " + std::to_string(start));
  }
  if (offset > end) {
    return Status::OutOfRange("fetch offset " + std::to_string(offset) +
                              " beyond end offset " + std::to_string(end));
  }
  std::vector<broker::ConsumedRecord> out;
  if (offset == end) return out;

  std::uint64_t bytes = 0;
  std::size_t seg_idx = segment_index_locked(offset);
  while (seg_idx < segments_.size() && out.size() < max_records) {
    const Segment& segment = *segments_[seg_idx];
    if (segment.record_count() == 0) break;  // empty active segment
    auto mapped = segment.mapping();
    if (!mapped.ok()) return mapped.status();
    const std::shared_ptr<MmapRegion>& region = mapped.value();
    const std::uint64_t from =
        out.empty() ? offset : segment.base_offset();
    auto pos = segment.position_of(from);
    if (!pos.ok()) return pos.status();
    std::uint64_t p = pos.value();
    std::uint64_t at = from;
    while (at < segment.end_offset() && out.size() < max_records) {
      FrameView frame;
      if (p >= region->size() ||
          parse_frame(region->data() + p, region->size() - p, &frame) !=
              FrameParse::kOk) {
        return Status::Internal("segment '" + segment.path() +
                                "' fetch walk hit invalid frame at byte " +
                                std::to_string(p));
      }
      const std::uint64_t wire = frame.key_len + frame.value_len +
                                 broker::kRecordWireOverheadBytes;
      // The first record always ships, even when it alone exceeds the
      // byte budget — a single oversized record must not stall a
      // consumer forever.
      if (!out.empty() && bytes + wire > max_bytes) {
        return out;
      }
      broker::ConsumedRecord cr;
      cr.offset = frame.offset;
      cr.broker_timestamp_ns = frame.broker_timestamp_ns;
      cr.record.key.assign(reinterpret_cast<const char*>(frame.key),
                           frame.key_len);
      cr.record.client_timestamp_ns = frame.client_timestamp_ns;
      // Zero-copy: the payload aliases the mapping, which stays alive via
      // the shared owner even after retention unlinks or remaps the file.
      cr.record.value =
          broker::Payload::view(region, frame.value, frame.value_len);
      bytes += wire;
      out.push_back(std::move(cr));
      p += frame.frame_bytes;
      ++at;
    }
    ++seg_idx;
  }
  return out;
}

std::uint64_t LogDir::start_offset() const {
  MutexLock lock(mutex_);
  return segments_.front()->base_offset();
}

std::uint64_t LogDir::end_offset() const {
  MutexLock lock(mutex_);
  return end_offset_locked();
}

std::uint64_t LogDir::synced_offset() const {
  MutexLock lock(mutex_);
  return writer_ ? writer_->synced_offset() : end_offset_locked();
}

std::uint64_t LogDir::record_count() const {
  MutexLock lock(mutex_);
  return end_offset_locked() - segments_.front()->base_offset();
}

std::uint64_t LogDir::byte_size() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& s : segments_) total += s->bytes();
  return total;
}

std::size_t LogDir::segment_count() const {
  MutexLock lock(mutex_);
  return segments_.size();
}

std::vector<SegmentInfo> LogDir::segments() const {
  MutexLock lock(mutex_);
  std::vector<SegmentInfo> out;
  out.reserve(segments_.size());
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = *segments_[i];
    SegmentInfo info;
    info.base_offset = s.base_offset();
    info.end_offset = s.end_offset();
    info.bytes = s.bytes();
    info.first_timestamp_ns = s.first_timestamp_ns();
    info.last_timestamp_ns = s.last_timestamp_ns();
    info.active = i + 1 == segments_.size();
    out.push_back(info);
  }
  return out;
}

std::uint64_t LogDir::offset_for_timestamp(std::uint64_t ts_ns) const {
  MutexLock lock(mutex_);
  // First segment whose last timestamp is >= ts (segments are
  // timestamp-ordered because appends are).
  std::size_t lo = 0, hi = segments_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (segments_[mid]->record_count() > 0 &&
        segments_[mid]->last_timestamp_ns() < ts_ns) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == segments_.size()) return end_offset_locked();
  auto found = segments_[lo]->offset_for_timestamp(ts_ns);
  if (!found.ok()) {
    PE_LOG_WARN("offset_for_timestamp: " << found.status().to_string());
    return end_offset_locked();
  }
  return found.value();
}

Status LogDir::truncate_suffix(std::uint64_t offset) {
  MutexLock lock(mutex_);
  if (closed_) return Status::FailedPrecondition("log dir closed (crashed)");
  if (offset >= end_offset_locked()) return Status::Ok();
  if (offset < segments_.front()->base_offset()) {
    return Status::OutOfRange(
        "truncate offset " + std::to_string(offset) + " below log start " +
        std::to_string(segments_.front()->base_offset()));
  }
  // The writer holds the active segment's fd; close it before unlinking
  // or resizing files (a fresh writer reopens the new tail below). From
  // here until that reopen the log has no writer: any early error return
  // must close the LogDir, or the next append/sync would dereference a
  // null writer_.
  if (writer_) writer_->close();
  writer_.reset();
  // (analysis can't follow the lambda; mutex_ is held for the whole call)
  auto fail_closed = [this](Status s) PE_NO_THREAD_SAFETY_ANALYSIS {
    closed_ = true;
    PE_LOG_ERROR("truncate_suffix failed mid-cut, closing log dir '"
                 << dir_ << "': " << s.to_string());
    return s;
  };

  std::error_code ec;
  while (!segments_.empty() && segments_.back()->base_offset() >= offset) {
    fs::remove(segments_.back()->path(), ec);
    segments_.pop_back();
  }
  if (segments_.empty()) {
    // Whole log discarded: recreate an empty active segment based at the
    // cut so the offset sequence resumes there (offsets are never reused).
    segments_.push_back(std::make_unique<Segment>(
        (fs::path(dir_) / segment_file_name(offset)).string(), offset,
        config_.index_interval_bytes));
  } else if (segments_.back()->end_offset() > offset) {
    // Boundary segment: cut the file at the first discarded frame and
    // rebuild the segment's metadata/index from the surviving prefix.
    Segment* tail = segments_.back().get();
    auto pos = tail->position_of(offset);
    if (!pos.ok()) return fail_closed(pos.status());
    fs::resize_file(tail->path(), pos.value(), ec);
    if (ec) {
      return fail_closed(Status::Internal("truncate '" + tail->path() +
                                          "': " + ec.message()));
    }
    auto rebuilt = std::make_unique<Segment>(tail->path(),
                                             tail->base_offset(),
                                             config_.index_interval_bytes);
    auto scanned = rebuilt->scan();
    if (!scanned.ok()) return fail_closed(scanned.status());
    segments_.back() = std::move(rebuilt);
  }

  auto writer = SegmentWriter::open(segments_.back().get());
  if (!writer.ok()) return fail_closed(writer.status());
  writer_ = std::move(writer).value();
  tel::MetricsRegistry::global().counter("storage.suffix_truncations").add();
  return sync_locked();  // the cut itself must survive a crash
}

std::size_t LogDir::apply_retention(std::uint64_t max_records,
                                    std::uint64_t max_bytes,
                                    std::uint64_t min_timestamp_ns) {
  MutexLock lock(mutex_);
  std::size_t dropped = 0;
  std::uint64_t total_records =
      end_offset_locked() - segments_.front()->base_offset();
  std::uint64_t total_bytes = 0;
  for (const auto& s : segments_) total_bytes += s->bytes();

  while (segments_.size() > 1) {
    const Segment& oldest = *segments_.front();
    const bool over_records =
        max_records > 0 &&
        total_records - oldest.record_count() >= max_records;
    const bool over_bytes =
        max_bytes > 0 && total_bytes - oldest.bytes() >= max_bytes;
    const bool expired = min_timestamp_ns > 0 &&
                         oldest.last_timestamp_ns() < min_timestamp_ns;
    if (!over_records && !over_bytes && !expired) break;
    total_records -= oldest.record_count();
    total_bytes -= oldest.bytes();
    std::error_code ec;
    fs::remove(oldest.path(), ec);  // mapped views outlive the unlink
    if (ec) {
      PE_LOG_WARN("retention: remove '" << oldest.path()
                                        << "': " << ec.message());
    }
    segments_.erase(segments_.begin());
    dropped += 1;
  }
  if (dropped > 0) {
    tel::MetricsRegistry::global()
        .counter("storage.segments_dropped")
        .add(dropped);
  }
  return dropped;
}

void LogDir::simulate_power_loss(double keep_fraction) {
  stop_flusher();
  MutexLock lock(mutex_);
  if (closed_) return;
  closed_ = true;
  if (writer_) {
    if (auto s = writer_->truncate_unsynced(keep_fraction); !s.ok()) {
      PE_LOG_WARN("simulate_power_loss: " << s.to_string());
    }
    writer_.reset();
  }
}

}  // namespace pe::storage
