// LogDir: a directory of commit-log segments — the durable backing store
// for broker partitions and parameter-server snapshots.
//
// open() scans the segments in offset order, verifies every CRC32C frame,
// truncates the torn tail (and deletes any segments made unreachable by a
// mid-log corruption), and resumes the offset sequence exactly where the
// crash left it. Appends go to the active (last) segment and roll to a
// new file at segment_max_bytes. Fetches below the caller's in-memory
// window are served from mmap-backed segments as zero-copy
// broker::Payload views. Retention removes whole segments, never parts
// of one.
//
// Sync is group-committed: under kEverySync, concurrent appenders do not
// serialize one fsync each — the first becomes the sync leader, releases
// the mutex around the fsync, and every appender whose bytes that fsync
// covered returns on it (Kafka-style group commit). Appenders keep
// writing while a sync is in flight and queue up behind the next one.
//
// Thread-safe. The internal mutex ranks below the broker's partition-log
// and coordinator locks so it can be taken while those are held.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "broker/record.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/segment.h"
#include "storage/segment_writer.h"
#include "storage/storage_config.h"

namespace pe::storage {

/// One record of a batched append, with the broker timestamp it must be
/// framed with (replication preserves the leader's per-record stamps; a
/// fresh produce stamps the whole batch with one now). The pointed-at
/// record must stay alive for the duration of the append_batch call.
struct TimestampedRecord {
  const broker::Record* record = nullptr;
  std::uint64_t broker_timestamp_ns = 0;
};

class LogDir {
 public:
  /// Opens (creating directories as needed) and recovers `dir`. `report`,
  /// when non-null, receives what the recovery scan found. Recovery time
  /// lands in the "storage.recovery_ms" histogram.
  static Result<std::unique_ptr<LogDir>> open(std::string dir,
                                              StorageConfig config,
                                              RecoveryReport* report =
                                                  nullptr);

  /// Clean shutdown: final sync + close (unless the log was crashed).
  ~LogDir();

  LogDir(const LogDir&) = delete;
  LogDir& operator=(const LogDir&) = delete;

  /// Appends one record at the next offset and returns that offset. The
  /// record is durable per the flush policy when this returns. Fails
  /// without consuming an offset: on error the log ends exactly where it
  /// ended before the call.
  Result<std::uint64_t> append(const broker::Record& record,
                               std::uint64_t broker_timestamp_ns);

  /// Appends a whole batch under one lock acquisition: frames are encoded
  /// into a single pooled write buffer per segment chunk, written with
  /// one write() call, indexed with one bookkeeping walk, and covered by
  /// at most one policy sync for the entire batch. Returns the offset of
  /// the first appended record (end_offset() for an empty batch).
  ///
  /// On failure the durably-appended prefix of the batch stays in the log
  /// (end_offset() tells how far it got); the failing record and
  /// everything after it are not appended. A batch occupies a dense
  /// offset range when batches are externally serialized (the broker's
  /// partition lock does); direct concurrent appenders can interleave
  /// only at segment-roll boundaries.
  Result<std::uint64_t> append_batch(
      const std::vector<TimestampedRecord>& records);

  /// Forces an fsync of the active segment (group-committed: concurrent
  /// callers share one fsync when it covers them).
  Status sync();

  /// Records with offset >= `offset`, bounded by max_records/max_bytes
  /// (wire-size accounting; the first record always counts even when it
  /// alone exceeds max_bytes). Non-blocking: returns what is on disk.
  /// Payload values are zero-copy views into the segment mappings.
  Result<std::vector<broker::ConsumedRecord>> fetch(
      std::uint64_t offset, std::size_t max_records,
      std::uint64_t max_bytes) const;

  std::uint64_t start_offset() const;
  std::uint64_t end_offset() const;
  /// Offsets below this are power-loss durable (fsynced).
  std::uint64_t synced_offset() const;
  std::uint64_t record_count() const;
  /// Valid on-disk bytes across all segments.
  std::uint64_t byte_size() const;
  std::size_t segment_count() const;
  std::vector<SegmentInfo> segments() const;

  /// First offset with broker timestamp >= ts_ns (end_offset() when all
  /// retained records are older). Binary search over segments + sparse
  /// per-segment index; empty segments (a fresh log, or an active segment
  /// right after a boundary truncation) are skipped.
  std::uint64_t offset_for_timestamp(std::uint64_t ts_ns) const;

  /// Discards every record with offset >= `offset` (replication divergence
  /// repair: a deposed leader truncates its un-replicated suffix before
  /// catching up from the new leader). Whole segments past the cut are
  /// deleted, the boundary segment is truncated at the exact frame, and
  /// the next append resumes at `offset`. No-op when `offset` is at/past
  /// the end; fails when `offset` lies below the log start (those records
  /// were already retained away).
  Status truncate_suffix(std::uint64_t offset);

  /// Kafka-style whole-segment retention. The oldest segment is dropped
  /// while (a) the log without it still holds >= max_records records /
  /// >= max_bytes bytes, or (b) every record in it is older than
  /// min_timestamp_ns. Zero disables a bound. The active segment is never
  /// dropped. Returns how many segments were removed.
  std::size_t apply_retention(std::uint64_t max_records,
                              std::uint64_t max_bytes,
                              std::uint64_t min_timestamp_ns);

  /// Power-loss simulation: the synced prefix survives, `keep_fraction`
  /// of the unsynced tail bytes survive (possibly ending mid-frame), the
  /// rest is gone. The LogDir refuses all writes afterwards; reopen the
  /// directory to recover.
  void simulate_power_loss(double keep_fraction);

  /// Test hook: the next `n` append/append_batch calls fail with a
  /// transient UNAVAILABLE before writing any bytes — models a disk that
  /// rejects writes. A batched append consumes one injected failure for
  /// the whole call.
  void inject_append_failures(std::uint64_t n);

  const std::string& dir() const { return dir_; }
  const StorageConfig& config() const { return config_; }

 private:
  LogDir(std::string dir, StorageConfig config);

  Status recover_locked(RecoveryReport* report) PE_REQUIRES(mutex_);
  /// May release and re-acquire `lock` while waiting for an in-flight
  /// group sync to finish; re-checks the roll race and closed_ after.
  Status roll_locked(UniqueLock& lock) PE_REQUIRES(mutex_);
  /// Group-commit sync: returns once a sync covering the active segment's
  /// current bytes has completed. The leader fsyncs with the mutex
  /// released; waiters piggyback. Releases and re-acquires `lock`.
  Status group_sync_locked(UniqueLock& lock) PE_REQUIRES(mutex_);
  /// The at-most-one policy sync for an append/append_batch call.
  Status policy_sync_locked(UniqueLock& lock) PE_REQUIRES(mutex_);
  /// Blocks until no group sync is in flight. Required before any writer_
  /// mutation (roll, truncate, power loss, close): the leader fsyncs
  /// through the writer with the mutex released.
  void wait_sync_idle_locked(UniqueLock& lock) PE_REQUIRES(mutex_);
  std::uint64_t end_offset_locked() const PE_REQUIRES(mutex_);
  /// Index of the segment containing `offset` (segments are sorted).
  std::size_t segment_index_locked(std::uint64_t offset) const
      PE_REQUIRES(mutex_);
  void stop_flusher();

  const std::string dir_;
  const StorageConfig config_;
  // Level 4 in the broker lock domain: legally acquired under the broker
  // registry (1), a partition log (2), or the group coordinator (3).
  mutable Mutex mutex_{"storage.log_dir", lock_rank(kLockDomainBroker, 4)};
  mutable CondVar flusher_cv_;
  /// Signaled when an in-flight group sync finishes (leader done).
  mutable CondVar sync_cv_;
  std::vector<std::unique_ptr<Segment>> segments_ PE_GUARDED_BY(mutex_);
  std::unique_ptr<SegmentWriter> writer_ PE_GUARDED_BY(mutex_);
  bool closed_ PE_GUARDED_BY(mutex_) = false;
  bool stop_flusher_ PE_GUARDED_BY(mutex_) = false;
  /// True while a sync leader is fsyncing with the mutex released.
  bool sync_in_flight_ PE_GUARDED_BY(mutex_) = false;
  std::uint64_t inject_append_failures_ PE_GUARDED_BY(mutex_) = 0;
  std::thread flusher_;
};

}  // namespace pe::storage
