// Append side of the active segment: frames records onto the file with
// immediate write() (so readers can always map appended data) and applies
// the configured fsync policy. One SegmentWriter exists per LogDir at a
// time; LogDir serializes all calls under its own mutex — except
// sync_file_only(), which LogDir's group-commit leader calls with the
// mutex released (the begin_sync/sync_file_only/note_synced split below).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "broker/record.h"
#include "common/status.h"
#include "storage/segment.h"

namespace pe::storage {

/// Placement of one encoded frame inside a batch write buffer, so a
/// batched append can run one write() and then replay the per-record
/// segment bookkeeping.
struct FrameMeta {
  std::uint64_t offset = 0;
  std::uint64_t broker_timestamp_ns = 0;
  /// Byte position of the frame within the batch buffer.
  std::uint64_t buf_pos = 0;
  std::uint64_t frame_bytes = 0;
};

class SegmentWriter {
 public:
  /// Snapshot of the append marks at the moment a sync started. Taken
  /// under the LogDir lock; applied (note_synced) under the lock after
  /// the fsync ran outside it. The sync covers at least these marks —
  /// bytes appended while the fsync was in flight stay dirty.
  struct SyncMark {
    std::uint64_t bytes = 0;
    std::uint64_t offset = 0;
    std::uint64_t appended_records_total = 0;
  };

  /// Opens (creating if needed) the segment's file for appending. The file
  /// is first truncated to the segment's valid byte count — recovery has
  /// already decided where durable data ends — and fsynced once so the
  /// recovered prefix is stably on disk.
  static Result<std::unique_ptr<SegmentWriter>> open(Segment* segment);

  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Frames and writes one record at `offset`. The bytes reach the OS
  /// before this returns; they reach stable storage per the LogDir flush
  /// policy. On a failed or short write the file is restored to the last
  /// valid frame boundary, so the segment never carries a partial frame
  /// ahead of its metadata.
  Status append(const broker::Record& record, std::uint64_t offset,
                std::uint64_t broker_timestamp_ns);

  /// Batched append: `buf` holds `frames.size()` pre-encoded frames laid
  /// out per `frames`. One write() call, then the per-frame bookkeeping.
  /// Same tail-restore guarantee as append() on failure: either every
  /// frame in the buffer is on file, or none are.
  Status append_encoded(const Bytes& buf,
                        const std::vector<FrameMeta>& frames);

  /// fsync. Records the latency in the "storage.fsync_us" histogram,
  /// bumps "storage.fsyncs", and advances the synced marks. Composes
  /// begin_sync + sync_file_only + note_synced for callers that hold the
  /// LogDir lock across the whole thing (close, roll).
  Status sync();

  /// Group-commit split of sync(): capture the marks this sync will cover
  /// (call under the LogDir lock)...
  SyncMark begin_sync() const;
  /// ...run the fsync itself — touches only the fd, safe with the LogDir
  /// lock released as long as the writer is not mutated concurrently
  /// (LogDir guarantees that via its sync-in-flight gate)...
  Status sync_file_only();
  /// ...and publish the covered marks (under the lock again). Records
  /// appended while the fsync ran remain dirty.
  void note_synced(const SyncMark& mark);

  /// Offset up to which (exclusive) records are power-loss durable.
  std::uint64_t synced_offset() const { return synced_offset_; }
  std::uint64_t synced_bytes() const { return synced_bytes_; }
  /// Records appended since the last sync.
  std::uint64_t dirty_records() const {
    return appended_records_ - synced_records_;
  }

  /// Power-loss simulation: keeps the synced prefix plus `keep_fraction`
  /// of the unsynced tail bytes (possibly cutting a frame in half — that
  /// is the point), truncates the file there, and closes WITHOUT syncing.
  /// The writer is unusable afterwards.
  Status truncate_unsynced(double keep_fraction);

  /// Clean close: final sync, then close the fd.
  void close();

 private:
  explicit SegmentWriter(Segment* segment) : segment_(segment) {}

  Status write_all(const std::uint8_t* data, std::size_t size);
  /// After a failed/short write: cut the file back to the segment's valid
  /// byte count and reposition at the end, so the next append starts at a
  /// frame boundary. Poisons the writer (closes the fd) when even the
  /// restore fails — appends after that fail loudly instead of
  /// interleaving garbage.
  void restore_tail();

  Segment* segment_;
  int fd_ = -1;
  std::uint64_t synced_bytes_ = 0;
  std::uint64_t synced_offset_ = 0;
  /// Monotone counters; dirty_records() is their difference. Cumulative
  /// (rather than a resettable dirty count) so a group-commit sync can
  /// publish exactly what it covered via SyncMark.
  std::uint64_t appended_records_ = 0;
  std::uint64_t synced_records_ = 0;
  Bytes frame_buf_;
};

}  // namespace pe::storage
