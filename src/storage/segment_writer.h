// Append side of the active segment: frames records onto the file with
// immediate write() (so readers can always map appended data) and applies
// the configured fsync policy. One SegmentWriter exists per LogDir at a
// time; LogDir serializes all calls under its own mutex.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "broker/record.h"
#include "common/status.h"
#include "storage/segment.h"

namespace pe::storage {

class SegmentWriter {
 public:
  /// Opens (creating if needed) the segment's file for appending. The file
  /// is first truncated to the segment's valid byte count — recovery has
  /// already decided where durable data ends — and fsynced once so the
  /// recovered prefix is stably on disk.
  static Result<std::unique_ptr<SegmentWriter>> open(Segment* segment);

  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Frames and writes one record at `offset`. The bytes reach the OS
  /// before this returns; they reach stable storage per the LogDir flush
  /// policy.
  Status append(const broker::Record& record, std::uint64_t offset,
                std::uint64_t broker_timestamp_ns);

  /// fsync. Records the latency in the "storage.fsync_us" histogram and
  /// advances the synced marks.
  Status sync();

  /// Offset up to which (exclusive) records are power-loss durable.
  std::uint64_t synced_offset() const { return synced_offset_; }
  std::uint64_t synced_bytes() const { return synced_bytes_; }
  /// Records appended since the last sync.
  std::uint64_t dirty_records() const { return dirty_records_; }

  /// Power-loss simulation: keeps the synced prefix plus `keep_fraction`
  /// of the unsynced tail bytes (possibly cutting a frame in half — that
  /// is the point), truncates the file there, and closes WITHOUT syncing.
  /// The writer is unusable afterwards.
  Status truncate_unsynced(double keep_fraction);

  /// Clean close: final sync, then close the fd.
  void close();

 private:
  explicit SegmentWriter(Segment* segment) : segment_(segment) {}

  Status write_all(const std::uint8_t* data, std::size_t size);

  Segment* segment_;
  int fd_ = -1;
  std::uint64_t synced_bytes_ = 0;
  std::uint64_t synced_offset_ = 0;
  std::uint64_t dirty_records_ = 0;
  Bytes frame_buf_;
};

}  // namespace pe::storage
