// One segment of the commit log: a fixed-max-size file of CRC32C-framed
// records plus a sparse in-memory offset index rebuilt on open.
//
// On-disk frame layout (little endian):
//   u32 body_len | u32 crc32c(body) | body
//   body: u64 offset | u64 broker_ts_ns | u64 client_ts_ns |
//         u32 key_len | key | u32 value_len | value
//
// Segments are named "<base_offset padded to 20 digits>.seg" so a
// lexicographic directory listing is offset order. A Segment instance is
// NOT internally synchronized — LogDir serializes all access under its
// own mutex.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "broker/record.h"
#include "common/status.h"

namespace pe::storage {

inline constexpr std::uint32_t kFrameHeaderBytes = 8;   // len + crc
inline constexpr std::uint32_t kFrameBodyFixedBytes = 32;  // 3*u64 + 2*u32
/// Sanity bound used by the recovery scanner: a length field above this is
/// treated as a torn/corrupt frame, not an allocation request.
inline constexpr std::uint32_t kMaxFrameBodyBytes = 256u << 20;

/// A parsed frame pointing into a mapped or in-memory buffer.
struct FrameView {
  std::uint64_t offset = 0;
  std::uint64_t broker_timestamp_ns = 0;
  std::uint64_t client_timestamp_ns = 0;
  const std::uint8_t* key = nullptr;
  std::uint32_t key_len = 0;
  const std::uint8_t* value = nullptr;
  std::uint32_t value_len = 0;
  /// Total frame size including the 8-byte header.
  std::uint64_t frame_bytes = 0;
};

/// Appends one framed record to `out`.
void encode_frame(Bytes& out, std::uint64_t offset,
                  std::uint64_t broker_timestamp_ns,
                  const broker::Record& record);

enum class FrameParse {
  kOk,
  kTorn,  // truncated header/body or CRC mismatch: valid data ends here
};

/// Parses the frame at `p` (with `avail` readable bytes). kTorn means the
/// bytes from `p` on are not a complete valid frame — the recovery
/// contract is to truncate the file at that position.
FrameParse parse_frame(const std::uint8_t* p, std::uint64_t avail,
                       FrameView* out);

/// Shared read-only mapping of a segment file. Payload views alias this
/// region, so it stays alive (and the pages stay readable) until the last
/// consumer drops its record — including after the file is unlinked by
/// retention or the segment is remapped at a larger size.
class MmapRegion {
 public:
  /// Maps the first `length` bytes of `path` read-only.
  static Result<std::shared_ptr<MmapRegion>> map(const std::string& path,
                                                 std::uint64_t length);
  ~MmapRegion();

  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::uint64_t size() const { return size_; }

 private:
  MmapRegion(const std::uint8_t* data, std::uint64_t size)
      : data_(data), size_(size) {}

  const std::uint8_t* data_;
  std::uint64_t size_;
};

struct IndexEntry {
  std::uint64_t offset = 0;
  std::uint64_t file_pos = 0;
  std::uint64_t broker_timestamp_ns = 0;
};

class Segment {
 public:
  struct ScanResult {
    std::uint64_t valid_bytes = 0;
    std::uint64_t next_offset = 0;
    /// Trailing bytes after the last valid frame (torn tail to truncate).
    std::uint64_t torn_bytes = 0;
  };

  Segment(std::string path, std::uint64_t base_offset,
          std::uint64_t index_interval_bytes);

  /// Walks every frame in the file, verifying lengths, CRCs, and offset
  /// density from base_offset, and rebuilds the sparse index. Metadata
  /// reflects only the valid prefix afterwards. Fails (INTERNAL) when the
  /// first frame is already invalid but the file is non-empty is NOT an
  /// error — that is an all-torn segment with zero records.
  Result<ScanResult> scan();

  /// Write path bookkeeping for a frame appended at `file_pos`.
  void note_append(std::uint64_t offset, std::uint64_t broker_timestamp_ns,
                   std::uint64_t file_pos, std::uint64_t frame_bytes);

  /// Mapping covering at least the current valid bytes (cached; remapped
  /// when the segment has grown past the cached region).
  Result<std::shared_ptr<MmapRegion>> mapping() const;

  /// File position of the frame holding `offset`; walks forward from the
  /// nearest preceding index entry. Precondition: offset in
  /// [base_offset, end_offset).
  Result<std::uint64_t> position_of(std::uint64_t offset) const;

  /// First offset whose broker timestamp is >= ts_ns, or end_offset()
  /// when every record in the segment is older.
  Result<std::uint64_t> offset_for_timestamp(std::uint64_t ts_ns) const;

  const std::string& path() const { return path_; }
  std::uint64_t base_offset() const { return base_offset_; }
  std::uint64_t end_offset() const { return next_offset_; }
  std::uint64_t record_count() const { return next_offset_ - base_offset_; }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t first_timestamp_ns() const { return first_timestamp_ns_; }
  std::uint64_t last_timestamp_ns() const { return last_timestamp_ns_; }
  const std::vector<IndexEntry>& index() const { return index_; }

 private:
  void maybe_index(std::uint64_t offset, std::uint64_t broker_timestamp_ns,
                   std::uint64_t file_pos);

  const std::string path_;
  const std::uint64_t base_offset_;
  const std::uint64_t index_interval_bytes_;
  std::uint64_t next_offset_;
  std::uint64_t bytes_ = 0;
  std::uint64_t first_timestamp_ns_ = 0;
  std::uint64_t last_timestamp_ns_ = 0;
  std::uint64_t last_index_pos_ = 0;
  bool index_has_entry_ = false;
  std::vector<IndexEntry> index_;
  mutable std::shared_ptr<MmapRegion> map_;
};

/// Formats a segment file name: 20-digit zero-padded base offset + ".seg".
std::string segment_file_name(std::uint64_t base_offset);

/// Parses a segment file name; false when `name` is not one.
bool parse_segment_file_name(const std::string& name,
                             std::uint64_t* base_offset);

}  // namespace pe::storage
