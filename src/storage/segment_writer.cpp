#include "storage/segment_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"
#include "telemetry/metrics.h"

namespace pe::storage {

Result<std::unique_ptr<SegmentWriter>> SegmentWriter::open(Segment* segment) {
  std::unique_ptr<SegmentWriter> writer(new SegmentWriter(segment));
  const int fd = ::open(segment->path().c_str(),
                        O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("open '" + segment->path() +
                            "': " + std::strerror(errno));
  }
  writer->fd_ = fd;
  // Recovery decided that the valid prefix ends at segment->bytes(): cut
  // any torn tail off and pin the prefix to stable storage.
  if (::ftruncate(fd, static_cast<off_t>(segment->bytes())) != 0) {
    return Status::Internal("ftruncate '" + segment->path() +
                            "': " + std::strerror(errno));
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    return Status::Internal("lseek '" + segment->path() +
                            "': " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    return Status::Internal("fsync '" + segment->path() +
                            "': " + std::strerror(errno));
  }
  writer->synced_bytes_ = segment->bytes();
  writer->synced_offset_ = segment->end_offset();
  return writer;
}

SegmentWriter::~SegmentWriter() { close(); }

Status SegmentWriter::write_all(const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd_, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write '" + segment_->path() +
                              "': " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

void SegmentWriter::restore_tail() {
  // A failed write may have landed a partial frame past the last valid
  // one; the segment metadata still ends at the last full frame, so cut
  // the file back there. Without this the *next* append would write after
  // the garbage and permanently desynchronize file and metadata.
  if (::ftruncate(fd_, static_cast<off_t>(segment_->bytes())) == 0 &&
      ::lseek(fd_, 0, SEEK_END) >= 0) {
    return;
  }
  PE_LOG_ERROR("segment '" << segment_->path()
                           << "': cannot restore tail after failed write ("
                           << std::strerror(errno)
                           << "), closing the writer");
  ::close(fd_);
  fd_ = -1;
}

Status SegmentWriter::append(const broker::Record& record,
                             std::uint64_t offset,
                             std::uint64_t broker_timestamp_ns) {
  if (fd_ < 0) return Status::FailedPrecondition("segment writer closed");
  frame_buf_.clear();
  encode_frame(frame_buf_, offset, broker_timestamp_ns, record);
  const std::uint64_t pos = segment_->bytes();
  if (auto s = write_all(frame_buf_.data(), frame_buf_.size()); !s.ok()) {
    restore_tail();
    return s;
  }
  segment_->note_append(offset, broker_timestamp_ns, pos,
                        frame_buf_.size());
  appended_records_ += 1;
  return Status::Ok();
}

Status SegmentWriter::append_encoded(const Bytes& buf,
                                     const std::vector<FrameMeta>& frames) {
  if (fd_ < 0) return Status::FailedPrecondition("segment writer closed");
  if (frames.empty()) return Status::Ok();
  const std::uint64_t base = segment_->bytes();
  if (auto s = write_all(buf.data(), buf.size()); !s.ok()) {
    restore_tail();
    return s;
  }
  for (const FrameMeta& f : frames) {
    segment_->note_append(f.offset, f.broker_timestamp_ns,
                          base + f.buf_pos, f.frame_bytes);
  }
  appended_records_ += frames.size();
  return Status::Ok();
}

SegmentWriter::SyncMark SegmentWriter::begin_sync() const {
  SyncMark mark;
  mark.bytes = segment_->bytes();
  mark.offset = segment_->end_offset();
  mark.appended_records_total = appended_records_;
  return mark;
}

Status SegmentWriter::sync_file_only() {
  if (fd_ < 0) return Status::FailedPrecondition("segment writer closed");
  const auto t0 = Clock::now();
  // fdatasync, not fsync: POSIX requires it to flush all metadata needed
  // to retrieve the written data — which includes the file size for
  // appends — while skipping timestamp-only inode updates. Same crash
  // guarantee for a commit log, measurably cheaper per group commit.
  if (::fdatasync(fd_) != 0) {
    return Status::Internal("fdatasync '" + segment_->path() +
                            "': " + std::strerror(errno));
  }
  const double us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          Clock::now() - t0)
          .count();
  auto& metrics = tel::MetricsRegistry::global();
  metrics.histogram("storage.fsync_us").record(us);
  metrics.counter("storage.fsyncs").add();
  return Status::Ok();
}

void SegmentWriter::note_synced(const SyncMark& mark) {
  if (mark.bytes > synced_bytes_) synced_bytes_ = mark.bytes;
  if (mark.offset > synced_offset_) synced_offset_ = mark.offset;
  if (mark.appended_records_total > synced_records_) {
    synced_records_ = mark.appended_records_total;
  }
}

Status SegmentWriter::sync() {
  if (fd_ < 0) return Status::FailedPrecondition("segment writer closed");
  if (dirty_records() == 0 && synced_bytes_ == segment_->bytes()) {
    return Status::Ok();
  }
  const SyncMark mark = begin_sync();
  if (auto s = sync_file_only(); !s.ok()) return s;
  note_synced(mark);
  return Status::Ok();
}

Status SegmentWriter::truncate_unsynced(double keep_fraction) {
  if (fd_ < 0) return Status::FailedPrecondition("segment writer closed");
  if (keep_fraction < 0.0) keep_fraction = 0.0;
  if (keep_fraction > 1.0) keep_fraction = 1.0;
  const std::uint64_t dirty_bytes = segment_->bytes() - synced_bytes_;
  const std::uint64_t keep =
      synced_bytes_ +
      static_cast<std::uint64_t>(static_cast<double>(dirty_bytes) *
                                 keep_fraction);
  Status result = Status::Ok();
  if (::ftruncate(fd_, static_cast<off_t>(keep)) != 0) {
    result = Status::Internal("ftruncate '" + segment_->path() +
                              "': " + std::strerror(errno));
  }
  ::close(fd_);  // deliberately no fsync: this models the power cut
  fd_ = -1;
  return result;
}

void SegmentWriter::close() {
  if (fd_ < 0) return;
  (void)sync();  // clean shutdown persists everything (Kafka does too)
  ::close(fd_);
  fd_ = -1;
}

}  // namespace pe::storage
