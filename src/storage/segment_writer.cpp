#include "storage/segment_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/clock.h"
#include "telemetry/metrics.h"

namespace pe::storage {

Result<std::unique_ptr<SegmentWriter>> SegmentWriter::open(Segment* segment) {
  std::unique_ptr<SegmentWriter> writer(new SegmentWriter(segment));
  const int fd = ::open(segment->path().c_str(),
                        O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("open '" + segment->path() +
                            "': " + std::strerror(errno));
  }
  writer->fd_ = fd;
  // Recovery decided that the valid prefix ends at segment->bytes(): cut
  // any torn tail off and pin the prefix to stable storage.
  if (::ftruncate(fd, static_cast<off_t>(segment->bytes())) != 0) {
    return Status::Internal("ftruncate '" + segment->path() +
                            "': " + std::strerror(errno));
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    return Status::Internal("lseek '" + segment->path() +
                            "': " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    return Status::Internal("fsync '" + segment->path() +
                            "': " + std::strerror(errno));
  }
  writer->synced_bytes_ = segment->bytes();
  writer->synced_offset_ = segment->end_offset();
  return writer;
}

SegmentWriter::~SegmentWriter() { close(); }

Status SegmentWriter::write_all(const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd_, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write '" + segment_->path() +
                              "': " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status SegmentWriter::append(const broker::Record& record,
                             std::uint64_t offset,
                             std::uint64_t broker_timestamp_ns) {
  if (fd_ < 0) return Status::FailedPrecondition("segment writer closed");
  frame_buf_.clear();
  encode_frame(frame_buf_, offset, broker_timestamp_ns, record);
  const std::uint64_t pos = segment_->bytes();
  if (auto s = write_all(frame_buf_.data(), frame_buf_.size()); !s.ok()) {
    return s;
  }
  segment_->note_append(offset, broker_timestamp_ns, pos,
                        frame_buf_.size());
  dirty_records_ += 1;
  return Status::Ok();
}

Status SegmentWriter::sync() {
  if (fd_ < 0) return Status::FailedPrecondition("segment writer closed");
  if (dirty_records_ == 0 && synced_bytes_ == segment_->bytes()) {
    return Status::Ok();
  }
  const auto t0 = Clock::now();
  if (::fsync(fd_) != 0) {
    return Status::Internal("fsync '" + segment_->path() +
                            "': " + std::strerror(errno));
  }
  const double us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          Clock::now() - t0)
          .count();
  tel::MetricsRegistry::global().histogram("storage.fsync_us").record(us);
  synced_bytes_ = segment_->bytes();
  synced_offset_ = segment_->end_offset();
  dirty_records_ = 0;
  return Status::Ok();
}

Status SegmentWriter::truncate_unsynced(double keep_fraction) {
  if (fd_ < 0) return Status::FailedPrecondition("segment writer closed");
  if (keep_fraction < 0.0) keep_fraction = 0.0;
  if (keep_fraction > 1.0) keep_fraction = 1.0;
  const std::uint64_t dirty_bytes = segment_->bytes() - synced_bytes_;
  const std::uint64_t keep =
      synced_bytes_ +
      static_cast<std::uint64_t>(static_cast<double>(dirty_bytes) *
                                 keep_fraction);
  Status result = Status::Ok();
  if (::ftruncate(fd_, static_cast<off_t>(keep)) != 0) {
    result = Status::Internal("ftruncate '" + segment_->path() +
                              "': " + std::strerror(errno));
  }
  ::close(fd_);  // deliberately no fsync: this models the power cut
  fd_ = -1;
  return result;
}

void SegmentWriter::close() {
  if (fd_ < 0) return;
  (void)sync();  // clean shutdown persists everything (Kafka does too)
  ::close(fd_);
  fd_ = -1;
}

}  // namespace pe::storage
