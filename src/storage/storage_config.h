// Configuration and report types for the durable commit-log engine.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/clock.h"

namespace pe::storage {

/// When appended records reach stable storage (fsync). What each policy
/// guarantees after a power-loss-style crash is specified in DESIGN.md §9.
enum class FlushPolicy {
  kNever,          // never fsync explicitly; the OS decides
  kEveryNRecords,  // fsync after every flush_every_n appended records
  kIntervalMs,     // background flusher fsyncs every flush_interval
  kEverySync,      // fsync before every append returns (Kafka acks=all)
};

constexpr const char* to_string(FlushPolicy p) {
  switch (p) {
    case FlushPolicy::kNever: return "never";
    case FlushPolicy::kEveryNRecords: return "every-n-records";
    case FlushPolicy::kIntervalMs: return "interval-ms";
    case FlushPolicy::kEverySync: return "every-sync";
  }
  return "?";
}

struct StorageConfig {
  /// A segment rolls once its file exceeds this many bytes.
  std::uint64_t segment_max_bytes = 8ull << 20;  // 8 MiB
  FlushPolicy flush_policy = FlushPolicy::kEveryNRecords;
  /// For kEveryNRecords.
  std::uint64_t flush_every_n = 256;
  /// For kIntervalMs (wall time, not emulated: fsync cost is real).
  Duration flush_interval = std::chrono::milliseconds(10);
  /// A sparse index entry is kept roughly every this many file bytes.
  std::uint64_t index_interval_bytes = 4096;
};

/// What LogDir::open found (and fixed) while scanning a directory.
struct RecoveryReport {
  std::size_t segments_scanned = 0;
  std::uint64_t records_recovered = 0;
  std::uint64_t bytes_recovered = 0;
  /// Bytes cut off the torn tail (partial/corrupt trailing frames).
  std::uint64_t torn_bytes_truncated = 0;
  /// Segments deleted because they were unreadable or discontiguous.
  std::size_t segments_deleted = 0;
  std::uint64_t start_offset = 0;
  std::uint64_t next_offset = 0;
  Duration elapsed = Duration::zero();

  std::string to_string() const {
    return "segments=" + std::to_string(segments_scanned) +
           " records=" + std::to_string(records_recovered) +
           " bytes=" + std::to_string(bytes_recovered) +
           " torn_bytes=" + std::to_string(torn_bytes_truncated) +
           " deleted=" + std::to_string(segments_deleted) + " offsets=[" +
           std::to_string(start_offset) + "," +
           std::to_string(next_offset) + ")";
  }
};

/// Per-segment metadata snapshot (diagnostics and retention decisions).
struct SegmentInfo {
  std::uint64_t base_offset = 0;
  std::uint64_t end_offset = 0;  // exclusive
  std::uint64_t bytes = 0;       // valid (CRC-checked) file bytes
  std::uint64_t first_timestamp_ns = 0;
  std::uint64_t last_timestamp_ns = 0;
  bool active = false;

  std::uint64_t record_count() const { return end_offset - base_offset; }
};

}  // namespace pe::storage
