#include "storage/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/crc32c.h"

namespace pe::storage {

namespace {

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian hosts only (the repo's supported targets)
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

void encode_frame(Bytes& out, std::uint64_t offset,
                  std::uint64_t broker_timestamp_ns,
                  const broker::Record& record) {
  const std::uint32_t body_len =
      kFrameBodyFixedBytes + static_cast<std::uint32_t>(record.key.size()) +
      static_cast<std::uint32_t>(record.value.size());
  out.reserve(out.size() + kFrameHeaderBytes + body_len);
  put_u32(out, body_len);
  const std::size_t crc_pos = out.size();
  put_u32(out, 0);  // patched below
  const std::size_t body_pos = out.size();
  put_u64(out, offset);
  put_u64(out, broker_timestamp_ns);
  put_u64(out, record.client_timestamp_ns);
  put_u32(out, static_cast<std::uint32_t>(record.key.size()));
  out.insert(out.end(), record.key.begin(), record.key.end());
  put_u32(out, static_cast<std::uint32_t>(record.value.size()));
  out.insert(out.end(), record.value.begin(), record.value.end());
  const std::uint32_t crc = crc32c(out.data() + body_pos, body_len);
  std::memcpy(out.data() + crc_pos, &crc, sizeof(crc));
}

FrameParse parse_frame(const std::uint8_t* p, std::uint64_t avail,
                       FrameView* out) {
  if (avail < kFrameHeaderBytes) return FrameParse::kTorn;
  const std::uint32_t body_len = read_u32(p);
  if (body_len < kFrameBodyFixedBytes || body_len > kMaxFrameBodyBytes) {
    return FrameParse::kTorn;
  }
  if (avail - kFrameHeaderBytes < body_len) return FrameParse::kTorn;
  const std::uint32_t want_crc = read_u32(p + 4);
  const std::uint8_t* body = p + kFrameHeaderBytes;
  if (crc32c(body, body_len) != want_crc) return FrameParse::kTorn;

  FrameView v;
  v.offset = read_u64(body);
  v.broker_timestamp_ns = read_u64(body + 8);
  v.client_timestamp_ns = read_u64(body + 16);
  v.key_len = read_u32(body + 24);
  // Internal length consistency (CRC already vouches for the bytes, but a
  // frame written by a buggy encoder must not read out of bounds).
  if (static_cast<std::uint64_t>(v.key_len) + kFrameBodyFixedBytes >
      body_len) {
    return FrameParse::kTorn;
  }
  v.key = body + 28;
  v.value_len = read_u32(body + 28 + v.key_len);
  if (kFrameBodyFixedBytes + static_cast<std::uint64_t>(v.key_len) +
          v.value_len !=
      body_len) {
    return FrameParse::kTorn;
  }
  v.value = body + 32 + v.key_len;
  v.frame_bytes = kFrameHeaderBytes + static_cast<std::uint64_t>(body_len);
  *out = v;
  return FrameParse::kOk;
}

Result<std::shared_ptr<MmapRegion>> MmapRegion::map(const std::string& path,
                                                    std::uint64_t length) {
  if (length == 0) {
    // Zero-length mappings are invalid; model an empty file as an empty
    // region with no backing pages.
    return std::shared_ptr<MmapRegion>(new MmapRegion(nullptr, 0));
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("open '" + path +
                            "' for mmap: " + std::strerror(errno));
  }
  void* addr = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the file
  if (addr == MAP_FAILED) {
    return Status::Internal("mmap '" + path + "' (" + std::to_string(length) +
                            " bytes): " + std::strerror(errno));
  }
  return std::shared_ptr<MmapRegion>(
      new MmapRegion(static_cast<const std::uint8_t*>(addr), length));
}

MmapRegion::~MmapRegion() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

Segment::Segment(std::string path, std::uint64_t base_offset,
                 std::uint64_t index_interval_bytes)
    : path_(std::move(path)),
      base_offset_(base_offset),
      index_interval_bytes_(index_interval_bytes == 0 ? 4096
                                                      : index_interval_bytes),
      next_offset_(base_offset) {}

void Segment::maybe_index(std::uint64_t offset,
                          std::uint64_t broker_timestamp_ns,
                          std::uint64_t file_pos) {
  if (!index_has_entry_ ||
      file_pos - last_index_pos_ >= index_interval_bytes_) {
    index_.push_back(IndexEntry{offset, file_pos, broker_timestamp_ns});
    last_index_pos_ = file_pos;
    index_has_entry_ = true;
  }
}

void Segment::note_append(std::uint64_t offset,
                          std::uint64_t broker_timestamp_ns,
                          std::uint64_t file_pos,
                          std::uint64_t frame_bytes) {
  maybe_index(offset, broker_timestamp_ns, file_pos);
  if (next_offset_ == base_offset_) first_timestamp_ns_ = broker_timestamp_ns;
  last_timestamp_ns_ = broker_timestamp_ns;
  next_offset_ = offset + 1;
  bytes_ = file_pos + frame_bytes;
}

Result<Segment::ScanResult> Segment::scan() {
  struct ::stat st {};
  if (::stat(path_.c_str(), &st) != 0) {
    return Status::Internal("stat '" + path_ + "': " + std::strerror(errno));
  }
  const auto file_bytes = static_cast<std::uint64_t>(st.st_size);

  index_.clear();
  index_has_entry_ = false;
  last_index_pos_ = 0;
  next_offset_ = base_offset_;
  bytes_ = 0;
  first_timestamp_ns_ = 0;
  last_timestamp_ns_ = 0;
  map_.reset();

  ScanResult result;
  if (file_bytes == 0) return result;

  auto mapped = MmapRegion::map(path_, file_bytes);
  if (!mapped.ok()) return mapped.status();
  const std::uint8_t* data = mapped.value()->data();

  std::uint64_t pos = 0;
  std::uint64_t expect = base_offset_;
  while (pos < file_bytes) {
    FrameView frame;
    if (parse_frame(data + pos, file_bytes - pos, &frame) !=
        FrameParse::kOk) {
      break;  // torn tail: valid data ends at `pos`
    }
    if (frame.offset != expect) break;  // density violated: treat as torn
    note_append(frame.offset, frame.broker_timestamp_ns, pos,
                frame.frame_bytes);
    pos += frame.frame_bytes;
    expect = frame.offset + 1;
  }

  result.valid_bytes = pos;
  result.next_offset = next_offset_;
  result.torn_bytes = file_bytes - pos;
  return result;
}

Result<std::shared_ptr<MmapRegion>> Segment::mapping() const {
  if (!map_ || map_->size() < bytes_) {
    auto mapped = MmapRegion::map(path_, bytes_);
    if (!mapped.ok()) return mapped.status();
    map_ = std::move(mapped).value();
  }
  return map_;
}

Result<std::uint64_t> Segment::position_of(std::uint64_t offset) const {
  if (offset < base_offset_ || offset >= next_offset_) {
    return Status::OutOfRange("offset " + std::to_string(offset) +
                              " outside segment [" +
                              std::to_string(base_offset_) + "," +
                              std::to_string(next_offset_) + ")");
  }
  // Nearest index entry at or before `offset` (entries are offset-sorted).
  std::size_t lo = 0, hi = index_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (index_[mid].offset <= offset) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // lo = first entry with offset > target; entry lo-1 is the floor. The
  // first index entry is always the segment base, so lo >= 1 here.
  std::uint64_t pos = index_[lo - 1].file_pos;
  std::uint64_t at = index_[lo - 1].offset;

  auto mapped = mapping();
  if (!mapped.ok()) return mapped.status();
  const auto& region = *mapped.value();
  while (at < offset) {
    FrameView frame;
    if (pos >= region.size() ||
        parse_frame(region.data() + pos, region.size() - pos, &frame) !=
            FrameParse::kOk) {
      return Status::Internal("segment '" + path_ +
                              "' index walk hit invalid frame at byte " +
                              std::to_string(pos));
    }
    pos += frame.frame_bytes;
    ++at;
  }
  return pos;
}

Result<std::uint64_t> Segment::offset_for_timestamp(
    std::uint64_t ts_ns) const {
  if (record_count() == 0 || last_timestamp_ns_ < ts_ns) {
    return next_offset_;
  }
  // Index entries are timestamp-monotone (append order): binary search to
  // the last entry strictly older than ts, then walk frames.
  std::size_t lo = 0, hi = index_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (index_[mid].broker_timestamp_ns < ts_ns) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // Entry lo (if any) already satisfies ts >= ts_ns; the answer is between
  // entry lo-1 and entry lo. Walk from the floor entry.
  std::uint64_t pos = lo == 0 ? index_.front().file_pos
                              : index_[lo - 1].file_pos;
  std::uint64_t at = lo == 0 ? index_.front().offset : index_[lo - 1].offset;

  auto mapped = mapping();
  if (!mapped.ok()) return mapped.status();
  const auto& region = *mapped.value();
  while (at < next_offset_) {
    FrameView frame;
    if (pos >= region.size() ||
        parse_frame(region.data() + pos, region.size() - pos, &frame) !=
            FrameParse::kOk) {
      return Status::Internal("segment '" + path_ +
                              "' timestamp walk hit invalid frame at byte " +
                              std::to_string(pos));
    }
    if (frame.broker_timestamp_ns >= ts_ns) return at;
    pos += frame.frame_bytes;
    ++at;
  }
  return next_offset_;
}

std::string segment_file_name(std::uint64_t base_offset) {
  std::string digits = std::to_string(base_offset);
  return std::string(20 - digits.size(), '0') + digits + ".seg";
}

bool parse_segment_file_name(const std::string& name,
                             std::uint64_t* base_offset) {
  if (name.size() != 24 || name.substr(20) != ".seg") return false;
  std::uint64_t value = 0;
  for (char c : name.substr(0, 20)) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *base_offset = value;
  return true;
}

}  // namespace pe::storage
