// Pilot: a placeholder job owning resources on one site.
//
// Lifecycle (paper [10], P* model): NEW -> SUBMITTED -> ACTIVE -> DONE /
// FAILED / CANCELED. Once ACTIVE, a compute pilot exposes a Cluster (its
// managed task executor, the Dask analogue) and a broker pilot exposes a
// Broker instance. Applications never talk to raw resources — only to
// pilots.
#pragma once

#include <memory>
#include <string>

#include "broker/broker.h"
#include "common/mutex.h"
#include "common/status.h"
#include "resource/backend.h"
#include "resource/pilot_description.h"
#include "taskexec/cluster.h"

namespace pe::res {

enum class PilotState {
  kNew,
  kSubmitted,
  kActive,
  kDone,
  kFailed,
  kCanceled,
};

constexpr const char* to_string(PilotState s) {
  switch (s) {
    case PilotState::kNew: return "new";
    case PilotState::kSubmitted: return "submitted";
    case PilotState::kActive: return "active";
    case PilotState::kDone: return "done";
    case PilotState::kFailed: return "failed";
    case PilotState::kCanceled: return "canceled";
  }
  return "?";
}

class Pilot {
 public:
  Pilot(std::string id, PilotDescription description);
  ~Pilot();

  Pilot(const Pilot&) = delete;
  Pilot& operator=(const Pilot&) = delete;

  const std::string& id() const { return id_; }
  const PilotDescription& description() const { return description_; }
  const net::SiteId& site() const { return description_.site; }

  PilotState state() const;

  /// Blocks until the pilot leaves SUBMITTED (ACTIVE or terminal); returns
  /// OK when ACTIVE was reached.
  Status wait_active() const;

  /// Blocks up to `timeout`; TIMEOUT status if still provisioning.
  Status wait_active_for(Duration timeout) const;

  /// The pilot-managed task executor. Null until ACTIVE; always null for
  /// broker pilots.
  std::shared_ptr<exec::Cluster> cluster() const;

  /// The pilot-managed broker. Null unless this is a BrokerService pilot.
  std::shared_ptr<broker::Broker> broker() const;

  /// Granted capacity (may differ from the request if the backend clamps).
  std::uint32_t granted_cores() const;
  double granted_memory_gb() const;

  /// Cancels the pilot: tears down its cluster/broker, state -> CANCELED.
  void cancel();

  /// Failure injection: an ACTIVE pilot abruptly loses its resources
  /// (spot VM preemption, device power loss). Cluster/broker are torn
  /// down, state -> FAILED; running tasks get their stop flags and end
  /// Unavailable. Applications observe this exactly like a real loss.
  Status inject_failure(std::string reason = "injected failure");

  // --- used by PilotManager during provisioning ---
  void mark_submitted();
  void mark_active(const ProvisionOutcome& outcome,
                   std::shared_ptr<exec::Cluster> cluster,
                   std::shared_ptr<broker::Broker> broker);
  void mark_failed(Status reason);
  Status failure_reason() const;

 private:
  const std::string id_;
  const PilotDescription description_;

  // Level 2 in the resource domain: PilotManager's monitor loop reads
  // pilot state while holding the manager lock (level 1); pilots never
  // call back into the manager.
  mutable Mutex mutex_{"res.pilot", lock_rank(kLockDomainResource, 2)};
  mutable CondVar state_cv_;
  PilotState state_ PE_GUARDED_BY(mutex_) = PilotState::kNew;
  ProvisionOutcome granted_ PE_GUARDED_BY(mutex_);
  Status failure_ PE_GUARDED_BY(mutex_);
  std::shared_ptr<exec::Cluster> cluster_ PE_GUARDED_BY(mutex_);
  std::shared_ptr<broker::Broker> broker_ PE_GUARDED_BY(mutex_);
};

using PilotPtr = std::shared_ptr<Pilot>;

}  // namespace pe::res
