// ResourceBackend: the provisioning plugin interface.
//
// A backend validates a PilotDescription against what its resource class
// can offer and reports the emulated provisioning delay (VM boot, SSH
// connect, batch queue wait). The PilotManager sleeps that delay (scaled)
// before flipping the pilot to ACTIVE — so experiments see realistic
// startup ordering without hard-coding sleeps in application code.
#pragma once

#include <memory>

#include "common/clock.h"
#include "common/status.h"
#include "resource/pilot_description.h"

namespace pe::res {

struct ProvisionOutcome {
  /// Emulated delay before the resource is usable.
  Duration startup_delay = Duration::zero();
  /// Capacity actually granted (backends may clamp requests).
  std::uint32_t cores = 0;
  double memory_gb = 0.0;
};

class ResourceBackend {
 public:
  virtual ~ResourceBackend() = default;

  virtual Backend kind() const = 0;

  /// Validates the request and computes the provisioning outcome.
  virtual Result<ProvisionOutcome> provision(
      const PilotDescription& description) = 0;
};

/// Factory for the built-in plugin set.
std::unique_ptr<ResourceBackend> make_backend(Backend kind);

}  // namespace pe::res
