// Built-in resource backends (plugins).
//
// Startup delays are coarse emulations of real provisioning behaviour:
// cloud VMs boot in tens of seconds, SSH connects in well under a second,
// HPC batch jobs wait in a queue. Delays are emulated time, so benchmarks
// running at time_scale > 1 provision quickly while keeping ordering
// realistic. Each backend also enforces class-specific capacity limits.
#include "resource/backend.h"

namespace pe::res {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

class CloudVmBackend final : public ResourceBackend {
 public:
  Backend kind() const override { return Backend::kCloudVm; }

  Result<ProvisionOutcome> provision(
      const PilotDescription& d) override {
    if (d.cores == 0) return Status::InvalidArgument("VM needs >= 1 core");
    if (d.cores > 96) {
      return Status::ResourceExhausted("no VM flavor with " +
                                       std::to_string(d.cores) + " cores");
    }
    ProvisionOutcome out;
    // VM boot: base plus a per-core component (larger flavors take longer
    // to schedule on the cloud side).
    out.startup_delay = seconds(20) + milliseconds(250) * d.cores;
    out.cores = d.cores;
    out.memory_gb = d.memory_gb;
    return out;
  }
};

class EdgeSshBackend final : public ResourceBackend {
 public:
  Backend kind() const override { return Backend::kEdgeSsh; }

  Result<ProvisionOutcome> provision(
      const PilotDescription& d) override {
    if (d.cores == 0) return Status::InvalidArgument("device needs >= 1 core");
    if (d.cores > 4 || d.memory_gb > 8.0) {
      return Status::ResourceExhausted(
          "edge devices are RasPi-class (<= 4 cores, <= 8 GB); requested " +
          d.to_string());
    }
    ProvisionOutcome out;
    out.startup_delay = milliseconds(800);  // SSH connect + agent bootstrap
    out.cores = d.cores;
    out.memory_gb = d.memory_gb;
    return out;
  }
};

class HpcBatchBackend final : public ResourceBackend {
 public:
  Backend kind() const override { return Backend::kHpcBatch; }

  Result<ProvisionOutcome> provision(
      const PilotDescription& d) override {
    if (d.cores == 0) return Status::InvalidArgument("job needs >= 1 core");
    ProvisionOutcome out;
    // Batch queue wait dominates; model it as proportional to request size
    // (bigger partitions wait longer), floor of one minute.
    out.startup_delay = seconds(60) + seconds(2) * d.cores;
    out.cores = d.cores;
    out.memory_gb = d.memory_gb;
    return out;
  }
};

class BrokerServiceBackend final : public ResourceBackend {
 public:
  Backend kind() const override { return Backend::kBrokerService; }

  Result<ProvisionOutcome> provision(
      const PilotDescription& d) override {
    if (d.cores == 0) return Status::InvalidArgument("broker needs >= 1 core");
    ProvisionOutcome out;
    // VM boot plus broker bring-up.
    out.startup_delay = seconds(25);
    out.cores = d.cores;
    out.memory_gb = d.memory_gb;
    return out;
  }
};

}  // namespace

std::unique_ptr<ResourceBackend> make_backend(Backend kind) {
  switch (kind) {
    case Backend::kCloudVm: return std::make_unique<CloudVmBackend>();
    case Backend::kEdgeSsh: return std::make_unique<EdgeSshBackend>();
    case Backend::kHpcBatch: return std::make_unique<HpcBatchBackend>();
    case Backend::kBrokerService:
      return std::make_unique<BrokerServiceBackend>();
  }
  return nullptr;
}

}  // namespace pe::res
