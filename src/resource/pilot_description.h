// PilotDescription: what an application asks the pilot system for.
//
// Mirrors the paper's step 1 ("allocating resources using the pilot
// abstraction"): a pilot can stand for a cloud VM, a small edge device
// reached via SSH, an HPC partition, or a managed broker service. The
// backend determines provisioning behaviour and capacity limits.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "common/config.h"
#include "network/site.h"

namespace pe::res {

/// Which plugin provisions the pilot (paper: plugin-based architecture).
enum class Backend {
  kCloudVm,        // OpenStack/AWS-style VM
  kEdgeSsh,        // small IoT device (RasPi class) via SSH
  kHpcBatch,       // job partition in an HPC queueing system
  kBrokerService,  // pilot-managed Kafka-like broker
};

constexpr const char* to_string(Backend b) {
  switch (b) {
    case Backend::kCloudVm: return "cloud-vm";
    case Backend::kEdgeSsh: return "edge-ssh";
    case Backend::kHpcBatch: return "hpc-batch";
    case Backend::kBrokerService: return "broker-service";
  }
  return "?";
}

struct PilotDescription {
  net::SiteId site;
  Backend backend = Backend::kCloudVm;
  std::uint32_t cores = 1;
  double memory_gb = 4.0;
  /// HPC only: queue/partition name.
  std::string queue;
  /// Requested walltime (informational; pilots here run until cancelled).
  std::chrono::seconds walltime = std::chrono::hours(1);
  /// Free-form labels (e.g. "gpu=true"); surfaced via Pilot::description().
  ConfigMap labels;

  std::string to_string() const {
    return std::string(res::to_string(backend)) + "@" + site + " (" +
           std::to_string(cores) + "c/" + std::to_string(memory_gb) + "GB)";
  }
};

/// Convenience VM flavors used throughout the paper's evaluation (§III).
struct Flavors {
  static PilotDescription make(net::SiteId site, Backend backend,
                               std::uint32_t cores, double memory_gb) {
    PilotDescription d;
    d.site = std::move(site);
    d.backend = backend;
    d.cores = cores;
    d.memory_gb = memory_gb;
    return d;
  }

  /// LRZ "medium": 4 cores / 18 GB.
  static PilotDescription lrz_medium(net::SiteId site = "lrz-eu") {
    return make(std::move(site), Backend::kCloudVm, 4, 18.0);
  }
  /// LRZ "large": 10 cores / 44 GB (used for all processing tasks).
  static PilotDescription lrz_large(net::SiteId site = "lrz-eu") {
    return make(std::move(site), Backend::kCloudVm, 10, 44.0);
  }
  /// Jetstream "medium": 6 cores / 16 GB.
  static PilotDescription jetstream_medium(net::SiteId site = "jetstream-us") {
    return make(std::move(site), Backend::kCloudVm, 6, 16.0);
  }
  /// Simulated edge device: 1 core / 4 GB, "comparable to a current
  /// Raspberry Pi" (paper §III-1).
  static PilotDescription raspi(net::SiteId site, std::uint32_t cores = 1) {
    return make(std::move(site), Backend::kEdgeSsh, cores, 4.0);
  }
};

}  // namespace pe::res
