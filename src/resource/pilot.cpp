#include "resource/pilot.h"

#include "common/logging.h"

namespace pe::res {

Pilot::Pilot(std::string id, PilotDescription description)
    : id_(std::move(id)), description_(std::move(description)) {}

Pilot::~Pilot() { cancel(); }

PilotState Pilot::state() const {
  MutexLock lock(mutex_);
  return state_;
}

Status Pilot::wait_active() const {
  UniqueLock lock(mutex_);
  state_cv_.wait(lock, [this]() PE_NO_THREAD_SAFETY_ANALYSIS {
    return state_ != PilotState::kNew && state_ != PilotState::kSubmitted;
  });
  if (state_ == PilotState::kActive) return Status::Ok();
  if (state_ == PilotState::kFailed) return failure_;
  return Status::Cancelled("pilot " + id_ + " canceled");
}

Status Pilot::wait_active_for(Duration timeout) const {
  // Same inconsistency as ParameterServer::watch had: pilot startup
  // delays are emulated (scaled) sleeps, so the provisioning deadline
  // must scale identically or fast experiments time out spuriously.
  const auto wall_timeout =
      std::chrono::duration_cast<Duration>(timeout / Clock::time_scale());
  UniqueLock lock(mutex_);
  const bool done = state_cv_.wait_for(
      lock, wall_timeout, [this]() PE_NO_THREAD_SAFETY_ANALYSIS {
        return state_ != PilotState::kNew && state_ != PilotState::kSubmitted;
      });
  if (!done) return Status::Timeout("pilot " + id_ + " still provisioning");
  if (state_ == PilotState::kActive) return Status::Ok();
  if (state_ == PilotState::kFailed) return failure_;
  return Status::Cancelled("pilot " + id_ + " canceled");
}

std::shared_ptr<exec::Cluster> Pilot::cluster() const {
  MutexLock lock(mutex_);
  return cluster_;
}

std::shared_ptr<broker::Broker> Pilot::broker() const {
  MutexLock lock(mutex_);
  return broker_;
}

std::uint32_t Pilot::granted_cores() const {
  MutexLock lock(mutex_);
  return granted_.cores;
}

double Pilot::granted_memory_gb() const {
  MutexLock lock(mutex_);
  return granted_.memory_gb;
}

void Pilot::cancel() {
  std::shared_ptr<exec::Cluster> cluster;
  {
    MutexLock lock(mutex_);
    if (state_ == PilotState::kDone || state_ == PilotState::kFailed ||
        state_ == PilotState::kCanceled) {
      return;
    }
    state_ = PilotState::kCanceled;
    cluster = std::move(cluster_);
    broker_.reset();
  }
  state_cv_.notify_all();
  if (cluster) cluster->shutdown();
  PE_LOG_INFO("pilot " << id_ << " canceled");
}

Status Pilot::inject_failure(std::string reason) {
  std::shared_ptr<exec::Cluster> cluster;
  {
    MutexLock lock(mutex_);
    if (state_ != PilotState::kActive) {
      return Status::FailedPrecondition("pilot " + id_ + " not active");
    }
    state_ = PilotState::kFailed;
    failure_ = Status::Unavailable("pilot " + id_ + " lost: " + reason);
    cluster = std::move(cluster_);
    broker_.reset();
  }
  state_cv_.notify_all();
  if (cluster) cluster->shutdown();
  PE_LOG_WARN("pilot " << id_ << " failure injected: " << reason);
  return Status::Ok();
}

void Pilot::mark_submitted() {
  {
    MutexLock lock(mutex_);
    if (state_ != PilotState::kNew) return;
    state_ = PilotState::kSubmitted;
  }
  state_cv_.notify_all();
}

void Pilot::mark_active(const ProvisionOutcome& outcome,
                        std::shared_ptr<exec::Cluster> cluster,
                        std::shared_ptr<broker::Broker> broker) {
  {
    MutexLock lock(mutex_);
    if (state_ != PilotState::kSubmitted) return;  // canceled meanwhile
    state_ = PilotState::kActive;
    granted_ = outcome;
    cluster_ = std::move(cluster);
    broker_ = std::move(broker);
  }
  state_cv_.notify_all();
  PE_LOG_INFO("pilot " << id_ << " active: " << description_.to_string());
}

void Pilot::mark_failed(Status reason) {
  {
    MutexLock lock(mutex_);
    if (state_ != PilotState::kSubmitted && state_ != PilotState::kNew) {
      return;
    }
    state_ = PilotState::kFailed;
    failure_ = std::move(reason);
  }
  state_cv_.notify_all();
  PE_LOG_WARN("pilot " << id_ << " failed: " << failure_.to_string());
}

Status Pilot::failure_reason() const {
  MutexLock lock(mutex_);
  return failure_;
}

}  // namespace pe::res
