// PilotManager: submits pilot descriptions against the fabric and drives
// provisioning asynchronously through the backend plugins.
//
// This is the entry point of the pilot framework (paper Fig. 1, step 1):
//   auto pilot = pm.submit(Flavors::lrz_large());
//   pilot->wait_active();
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "network/fabric.h"
#include "resource/pilot.h"

namespace pe::res {

struct PilotManagerOptions {
  /// Multiplier applied to backend startup delays. 1.0 emulates realistic
  /// provisioning (cloud VM ~20 s); the default keeps interactive runs and
  /// CI fast while preserving relative ordering between backends.
  double startup_delay_factor = 0.01;
};

class PilotManager {
 public:
  explicit PilotManager(std::shared_ptr<net::Fabric> fabric,
                        PilotManagerOptions options = {});
  ~PilotManager();

  PilotManager(const PilotManager&) = delete;
  PilotManager& operator=(const PilotManager&) = delete;

  /// Validates the description (site must exist on the fabric, backend
  /// must be known) and starts asynchronous provisioning. The returned
  /// pilot is in SUBMITTED state.
  Result<PilotPtr> submit(PilotDescription description);

  /// Blocks until every submitted pilot reached ACTIVE or a terminal
  /// state; returns the first failure (if any).
  Status wait_all_active();

  Result<PilotPtr> pilot(const std::string& id) const;
  std::vector<PilotPtr> pilots() const;

  /// Cancels all pilots and joins provisioning threads.
  void shutdown();

  const std::shared_ptr<net::Fabric>& fabric() const { return fabric_; }

 private:
  void provision(PilotPtr pilot);

  std::shared_ptr<net::Fabric> fabric_;
  const PilotManagerOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, PilotPtr> pilots_;
  std::vector<std::thread> provisioners_;
  bool shutdown_ = false;
};

}  // namespace pe::res
