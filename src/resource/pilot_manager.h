// PilotManager: submits pilot descriptions against the fabric and drives
// provisioning asynchronously through the backend plugins.
//
// This is the entry point of the pilot framework (paper Fig. 1, step 1):
//   auto pilot = pm.submit(Flavors::lrz_large());
//   pilot->wait_active();
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "network/fabric.h"
#include "resource/pilot.h"

namespace pe::res {

struct PilotManagerOptions {
  /// Multiplier applied to backend startup delays. 1.0 emulates realistic
  /// provisioning (cloud VM ~20 s); the default keeps interactive runs and
  /// CI fast while preserving relative ordering between backends.
  double startup_delay_factor = 0.01;

  /// When true, a heartbeat monitor watches submitted pilots and replaces
  /// any that reach FAILED (preemption, provisioning error) by
  /// resubmitting their PilotDescription, up to
  /// `max_reprovision_attempts` per pilot lineage with capped exponential
  /// backoff + jitter between attempts.
  bool auto_reprovision = false;
  /// How often the monitor scans pilot states (emulated duration — the
  /// actual sleep is divided by Clock::time_scale()).
  Duration heartbeat_interval = std::chrono::milliseconds(20);
  /// Replacement budget per original pilot (its whole lineage shares it).
  std::uint32_t max_reprovision_attempts = 3;
  /// Base backoff before attempt n sleeps min(cap, base * 2^(n-1)) plus
  /// up to 20% seeded jitter (emulated durations).
  Duration reprovision_backoff = std::chrono::milliseconds(50);
  Duration reprovision_backoff_cap = std::chrono::seconds(2);
  std::uint64_t reprovision_seed = 42;
};

/// Fired after a failed pilot's replacement reached ACTIVE. Callbacks run
/// on the monitor thread; keep them short and do not call back into the
/// manager's shutdown.
using ReplacementCallback =
    std::function<void(const PilotPtr& failed, const PilotPtr& replacement)>;

class PilotManager {
 public:
  explicit PilotManager(std::shared_ptr<net::Fabric> fabric,
                        PilotManagerOptions options = {});
  ~PilotManager();

  PilotManager(const PilotManager&) = delete;
  PilotManager& operator=(const PilotManager&) = delete;

  /// Validates the description (site must exist on the fabric, backend
  /// must be known) and starts asynchronous provisioning. The returned
  /// pilot is in SUBMITTED state.
  Result<PilotPtr> submit(PilotDescription description);

  /// Blocks until every submitted pilot reached ACTIVE or a terminal
  /// state; returns the first failure (if any).
  Status wait_all_active();

  Result<PilotPtr> pilot(const std::string& id) const;
  std::vector<PilotPtr> pilots() const;

  /// Registers a callback fired when a replacement pilot becomes ACTIVE
  /// (requires options.auto_reprovision). Returns a token for
  /// unsubscribe_replacements.
  std::uint64_t subscribe_replacements(ReplacementCallback cb);
  void unsubscribe_replacements(std::uint64_t token);

  /// Replacements performed so far (successful re-provisions).
  std::uint64_t reprovision_count() const;

  /// Cancels all pilots and joins provisioning threads.
  void shutdown();

  const std::shared_ptr<net::Fabric>& fabric() const { return fabric_; }

 private:
  void provision(PilotPtr pilot);
  void monitor_loop();
  /// Attempts to replace one failed pilot; returns the replacement (ACTIVE)
  /// or null when the lineage budget is exhausted / shutdown started.
  PilotPtr replace_pilot(const PilotPtr& failed);
  bool sleep_scaled_interruptible(Duration emulated);

  std::shared_ptr<net::Fabric> fabric_;
  const PilotManagerOptions options_;
  // Top of the resource domain: the monitor loop reads Pilot state
  // (level 2) while holding this; replacement callbacks run with it
  // released.
  mutable Mutex mutex_{"res.pilot_manager",
                       lock_rank(kLockDomainResource, 1)};
  std::map<std::string, PilotPtr> pilots_ PE_GUARDED_BY(mutex_);
  std::vector<std::thread> provisioners_ PE_GUARDED_BY(mutex_);
  bool shutdown_ PE_GUARDED_BY(mutex_) = false;

  // --- recovery state (guarded by mutex_) ---
  std::thread monitor_;
  std::set<std::string> handled_failures_ PE_GUARDED_BY(mutex_);
  std::map<std::string, std::string> lineage_
      PE_GUARDED_BY(mutex_);  // pilot id -> lineage root id
  std::map<std::string, std::uint32_t> lineage_attempts_
      PE_GUARDED_BY(mutex_);  // root -> attempts
  std::map<std::uint64_t, ReplacementCallback> replacement_subs_
      PE_GUARDED_BY(mutex_);
  std::uint64_t next_sub_token_ PE_GUARDED_BY(mutex_) = 1;
  std::uint64_t reprovisions_ PE_GUARDED_BY(mutex_) = 0;
};

}  // namespace pe::res
