#include "resource/pilot_manager.h"

#include <algorithm>
#include <cmath>

#include "common/clock.h"
#include "common/ids.h"
#include "common/logging.h"
#include "common/rng.h"
#include "telemetry/metrics.h"

namespace pe::res {

PilotManager::PilotManager(std::shared_ptr<net::Fabric> fabric,
                           PilotManagerOptions options)
    : fabric_(std::move(fabric)), options_(options) {
  if (options_.auto_reprovision) {
    monitor_ = std::thread([this] { monitor_loop(); });
  }
}

PilotManager::~PilotManager() { shutdown(); }

Result<PilotPtr> PilotManager::submit(PilotDescription description) {
  if (!fabric_->has_site(description.site)) {
    return Status::NotFound("unknown site '" + description.site +
                            "' — register it on the fabric first");
  }
  if (make_backend(description.backend) == nullptr) {
    return Status::InvalidArgument("unknown backend");
  }
  auto pilot = std::make_shared<Pilot>(next_pilot_id(), std::move(description));
  pilot->mark_submitted();
  {
    MutexLock lock(mutex_);
    if (shutdown_) return Status::FailedPrecondition("manager shut down");
    pilots_[pilot->id()] = pilot;
    provisioners_.emplace_back([this, pilot] { provision(pilot); });
  }
  return pilot;
}

void PilotManager::provision(PilotPtr pilot) {
  auto backend = make_backend(pilot->description().backend);
  auto outcome = backend->provision(pilot->description());
  if (!outcome.ok()) {
    pilot->mark_failed(outcome.status());
    return;
  }
  // Sleep out the provisioning delay in slices so cancellation (or
  // manager shutdown) interrupts promptly instead of blocking for the
  // whole emulated boot time.
  const auto delay = std::chrono::duration_cast<Duration>(
      outcome.value().startup_delay * options_.startup_delay_factor);
  const auto scaled_deadline =
      Clock::now() + std::chrono::duration_cast<Duration>(
                         delay / Clock::time_scale());
  while (Clock::now() < scaled_deadline) {
    if (pilot->state() != PilotState::kSubmitted) return;  // canceled
    const auto remaining = scaled_deadline - Clock::now();
    Clock::sleep_exact(std::min<Duration>(
        remaining, std::chrono::milliseconds(10)));
  }

  if (pilot->state() != PilotState::kSubmitted) return;  // canceled

  std::shared_ptr<exec::Cluster> cluster;
  std::shared_ptr<broker::Broker> broker;
  if (pilot->description().backend == Backend::kBrokerService) {
    broker = std::make_shared<broker::Broker>(pilot->site(),
                                              pilot->id() + "-broker");
  } else {
    cluster = std::make_shared<exec::Cluster>(
        pilot->site(), outcome.value().cores, outcome.value().memory_gb,
        pilot->id());
  }
  pilot->mark_active(outcome.value(), std::move(cluster), std::move(broker));
}

Status PilotManager::wait_all_active() {
  std::vector<PilotPtr> snapshot = pilots();
  Status first_failure = Status::Ok();
  for (const auto& p : snapshot) {
    if (auto s = p->wait_active(); !s.ok() && first_failure.ok()) {
      first_failure = s;
    }
  }
  return first_failure;
}

std::uint64_t PilotManager::subscribe_replacements(ReplacementCallback cb) {
  MutexLock lock(mutex_);
  const std::uint64_t token = next_sub_token_++;
  replacement_subs_[token] = std::move(cb);
  return token;
}

void PilotManager::unsubscribe_replacements(std::uint64_t token) {
  MutexLock lock(mutex_);
  replacement_subs_.erase(token);
}

std::uint64_t PilotManager::reprovision_count() const {
  MutexLock lock(mutex_);
  return reprovisions_;
}

bool PilotManager::sleep_scaled_interruptible(Duration emulated) {
  const auto actual = std::chrono::duration_cast<Duration>(
      emulated / Clock::time_scale());
  const auto deadline = Clock::now() + actual;
  while (Clock::now() < deadline) {
    {
      MutexLock lock(mutex_);
      if (shutdown_) return false;
    }
    const auto remaining = deadline - Clock::now();
    Clock::sleep_exact(std::min<Duration>(
        remaining, std::chrono::milliseconds(5)));
  }
  MutexLock lock(mutex_);
  return !shutdown_;
}

void PilotManager::monitor_loop() {
  while (sleep_scaled_interruptible(options_.heartbeat_interval)) {
    std::vector<PilotPtr> failed;
    {
      MutexLock lock(mutex_);
      for (const auto& [id, p] : pilots_) {
        if (p->state() == PilotState::kFailed &&
            handled_failures_.count(id) == 0) {
          handled_failures_.insert(id);
          failed.push_back(p);
        }
      }
    }
    for (const auto& p : failed) {
      tel::MetricsRegistry::global().counter("recovery.failures_detected")
          .add();
      const auto detect_time = Clock::now();
      PilotPtr replacement = replace_pilot(p);
      if (!replacement) continue;
      const double mttr_ms =
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    detect_time)
              .count() *
          Clock::time_scale();
      tel::MetricsRegistry::global().histogram("recovery.pilot_mttr_ms")
          .record(mttr_ms);
      tel::MetricsRegistry::global().counter("recovery.pilots_replaced")
          .add();
      std::vector<ReplacementCallback> subs;
      {
        MutexLock lock(mutex_);
        reprovisions_ += 1;
        subs.reserve(replacement_subs_.size());
        for (const auto& [_, cb] : replacement_subs_) subs.push_back(cb);
      }
      for (const auto& cb : subs) cb(p, replacement);
    }
  }
}

PilotPtr PilotManager::replace_pilot(const PilotPtr& failed) {
  std::string root;
  std::uint32_t attempt = 0;
  {
    MutexLock lock(mutex_);
    if (shutdown_) return nullptr;
    auto lit = lineage_.find(failed->id());
    root = (lit == lineage_.end()) ? failed->id() : lit->second;
    attempt = ++lineage_attempts_[root];
    if (attempt > options_.max_reprovision_attempts) {
      PE_LOG_WARN("pilot " << failed->id() << " (lineage " << root
                           << ") exhausted " <<
                           options_.max_reprovision_attempts
                           << " replacement attempts; giving up");
      return nullptr;
    }
  }
  // Capped exponential backoff with seeded jitter: attempt n sleeps
  // min(cap, base * 2^(n-1)) * (1 + U[0, 0.2)).
  const double factor = std::pow(2.0, static_cast<double>(attempt - 1));
  auto backoff = std::chrono::duration_cast<Duration>(
      options_.reprovision_backoff * factor);
  backoff = std::min(backoff, std::chrono::duration_cast<Duration>(
                                  options_.reprovision_backoff_cap));
  Rng jitter_rng(options_.reprovision_seed +
                 std::hash<std::string>{}(root) + attempt);
  backoff = std::chrono::duration_cast<Duration>(
      backoff * (1.0 + jitter_rng.uniform(0.0, 0.2)));
  if (!sleep_scaled_interruptible(backoff)) return nullptr;

  auto resubmitted = submit(failed->description());
  if (!resubmitted.ok()) {
    PE_LOG_WARN("re-provisioning for failed pilot " << failed->id()
                                                    << " rejected: "
                                                    << resubmitted.status()
                                                           .to_string());
    return nullptr;
  }
  PilotPtr replacement = resubmitted.value();
  {
    MutexLock lock(mutex_);
    lineage_[replacement->id()] = root;
  }
  PE_LOG_INFO("re-provisioning pilot " << failed->id() << " as "
                                       << replacement->id() << " (attempt "
                                       << attempt << "/"
                                       << options_.max_reprovision_attempts
                                       << ")");
  // Wait for the replacement to leave SUBMITTED, in slices so shutdown
  // interrupts. A replacement that itself FAILs is picked up by the next
  // monitor scan and charged to the same lineage budget.
  while (true) {
    {
      MutexLock lock(mutex_);
      if (shutdown_) return nullptr;
    }
    const Status s =
        replacement->wait_active_for(std::chrono::milliseconds(10));
    if (s.ok()) return replacement;
    if (s.code() != StatusCode::kTimeout) return nullptr;
  }
}

Result<PilotPtr> PilotManager::pilot(const std::string& id) const {
  MutexLock lock(mutex_);
  auto it = pilots_.find(id);
  if (it == pilots_.end()) return Status::NotFound("unknown pilot " + id);
  return it->second;
}

std::vector<PilotPtr> PilotManager::pilots() const {
  MutexLock lock(mutex_);
  std::vector<PilotPtr> out;
  out.reserve(pilots_.size());
  for (const auto& [_, p] : pilots_) out.push_back(p);
  return out;
}

void PilotManager::shutdown() {
  std::vector<std::thread> provisioners;
  std::vector<PilotPtr> pilots_snapshot;
  {
    MutexLock lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    provisioners = std::move(provisioners_);
    for (const auto& [_, p] : pilots_) pilots_snapshot.push_back(p);
  }
  // Join the monitor first so no new replacements are submitted while we
  // cancel; its sleep slices observe shutdown_ promptly.
  if (monitor_.joinable()) monitor_.join();
  for (const auto& p : pilots_snapshot) p->cancel();
  for (auto& t : provisioners) {
    if (t.joinable()) t.join();
  }
}

}  // namespace pe::res
