#include "resource/pilot_manager.h"

#include "common/clock.h"
#include "common/ids.h"
#include "common/logging.h"

namespace pe::res {

PilotManager::PilotManager(std::shared_ptr<net::Fabric> fabric,
                           PilotManagerOptions options)
    : fabric_(std::move(fabric)), options_(options) {}

PilotManager::~PilotManager() { shutdown(); }

Result<PilotPtr> PilotManager::submit(PilotDescription description) {
  if (!fabric_->has_site(description.site)) {
    return Status::NotFound("unknown site '" + description.site +
                            "' — register it on the fabric first");
  }
  if (make_backend(description.backend) == nullptr) {
    return Status::InvalidArgument("unknown backend");
  }
  auto pilot = std::make_shared<Pilot>(next_pilot_id(), std::move(description));
  pilot->mark_submitted();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return Status::FailedPrecondition("manager shut down");
    pilots_[pilot->id()] = pilot;
    provisioners_.emplace_back([this, pilot] { provision(pilot); });
  }
  return pilot;
}

void PilotManager::provision(PilotPtr pilot) {
  auto backend = make_backend(pilot->description().backend);
  auto outcome = backend->provision(pilot->description());
  if (!outcome.ok()) {
    pilot->mark_failed(outcome.status());
    return;
  }
  // Sleep out the provisioning delay in slices so cancellation (or
  // manager shutdown) interrupts promptly instead of blocking for the
  // whole emulated boot time.
  const auto delay = std::chrono::duration_cast<Duration>(
      outcome.value().startup_delay * options_.startup_delay_factor);
  const auto scaled_deadline =
      Clock::now() + std::chrono::duration_cast<Duration>(
                         delay / Clock::time_scale());
  while (Clock::now() < scaled_deadline) {
    if (pilot->state() != PilotState::kSubmitted) return;  // canceled
    const auto remaining = scaled_deadline - Clock::now();
    Clock::sleep_exact(std::min<Duration>(
        remaining, std::chrono::milliseconds(10)));
  }

  if (pilot->state() != PilotState::kSubmitted) return;  // canceled

  std::shared_ptr<exec::Cluster> cluster;
  std::shared_ptr<broker::Broker> broker;
  if (pilot->description().backend == Backend::kBrokerService) {
    broker = std::make_shared<broker::Broker>(pilot->site(),
                                              pilot->id() + "-broker");
  } else {
    cluster = std::make_shared<exec::Cluster>(
        pilot->site(), outcome.value().cores, outcome.value().memory_gb,
        pilot->id());
  }
  pilot->mark_active(outcome.value(), std::move(cluster), std::move(broker));
}

Status PilotManager::wait_all_active() {
  std::vector<PilotPtr> snapshot = pilots();
  Status first_failure = Status::Ok();
  for (const auto& p : snapshot) {
    if (auto s = p->wait_active(); !s.ok() && first_failure.ok()) {
      first_failure = s;
    }
  }
  return first_failure;
}

Result<PilotPtr> PilotManager::pilot(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = pilots_.find(id);
  if (it == pilots_.end()) return Status::NotFound("unknown pilot " + id);
  return it->second;
}

std::vector<PilotPtr> PilotManager::pilots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PilotPtr> out;
  out.reserve(pilots_.size());
  for (const auto& [_, p] : pilots_) out.push_back(p);
  return out;
}

void PilotManager::shutdown() {
  std::vector<std::thread> provisioners;
  std::vector<PilotPtr> pilots_snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    provisioners = std::move(provisioners_);
    for (const auto& [_, p] : pilots_) pilots_snapshot.push_back(p);
  }
  for (const auto& p : pilots_snapshot) p->cancel();
  for (auto& t : provisioners) {
    if (t.joinable()) t.join();
  }
}

}  // namespace pe::res
