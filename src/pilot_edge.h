// Umbrella header: the full Pilot-Edge public API.
//
// Typical application flow (mirrors the paper's Fig. 1):
//
//   auto fabric = pe::net::Fabric::make_paper_topology();
//   pe::res::PilotManager pm(fabric);
//   auto edge   = pm.submit(pe::res::Flavors::raspi("edge-us")).value();
//   auto cloud  = pm.submit(pe::res::Flavors::lrz_large()).value();
//   auto broker = pm.submit(pe::res::Flavors::make(
//       "lrz-eu", pe::res::Backend::kBrokerService, 4, 16.0)).value();
//
//   pe::core::EdgeToCloudPipeline pipeline(config);
//   pipeline.set_fabric(fabric)
//       .set_pilot_edge(edge)
//       .set_pilot_cloud_processing(cloud)
//       .set_pilot_cloud_broker(broker)
//       .set_produce_function(...)
//       .set_process_cloud_function(...);
//   auto report = pipeline.run();
#pragma once

#include "common/clock.h"
#include "common/config.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/status.h"
#include "network/fabric.h"
#include "broker/broker.h"
#include "broker/consumer.h"
#include "broker/producer.h"
#include "taskexec/cluster.h"
#include "resource/pilot_manager.h"
#include "paramserver/client.h"
#include "data/codec.h"
#include "data/generator.h"
#include "ml/autoencoder.h"
#include "ml/factory.h"
#include "ml/isolation_forest.h"
#include "ml/kmeans.h"
#include "ml/outlier.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "core/functions.h"
#include "core/pipeline.h"
#include "core/placement.h"
