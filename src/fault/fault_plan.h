// Declarative fault plans for the chaos engine.
//
// A FaultPlan is a list of timestamped fault events ("at t=250ms preempt
// pilot p-3", "at t=1s partition the WAN link for 400ms") that the
// ChaosEngine executes against a running topology. Plans are plain data:
// they can be built programmatically, logged, and replayed — with a fixed
// seed the resolved timeline is bit-identical across runs, which is what
// makes failure experiments reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace pe::fault {

enum class FaultKind {
  kPreemptPilot,             // Pilot::inject_failure (spot VM preemption)
  kCrashWorker,              // Cluster::crash_worker (process/device death)
  kDegradeLink,              // scale link latency/bandwidth
  kPartitionLink,            // link transfers fail UNAVAILABLE
  kRestoreLink,              // clear any link fault
  kDropBrokerPartition,      // partition leader lost: produce/fetch fail
  kRestoreBrokerPartition,   // partition back online
  kCrashBroker,              // durable broker: power-cut + recover from disk
                             // (cluster mode: kill one named member)
  kIsolateBroker,            // cluster member unreachable (network split)
  kRestoreBroker,            // cluster member back (recover + rejoin)
  kKillPeerProcess,          // SIGKILL a real peer OS process (target =
                             // decimal pid; transport smoke harness)
};

constexpr const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kPreemptPilot: return "preempt-pilot";
    case FaultKind::kCrashWorker: return "crash-worker";
    case FaultKind::kDegradeLink: return "degrade-link";
    case FaultKind::kPartitionLink: return "partition-link";
    case FaultKind::kRestoreLink: return "restore-link";
    case FaultKind::kDropBrokerPartition: return "drop-broker-partition";
    case FaultKind::kRestoreBrokerPartition:
      return "restore-broker-partition";
    case FaultKind::kCrashBroker: return "crash-broker";
    case FaultKind::kIsolateBroker: return "isolate-broker";
    case FaultKind::kRestoreBroker: return "restore-broker";
    case FaultKind::kKillPeerProcess: return "kill-peer-process";
  }
  return "?";
}

/// One scheduled fault. `at` is an emulated offset from ChaosEngine
/// start; targets are pilot ids, worker ids, "from->to" link names, or
/// topic names (with `partition`) depending on the kind.
struct FaultEvent {
  Duration at = Duration::zero();
  FaultKind kind = FaultKind::kPreemptPilot;
  std::string target;
  /// For link/broker faults: auto-restore after this long (zero = the
  /// fault is permanent). Ignored for pilot/worker faults, which are
  /// inherently permanent — recovery is the subsystems' job.
  Duration duration = Duration::zero();
  double latency_factor = 1.0;
  double bandwidth_factor = 1.0;
  std::uint32_t partition = 0;
  /// For kCrashBroker: fraction of each log's unsynced tail bytes that
  /// survive the power cut (0 = clean cut at the fsync boundary; values
  /// in between produce torn frames for recovery to truncate).
  double keep_fraction = 0.0;
  std::string reason = "chaos";
};

/// Builder-style plan. `jitter_fraction` perturbs each event's `at` by a
/// seeded uniform draw in [-f, +f] of its nominal value (clamped at 0),
/// modeling imprecise real-world fault timing while staying reproducible.
struct FaultPlan {
  std::vector<FaultEvent> events;
  double jitter_fraction = 0.0;

  FaultPlan& preempt_pilot(Duration at, std::string pilot_id,
                           std::string reason = "chaos preemption") {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kPreemptPilot;
    e.target = std::move(pilot_id);
    e.reason = std::move(reason);
    events.push_back(std::move(e));
    return *this;
  }

  FaultPlan& crash_worker(Duration at, std::string worker_id) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kCrashWorker;
    e.target = std::move(worker_id);
    events.push_back(std::move(e));
    return *this;
  }

  /// `link` is "from->to" (site ids); factors scale the sampled latency
  /// (>1 slower) and bandwidth (<1 slower).
  FaultPlan& degrade_link(Duration at, std::string link,
                          Duration duration, double latency_factor,
                          double bandwidth_factor) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kDegradeLink;
    e.target = std::move(link);
    e.duration = duration;
    e.latency_factor = latency_factor;
    e.bandwidth_factor = bandwidth_factor;
    events.push_back(std::move(e));
    return *this;
  }

  FaultPlan& partition_link(Duration at, std::string link,
                            Duration duration) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kPartitionLink;
    e.target = std::move(link);
    e.duration = duration;
    events.push_back(std::move(e));
    return *this;
  }

  FaultPlan& drop_broker_partition(Duration at, std::string topic,
                                   std::uint32_t partition,
                                   Duration duration) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kDropBrokerPartition;
    e.target = std::move(topic);
    e.partition = partition;
    e.duration = duration;
    events.push_back(std::move(e));
    return *this;
  }

  /// Hard-crashes the bound durable broker mid-pipeline and recovers it
  /// from disk in place (Broker::crash_and_recover). Consumers and
  /// producers observe the broker as if its process died and restarted.
  FaultPlan& crash_broker(Duration at, double keep_fraction = 0.0,
                          std::string reason = "chaos broker crash") {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kCrashBroker;
    e.target = "broker";
    e.keep_fraction = keep_fraction;
    e.reason = std::move(reason);
    events.push_back(std::move(e));
    return *this;
  }

  /// Kills one named member of a bound BrokerCluster ("broker-2"): its
  /// heartbeat goes stale, its partitions fail over, and — when
  /// `duration` is non-zero — a synthesized kRestoreBroker brings it back
  /// (durable members crash-recover from disk, keeping `keep_fraction`
  /// of unsynced tail bytes) to rejoin as a follower.
  FaultPlan& crash_cluster_broker(Duration at, std::string broker_name,
                                  Duration duration = Duration::zero(),
                                  double keep_fraction = 0.0,
                                  std::string reason = "chaos broker crash") {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kCrashBroker;
    e.target = std::move(broker_name);
    e.duration = duration;
    e.keep_fraction = keep_fraction;
    e.reason = std::move(reason);
    events.push_back(std::move(e));
    return *this;
  }

  /// SIGKILLs a real peer OS process by pid — the transport smoke
  /// harness's mid-run producer kill. Unlike every other fault this one
  /// is not emulated: the target process actually dies, and recovery is
  /// the control plane's heartbeat GC, not any bound subsystem.
  FaultPlan& kill_peer_process(Duration at, std::uint64_t pid,
                               std::string reason = "chaos peer kill") {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kKillPeerProcess;
    e.target = std::to_string(pid);
    e.reason = std::move(reason);
    events.push_back(std::move(e));
    return *this;
  }

  /// Network-isolates one named cluster member for `duration` (zero =
  /// until a kRestoreBroker): it stays up but stops heartbeating, so its
  /// partitions fail over without any data loss on the member itself.
  FaultPlan& isolate_broker(Duration at, std::string broker_name,
                            Duration duration = Duration::zero()) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kIsolateBroker;
    e.target = std::move(broker_name);
    e.duration = duration;
    events.push_back(std::move(e));
    return *this;
  }
};

/// What actually happened when an event fired.
struct FaultRecord {
  Duration planned_at = Duration::zero();   // jitter-resolved offset
  Duration applied_at = Duration::zero();   // emulated elapsed at apply
  FaultKind kind = FaultKind::kPreemptPilot;
  std::string target;
  Status status;
};

}  // namespace pe::fault
