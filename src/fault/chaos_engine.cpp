#include "fault/chaos_engine.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/clock.h"
#include "common/logging.h"
#include "common/rng.h"
#include "telemetry/metrics.h"

namespace pe::fault {
namespace {

FaultKind restore_kind(FaultKind k) {
  switch (k) {
    case FaultKind::kDegradeLink:
    case FaultKind::kPartitionLink:
      return FaultKind::kRestoreLink;
    case FaultKind::kDropBrokerPartition:
      return FaultKind::kRestoreBrokerPartition;
    case FaultKind::kCrashBroker:
    case FaultKind::kIsolateBroker:
      return FaultKind::kRestoreBroker;
    default:
      return k;
  }
}

bool has_restore(FaultKind k) {
  return k == FaultKind::kDegradeLink || k == FaultKind::kPartitionLink ||
         k == FaultKind::kDropBrokerPartition ||
         k == FaultKind::kCrashBroker || k == FaultKind::kIsolateBroker;
}

}  // namespace

ChaosEngine::ChaosEngine(FaultPlan plan, std::uint64_t seed) : seed_(seed) {
  // Resolve the timeline up front, deterministically: one seeded Rng,
  // jitter drawn per event in plan order (independent of sort order), so
  // the same (plan, seed) pair always yields the same schedule.
  Rng rng(seed_);
  timeline_.reserve(plan.events.size() * 2);
  for (const FaultEvent& e : plan.events) {
    FaultEvent resolved = e;
    if (plan.jitter_fraction > 0.0) {
      const double f = rng.uniform(-plan.jitter_fraction,
                                   plan.jitter_fraction);
      resolved.at = std::chrono::duration_cast<Duration>(
          resolved.at * (1.0 + f));
      if (resolved.at < Duration::zero()) resolved.at = Duration::zero();
    }
    if (resolved.duration > Duration::zero() && has_restore(resolved.kind)) {
      FaultEvent restore = resolved;
      restore.kind = restore_kind(resolved.kind);
      restore.at = resolved.at + resolved.duration;
      restore.duration = Duration::zero();
      timeline_.push_back(resolved);
      timeline_.push_back(std::move(restore));
    } else {
      timeline_.push_back(resolved);
    }
  }
  std::stable_sort(timeline_.begin(), timeline_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

ChaosEngine::~ChaosEngine() { stop(); }

ChaosEngine& ChaosEngine::set_pilot_manager(res::PilotManager* manager) {
  pilot_manager_ = manager;
  return *this;
}
ChaosEngine& ChaosEngine::set_fabric(std::shared_ptr<net::Fabric> fabric) {
  fabric_ = std::move(fabric);
  return *this;
}
ChaosEngine& ChaosEngine::set_broker(std::shared_ptr<broker::Broker> broker) {
  broker_ = std::move(broker);
  return *this;
}
ChaosEngine& ChaosEngine::set_broker_cluster(
    std::shared_ptr<cluster::BrokerCluster> cluster) {
  broker_cluster_ = std::move(cluster);
  return *this;
}
ChaosEngine& ChaosEngine::add_cluster(std::shared_ptr<exec::Cluster> cluster) {
  clusters_.push_back(std::move(cluster));
  return *this;
}

Status ChaosEngine::start() {
  MutexLock lock(mutex_);
  if (started_) return Status::FailedPrecondition("chaos engine started");
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { run(); });
  return Status::Ok();
}

void ChaosEngine::stop() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  join();
}

void ChaosEngine::join() {
  if (thread_.joinable()) thread_.join();
}

void ChaosEngine::run() {
  const auto t0 = Clock::now();
  for (const FaultEvent& event : timeline_) {
    // Sleep to the event's emulated offset in slices so stop() is prompt.
    const auto deadline =
        t0 + std::chrono::duration_cast<Duration>(event.at /
                                                  Clock::time_scale());
    while (Clock::now() < deadline) {
      {
        MutexLock lock(mutex_);
        if (stop_) return;
      }
      Clock::sleep_exact(std::min<Duration>(deadline - Clock::now(),
                                            std::chrono::milliseconds(5)));
    }
    {
      MutexLock lock(mutex_);
      if (stop_) return;
    }

    FaultRecord record;
    record.planned_at = event.at;
    record.kind = event.kind;
    record.target = event.target;
    record.status = apply(event);
    record.applied_at = std::chrono::duration_cast<Duration>(
        (Clock::now() - t0) * Clock::time_scale());
    if (record.status.ok()) {
      tel::MetricsRegistry::global().counter("chaos.faults_injected").add();
      PE_LOG_INFO("chaos: " << to_string(event.kind) << " '" << event.target
                            << "' applied at +"
                            << std::chrono::duration_cast<
                                   std::chrono::milliseconds>(
                                   record.applied_at)
                                   .count()
                            << "ms");
    } else {
      PE_LOG_WARN("chaos: " << to_string(event.kind) << " '" << event.target
                            << "' failed: " << record.status.to_string());
    }
    MutexLock lock(mutex_);
    records_.push_back(std::move(record));
  }
}

Status ChaosEngine::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kPreemptPilot: {
      if (pilot_manager_ == nullptr) {
        return Status::FailedPrecondition("no pilot manager bound");
      }
      auto pilot = pilot_manager_->pilot(event.target);
      if (!pilot.ok()) return pilot.status();
      return pilot.value()->inject_failure(event.reason);
    }
    case FaultKind::kCrashWorker: {
      if (clusters_.empty()) {
        return Status::FailedPrecondition("no cluster bound");
      }
      for (const auto& cluster : clusters_) {
        const auto ids = cluster->scheduler().worker_ids();
        if (std::find(ids.begin(), ids.end(), event.target) != ids.end()) {
          return cluster->crash_worker(event.target);
        }
      }
      return Status::NotFound("worker '" + event.target +
                              "' not found in any bound cluster");
    }
    case FaultKind::kDegradeLink:
    case FaultKind::kPartitionLink:
    case FaultKind::kRestoreLink:
      return apply_link_fault(event);
    case FaultKind::kDropBrokerPartition:
    case FaultKind::kRestoreBrokerPartition: {
      if (!broker_) return Status::FailedPrecondition("no broker bound");
      return broker_->set_partition_offline(
          event.target, event.partition,
          event.kind == FaultKind::kDropBrokerPartition);
    }
    case FaultKind::kCrashBroker: {
      // A named member target ("broker-2") addresses the bound cluster;
      // the legacy "broker" target keeps the singleton-broker semantics
      // (power-cut + immediate in-place recovery).
      if (broker_cluster_ && !event.target.empty() &&
          event.target != "broker") {
        return broker_cluster_->kill_broker(event.target);
      }
      if (!broker_) return Status::FailedPrecondition("no broker bound");
      auto recovered = broker_->crash_and_recover(event.keep_fraction);
      if (!recovered.ok()) return recovered.status();
      PE_LOG_INFO("chaos: broker recovered — "
                  << recovered.value().to_string());
      return Status::Ok();
    }
    case FaultKind::kIsolateBroker: {
      if (!broker_cluster_) {
        return Status::FailedPrecondition("no broker cluster bound");
      }
      return broker_cluster_->set_broker_isolated(event.target, true);
    }
    case FaultKind::kRestoreBroker: {
      if (!broker_cluster_) {
        return Status::FailedPrecondition("no broker cluster bound");
      }
      return broker_cluster_->restore_broker(event.target,
                                             event.keep_fraction);
    }
    case FaultKind::kKillPeerProcess: {
      // Real process kill (transport smoke harness): the target is a
      // decimal pid of a peer the harness spawned. Guarded against
      // killing ourselves or anything we cannot plausibly own.
      char* end = nullptr;
      const long pid = std::strtol(event.target.c_str(), &end, 10);
      if (end == event.target.c_str() || *end != '\0' || pid <= 1) {
        return Status::InvalidArgument("kill-peer-process target must be a "
                                       "pid > 1, got '" +
                                       event.target + "'");
      }
      if (pid == static_cast<long>(::getpid())) {
        return Status::InvalidArgument("refusing to SIGKILL self");
      }
      if (::kill(static_cast<pid_t>(pid), SIGKILL) != 0) {
        return Status::NotFound("kill(" + event.target +
                                "): " + std::strerror(errno));
      }
      tel::MetricsRegistry::global()
          .counter("transport.peer_kills")
          .add();
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown fault kind");
}

Status ChaosEngine::apply_link_fault(const FaultEvent& event) {
  if (!fabric_) return Status::FailedPrecondition("no fabric bound");
  const auto sep = event.target.find("->");
  if (sep == std::string::npos) {
    return Status::InvalidArgument("link target must be 'from->to', got '" +
                                   event.target + "'");
  }
  const net::SiteId from = event.target.substr(0, sep);
  const net::SiteId to = event.target.substr(sep + 2);
  if (event.kind == FaultKind::kRestoreLink) {
    return fabric_->clear_link_fault(from, to);
  }
  net::LinkFault fault;
  if (event.kind == FaultKind::kPartitionLink) {
    fault.partitioned = true;
  } else {
    fault.latency_factor = event.latency_factor;
    fault.bandwidth_factor = event.bandwidth_factor;
  }
  return fabric_->inject_link_fault(from, to, fault);
}

std::vector<FaultRecord> ChaosEngine::records() const {
  MutexLock lock(mutex_);
  return records_;
}

std::string ChaosEngine::sequence_signature() const {
  std::ostringstream out;
  for (const FaultEvent& e : timeline_) {
    out << to_string(e.kind) << "@"
        << std::chrono::duration_cast<std::chrono::microseconds>(e.at)
               .count()
        << "us:" << e.target;
    if (e.kind == FaultKind::kDropBrokerPartition ||
        e.kind == FaultKind::kRestoreBrokerPartition) {
      out << "/" << e.partition;
    }
    out << ";";
  }
  return out.str();
}

}  // namespace pe::fault
