// ChaosEngine: deterministic executor for declarative FaultPlans.
//
// The engine resolves a plan into a jittered, time-ordered timeline at
// construction (seeded — two engines with the same plan and seed produce
// identical timelines), then replays it against the bound subsystems on a
// background thread: pilots are preempted through Pilot::inject_failure,
// workers crash through Cluster::crash_worker, fabric links degrade or
// partition through Fabric::inject_link_fault, and broker partitions go
// offline through Broker::set_partition_offline. Events with a duration
// expand into apply/restore pairs. All offsets are emulated durations:
// the wall sleep between events is divided by Clock::time_scale(), so a
// scenario behaves identically at any emulation speed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "cluster/broker_cluster.h"
#include "common/mutex.h"
#include "common/status.h"
#include "fault/fault_plan.h"
#include "network/fabric.h"
#include "resource/pilot_manager.h"
#include "taskexec/cluster.h"

namespace pe::fault {

class ChaosEngine {
 public:
  explicit ChaosEngine(FaultPlan plan, std::uint64_t seed = 42);
  ~ChaosEngine();

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  // --- binding (all optional; events without a bound subsystem record
  // FAILED_PRECONDITION instead of crashing) ---
  ChaosEngine& set_pilot_manager(res::PilotManager* manager);
  ChaosEngine& set_fabric(std::shared_ptr<net::Fabric> fabric);
  ChaosEngine& set_broker(std::shared_ptr<broker::Broker> broker);
  /// Replicated broker cluster: kCrashBroker events naming a member
  /// ("broker-2") kill that member, kIsolateBroker / kRestoreBroker
  /// split and heal it. Events with the legacy "broker" target keep
  /// hitting the singleton bound via set_broker.
  ChaosEngine& set_broker_cluster(
      std::shared_ptr<cluster::BrokerCluster> cluster);
  /// Clusters to scan when resolving kCrashWorker targets by worker id.
  ChaosEngine& add_cluster(std::shared_ptr<exec::Cluster> cluster);

  /// Launches the injection thread. FAILED_PRECONDITION if already
  /// started.
  Status start();
  /// Asks the thread to stop after the current event and joins it.
  void stop();
  /// Blocks until every event fired (or stop() was called).
  void join();

  /// The jitter-resolved, time-ordered timeline (stable across runs for
  /// the same plan + seed; includes synthesized restore events).
  const std::vector<FaultEvent>& resolved_timeline() const {
    return timeline_;
  }

  /// Records of events applied so far.
  std::vector<FaultRecord> records() const;

  /// Compact "kind@ms:target" signature of the resolved timeline — equal
  /// signatures mean equal replay order and timing.
  std::string sequence_signature() const;

 private:
  void run();
  Status apply(const FaultEvent& event);
  Status apply_link_fault(const FaultEvent& event);

  const std::uint64_t seed_;
  std::vector<FaultEvent> timeline_;

  res::PilotManager* pilot_manager_ = nullptr;
  std::shared_ptr<net::Fabric> fabric_;
  std::shared_ptr<broker::Broker> broker_;
  std::shared_ptr<cluster::BrokerCluster> broker_cluster_;
  std::vector<std::shared_ptr<exec::Cluster>> clusters_;

  mutable Mutex mutex_{"fault.chaos"};
  std::vector<FaultRecord> records_ PE_GUARDED_BY(mutex_);
  std::thread thread_;
  bool started_ PE_GUARDED_BY(mutex_) = false;
  bool stop_ PE_GUARDED_BY(mutex_) = false;
};

}  // namespace pe::fault
