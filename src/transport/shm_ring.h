// ShmRing: a fixed-capacity shared-memory ring buffer for same-host
// producer -> consumer record delivery across PROCESS boundaries.
//
// This is the data plane of the transport layer (DESIGN.md §12): the
// broker's control plane only hands the ring's shm name to the consumer;
// every payload byte then moves through the mapping directly, never
// through a socket or the broker. Layout:
//
//   [ header page (4 KiB) | data region (capacity bytes, multiple of 8) ]
//
// The header carries three cache-line-separated atomics:
//   - `tail`: the producer's commit cursor. Written ONLY by the producer
//     (release), read by the consumer (acquire). The release/acquire pair
//     is what publishes the record bytes written before the store.
//   - `head`: the consumer's read cursor. Written ONLY by the consumer
//     (release, in commit()), read by the producer (acquire) to compute
//     free space. Publishing head is what allows the producer to overwrite
//     consumed bytes — which is why commit() is separate from pop():
//     zero-copy views handed out by pop() have stable CONTENT until the
//     consumer commits past them.
//   - `heartbeat_ns` + `producer_pid`: producer liveness, read by the
//     control plane's dead-producer GC (CLOCK_MONOTONIC is system-wide on
//     Linux, so ages computed in another process are meaningful).
//
// Cursors are absolute byte positions (monotonically increasing u64);
// `pos % capacity` is the physical offset. Records are CRC-framed:
//
//   u32 length | u32 crc32c(payload) | payload | pad to 8 bytes
//
// A frame never straddles the end of the data region: when the contiguous
// space at the end is too small, the producer writes a 4-byte wrap marker
// (length == 0xFFFFFFFF) and skips to offset 0; the consumer does the
// same skip on reading the marker. Contiguity is what makes zero-copy
// consumer views possible (broker::Payload::view straight into the
// mapping — no reassembly).
//
// Exactly one producer and one consumer process (SPSC). The control
// plane may additionally open the ring as a monitor: it reads header
// fields but never pushes or pops.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "broker/record.h"
#include "common/clock.h"
#include "common/serialize.h"
#include "common/status.h"

namespace pe::transport {

/// Per-handle transfer counters (local to this process's handle).
struct ShmRingStats {
  std::uint64_t records_pushed = 0;
  std::uint64_t bytes_pushed = 0;
  std::uint64_t records_popped = 0;
  std::uint64_t bytes_popped = 0;
  /// Push found the ring full and had to wait (or give up).
  std::uint64_t full_waits = 0;
  std::uint64_t wraps = 0;
  std::uint64_t crc_errors = 0;
};

class ShmRing {
 public:
  /// Frame length value reserved as the wrap marker.
  static constexpr std::uint32_t kWrapMarker = 0xFFFFFFFFu;
  /// Frame header bytes (length + crc) ahead of every payload.
  static constexpr std::uint64_t kFrameHeaderBytes = 8;

  enum class Role { kProducer, kConsumer, kMonitor };

  /// Creates the shared-memory object (shm_open O_CREAT|O_EXCL) and
  /// returns the producer handle. `capacity_bytes` is rounded up to a
  /// multiple of 8; `name` must start with '/' (POSIX shm name).
  static Result<std::unique_ptr<ShmRing>> create(const std::string& name,
                                                 std::uint64_t capacity_bytes);

  /// Opens an existing ring as the (single) consumer.
  static Result<std::unique_ptr<ShmRing>> open(const std::string& name);

  /// Opens an existing ring for header inspection only (control-plane
  /// heartbeat checks). Never pushes or pops.
  static Result<std::unique_ptr<ShmRing>> open_monitor(
      const std::string& name);

  /// Removes the shm name. Existing mappings (and Payload views into
  /// them) stay valid until the last handle unmaps.
  static Status unlink(const std::string& name);

  ~ShmRing();
  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  const std::string& name() const { return name_; }
  Role role() const { return role_; }
  std::uint64_t capacity() const;

  // --- producer side ---
  /// Appends one record. While the ring is full, sleeps in short slices
  /// up to `timeout` (zero = non-blocking). A full-ring give-up returns
  /// transient TIMEOUT (backpressure, not loss: the caller retries).
  /// Payloads larger than capacity - 16 are INVALID_ARGUMENT.
  Status push(ByteSpan payload, Duration timeout = Duration::zero());

  /// Stamps the producer heartbeat slot with the current monotonic time.
  void heartbeat();

  /// Marks the stream cleanly finished (consumer sees closed() once the
  /// ring is drained). Idempotent.
  void close_producer();

  // --- consumer side ---
  /// Pops the next record as a zero-copy view into the mapping (the
  /// Payload's owner keeps the mapping alive). NOT_FOUND when the ring is
  /// empty; INTERNAL on a CRC mismatch (corrupted frame — the ring is
  /// poisoned and should be abandoned). The view's bytes are stable until
  /// commit() advances the shared head past them; after that the producer
  /// may overwrite the content (the memory itself stays mapped).
  Result<broker::Payload> pop();

  /// Publishes the local read position to the producer, releasing the
  /// space held by every record popped so far.
  void commit();

  /// True once the producer closed the stream AND every record has been
  /// popped.
  bool drained_and_closed() const;

  // --- shared / monitor side ---
  bool producer_closed() const;
  std::uint64_t producer_pid() const;
  /// Nanoseconds since the last producer heartbeat (monotonic clock).
  std::uint64_t heartbeat_age_ns() const;
  /// Bytes currently committed but unread (tail - head).
  std::uint64_t backlog_bytes() const;

  const ShmRingStats& stats() const { return stats_; }

 private:
  struct Header;
  struct Mapping;

  ShmRing(std::string name, Role role, std::shared_ptr<Mapping> mapping);

  static Result<std::unique_ptr<ShmRing>> open_role(const std::string& name,
                                                    Role role);

  Status try_push_once(ByteSpan payload);

  const std::string name_;
  const Role role_;
  std::shared_ptr<Mapping> mapping_;
  Header* hdr_ = nullptr;       // into the mapping
  std::uint8_t* data_ = nullptr;
  // Producer-private cache of the consumer's head (refreshed on demand)
  // and consumer-private read cursor (published by commit()).
  std::uint64_t cached_head_ = 0;
  std::uint64_t read_pos_ = 0;
  ShmRingStats stats_;
};

}  // namespace pe::transport
