#include "transport/framed_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/buffer_pool.h"
#include "telemetry/metrics.h"

namespace pe::transport {
namespace {

Status errno_unavailable(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

int poll_one(int fd, short events, Duration timeout) {
  struct ::pollfd pfd {};
  pfd.fd = fd;
  pfd.events = events;
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(timeout);
  int timeout_ms = timeout < Duration::zero()
                       ? -1
                       : static_cast<int>(ms.count() > 0 ? ms.count() : 0);
  return ::poll(&pfd, 1, timeout_ms);
}

}  // namespace

FramedSocket::~FramedSocket() { close(); }

FramedSocket& FramedSocket::operator=(FramedSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
    fabric_ = std::move(other.fabric_);
    fabric_from_ = std::move(other.fabric_from_);
    fabric_to_ = std::move(other.fabric_to_);
  }
  return *this;
}

void FramedSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FramedSocket FramedSocket::adopt(int fd) { return FramedSocket(fd); }

void FramedSocket::set_fabric(std::shared_ptr<net::Fabric> fabric,
                              net::SiteId from, net::SiteId to) {
  fabric_ = std::move(fabric);
  fabric_from_ = std::move(from);
  fabric_to_ = std::move(to);
}

Result<FramedSocket> FramedSocket::connect_loopback(std::uint16_t port,
                                                    Duration timeout) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_unavailable("socket()");

  // Non-blocking connect so the deadline is ours, not the kernel's.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  struct ::sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int rc = ::connect(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    auto s = errno_unavailable("connect(127.0.0.1:" + std::to_string(port) +
                               ")");
    ::close(fd);
    return s;
  }
  if (rc != 0) {
    int ready = poll_one(fd, POLLOUT, timeout);
    if (ready == 0) {
      ::close(fd);
      return Status::Timeout("connect to 127.0.0.1:" + std::to_string(port) +
                             " timed out");
    }
    if (ready < 0) {
      auto s = errno_unavailable("poll(connect)");
      ::close(fd);
      return s;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return Status::Unavailable("connect to 127.0.0.1:" +
                                 std::to_string(port) + ": " +
                                 std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for send/recv
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return FramedSocket(fd);
}

Status FramedSocket::write_all(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_unavailable("send()");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status FramedSocket::send_frame(char type, ByteSpan payload) {
  if (fd_ < 0) return Status::FailedPrecondition("socket closed");
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds 64 MiB");
  }
  if (fabric_) {
    // Charge the emulated link first: a WAN partition must fail the send
    // before any byte hits the real socket, and a degraded link blocks
    // the sender for the emulated transfer time.
    auto transfer = fabric_->transfer(fabric_from_, fabric_to_,
                                      payload.size() + 5);
    if (!transfer.ok()) return transfer.status();
  }
  std::uint8_t header[5];
  header[0] = static_cast<std::uint8_t>(type);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(header + 1, &len, sizeof(len));
  if (auto s = write_all(header, sizeof(header)); !s.ok()) return s;
  if (!payload.empty()) {
    if (auto s = write_all(payload.data(), payload.size()); !s.ok()) return s;
  }
  auto& reg = tel::MetricsRegistry::global();
  reg.counter("transport.frames_out").add();
  reg.counter("transport.frame_bytes_out").add(sizeof(header) +
                                               payload.size());
  return Status::Ok();
}

Status FramedSocket::read_all(std::uint8_t* data, std::size_t size,
                              TimePoint deadline) {
  std::size_t got = 0;
  while (got < size) {
    const auto remaining = deadline - Clock::now();
    if (remaining <= Duration::zero()) {
      return Status::Timeout("frame read timed out");
    }
    int ready = poll_one(fd_, POLLIN, remaining);
    if (ready == 0) return Status::Timeout("frame read timed out");
    if (ready < 0) {
      if (errno == EINTR) continue;
      return errno_unavailable("poll(read)");
    }
    ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n == 0) return Status::Unavailable("peer closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_unavailable("recv()");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Result<Frame> FramedSocket::recv_frame(Duration timeout) {
  if (fd_ < 0) return Status::FailedPrecondition("socket closed");
  const auto deadline = Clock::now() + timeout;
  std::uint8_t header[5];
  if (auto s = read_all(header, sizeof(header), deadline); !s.ok()) return s;
  std::uint32_t len = 0;
  std::memcpy(&len, header + 1, sizeof(len));
  if (len > kMaxFrameBytes) {
    return Status::Internal("frame length " + std::to_string(len) +
                            " exceeds 64 MiB (desynced stream?)");
  }
  // Pooled receive buffer: the Frame's Payload shares it, so the bytes
  // return to the pool when the last view drops.
  auto buf = BufferPool::global().acquire_shared(len);
  buf->resize(len);
  if (len > 0) {
    if (auto s = read_all(buf->data(), len, deadline); !s.ok()) return s;
  }
  Frame frame;
  frame.type = static_cast<char>(header[0]);
  frame.payload = broker::Payload(std::shared_ptr<const Bytes>(buf));
  auto& reg = tel::MetricsRegistry::global();
  reg.counter("transport.frames_in").add();
  reg.counter("transport.frame_bytes_in").add(sizeof(header) + len);
  return frame;
}

FramedListener::~FramedListener() { close(); }

FramedListener& FramedListener::operator=(FramedListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void FramedListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<FramedListener> FramedListener::listen_loopback(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_unavailable("socket()");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct ::sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct ::sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    auto s = errno_unavailable("bind(127.0.0.1:" + std::to_string(port) + ")");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    auto s = errno_unavailable("listen()");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<struct ::sockaddr*>(&addr), &len);
  return FramedListener(fd, ntohs(addr.sin_port));
}

Result<FramedSocket> FramedListener::accept(Duration timeout) {
  if (fd_ < 0) return Status::Unavailable("listener closed");
  int ready = poll_one(fd_, POLLIN, timeout);
  if (ready == 0) return Status::Timeout("accept timed out");
  if (ready < 0) return errno_unavailable("poll(accept)");
  int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return errno_unavailable("accept()");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return FramedSocket::adopt(fd);
}

}  // namespace pe::transport
