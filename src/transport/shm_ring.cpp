#include "transport/shm_ring.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/crc32c.h"
#include "telemetry/metrics.h"

namespace pe::transport {

namespace {

constexpr std::uint64_t kMagic = 0x50455249'4e473031ull;  // "PERING01"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kHeaderBytes = 4096;

std::uint64_t align8(std::uint64_t n) { return (n + 7) & ~std::uint64_t{7}; }

Status errno_status(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

// Shared header at the front of the mapping. Atomics on std::uint64_t are
// address-free (lock-free) on every platform this builds for, which is
// what makes them usable across process boundaries; the static_asserts
// below pin that assumption.
struct ShmRing::Header {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t capacity;
  // Producer-written commit cursor. Own cache line: the producer stores
  // it per push, and sharing a line with head would make every push/pop
  // pair ping the same line in both directions.
  alignas(64) std::atomic<std::uint64_t> tail;
  // Consumer-written read cursor (published by commit()).
  alignas(64) std::atomic<std::uint64_t> head;
  // Producer liveness: monotonic timestamp + pid, read by the control
  // plane's GC from a different process.
  alignas(64) std::atomic<std::uint64_t> heartbeat_ns;
  std::atomic<std::uint64_t> producer_pid;
  std::atomic<std::uint32_t> closed;
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shared-memory ring cursors must be address-free atomics");

struct ShmRing::Mapping {
  void* base = nullptr;
  std::size_t bytes = 0;

  ~Mapping() {
    if (base != nullptr) ::munmap(base, bytes);
  }
};

ShmRing::ShmRing(std::string name, Role role,
                 std::shared_ptr<Mapping> mapping)
    : name_(std::move(name)), role_(role), mapping_(std::move(mapping)) {
  static_assert(sizeof(Header) <= 4096,
                "ring header must fit the header page");
  hdr_ = static_cast<Header*>(mapping_->base);
  data_ = static_cast<std::uint8_t*>(mapping_->base) + kHeaderBytes;
  cached_head_ = hdr_->head.load(std::memory_order_acquire);
  read_pos_ = cached_head_;
}

ShmRing::~ShmRing() = default;

std::uint64_t ShmRing::capacity() const { return hdr_->capacity; }

Result<std::unique_ptr<ShmRing>> ShmRing::create(
    const std::string& name, std::uint64_t capacity_bytes) {
  if (name.empty() || name[0] != '/') {
    return Status::InvalidArgument("shm name must start with '/'");
  }
  const std::uint64_t capacity = align8(capacity_bytes < 64 ? 64
                                                            : capacity_bytes);
  const std::size_t total = kHeaderBytes + capacity;
  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) {
    if (errno == EEXIST) {
      return Status::AlreadyExists("shm '" + name + "' already exists");
    }
    return errno_status("shm_open('" + name + "')");
  }
  if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
    auto s = errno_status("ftruncate('" + name + "')");
    ::close(fd);
    ::shm_unlink(name.c_str());
    return s;
  }
  void* base =
      ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    return errno_status("mmap('" + name + "')");
  }
  auto mapping = std::make_shared<Mapping>();
  mapping->base = base;
  mapping->bytes = total;

  auto* hdr = static_cast<Header*>(base);
  hdr->capacity = capacity;
  hdr->version = kVersion;
  hdr->reserved = 0;
  hdr->tail.store(0, std::memory_order_relaxed);
  hdr->head.store(0, std::memory_order_relaxed);
  hdr->producer_pid.store(static_cast<std::uint64_t>(::getpid()),
                          std::memory_order_relaxed);
  hdr->heartbeat_ns.store(Clock::now_ns(), std::memory_order_relaxed);
  hdr->closed.store(0, std::memory_order_relaxed);
  // The magic is published last: an open() racing create() rejects a
  // half-initialized header instead of reading garbage cursors.
  std::atomic_thread_fence(std::memory_order_release);
  hdr->magic = kMagic;

  return std::unique_ptr<ShmRing>(
      new ShmRing(name, Role::kProducer, std::move(mapping)));
}

Result<std::unique_ptr<ShmRing>> ShmRing::open_role(const std::string& name,
                                                    Role role) {
  int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("shm '" + name + "' not found");
    }
    return errno_status("shm_open('" + name + "')");
  }
  struct ::stat st {};
  if (::fstat(fd, &st) != 0) {
    auto s = errno_status("fstat('" + name + "')");
    ::close(fd);
    return s;
  }
  if (static_cast<std::uint64_t>(st.st_size) < kHeaderBytes + 64) {
    ::close(fd);
    return Status::FailedPrecondition("shm '" + name + "' too small");
  }
  void* base = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                      PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) return errno_status("mmap('" + name + "')");
  auto mapping = std::make_shared<Mapping>();
  mapping->base = base;
  mapping->bytes = static_cast<std::size_t>(st.st_size);

  auto* hdr = static_cast<Header*>(base);
  if (hdr->magic != kMagic || hdr->version != kVersion) {
    return Status::FailedPrecondition("shm '" + name +
                                      "' is not a PERING01 ring");
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (kHeaderBytes + hdr->capacity > mapping->bytes) {
    return Status::FailedPrecondition("shm '" + name +
                                      "' capacity exceeds object size");
  }
  return std::unique_ptr<ShmRing>(new ShmRing(name, role, std::move(mapping)));
}

Result<std::unique_ptr<ShmRing>> ShmRing::open(const std::string& name) {
  return open_role(name, Role::kConsumer);
}

Result<std::unique_ptr<ShmRing>> ShmRing::open_monitor(
    const std::string& name) {
  return open_role(name, Role::kMonitor);
}

Status ShmRing::unlink(const std::string& name) {
  if (::shm_unlink(name.c_str()) != 0 && errno != ENOENT) {
    return errno_status("shm_unlink('" + name + "')");
  }
  return Status::Ok();
}

Status ShmRing::try_push_once(ByteSpan payload) {
  const std::uint64_t capacity = hdr_->capacity;
  const std::uint64_t frame = kFrameHeaderBytes + align8(payload.size());
  const std::uint64_t pos = hdr_->tail.load(std::memory_order_relaxed);
  const std::uint64_t off = pos % capacity;
  const std::uint64_t contig = capacity - off;
  // A wrapping push consumes the residue at the end PLUS the full frame
  // at offset 0.
  const std::uint64_t need = contig < frame ? contig + frame : frame;

  if (capacity - (pos - cached_head_) < need) {
    // Refresh the consumer's cursor before declaring the ring full: the
    // acquire pairs with commit()'s release, making every byte the
    // consumer released safely overwritable.
    cached_head_ = hdr_->head.load(std::memory_order_acquire);
    if (capacity - (pos - cached_head_) < need) {
      return Status::ResourceExhausted("ring full");
    }
  }

  std::uint64_t write_off = off;
  std::uint64_t new_pos = pos;
  if (contig < frame) {
    // Contiguity guarantee: frames never straddle the end. Mark the
    // residue (always >= 8 bytes: offsets and frames are 8-aligned) so
    // the consumer skips it.
    std::uint32_t marker = kWrapMarker;
    std::memcpy(data_ + off, &marker, sizeof(marker));
    new_pos += contig;
    write_off = 0;
    stats_.wraps += 1;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = storage::crc32c(payload.data(), payload.size());
  std::memcpy(data_ + write_off, &len, sizeof(len));
  std::memcpy(data_ + write_off + 4, &crc, sizeof(crc));
  if (!payload.empty()) {
    std::memcpy(data_ + write_off + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  // Publish: everything memcpy'd above happens-before any consumer that
  // observes the new tail.
  hdr_->tail.store(new_pos + frame, std::memory_order_release);
  stats_.records_pushed += 1;
  stats_.bytes_pushed += payload.size();
  return Status::Ok();
}

Status ShmRing::push(ByteSpan payload, Duration timeout) {
  // Worst case a frame needs a full wrap residue; requiring one spare
  // frame-header of slack keeps `need <= capacity` in try_push_once.
  if (kFrameHeaderBytes + align8(payload.size()) + kFrameHeaderBytes >
      hdr_->capacity) {
    return Status::InvalidArgument("payload larger than ring capacity");
  }
  auto s = try_push_once(payload);
  if (s.ok() || timeout <= Duration::zero()) {
    if (!s.ok()) {
      stats_.full_waits += 1;
      tel::MetricsRegistry::global().counter("transport.ring_full_waits")
          .add();
    }
    return s.ok() ? s : Status::Timeout("ring full");
  }
  stats_.full_waits += 1;
  tel::MetricsRegistry::global().counter("transport.ring_full_waits").add();
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    Clock::sleep_exact(std::chrono::microseconds(50));
    s = try_push_once(payload);
    if (s.ok()) return s;
  }
  return Status::Timeout("ring full for " +
                         std::to_string(std::chrono::duration_cast<
                                            std::chrono::milliseconds>(timeout)
                                            .count()) +
                         "ms");
}

void ShmRing::heartbeat() {
  hdr_->heartbeat_ns.store(Clock::now_ns(), std::memory_order_relaxed);
}

void ShmRing::close_producer() {
  hdr_->closed.store(1, std::memory_order_release);
}

Result<broker::Payload> ShmRing::pop() {
  const std::uint64_t capacity = hdr_->capacity;
  while (true) {
    const std::uint64_t tail = hdr_->tail.load(std::memory_order_acquire);
    if (read_pos_ == tail) return Status::NotFound("ring empty");
    const std::uint64_t off = read_pos_ % capacity;
    std::uint32_t len = 0;
    std::memcpy(&len, data_ + off, sizeof(len));
    if (len == kWrapMarker) {
      read_pos_ += capacity - off;  // skip the residue, restart at 0
      continue;
    }
    if (kFrameHeaderBytes + len > capacity - off) {
      stats_.crc_errors += 1;
      return Status::Internal("ring frame overruns the data region");
    }
    std::uint32_t crc = 0;
    std::memcpy(&crc, data_ + off + 4, sizeof(crc));
    const std::uint8_t* payload = data_ + off + kFrameHeaderBytes;
    if (storage::crc32c(payload, len) != crc) {
      stats_.crc_errors += 1;
      return Status::Internal("ring frame CRC mismatch at position " +
                              std::to_string(read_pos_));
    }
    read_pos_ += kFrameHeaderBytes + align8(len);
    stats_.records_popped += 1;
    stats_.bytes_popped += len;
    // Zero-copy: the view aliases the mapping; the shared Mapping keeps
    // the memory valid for as long as any view lives.
    return broker::Payload::view(mapping_, payload, len);
  }
}

void ShmRing::commit() {
  hdr_->head.store(read_pos_, std::memory_order_release);
}

bool ShmRing::drained_and_closed() const {
  return producer_closed() &&
         read_pos_ == hdr_->tail.load(std::memory_order_acquire);
}

bool ShmRing::producer_closed() const {
  return hdr_->closed.load(std::memory_order_acquire) != 0;
}

std::uint64_t ShmRing::producer_pid() const {
  return hdr_->producer_pid.load(std::memory_order_relaxed);
}

std::uint64_t ShmRing::heartbeat_age_ns() const {
  const std::uint64_t hb = hdr_->heartbeat_ns.load(std::memory_order_relaxed);
  const std::uint64_t now = Clock::now_ns();
  return now > hb ? now - hb : 0;
}

std::uint64_t ShmRing::backlog_bytes() const {
  const std::uint64_t tail = hdr_->tail.load(std::memory_order_acquire);
  const std::uint64_t head = hdr_->head.load(std::memory_order_acquire);
  return tail - head;
}

}  // namespace pe::transport
