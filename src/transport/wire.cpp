#include "transport/wire.h"

#include <cctype>
#include <charconv>

namespace pe::transport {
namespace {

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

struct JsonCursor {
  const char* p;
  const char* end;

  bool eof() const { return p >= end; }
  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }
  Status fail(const std::string& what) const {
    return Status::InvalidArgument("control JSON: " + what);
  }

  Status parse_string(std::string* out) {
    if (eof() || *p != '"') return fail("expected string");
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (eof()) return fail("truncated escape");
        char e = *p++;
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (end - p < 4) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = *p++;
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // Control messages are ASCII in practice; encode the low byte.
            out->push_back(static_cast<char>(code & 0xFF));
            break;
          }
          default:
            return fail("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    if (eof()) return fail("unterminated string");
    ++p;  // closing quote
    return Status::Ok();
  }

  /// Numbers / booleans / null stored as literal text.
  Status parse_literal(std::string* out) {
    const char* start = p;
    while (p < end && (std::isalnum(static_cast<unsigned char>(*p)) ||
                       *p == '-' || *p == '+' || *p == '.')) {
      ++p;
    }
    if (p == start) return fail("expected value");
    out->assign(start, p);
    return Status::Ok();
  }
};

}  // namespace

Bytes encode_control(const ControlMap& msg) {
  std::string json = "{";
  bool first = true;
  for (const auto& [key, value] : msg) {
    if (!first) json.push_back(',');
    first = false;
    append_json_string(json, key);
    json.push_back(':');
    append_json_string(json, value);
  }
  json.push_back('}');
  return Bytes(json.begin(), json.end());
}

Status parse_control(ByteSpan payload, ControlMap* out) {
  out->clear();
  JsonCursor cur{reinterpret_cast<const char*>(payload.data()),
                 reinterpret_cast<const char*>(payload.data()) + payload.size()};
  cur.skip_ws();
  if (cur.eof() || *cur.p != '{') return cur.fail("expected object");
  ++cur.p;
  cur.skip_ws();
  if (!cur.eof() && *cur.p == '}') {
    ++cur.p;
    return Status::Ok();
  }
  while (true) {
    cur.skip_ws();
    std::string key;
    if (auto s = cur.parse_string(&key); !s.ok()) return s;
    cur.skip_ws();
    if (cur.eof() || *cur.p != ':') return cur.fail("expected ':'");
    ++cur.p;
    cur.skip_ws();
    std::string value;
    if (cur.eof()) return cur.fail("truncated value");
    if (*cur.p == '"') {
      if (auto s = cur.parse_string(&value); !s.ok()) return s;
    } else if (*cur.p == '{' || *cur.p == '[') {
      return cur.fail("nested values not allowed (flat map contract)");
    } else {
      if (auto s = cur.parse_literal(&value); !s.ok()) return s;
    }
    (*out)[key] = std::move(value);
    cur.skip_ws();
    if (cur.eof()) return cur.fail("unterminated object");
    if (*cur.p == ',') {
      ++cur.p;
      continue;
    }
    if (*cur.p == '}') {
      ++cur.p;
      return Status::Ok();
    }
    return cur.fail("expected ',' or '}'");
  }
}

Status require_field(const ControlMap& msg, const std::string& key,
                     std::string* out) {
  auto it = msg.find(key);
  if (it == msg.end()) {
    return Status::InvalidArgument("control message missing field '" + key + "'");
  }
  *out = it->second;
  return Status::Ok();
}

Status require_u64(const ControlMap& msg, const std::string& key,
                   std::uint64_t* out) {
  std::string text;
  if (auto s = require_field(msg, key, &text); !s.ok()) return s;
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("control field '" + key +
                                   "' is not a u64: " + text);
  }
  *out = v;
  return Status::Ok();
}

void status_to_reply(const Status& status, ControlMap* reply) {
  if (status.ok()) return;
  (*reply)["error"] = status.message();
  (*reply)["code"] = std::string(pe::to_string(status.code()));
  if (status.retry_after() > std::chrono::nanoseconds::zero()) {
    (*reply)["retry_after_ns"] =
        std::to_string(status.retry_after().count());
  }
}

Status status_from_reply(const ControlMap& reply) {
  auto err = reply.find("error");
  if (err == reply.end()) return Status::Ok();
  StatusCode code = StatusCode::kInternal;
  if (auto it = reply.find("code"); it != reply.end()) {
    for (int c = 0; c <= static_cast<int>(StatusCode::kNotLeader); ++c) {
      if (pe::to_string(static_cast<StatusCode>(c)) == it->second) {
        code = static_cast<StatusCode>(c);
        break;
      }
    }
  }
  if (auto it = reply.find("retry_after_ns"); it != reply.end()) {
    std::uint64_t ns = 0;
    std::from_chars(it->second.data(), it->second.data() + it->second.size(), ns);
    if (code == StatusCode::kResourceExhausted && ns > 0) {
      return Status::Throttled(err->second, std::chrono::nanoseconds(ns));
    }
  }
  return Status{code, err->second};
}

Bytes encode_produce_batch(const ProduceBatch& batch) {
  Bytes out;
  out.reserve(64 + batch.records.size() * 32);
  ByteWriter w(out);
  w.put_string(batch.topic);
  w.put_u32(batch.partition);
  w.put_string(batch.client_id);
  w.put_u32(static_cast<std::uint32_t>(batch.records.size()));
  for (const auto& rec : batch.records) {
    w.put_string(rec.key);
    w.put_u64(rec.client_timestamp_ns);
    w.put_u32(static_cast<std::uint32_t>(rec.value.size()));
    out.insert(out.end(), rec.value.begin(), rec.value.end());
  }
  return out;
}

Status decode_produce_batch(ByteSpan payload, ProduceBatch* out) {
  ByteReader r(payload);
  if (auto s = r.get_string(out->topic); !s.ok()) return s;
  if (auto s = r.get_u32(out->partition); !s.ok()) return s;
  if (auto s = r.get_string(out->client_id); !s.ok()) return s;
  std::uint32_t count = 0;
  if (auto s = r.get_u32(count); !s.ok()) return s;
  out->records.clear();
  out->records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    broker::Record rec;
    if (auto s = r.get_string(rec.key); !s.ok()) return s;
    if (auto s = r.get_u64(rec.client_timestamp_ns); !s.ok()) return s;
    Bytes value;
    if (auto s = r.get_bytes(value); !s.ok()) return s;
    rec.value = broker::Payload(std::move(value));
    out->records.push_back(std::move(rec));
  }
  return Status::Ok();
}

Bytes encode_fetch_batch(const std::string& topic, std::uint32_t partition,
                         const std::vector<broker::ConsumedRecord>& records) {
  Bytes out;
  out.reserve(64 + records.size() * 48);
  ByteWriter w(out);
  w.put_string(topic);
  w.put_u32(partition);
  w.put_u32(static_cast<std::uint32_t>(records.size()));
  for (const auto& cr : records) {
    w.put_u64(cr.offset);
    w.put_u64(cr.broker_timestamp_ns);
    w.put_string(cr.record.key);
    w.put_u64(cr.record.client_timestamp_ns);
    w.put_u32(static_cast<std::uint32_t>(cr.record.value.size()));
    out.insert(out.end(), cr.record.value.begin(), cr.record.value.end());
  }
  return out;
}

Status decode_fetch_batch(ByteSpan payload,
                          std::vector<broker::ConsumedRecord>* out) {
  ByteReader r(payload);
  std::string topic;
  std::uint32_t partition = 0;
  if (auto s = r.get_string(topic); !s.ok()) return s;
  if (auto s = r.get_u32(partition); !s.ok()) return s;
  std::uint32_t count = 0;
  if (auto s = r.get_u32(count); !s.ok()) return s;
  out->clear();
  out->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    broker::ConsumedRecord cr;
    cr.topic = topic;
    cr.partition = partition;
    if (auto s = r.get_u64(cr.offset); !s.ok()) return s;
    if (auto s = r.get_u64(cr.broker_timestamp_ns); !s.ok()) return s;
    if (auto s = r.get_string(cr.record.key); !s.ok()) return s;
    if (auto s = r.get_u64(cr.record.client_timestamp_ns); !s.ok()) return s;
    Bytes value;
    if (auto s = r.get_bytes(value); !s.ok()) return s;
    cr.record.value = broker::Payload(std::move(value));
    out->push_back(std::move(cr));
  }
  return Status::Ok();
}

}  // namespace pe::transport
