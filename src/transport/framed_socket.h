// FramedSocket: length-framed messages over localhost TCP.
//
// The WAN-hop data plane and the control plane both speak this protocol:
// every message is one frame — 1 ASCII type byte + u32 payload length
// (LE) + payload (see wire.h for the type vocabulary). Localhost TCP is
// the real transport; the emulated net::Fabric can additionally be
// attached to a socket, in which case every outgoing frame is first
// charged to a fabric transfer — a partitioned or degraded emulated link
// then surfaces exactly as it would on a real WAN: transient UNAVAILABLE
// (partition) or added latency (degrade), never a silent success.
//
// Error model (everything a retry loop needs is in the code):
//   - connect refusal / reset / EOF / EPIPE -> UNAVAILABLE (transient)
//   - connect / read deadline exceeded      -> TIMEOUT     (transient)
//   - malformed frame (unknown type, oversized length) -> INTERNAL
//
// Sockets are move-only; recv and send may be used from different
// threads, but each direction from one thread at a time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "broker/record.h"
#include "common/clock.h"
#include "common/serialize.h"
#include "common/status.h"
#include "network/fabric.h"

namespace pe::transport {

/// One received frame: type byte + payload view (backed by a pooled
/// buffer; holding the Frame keeps the bytes alive).
struct Frame {
  char type = 0;
  broker::Payload payload;
};

class FramedSocket {
 public:
  /// Frames above this length are rejected as malformed on both sides.
  static constexpr std::uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

  FramedSocket() = default;
  ~FramedSocket();
  FramedSocket(FramedSocket&& other) noexcept { *this = std::move(other); }
  FramedSocket& operator=(FramedSocket&& other) noexcept;
  FramedSocket(const FramedSocket&) = delete;
  FramedSocket& operator=(const FramedSocket&) = delete;

  /// Connects to 127.0.0.1:port. Refusal -> UNAVAILABLE, deadline ->
  /// TIMEOUT (both transient).
  static Result<FramedSocket> connect_loopback(std::uint16_t port,
                                               Duration timeout);

  /// Wraps an fd already produced by accept(2).
  static FramedSocket adopt(int fd);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Charges every outgoing frame to an emulated fabric link before the
  /// real send. A partitioned link -> UNAVAILABLE, a degraded link adds
  /// its (scaled) latency — the WAN-emulation hook for transport tests.
  void set_fabric(std::shared_ptr<net::Fabric> fabric, net::SiteId from,
                  net::SiteId to);

  /// Sends one frame (blocking; the kernel buffer is the only queue).
  /// EPIPE/reset -> UNAVAILABLE.
  Status send_frame(char type, ByteSpan payload);

  /// Receives one frame, waiting up to `timeout` for the first header
  /// byte. TIMEOUT when nothing arrives; UNAVAILABLE on EOF/reset.
  Result<Frame> recv_frame(Duration timeout);

  void close();

 private:
  explicit FramedSocket(int fd) : fd_(fd) {}

  Status write_all(const std::uint8_t* data, std::size_t size);
  Status read_all(std::uint8_t* data, std::size_t size, TimePoint deadline);

  int fd_ = -1;
  std::shared_ptr<net::Fabric> fabric_;
  net::SiteId fabric_from_;
  net::SiteId fabric_to_;
};

/// Listening socket on 127.0.0.1. Port 0 picks an ephemeral port
/// (report it via port()).
class FramedListener {
 public:
  FramedListener() = default;
  ~FramedListener();
  FramedListener(FramedListener&& other) noexcept { *this = std::move(other); }
  FramedListener& operator=(FramedListener&& other) noexcept;
  FramedListener(const FramedListener&) = delete;
  FramedListener& operator=(const FramedListener&) = delete;

  static Result<FramedListener> listen_loopback(std::uint16_t port = 0);

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Accepts one connection, waiting up to `timeout` -> TIMEOUT when
  /// nobody connects, UNAVAILABLE once close()d.
  Result<FramedSocket> accept(Duration timeout);

  void close();

 private:
  FramedListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace pe::transport
