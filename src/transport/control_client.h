// ControlClient: typed request helpers over one control-plane socket.
//
// Producers and workers are separate OS processes; everything they need
// from the broker — channel registration/lookup, offset commits, the
// socket produce/fetch path — goes through this thin client. Each call
// is one request frame + one reply frame on the same socket (the control
// plane serves requests on a connection in order).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "broker/record.h"
#include "common/clock.h"
#include "common/status.h"
#include "transport/framed_socket.h"
#include "transport/wire.h"

namespace pe::transport {

/// lookup() result.
struct ChannelLocation {
  std::string shm_name;
  std::uint64_t capacity = 0;
  std::string topic;
  std::uint32_t partition = 0;
  std::uint64_t producer_pid = 0;
  std::string state;  // "live" | "closed" | "dead"
};

class ControlClient {
 public:
  /// Connects to the control plane on 127.0.0.1:`port`.
  static Result<ControlClient> connect(std::uint16_t port,
                                       Duration timeout =
                                           std::chrono::seconds(2));

  ControlClient() = default;
  ControlClient(ControlClient&&) = default;
  ControlClient& operator=(ControlClient&&) = default;

  bool valid() const { return socket_.valid(); }

  /// Per-request reply deadline (default 5 s — generous; failures should
  /// be refusals, not stalls).
  void set_request_timeout(Duration timeout) { request_timeout_ = timeout; }

  /// Raw request/reply: send a 'C' frame, wait for the 'C' reply, and
  /// fold any error fields back into the returned Status.
  Result<ControlMap> request(const ControlMap& req);

  // --- typed ops ---
  Status ping();
  Status register_ring(const std::string& channel, const std::string& shm_name,
                       std::uint64_t capacity, const std::string& topic,
                       std::uint32_t partition);
  Result<ChannelLocation> lookup(const std::string& channel);
  Status unregister(const std::string& channel);
  Status create_topic(const std::string& topic, std::uint32_t partitions = 1);

  /// Fire-and-forget 'H' heartbeat for a channel (no reply frame).
  Status heartbeat(const std::string& channel);

  /// Socket produce path: 'B' batch out, 'C' {"offset"} back. Throttles
  /// come back as Status::Throttled with the broker's retry-after hint.
  Result<std::uint64_t> produce(const std::string& topic,
                                std::uint32_t partition,
                                std::vector<broker::Record> records,
                                const std::string& client_id = {});

  /// Socket fetch path: 'C' request out, 'B' batch back.
  Result<std::vector<broker::ConsumedRecord>> fetch(
      const std::string& topic, std::uint32_t partition, std::uint64_t offset,
      std::uint64_t max_records = 512, std::uint64_t max_bytes = 8ull << 20,
      const std::string& client_id = {});

  Status commit(const std::string& group, const std::string& topic,
                std::uint32_t partition, std::uint64_t offset);
  Result<std::optional<std::uint64_t>> committed(const std::string& group,
                                                 const std::string& topic,
                                                 std::uint32_t partition);
  Result<std::uint64_t> end_offset(const std::string& topic,
                                   std::uint32_t partition);

  /// Channels the control plane has GC'd as dead (cumulative).
  Result<std::vector<std::string>> dead_channels();

  FramedSocket& socket() { return socket_; }

 private:
  explicit ControlClient(FramedSocket socket) : socket_(std::move(socket)) {}

  FramedSocket socket_;
  Duration request_timeout_ = std::chrono::seconds(5);
};

}  // namespace pe::transport
