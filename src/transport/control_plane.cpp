#include "transport/control_plane.h"

#include <signal.h>

#include <cerrno>

#include "telemetry/metrics.h"
#include "transport/shm_ring.h"

namespace pe::transport {
namespace {

ControlMap error_reply(const Status& status) {
  ControlMap reply;
  status_to_reply(status, &reply);
  return reply;
}

ControlMap ok_reply() { return ControlMap{{"ok", "1"}}; }

}  // namespace

ControlPlane::ControlPlane(broker::Broker* broker, ControlPlaneOptions options)
    : broker_(broker), options_(options) {}

ControlPlane::~ControlPlane() { stop(); }

Status ControlPlane::start() {
  auto listener = FramedListener::listen_loopback(options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener.value());
  port_ = listener_.port();
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  gc_thread_ = std::thread([this] { gc_loop(); });
  return Status::Ok();
}

void ControlPlane::stop() {
  if (!running_.exchange(false)) return;
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (gc_thread_.joinable()) gc_thread_.join();
  std::vector<std::thread> conns;
  {
    MutexLock lock(conn_mutex_);
    conns.swap(conn_threads_);
  }
  for (auto& t : conns) {
    if (t.joinable()) t.join();
  }
}

void ControlPlane::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    auto accepted = listener_.accept(std::chrono::milliseconds(200));
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kTimeout) continue;
      // Listener closed (stop()) or hard error: exit the loop.
      return;
    }
    MutexLock lock(conn_mutex_);
    conn_threads_.emplace_back(
        [this, sock = std::make_shared<FramedSocket>(
                   std::move(accepted.value()))]() mutable {
          serve_connection(std::move(*sock));
        });
  }
}

void ControlPlane::gc_loop() {
  auto last = Clock::now();
  while (running_.load(std::memory_order_acquire)) {
    Clock::sleep_exact(std::chrono::milliseconds(20));
    if (Clock::now() - last < options_.gc_interval) continue;
    last = Clock::now();
    run_gc_once();
  }
}

void ControlPlane::serve_connection(FramedSocket socket) {
  while (running_.load(std::memory_order_acquire)) {
    auto frame = socket.recv_frame(std::chrono::milliseconds(200));
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kTimeout) continue;
      return;  // peer went away (UNAVAILABLE) or socket broke
    }
    switch (frame.value().type) {
      case kFrameHeartbeat: {
        const auto& p = frame.value().payload;
        note_heartbeat(std::string(reinterpret_cast<const char*>(p.data()),
                                   p.size()));
        break;  // no reply
      }
      case kFrameControl: {
        ControlMap request;
        ControlMap reply;
        if (auto s = parse_control(frame.value().payload, &request); !s.ok()) {
          reply = error_reply(s);
        } else if (request.count("op") != 0u && request.at("op") == "fetch") {
          // Fetch replies are binary frames; handle inline so the reply
          // type can differ from 'C'.
          std::string topic, client;
          std::uint64_t partition = 0, offset = 0;
          std::uint64_t max_records = 512, max_bytes = 8ull << 20;
          Status s = require_field(request, "topic", &topic);
          if (s.ok()) s = require_u64(request, "partition", &partition);
          if (s.ok()) s = require_u64(request, "offset", &offset);
          if (request.count("max_records") != 0u && s.ok()) {
            s = require_u64(request, "max_records", &max_records);
          }
          if (request.count("max_bytes") != 0u && s.ok()) {
            s = require_u64(request, "max_bytes", &max_bytes);
          }
          if (auto it = request.find("client"); it != request.end()) {
            client = it->second;
          }
          if (s.ok()) {
            broker::FetchSpec spec;
            spec.offset = offset;
            spec.max_records = static_cast<std::size_t>(max_records);
            spec.max_bytes = max_bytes;
            auto fetched = broker_->fetch(
                topic, static_cast<std::uint32_t>(partition), spec, client);
            if (fetched.ok()) {
              auto payload = encode_fetch_batch(
                  topic, static_cast<std::uint32_t>(partition),
                  fetched.value());
              (void)socket.send_frame(kFrameBinary, payload);
              continue;
            }
            s = fetched.status();
          }
          reply = error_reply(s);
        } else {
          reply = handle_control(request);
        }
        auto payload = encode_control(reply);
        if (auto s = socket.send_frame(kFrameControl, payload); !s.ok()) {
          return;
        }
        break;
      }
      case kFrameBinary: {
        // Produce batch over the socket path (WAN hop): decode, append,
        // reply with the first offset or the admission throttle.
        ProduceBatch batch;
        ControlMap reply;
        if (auto s = decode_produce_batch(frame.value().payload, &batch);
            !s.ok()) {
          reply = error_reply(s);
        } else {
          auto offset = broker_->produce(batch.topic, batch.partition,
                                         std::move(batch.records),
                                         batch.client_id);
          if (offset.ok()) {
            reply["offset"] = std::to_string(offset.value());
          } else {
            reply = error_reply(offset.status());
          }
        }
        auto payload = encode_control(reply);
        if (auto s = socket.send_frame(kFrameControl, payload); !s.ok()) {
          return;
        }
        break;
      }
      default:
        // Unknown type byte: drop the frame, keep the connection — the
        // vocabulary is open for extension.
        tel::MetricsRegistry::global()
            .counter("transport.unknown_frames")
            .add();
        break;
    }
  }
}

ControlMap ControlPlane::handle_control(const ControlMap& request) {
  std::string op;
  if (auto s = require_field(request, "op", &op); !s.ok()) {
    return error_reply(s);
  }
  if (op == "ping") return ok_reply();
  if (op == "register_ring") return op_register_ring(request);
  if (op == "lookup") return op_lookup(request);
  if (op == "unregister") return op_unregister(request);
  if (op == "create_topic") return op_create_topic(request);
  if (op == "commit") return op_commit(request);
  if (op == "committed") return op_committed(request);
  if (op == "end_offset") return op_end_offset(request);
  if (op == "events") return op_events(request);
  if (op == "stats") return op_stats(request);
  return error_reply(Status::InvalidArgument("unknown op '" + op + "'"));
}

ControlMap ControlPlane::op_register_ring(const ControlMap& req) {
  ChannelInfo info;
  std::uint64_t pid = 0, partition = 0;
  Status s = require_field(req, "channel", &info.name);
  if (s.ok()) s = require_field(req, "shm", &info.shm_name);
  if (s.ok()) s = require_u64(req, "capacity", &info.capacity);
  if (s.ok()) s = require_u64(req, "pid", &pid);
  if (s.ok()) s = require_field(req, "topic", &info.topic);
  if (s.ok()) s = require_u64(req, "partition", &partition);
  if (!s.ok()) return error_reply(s);
  info.producer_pid = pid;
  info.partition = static_cast<std::uint32_t>(partition);
  info.registered_ns = Clock::now_ns();

  // The channel's topic is created on demand so a producer can register
  // before any admin step ran.
  if (!broker_->has_topic(info.topic)) {
    (void)broker_->create_topic(info.topic, broker::TopicConfig{});
  }

  MutexLock lock(mutex_);
  auto [it, inserted] = channels_.emplace(info.name, info);
  if (!inserted) {
    if (it->second.state == ChannelInfo::State::kLive) {
      return error_reply(Status::AlreadyExists("channel '" + info.name +
                                               "' already registered"));
    }
    it->second = info;  // re-registration over a closed/dead channel
  }
  control_heartbeat_ns_[info.name] = Clock::now_ns();
  tel::MetricsRegistry::global().counter("transport.channels_registered")
      .add();
  return ok_reply();
}

ControlMap ControlPlane::op_lookup(const ControlMap& req) {
  std::string channel;
  if (auto s = require_field(req, "channel", &channel); !s.ok()) {
    return error_reply(s);
  }
  MutexLock lock(mutex_);
  auto it = channels_.find(channel);
  if (it == channels_.end()) {
    return error_reply(Status::NotFound("channel '" + channel + "'"));
  }
  ControlMap reply = ok_reply();
  reply["shm"] = it->second.shm_name;
  reply["capacity"] = std::to_string(it->second.capacity);
  reply["topic"] = it->second.topic;
  reply["partition"] = std::to_string(it->second.partition);
  reply["pid"] = std::to_string(it->second.producer_pid);
  reply["state"] = std::string(to_string(it->second.state));
  return reply;
}

ControlMap ControlPlane::op_unregister(const ControlMap& req) {
  std::string channel;
  if (auto s = require_field(req, "channel", &channel); !s.ok()) {
    return error_reply(s);
  }
  MutexLock lock(mutex_);
  auto it = channels_.find(channel);
  if (it == channels_.end()) {
    return error_reply(Status::NotFound("channel '" + channel + "'"));
  }
  it->second.state = ChannelInfo::State::kClosed;
  return ok_reply();
}

ControlMap ControlPlane::op_create_topic(const ControlMap& req) {
  std::string topic;
  std::uint64_t partitions = 1;
  Status s = require_field(req, "topic", &topic);
  if (s.ok() && req.count("partitions") != 0u) {
    s = require_u64(req, "partitions", &partitions);
  }
  if (!s.ok()) return error_reply(s);
  broker::TopicConfig config;
  config.partitions = static_cast<std::uint32_t>(partitions);
  auto created = broker_->create_topic(topic, config);
  if (!created.ok() && created.code() != StatusCode::kAlreadyExists) {
    return error_reply(created);
  }
  return ok_reply();
}

ControlMap ControlPlane::op_commit(const ControlMap& req) {
  std::string group, topic;
  std::uint64_t partition = 0, offset = 0;
  Status s = require_field(req, "group", &group);
  if (s.ok()) s = require_field(req, "topic", &topic);
  if (s.ok()) s = require_u64(req, "partition", &partition);
  if (s.ok()) s = require_u64(req, "offset", &offset);
  if (!s.ok()) return error_reply(s);
  auto committed = broker_->coordinator().commit_offset(
      group, broker::TopicPartition{topic, static_cast<std::uint32_t>(partition)},
      offset);
  if (!committed.ok()) return error_reply(committed);
  return ok_reply();
}

ControlMap ControlPlane::op_committed(const ControlMap& req) {
  std::string group, topic;
  std::uint64_t partition = 0;
  Status s = require_field(req, "group", &group);
  if (s.ok()) s = require_field(req, "topic", &topic);
  if (s.ok()) s = require_u64(req, "partition", &partition);
  if (!s.ok()) return error_reply(s);
  auto offset = broker_->coordinator().committed_offset(
      group,
      broker::TopicPartition{topic, static_cast<std::uint32_t>(partition)});
  ControlMap reply = ok_reply();
  if (offset.has_value()) {
    reply["offset"] = std::to_string(*offset);
  } else {
    reply["none"] = "1";
  }
  return reply;
}

ControlMap ControlPlane::op_end_offset(const ControlMap& req) {
  std::string topic;
  std::uint64_t partition = 0;
  Status s = require_field(req, "topic", &topic);
  if (s.ok()) s = require_u64(req, "partition", &partition);
  if (!s.ok()) return error_reply(s);
  auto end = broker_->end_offset(topic, static_cast<std::uint32_t>(partition));
  if (!end.ok()) return error_reply(end.status());
  ControlMap reply = ok_reply();
  reply["offset"] = std::to_string(end.value());
  return reply;
}

ControlMap ControlPlane::op_events(const ControlMap&) {
  MutexLock lock(mutex_);
  std::string joined;
  for (const auto& name : dead_log_) {
    if (!joined.empty()) joined.push_back(',');
    joined += name;
  }
  ControlMap reply = ok_reply();
  reply["dead_channels"] = joined;
  return reply;
}

ControlMap ControlPlane::op_stats(const ControlMap&) {
  MutexLock lock(mutex_);
  std::size_t live = 0, closed = 0, dead = 0;
  for (const auto& [name, info] : channels_) {
    switch (info.state) {
      case ChannelInfo::State::kLive: ++live; break;
      case ChannelInfo::State::kClosed: ++closed; break;
      case ChannelInfo::State::kDead: ++dead; break;
    }
  }
  ControlMap reply = ok_reply();
  reply["channels_live"] = std::to_string(live);
  reply["channels_closed"] = std::to_string(closed);
  reply["channels_dead"] = std::to_string(dead);
  reply["gc_passes"] = std::to_string(gc_passes_);
  return reply;
}

void ControlPlane::note_heartbeat(const std::string& channel) {
  MutexLock lock(mutex_);
  control_heartbeat_ns_[channel] = Clock::now_ns();
}

std::size_t ControlPlane::run_gc_once() {
  // Snapshot the live channels, probe their rings with the registry lock
  // released (open_monitor maps a file), then re-take it to apply.
  std::vector<ChannelInfo> live;
  std::vector<ChannelInfo> closed_pending;
  {
    MutexLock lock(mutex_);
    gc_passes_ += 1;
    for (const auto& [name, info] : channels_) {
      if (info.state == ChannelInfo::State::kLive) {
        live.push_back(info);
      } else if (info.state == ChannelInfo::State::kClosed &&
                 !info.unlinked) {
        closed_pending.push_back(info);
      }
    }
  }

  const auto timeout_ns = static_cast<std::uint64_t>(
      options_.heartbeat_timeout.count());
  auto& reg = tel::MetricsRegistry::global();
  std::size_t declared_dead = 0;

  for (const auto& info : live) {
    bool closed = false;
    bool stale = false;
    auto ring = ShmRing::open_monitor(info.shm_name);
    if (ring.ok()) {
      closed = ring.value()->producer_closed();
      stale = ring.value()->heartbeat_age_ns() > timeout_ns;
    } else {
      // Ring vanished under us (producer crashed before or during
      // registration cleanup): treat as stale.
      stale = true;
    }
    if (closed) {
      MutexLock lock(mutex_);
      auto it = channels_.find(info.name);
      if (it != channels_.end() &&
          it->second.state == ChannelInfo::State::kLive) {
        it->second.state = ChannelInfo::State::kClosed;
      }
      continue;
    }
    if (!stale) continue;

    reg.counter("transport.heartbeat_misses").add();
    // A stale heartbeat alone is not death — a stalled-but-alive producer
    // (paused in a debugger, long GC) keeps its ring. Only a confirmed
    // dead pid is collected.
    const pid_t pid = static_cast<pid_t>(info.producer_pid);
    const bool pid_gone =
        pid <= 0 || (::kill(pid, 0) != 0 && errno == ESRCH);
    if (!pid_gone) continue;

    if (options_.unlink_dead_rings) {
      (void)ShmRing::unlink(info.shm_name);
    }
    {
      MutexLock lock(mutex_);
      auto it = channels_.find(info.name);
      if (it == channels_.end() ||
          it->second.state != ChannelInfo::State::kLive) {
        continue;
      }
      it->second.state = ChannelInfo::State::kDead;
      it->second.unlinked = options_.unlink_dead_rings;
      dead_log_.push_back(info.name);
    }
    reg.counter("transport.dead_producer_gcs").add();
    declared_dead += 1;
  }

  // Cleanly closed rings: once the producer process itself has exited,
  // nothing will re-open the name — reclaim the shm object. A consumer
  // still draining keeps its mapping; unlink only removes the name.
  if (options_.unlink_dead_rings) {
    for (const auto& info : closed_pending) {
      const pid_t pid = static_cast<pid_t>(info.producer_pid);
      const bool pid_gone =
          pid <= 0 || (::kill(pid, 0) != 0 && errno == ESRCH);
      if (!pid_gone) continue;
      (void)ShmRing::unlink(info.shm_name);
      MutexLock lock(mutex_);
      auto it = channels_.find(info.name);
      if (it != channels_.end() &&
          it->second.state == ChannelInfo::State::kClosed) {
        it->second.unlinked = true;
        reg.counter("transport.closed_ring_unlinks").add();
      }
    }
  }
  return declared_dead;
}

std::vector<ChannelInfo> ControlPlane::channels() const {
  MutexLock lock(mutex_);
  std::vector<ChannelInfo> out;
  out.reserve(channels_.size());
  for (const auto& [name, info] : channels_) out.push_back(info);
  return out;
}

std::vector<std::string> ControlPlane::dead_channels() const {
  MutexLock lock(mutex_);
  return dead_log_;
}

}  // namespace pe::transport
