// Universal frame vocabulary + control/data payload codecs for the
// transport layer.
//
// Every frame on a transport socket is:
//
//   1 ASCII type byte | u32 length (LE) | payload[length]
//
// following the universal-framing table (DESIGN.md §12):
//
//   'C' (0x43)  control — flat JSON object ({"op":"register", ...})
//   'B' (0x42)  binary data — record batches (ByteWriter encoding below)
//   'H' (0x48)  heartbeat — payload is the channel name
//
// Unknown type bytes are logged and dropped by receivers, so new types
// can be added without breaking old peers.
//
// Control payloads are *flat* JSON objects: string keys, values that are
// strings, numbers, or booleans — parsed into a string->string map. That
// is deliberately all the structure the control plane needs (pylabhub's
// broker protocol is the same shape), and it keeps the parser ~100 lines
// with no dependency.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "broker/record.h"
#include "common/serialize.h"
#include "common/status.h"

namespace pe::transport {

// Frame type bytes (the universal-framing table).
inline constexpr char kFrameControl = 'C';
inline constexpr char kFrameBinary = 'B';
inline constexpr char kFrameHeartbeat = 'H';

/// Flat control message: {"op":"lookup","channel":"sensors"}.
using ControlMap = std::map<std::string, std::string>;

/// Serializes a flat map as a JSON object (keys sorted — map order).
/// Values are emitted as JSON strings with escaping; parse_control
/// accepts both strings and bare numbers/booleans, so the round trip is
/// shape-insensitive.
Bytes encode_control(const ControlMap& msg);

/// Parses a flat JSON object. Nested objects/arrays are rejected
/// (INVALID_ARGUMENT) — control messages are flat by contract. Number,
/// boolean, and null values are stored as their literal text.
Status parse_control(ByteSpan payload, ControlMap* out);

/// Fetches a required key; INVALID_ARGUMENT when missing.
Status require_field(const ControlMap& msg, const std::string& key,
                     std::string* out);
Status require_u64(const ControlMap& msg, const std::string& key,
                   std::uint64_t* out);

// --- status <-> control-map mapping (error replies) ---

/// Encodes a failure as reply fields: {"error": message, "code": "...",
/// "retry_after_ns": "..."} (retry hint only when the status carries one).
void status_to_reply(const Status& status, ControlMap* reply);

/// Reconstructs a Status from an error reply; OK when the reply carries
/// no "error" key. Throttle replies round-trip their retry-after hint.
Status status_from_reply(const ControlMap& reply);

// --- record batch codec ('B' frames) ---

/// Produce request payload:
///   string topic | u32 partition | string client_id | u32 count |
///   per record: string key | u64 client_ts_ns | bytes value
struct ProduceBatch {
  std::string topic;
  std::uint32_t partition = 0;
  std::string client_id;
  std::vector<broker::Record> records;
};

Bytes encode_produce_batch(const ProduceBatch& batch);
Status decode_produce_batch(ByteSpan payload, ProduceBatch* out);

/// Fetch reply payload:
///   string topic | u32 partition | u32 count |
///   per record: u64 offset | u64 broker_ts_ns | string key |
///               u64 client_ts_ns | bytes value
Bytes encode_fetch_batch(const std::string& topic, std::uint32_t partition,
                         const std::vector<broker::ConsumedRecord>& records);
Status decode_fetch_batch(ByteSpan payload,
                          std::vector<broker::ConsumedRecord>* out);

}  // namespace pe::transport
