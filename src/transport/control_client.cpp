#include "transport/control_client.h"

#include <unistd.h>

namespace pe::transport {

Result<ControlClient> ControlClient::connect(std::uint16_t port,
                                             Duration timeout) {
  auto socket = FramedSocket::connect_loopback(port, timeout);
  if (!socket.ok()) return socket.status();
  return ControlClient(std::move(socket.value()));
}

Result<ControlMap> ControlClient::request(const ControlMap& req) {
  if (!socket_.valid()) return Status::FailedPrecondition("client closed");
  auto payload = encode_control(req);
  if (auto s = socket_.send_frame(kFrameControl, payload); !s.ok()) return s;
  auto frame = socket_.recv_frame(request_timeout_);
  if (!frame.ok()) return frame.status();
  if (frame.value().type != kFrameControl) {
    return Status::Internal("expected control reply, got frame type '" +
                            std::string(1, frame.value().type) + "'");
  }
  ControlMap reply;
  if (auto s = parse_control(frame.value().payload, &reply); !s.ok()) {
    return s;
  }
  if (auto s = status_from_reply(reply); !s.ok()) return s;
  return reply;
}

Status ControlClient::ping() {
  return request({{"op", "ping"}}).status();
}

Status ControlClient::register_ring(const std::string& channel,
                                    const std::string& shm_name,
                                    std::uint64_t capacity,
                                    const std::string& topic,
                                    std::uint32_t partition) {
  return request({{"op", "register_ring"},
                  {"channel", channel},
                  {"shm", shm_name},
                  {"capacity", std::to_string(capacity)},
                  {"pid", std::to_string(::getpid())},
                  {"topic", topic},
                  {"partition", std::to_string(partition)}})
      .status();
}

Result<ChannelLocation> ControlClient::lookup(const std::string& channel) {
  auto reply = request({{"op", "lookup"}, {"channel", channel}});
  if (!reply.ok()) return reply.status();
  ChannelLocation loc;
  Status s = require_field(reply.value(), "shm", &loc.shm_name);
  if (s.ok()) s = require_u64(reply.value(), "capacity", &loc.capacity);
  if (s.ok()) s = require_field(reply.value(), "topic", &loc.topic);
  std::uint64_t partition = 0, pid = 0;
  if (s.ok()) s = require_u64(reply.value(), "partition", &partition);
  if (s.ok()) s = require_u64(reply.value(), "pid", &pid);
  if (s.ok()) s = require_field(reply.value(), "state", &loc.state);
  if (!s.ok()) return s;
  loc.partition = static_cast<std::uint32_t>(partition);
  loc.producer_pid = pid;
  return loc;
}

Status ControlClient::unregister(const std::string& channel) {
  return request({{"op", "unregister"}, {"channel", channel}}).status();
}

Status ControlClient::create_topic(const std::string& topic,
                                   std::uint32_t partitions) {
  return request({{"op", "create_topic"},
                  {"topic", topic},
                  {"partitions", std::to_string(partitions)}})
      .status();
}

Status ControlClient::heartbeat(const std::string& channel) {
  if (!socket_.valid()) return Status::FailedPrecondition("client closed");
  ByteSpan payload(reinterpret_cast<const std::uint8_t*>(channel.data()),
                   channel.size());
  return socket_.send_frame(kFrameHeartbeat, payload);
}

Result<std::uint64_t> ControlClient::produce(
    const std::string& topic, std::uint32_t partition,
    std::vector<broker::Record> records, const std::string& client_id) {
  if (!socket_.valid()) return Status::FailedPrecondition("client closed");
  ProduceBatch batch;
  batch.topic = topic;
  batch.partition = partition;
  batch.client_id = client_id;
  batch.records = std::move(records);
  auto payload = encode_produce_batch(batch);
  if (auto s = socket_.send_frame(kFrameBinary, payload); !s.ok()) return s;
  auto frame = socket_.recv_frame(request_timeout_);
  if (!frame.ok()) return frame.status();
  if (frame.value().type != kFrameControl) {
    return Status::Internal("expected control reply to produce");
  }
  ControlMap reply;
  if (auto s = parse_control(frame.value().payload, &reply); !s.ok()) return s;
  if (auto s = status_from_reply(reply); !s.ok()) return s;
  std::uint64_t offset = 0;
  if (auto s = require_u64(reply, "offset", &offset); !s.ok()) return s;
  return offset;
}

Result<std::vector<broker::ConsumedRecord>> ControlClient::fetch(
    const std::string& topic, std::uint32_t partition, std::uint64_t offset,
    std::uint64_t max_records, std::uint64_t max_bytes,
    const std::string& client_id) {
  if (!socket_.valid()) return Status::FailedPrecondition("client closed");
  ControlMap req{{"op", "fetch"},
                 {"topic", topic},
                 {"partition", std::to_string(partition)},
                 {"offset", std::to_string(offset)},
                 {"max_records", std::to_string(max_records)},
                 {"max_bytes", std::to_string(max_bytes)}};
  if (!client_id.empty()) req["client"] = client_id;
  auto payload = encode_control(req);
  if (auto s = socket_.send_frame(kFrameControl, payload); !s.ok()) return s;
  auto frame = socket_.recv_frame(request_timeout_);
  if (!frame.ok()) return frame.status();
  if (frame.value().type == kFrameControl) {
    // Error reply.
    ControlMap reply;
    if (auto s = parse_control(frame.value().payload, &reply); !s.ok()) {
      return s;
    }
    if (auto s = status_from_reply(reply); !s.ok()) return s;
    return Status::Internal("fetch reply missing batch frame");
  }
  if (frame.value().type != kFrameBinary) {
    return Status::Internal("unexpected fetch reply frame type");
  }
  std::vector<broker::ConsumedRecord> out;
  if (auto s = decode_fetch_batch(frame.value().payload, &out); !s.ok()) {
    return s;
  }
  return out;
}

Status ControlClient::commit(const std::string& group, const std::string& topic,
                             std::uint32_t partition, std::uint64_t offset) {
  return request({{"op", "commit"},
                  {"group", group},
                  {"topic", topic},
                  {"partition", std::to_string(partition)},
                  {"offset", std::to_string(offset)}})
      .status();
}

Result<std::optional<std::uint64_t>> ControlClient::committed(
    const std::string& group, const std::string& topic,
    std::uint32_t partition) {
  auto reply = request({{"op", "committed"},
                        {"group", group},
                        {"topic", topic},
                        {"partition", std::to_string(partition)}});
  if (!reply.ok()) return reply.status();
  if (reply.value().count("none") != 0u) {
    return std::optional<std::uint64_t>{};
  }
  std::uint64_t offset = 0;
  if (auto s = require_u64(reply.value(), "offset", &offset); !s.ok()) {
    return s;
  }
  return std::optional<std::uint64_t>{offset};
}

Result<std::uint64_t> ControlClient::end_offset(const std::string& topic,
                                                std::uint32_t partition) {
  auto reply = request({{"op", "end_offset"},
                        {"topic", topic},
                        {"partition", std::to_string(partition)}});
  if (!reply.ok()) return reply.status();
  std::uint64_t offset = 0;
  if (auto s = require_u64(reply.value(), "offset", &offset); !s.ok()) {
    return s;
  }
  return offset;
}

Result<std::vector<std::string>> ControlClient::dead_channels() {
  auto reply = request({{"op", "events"}});
  if (!reply.ok()) return reply.status();
  std::vector<std::string> out;
  auto it = reply.value().find("dead_channels");
  if (it == reply.value().end() || it->second.empty()) return out;
  std::size_t start = 0;
  while (start <= it->second.size()) {
    auto comma = it->second.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(it->second.substr(start));
      break;
    }
    out.push_back(it->second.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace pe::transport
