// ControlPlane: the broker side of the transport layer.
//
// Control/data-plane separation (DESIGN.md §12, after pylabhub): the
// broker never moves bulk data over its control socket. Producers
// register a *channel* — a named shared-memory ring — with the broker;
// consumers look the channel up and map the ring directly. What does run
// over the control socket is small and latency-tolerant: registration,
// lookup, heartbeats, offset commits, and (for WAN-style hops where shm
// is impossible) framed produce/fetch batches.
//
// The control plane also owns producer liveness: every registered ring
// carries a producer heartbeat slot; a GC pass flags channels whose
// heartbeat went stale, confirms the producer process is actually gone
// (kill(pid, 0) == ESRCH), unlinks the stale shm object, and queues a
// dead-channel event that subscribers pick up on their next events poll.
//
// Protocol (all frames per wire.h):
//   'C' {"op": ...}            request -> 'C' reply (error fields on failure)
//   'B' produce batch          -> 'C' {"offset": N} reply
//   'C' {"op":"fetch", ...}    -> 'B' fetch batch (or 'C' error reply)
//   'H' <channel name>         producer heartbeat, no reply
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "transport/framed_socket.h"
#include "transport/wire.h"

namespace pe::transport {

struct ControlPlaneOptions {
  /// TCP port for the control listener; 0 = ephemeral (read back via
  /// port()).
  std::uint16_t port = 0;
  /// A producer whose ring heartbeat is older than this is a GC
  /// candidate (real wall time — the peer is a real OS process).
  Duration heartbeat_timeout = std::chrono::seconds(2);
  /// Background GC cadence.
  Duration gc_interval = std::chrono::milliseconds(500);
  /// Unlink the shm object of a dead channel (tests disable this to
  /// inspect the corpse).
  bool unlink_dead_rings = true;
};

/// One registered channel: a named shm ring plus its producer identity.
struct ChannelInfo {
  enum class State { kLive, kClosed, kDead };

  std::string name;
  std::string shm_name;
  std::uint64_t capacity = 0;
  std::uint64_t producer_pid = 0;
  std::string topic;
  std::uint32_t partition = 0;
  std::uint64_t registered_ns = 0;
  State state = State::kLive;
  /// The GC already shm_unlink'ed this ring (dead producer, or closed
  /// ring whose producer exited). Existing mappings stay valid.
  bool unlinked = false;
};

constexpr std::string_view to_string(ChannelInfo::State s) {
  switch (s) {
    case ChannelInfo::State::kLive: return "live";
    case ChannelInfo::State::kClosed: return "closed";
    case ChannelInfo::State::kDead: return "dead";
  }
  return "unknown";
}

class ControlPlane {
 public:
  /// `broker` must outlive the control plane; it serves the socket-path
  /// produce/fetch/commit ops.
  ControlPlane(broker::Broker* broker, ControlPlaneOptions options = {});
  ~ControlPlane();
  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Binds the listener and starts the accept + GC threads.
  Status start();
  void stop();

  std::uint16_t port() const { return port_; }

  /// One synchronous GC pass (also what the background thread runs).
  /// Returns the number of channels declared dead this pass.
  std::size_t run_gc_once();

  /// Registry snapshot (tests / stats op).
  std::vector<ChannelInfo> channels() const;

  /// Channels declared dead since process start, in GC order.
  std::vector<std::string> dead_channels() const;

  // Exposed for in-process tests: dispatch one already-parsed request
  // exactly as a connection handler would.
  ControlMap handle_control(const ControlMap& request);

 private:
  void accept_loop();
  void gc_loop();
  void serve_connection(FramedSocket socket);

  ControlMap op_register_ring(const ControlMap& req);
  ControlMap op_lookup(const ControlMap& req);
  ControlMap op_unregister(const ControlMap& req);
  ControlMap op_create_topic(const ControlMap& req);
  ControlMap op_commit(const ControlMap& req);
  ControlMap op_committed(const ControlMap& req);
  ControlMap op_end_offset(const ControlMap& req);
  ControlMap op_events(const ControlMap& req);
  ControlMap op_stats(const ControlMap& req);

  void note_heartbeat(const std::string& channel);

  broker::Broker* const broker_;
  const ControlPlaneOptions options_;
  FramedListener listener_;
  std::uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::thread gc_thread_;
  // Handler threads for accepted connections, joined on stop().
  mutable Mutex conn_mutex_{"transport.control.conns"};
  std::vector<std::thread> conn_threads_ PE_GUARDED_BY(conn_mutex_);

  mutable Mutex mutex_{"transport.control.registry"};
  std::map<std::string, ChannelInfo> channels_ PE_GUARDED_BY(mutex_);
  std::vector<std::string> dead_log_ PE_GUARDED_BY(mutex_);
  // Per-channel wall-clock time of the last 'H' frame seen on the
  // control socket (a second liveness signal next to the ring slot).
  std::map<std::string, std::uint64_t> control_heartbeat_ns_
      PE_GUARDED_BY(mutex_);
  std::uint64_t gc_passes_ PE_GUARDED_BY(mutex_) = 0;
};

}  // namespace pe::transport
