#include "scenario/fleet.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "telemetry/metrics.h"

namespace pe::scenario {
namespace {

double seconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

FleetGenerator::FleetGenerator(FleetConfig config,
                               std::shared_ptr<broker::Broker> broker)
    : config_(std::move(config)), broker_(std::move(broker)) {}

std::uint32_t FleetGenerator::partition_for(std::size_t device) const {
  const auto n = std::max<std::uint32_t>(1, config_.partitions);
  if (n == 1) return 0;
  const auto hot = static_cast<std::size_t>(
      config_.hot_device_share * static_cast<double>(config_.devices));
  if (device < hot) return 0;  // the skewed head of the fleet
  return 1 + static_cast<std::uint32_t>(device % (n - 1));
}

void FleetGenerator::observe_hot_window() {
  const std::uint64_t hot = broker_->hot_window_bytes();
  std::uint64_t seen = max_hot_.load(std::memory_order_relaxed);
  while (hot > seen &&
         !max_hot_.compare_exchange_weak(seen, hot,
                                         std::memory_order_relaxed)) {
  }
  tel::MetricsRegistry::global()
      .gauge("fleet.hot_window_bytes")
      .set(static_cast<double>(hot));
}

void FleetGenerator::send_with_retry(std::uint32_t partition,
                                     std::vector<broker::Record> records,
                                     const std::string& client) {
  if (records.empty()) return;
  const auto count = static_cast<std::uint64_t>(records.size());
  Status last = Status::Ok();
  for (std::size_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
    // Copies share the payload views: per-attempt cost is keys only.
    std::vector<broker::Record> copy = records;
    auto sent = broker_->produce(config_.topic, partition, std::move(copy),
                                 client);
    if (sent.ok()) {
      acked_.fetch_add(count, std::memory_order_relaxed);
      batches_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    last = sent.status();
    if (!last.is_transient()) break;
    throttled_.fetch_add(1, std::memory_order_relaxed);
    // Backpressure: wait out the broker's hint (emulated) and retry.
    Duration wait = last.retry_after();
    if (wait <= Duration::zero()) wait = std::chrono::milliseconds(1);
    Clock::sleep_scaled(wait);
  }
  dropped_.fetch_add(count, std::memory_order_relaxed);
  PE_LOG_WARN("fleet: dropped batch of " << count << " records on partition "
                                         << partition << ": "
                                         << last.to_string());
}

void FleetGenerator::sender_loop(std::size_t thread_index,
                                 std::size_t device_lo,
                                 std::size_t device_hi) {
  if (device_lo >= device_hi) return;
  const std::string client = "fleet-sender-" + std::to_string(thread_index);
  const double tick_s = seconds(config_.tick);
  const double duration_s = seconds(config_.duration);
  const double period_s = std::max(1e-9, seconds(config_.diurnal_period));
  const auto range = static_cast<double>(device_hi - device_lo);

  // One shared payload for the whole run: every record is a view onto it,
  // so generating 100k+ records/s does not allocate per record.
  Bytes body(config_.payload_bytes, static_cast<std::uint8_t>(0xA5));
  const broker::Payload payload(std::move(body));

  double credit = 0.0;
  std::size_t cursor = 0;
  std::vector<std::vector<broker::Record>> batches(
      std::max<std::uint32_t>(1, config_.partitions));

  for (double t = 0.0; t < duration_s; t += tick_s) {
    double rate = config_.mean_rate_hz *
                  (1.0 + config_.diurnal_amplitude *
                             std::sin(2.0 * M_PI * t / period_s));
    const double phase = std::fmod(t, period_s) / period_s;
    if (phase < config_.burst_duty) rate *= config_.burst_factor;
    rate = std::max(0.0, rate);

    credit += range * rate * tick_s;
    auto emit = static_cast<std::uint64_t>(credit);
    credit -= static_cast<double>(emit);

    const std::uint64_t stamp = Clock::now_ns();
    for (std::uint64_t i = 0; i < emit; ++i) {
      const std::size_t device =
          device_lo + (cursor++ % (device_hi - device_lo));
      broker::Record r;
      r.key = "d" + std::to_string(device);
      r.value = payload;
      r.client_timestamp_ns = stamp;
      batches[partition_for(device)].push_back(std::move(r));
    }
    generated_.fetch_add(emit, std::memory_order_relaxed);
    for (std::uint32_t p = 0; p < batches.size(); ++p) {
      if (batches[p].empty()) continue;
      send_with_retry(p, std::move(batches[p]), client);
      batches[p].clear();
    }
    observe_hot_window();
    Clock::sleep_scaled(config_.tick);
  }
}

std::uint64_t FleetGenerator::total_end_offsets() const {
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    auto end = broker_->end_offset(config_.topic, p);
    if (end.ok()) total += end.value();
  }
  return total;
}

void FleetGenerator::consumer_loop() {
  const std::uint32_t n = std::max<std::uint32_t>(1, config_.partitions);
  std::vector<std::uint64_t> positions(n, 0);
  const auto drain_deadline =
      Clock::now() + std::chrono::duration_cast<Duration>(
                         (config_.duration + config_.drain_timeout) /
                         Clock::time_scale());
  auto& lag_gauge = tel::MetricsRegistry::global().gauge("fleet.consumer_lag");
  while (true) {
    bool any = false;
    for (std::uint32_t p = 0; p < n; ++p) {
      broker::FetchSpec spec;
      spec.offset = positions[p];
      spec.max_records = 4096;
      spec.max_bytes = 8ull << 20;
      spec.max_wait = Duration::zero();
      auto fetched = broker_->fetch(config_.topic, p, spec);
      if (!fetched.ok() || fetched.value().empty()) continue;
      any = true;
      const std::uint64_t now = Clock::now_ns();
      const double scale = Clock::time_scale();
      for (const auto& rec : fetched.value()) {
        // Wall elapsed * time_scale = emulated elapsed (the whole run is
        // sped up uniformly, so latency scales back up the same way).
        const double wall_ns = static_cast<double>(
            now - std::min(now, rec.record.client_timestamp_ns));
        e2e_ms_.push_back(wall_ns * scale / 1e6);
      }
      positions[p] = fetched.value().back().offset + 1;
      consumed_.fetch_add(fetched.value().size(), std::memory_order_relaxed);
    }
    observe_hot_window();
    const std::uint64_t consumed = consumed_.load(std::memory_order_relaxed);
    const std::uint64_t produced = total_end_offsets();
    lag_gauge.set(static_cast<double>(produced - std::min(produced, consumed)));
    if (senders_done_.load(std::memory_order_acquire)) {
      if (consumed >= total_end_offsets()) return;  // fully drained
      if (Clock::now() >= drain_deadline) return;   // give up: final_lag > 0
    }
    if (!any) Clock::sleep_scaled(config_.tick / 2);
  }
}

Result<FleetReport> FleetGenerator::run() {
  if (config_.devices == 0 || config_.sender_threads == 0) {
    return Status::InvalidArgument("fleet needs devices and sender threads");
  }
  if (!broker_->has_topic(config_.topic)) {
    broker::TopicConfig tc;
    tc.partitions = std::max<std::uint32_t>(1, config_.partitions);
    tc.retention = config_.retention;
    if (auto s = broker_->create_topic(config_.topic, tc); !s.ok()) return s;
  }

  Stopwatch sw;
  std::thread consumer([this] { consumer_loop(); });
  std::vector<std::thread> senders;
  const std::size_t per =
      (config_.devices + config_.sender_threads - 1) / config_.sender_threads;
  for (std::size_t i = 0; i < config_.sender_threads; ++i) {
    const std::size_t lo = std::min(config_.devices, i * per);
    const std::size_t hi = std::min(config_.devices, lo + per);
    senders.emplace_back(
        [this, i, lo, hi] { sender_loop(i, lo, hi); });
  }
  for (auto& t : senders) t.join();
  senders_done_.store(true, std::memory_order_release);
  consumer.join();

  FleetReport report;
  report.records_generated = generated_.load(std::memory_order_relaxed);
  report.records_acked = acked_.load(std::memory_order_relaxed);
  report.batches_sent = batches_.load(std::memory_order_relaxed);
  report.throttled_sends = throttled_.load(std::memory_order_relaxed);
  report.dropped_records = dropped_.load(std::memory_order_relaxed);
  report.records_consumed = consumed_.load(std::memory_order_relaxed);
  report.max_hot_window_bytes = max_hot_.load(std::memory_order_relaxed);
  const std::uint64_t produced = total_end_offsets();
  report.final_lag =
      produced - std::min(produced, report.records_consumed);
  report.wall_seconds = sw.elapsed_seconds();

  std::sort(e2e_ms_.begin(), e2e_ms_.end());
  report.e2e_p50_ms = percentile(e2e_ms_, 0.50);
  report.e2e_p99_ms = percentile(e2e_ms_, 0.99);
  report.e2e_max_ms = e2e_ms_.empty() ? 0.0 : e2e_ms_.back();
  tel::MetricsRegistry::global()
      .gauge("fleet.e2e_p99_ms")
      .set(report.e2e_p99_ms);
  return report;
}

}  // namespace pe::scenario
