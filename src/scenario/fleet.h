// Device-fleet load generator: 100k+ simulated edge devices multiplexed
// onto a handful of sender threads, driving one broker with bursty,
// diurnally-modulated arrivals and hot-partition skew.
//
// The point is NOT one thread per device (the paper's fleets are far past
// that): each sender thread owns a contiguous device range and converts
// the range's aggregate arrival rate into records per tick using
// fractional credits, so a 100k-device fleet costs the same thread count
// as a 100-device one. Arrival rate per device follows
//
//   rate(t) = mean_rate_hz * (1 + diurnal_amplitude * sin(2*pi*t/period))
//             * (burst_factor   while the leading `burst_duty` fraction
//                               of each period — the synchronized burst)
//
// and a `hot_device_share` fraction of devices is pinned to partition 0,
// reproducing the skewed partition heat the admission layer exists for.
//
// Senders push through Broker::produce with a per-thread client id and
// honor backpressure: a transient throttle (quota / hot-window cap) waits
// out the broker's retry-after hint and retries — acked records are never
// lost, which the run report can prove (records_consumed == records_acked
// after drain). A concurrent consumer drains every partition, measuring
// end-to-end latency from each record's client timestamp and the fleet's
// consumer lag.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "broker/broker.h"

namespace pe::scenario {

struct FleetConfig {
  /// Simulated device count (fan-in), multiplexed over sender_threads.
  std::size_t devices = 100'000;
  std::size_t sender_threads = 4;
  std::string topic = "fleet";
  std::uint32_t partitions = 8;
  /// Retention applied at topic creation; set retention.hot_max_bytes on
  /// a durable broker so the hot window can drain under a memory cap.
  broker::RetentionPolicy retention;
  /// Fraction of devices pinned to partition 0 (hot-partition skew); the
  /// remainder spread uniformly over the other partitions.
  double hot_device_share = 0.25;
  /// Per-device mean emission rate in emulated records/second.
  double mean_rate_hz = 1.0;
  /// Diurnal modulation: amplitude in [0,1) and emulated period.
  double diurnal_amplitude = 0.6;
  Duration diurnal_period = std::chrono::seconds(1);
  /// Synchronized burst: rate multiplier during the leading `burst_duty`
  /// fraction of every diurnal period.
  double burst_factor = 4.0;
  double burst_duty = 0.1;
  std::size_t payload_bytes = 64;
  /// Emulated generation time and tick granularity.
  Duration duration = std::chrono::seconds(2);
  Duration tick = std::chrono::milliseconds(10);
  /// Throttle retries per batch before counting its records as dropped
  /// (a drop here is a generator failure — zero is the acceptance bar).
  std::size_t max_retries = 256;
  /// Emulated budget for the post-generation consumer drain.
  Duration drain_timeout = std::chrono::seconds(10);
};

struct FleetReport {
  std::uint64_t records_generated = 0;
  /// Records the broker acked (every one must be consumable afterwards).
  std::uint64_t records_acked = 0;
  std::uint64_t batches_sent = 0;
  /// Transient throttle rejections observed by senders (each one waited
  /// out the broker's retry-after hint and retried).
  std::uint64_t throttled_sends = 0;
  /// Records abandoned after max_retries or a permanent error. Must be 0
  /// for a healthy run.
  std::uint64_t dropped_records = 0;
  std::uint64_t records_consumed = 0;
  /// Producer-to-consumer latency in emulated milliseconds.
  double e2e_p50_ms = 0.0;
  double e2e_p99_ms = 0.0;
  double e2e_max_ms = 0.0;
  /// Largest broker hot-window footprint observed during the run.
  std::uint64_t max_hot_window_bytes = 0;
  /// Unconsumed records remaining when the drain stopped (0 unless the
  /// drain timed out).
  std::uint64_t final_lag = 0;
  double wall_seconds = 0.0;
};

class FleetGenerator {
 public:
  FleetGenerator(FleetConfig config, std::shared_ptr<broker::Broker> broker);

  /// Creates the topic (if absent), runs senders + consumer to
  /// completion, drains, and reports. Synchronous; call once.
  Result<FleetReport> run();

 private:
  void sender_loop(std::size_t thread_index, std::size_t device_lo,
                   std::size_t device_hi);
  void consumer_loop();
  std::uint32_t partition_for(std::size_t device) const;
  /// Sends one batch with throttle-aware retries; updates counters.
  void send_with_retry(std::uint32_t partition,
                       std::vector<broker::Record> records,
                       const std::string& client);
  void observe_hot_window();
  std::uint64_t total_end_offsets() const;

  const FleetConfig config_;
  std::shared_ptr<broker::Broker> broker_;

  std::atomic<std::uint64_t> generated_{0};
  std::atomic<std::uint64_t> acked_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> throttled_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> consumed_{0};
  std::atomic<std::uint64_t> max_hot_{0};
  std::atomic<bool> senders_done_{false};
  /// Written only by the consumer thread, read after join.
  std::vector<double> e2e_ms_;
};

}  // namespace pe::scenario
