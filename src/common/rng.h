// Deterministic random number generation helpers.
//
// All stochastic components (data generator, k-means init, isolation forest
// sampling, autoencoder init, network jitter) take an explicit seed so runs
// are reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace pe {

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with given mean and standard deviation.
  double gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Sample k distinct indices from [0, n) without replacement
  /// (partial Fisher-Yates).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k) {
    if (k > n) k = n;
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(static_cast<std::int64_t>(i),
                      static_cast<std::int64_t>(n - 1)));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pe
