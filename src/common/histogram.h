// Streaming summary statistics and percentile estimation.
//
// Histogram keeps raw samples (doubles) and computes count/mean/stddev/
// min/max and arbitrary percentiles by sorting on demand; fine for the
// sample volumes in this library (<= a few million per run).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace pe {

/// Point-in-time summary of a Histogram.
struct SummaryStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  std::string to_string() const;
};

class Histogram {
 public:
  Histogram() = default;

  void record(double value);
  void record_many(const std::vector<double>& values);

  std::size_t count() const;
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// q in [0,1]; linear interpolation between order statistics.
  double percentile(double q) const;
  SummaryStats summary() const;

  /// Copy of all recorded samples (unsorted, insertion order).
  std::vector<double> samples() const;

  void clear();

  /// Merge another histogram's samples into this one.
  void merge(const Histogram& other);

 private:
  /// Interpolated quantile over an already-sorted sample vector.
  static double percentile_sorted(const std::vector<double>& sorted, double q);
  double percentile_locked(double q) const PE_REQUIRES(mutex_);

  mutable Mutex mutex_{"common.histogram"};
  std::vector<double> samples_ PE_GUARDED_BY(mutex_);
  double sum_ PE_GUARDED_BY(mutex_) = 0.0;
  double sum_sq_ PE_GUARDED_BY(mutex_) = 0.0;
  double min_ PE_GUARDED_BY(mutex_) = 0.0;
  double max_ PE_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace pe
