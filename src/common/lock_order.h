// Runtime lock-order (acquired-before) deadlock detector.
//
// Debug-only backend for pe::Mutex / pe::SharedMutex (common/mutex.h).
// Every acquisition pushes onto a per-thread held-lock stack and inserts
// "held -> acquiring" edges into a global acquired-before graph. The first
// acquisition that would close a cycle aborts the process, printing the
// current thread's held stack and the first-witness acquisition sites of
// the conflicting path — catching AB/BA deadlocks that TSan's
// happens-before race detector cannot, even when the two orders never
// overlap in time during the run.
//
// Two complementary checks run on each acquisition:
//   1. Rank check: mutexes carry an optional rank = (domain << 8) | level.
//      Within one domain, ranks must strictly increase down the stack
//      (the documented hierarchy, e.g. Broker(1) -> PartitionLog(2) inside
//      the broker domain). Cross-domain order is not rank-constrained.
//   2. Graph check: rank 0 ("unranked") mutexes and cross-domain orders
//      are still enforced dynamically via the acquired-before graph.
//
// Enabled by the PE_LOCK_ORDER compile definition (CMake option
// PE_LOCK_ORDER, default ON except in Release builds). When disabled, all
// hooks compile away and pe::Mutex is layout-identical to std::mutex.
#pragma once

#include <cstdint>

#if defined(PE_LOCK_ORDER) && PE_LOCK_ORDER
#define PE_LOCK_ORDER_ENABLED 1
#else
#define PE_LOCK_ORDER_ENABLED 0
#endif

namespace pe::lock_order {

// Lock-rank domains. Levels start at 1; rank 0 means "unranked" (graph
// enforcement only). See DESIGN.md "Concurrency invariants".
inline constexpr std::uint32_t kDomainBroker = 1;    // Broker -> Log -> Coord
inline constexpr std::uint32_t kDomainResource = 2;  // PilotManager -> Pilot
inline constexpr std::uint32_t kDomainExec = 3;      // Scheduler -> pool queue
inline constexpr std::uint32_t kDomainCluster = 4;   // Cluster meta -> offsets

constexpr std::uint32_t rank(std::uint32_t domain, std::uint32_t level) {
  return (domain << 8) | level;
}

#if PE_LOCK_ORDER_ENABLED

/// Allocates a process-unique mutex id (never reused, so stale graph
/// edges can never alias a new mutex at a recycled address).
std::uint64_t new_id() noexcept;

/// Drops all acquired-before edges touching `id` (mutex destroyed).
void retire_id(std::uint64_t id) noexcept;

/// Records an acquisition: self-relock check, rank check, edge insertion
/// + cycle check. Aborts on the first violation. `name` must outlive the
/// mutex (string literals in practice).
void on_acquire(std::uint64_t id, const char* name, std::uint32_t rank,
                const char* file, unsigned line) noexcept;

/// Records a successful try_lock: pushes the held record but skips the
/// cycle check (a non-blocking acquisition cannot deadlock by itself).
void on_acquire_try(std::uint64_t id, const char* name, std::uint32_t rank,
                    const char* file, unsigned line) noexcept;

/// Pops the (topmost matching) held record.
void on_release(std::uint64_t id) noexcept;

/// Locks held by the calling thread (test hook).
std::size_t held_count() noexcept;

#endif  // PE_LOCK_ORDER_ENABLED

}  // namespace pe::lock_order
