// BufferPool: a thread-safe free-list of reusable byte buffers.
//
// The broker data plane allocates a fresh heap buffer per message twice —
// once to frame records for the durable log and once when a producer
// encodes a DataBlock payload — and frees it moments later. At fan-out
// rates that malloc/free churn dominates the encode cost. The pool keeps
// a bounded free-list of heap-owned `Bytes` whose *capacity* is recycled:
// acquire() hands out an empty vector that usually already owns a large
// enough allocation, release() puts it back.
//
// Two hand-out forms:
//   - acquire()/release(): scoped use inside one component (e.g. the
//     batched segment-frame encoder);
//   - acquire_shared(): a shared_ptr<Bytes> whose deleter returns the
//     buffer to the pool when the last reference drops — the shape
//     `broker::Payload` stores, so pooled buffers can escape into the
//     zero-copy data plane. The pool must outlive every shared handle;
//     use the leaked global() pool for buffers with unbounded lifetime.
//
// The free-list stores unique_ptr<Bytes>, so acquire_shared() recycles
// the heap `Bytes` object itself along with its capacity — steady-state
// cycles do not allocate a fresh control object per acquire. (The
// shared_ptr control block is the one allocation that remains: a custom
// deleter rules out make_shared.) The value-form acquire()/release() keeps
// a small side-list of empty shells so moving contents in and out of the
// pool does not churn allocations either.
//
// Buffers that grew past `max_buffer_bytes` and buffers arriving when the
// free-list is full are simply dropped (freed) — the pool bounds its own
// worst-case footprint at max_buffers * max_buffer_bytes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/serialize.h"

namespace pe {

class BufferPool {
 public:
  struct Options {
    /// Free-list capacity (buffers beyond this are freed on release).
    std::size_t max_buffers = 64;
    /// Buffers whose capacity outgrew this are not recycled.
    std::size_t max_buffer_bytes = 4u << 20;  // 4 MiB
  };

  struct Stats {
    std::uint64_t hits = 0;      // acquire served from the free-list
    std::uint64_t misses = 0;    // acquire had to hand out a fresh buffer
    std::uint64_t discards = 0;  // release dropped the buffer instead
  };

  BufferPool() : BufferPool(Options()) {}
  explicit BufferPool(Options options) : options_(options) {
    free_.reserve(options_.max_buffers);
    shells_.reserve(options_.max_buffers);
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// An empty buffer with capacity >= reserve_hint, recycled when the
  /// free-list has one (LIFO, so repeated large acquires converge instead
  /// of regrowing a cold recycled buffer).
  Bytes acquire(std::size_t reserve_hint = 0) {
    Bytes out;
    {
      MutexLock lock(mutex_);
      if (!free_.empty()) {
        // Move the contents out and keep the emptied heap shell for the
        // next release(): the shell swap costs pointer moves, not mallocs.
        std::unique_ptr<Bytes> owner = std::move(free_.back());
        free_.pop_back();
        out = std::move(*owner);
        if (shells_.size() < options_.max_buffers) {
          shells_.push_back(std::move(owner));
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    out.clear();
    if (out.capacity() < reserve_hint) out.reserve(reserve_hint);
    return out;
  }

  /// Returns a buffer's allocation to the pool (or frees it when the pool
  /// is full / the buffer is over-sized). The content is discarded.
  void release(Bytes&& buf) {
    if (buf.capacity() == 0 ||
        buf.capacity() > options_.max_buffer_bytes) {
      discards_.fetch_add(buf.capacity() > 0 ? 1 : 0,
                          std::memory_order_relaxed);
      return;  // let it free on scope exit
    }
    buf.clear();
    MutexLock lock(mutex_);
    if (free_.size() >= options_.max_buffers) {
      discards_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::unique_ptr<Bytes> owner;
    if (!shells_.empty()) {
      owner = std::move(shells_.back());
      shells_.pop_back();
      *owner = std::move(buf);
    } else {
      owner = std::make_unique<Bytes>(std::move(buf));
    }
    // LIFO reuse keeps hot buffers cache-warm.
    free_.push_back(std::move(owner));
  }

  /// A shared buffer handle that returns its allocation to this pool when
  /// the last reference drops. Convertible to shared_ptr<const Bytes>,
  /// the form broker::Payload owns — so a pooled encode buffer can ride a
  /// record through append/fetch/fan-out and still come back. The heap
  /// `Bytes` object is recycled through the free-list: steady-state
  /// acquire/release cycles reuse the same object instead of new/delete
  /// per acquire.
  std::shared_ptr<Bytes> acquire_shared(std::size_t reserve_hint = 0) {
    std::unique_ptr<Bytes> owner;
    {
      MutexLock lock(mutex_);
      if (!free_.empty()) {
        owner = std::move(free_.back());
        free_.pop_back();
        hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!owner) {
      owner = std::make_unique<Bytes>();
    } else {
      owner->clear();
    }
    if (owner->capacity() < reserve_hint) owner->reserve(reserve_hint);
    return std::shared_ptr<Bytes>(owner.release(), [this](Bytes* b) {
      recycle_owned(std::unique_ptr<Bytes>(b));
    });
  }

  std::size_t free_count() const {
    MutexLock lock(mutex_);
    return free_.size();
  }

  Stats stats() const {
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.discards = discards_.load(std::memory_order_relaxed);
    return s;
  }

  const Options& options() const { return options_; }

  /// Process-wide pool for buffers whose lifetime is unbounded (payloads
  /// in flight through the data plane). Leaked on purpose: shared handles
  /// may outlive static destruction order.
  static BufferPool& global() {
    static BufferPool* pool = new BufferPool();
    return *pool;
  }

 private:
  /// Returns a heap-owned buffer (from acquire_shared's deleter) to the
  /// free-list, object and capacity together. Over-sized or surplus
  /// buffers are freed; their emptied shell is still kept when there is
  /// room, so the object allocation is not lost with the capacity.
  void recycle_owned(std::unique_ptr<Bytes> owner) {
    if (owner->capacity() > options_.max_buffer_bytes) {
      discards_.fetch_add(1, std::memory_order_relaxed);
      owner->clear();
      owner->shrink_to_fit();
    } else {
      owner->clear();
    }
    MutexLock lock(mutex_);
    if (owner->capacity() == 0) {
      if (shells_.size() < options_.max_buffers) {
        shells_.push_back(std::move(owner));
      }
      return;
    }
    if (free_.size() >= options_.max_buffers) {
      discards_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    free_.push_back(std::move(owner));
  }

  const Options options_;
  // Leaf lock: nothing else is ever acquired while it is held.
  mutable Mutex mutex_{"common.buffer_pool"};
  std::vector<std::unique_ptr<Bytes>> free_ PE_GUARDED_BY(mutex_);
  // Empty heap shells kept so acquire()/release() round-trips and
  // discarded over-sized shared buffers reuse the Bytes object itself.
  std::vector<std::unique_ptr<Bytes>> shells_ PE_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> discards_{0};
};

}  // namespace pe
