#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pe {

std::string SummaryStats::to_string() const {
  std::ostringstream oss;
  oss << "count=" << count << " mean=" << mean << " sd=" << stddev
      << " min=" << min << " p50=" << p50 << " p90=" << p90 << " p99=" << p99
      << " max=" << max;
  return oss.str();
}

void Histogram::record(double value) {
  MutexLock lock(mutex_);
  if (samples_.empty()) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  samples_.push_back(value);
  sum_ += value;
  sum_sq_ += value * value;
}

void Histogram::record_many(const std::vector<double>& values) {
  for (double v : values) record(v);
}

std::size_t Histogram::count() const {
  MutexLock lock(mutex_);
  return samples_.size();
}

double Histogram::mean() const {
  MutexLock lock(mutex_);
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::stddev() const {
  MutexLock lock(mutex_);
  const auto n = static_cast<double>(samples_.size());
  if (n < 2) return 0.0;
  const double mean = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - mean * mean);
  return std::sqrt(var * n / (n - 1));
}

double Histogram::min() const {
  MutexLock lock(mutex_);
  return min_;
}

double Histogram::max() const {
  MutexLock lock(mutex_);
  return max_;
}

double Histogram::percentile_sorted(const std::vector<double>& sorted,
                                    double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Histogram::percentile_locked(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

double Histogram::percentile(double q) const {
  MutexLock lock(mutex_);
  return percentile_locked(q);
}

SummaryStats Histogram::summary() const {
  MutexLock lock(mutex_);
  SummaryStats s;
  s.count = samples_.size();
  if (s.count == 0) return s;
  const auto n = static_cast<double>(s.count);
  s.mean = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - s.mean * s.mean);
  s.stddev = s.count > 1 ? std::sqrt(var * n / (n - 1)) : 0.0;
  s.min = min_;
  s.max = max_;
  // One copy + one sort for all three quantiles (percentile_locked would
  // re-copy and re-sort the sample vector per percentile, under the lock).
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p90 = percentile_sorted(sorted, 0.90);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

std::vector<double> Histogram::samples() const {
  MutexLock lock(mutex_);
  return samples_;
}

void Histogram::clear() {
  MutexLock lock(mutex_);
  samples_.clear();
  sum_ = sum_sq_ = min_ = max_ = 0.0;
}

void Histogram::merge(const Histogram& other) {
  const std::vector<double> theirs = other.samples();
  for (double v : theirs) record(v);
}

}  // namespace pe
