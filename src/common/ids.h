// Process-unique identifier generation for pilots, tasks, messages, spans.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace pe {

/// Monotonically increasing process-wide sequence, one counter per tag type.
/// Used to build ids like "pilot-3" or "task-17".
template <typename Tag>
class IdSequence {
 public:
  static std::uint64_t next() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }
};

struct PilotIdTag {};
struct TaskIdTag {};
struct MessageIdTag {};
struct PipelineIdTag {};
struct ConsumerIdTag {};
struct ProducerIdTag {};

inline std::string next_pilot_id() { return "pilot-" + std::to_string(IdSequence<PilotIdTag>::next()); }
inline std::string next_task_id() { return "task-" + std::to_string(IdSequence<TaskIdTag>::next()); }
inline std::uint64_t next_message_id() { return IdSequence<MessageIdTag>::next(); }
inline std::string next_pipeline_id() { return "pipeline-" + std::to_string(IdSequence<PipelineIdTag>::next()); }
inline std::string next_consumer_id() { return "consumer-" + std::to_string(IdSequence<ConsumerIdTag>::next()); }
inline std::string next_producer_id() { return "producer-" + std::to_string(IdSequence<ProducerIdTag>::next()); }

}  // namespace pe
