// Fixed-size thread pool executing std::function jobs.
//
// Building block for the task-executor workers and parallel ML kernels
// (isolation-forest tree training, k-means assignment).
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/queue.h"

namespace pe {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads,
                      std::string name_prefix = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job; returns false after shutdown started.
  bool submit(std::function<void()> job);

  /// Enqueue a job and get a future for its completion/result.
  template <typename F>
  auto submit_with_result(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

  /// Run `f(i)` for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f);

  std::size_t size() const { return threads_.size(); }

  /// Stop accepting jobs, drain the queue, join all threads.
  void shutdown();

 private:
  void worker_loop();

  // Job inbox sits at the bottom of the exec-domain lock hierarchy
  // (Scheduler -> worker queue), so dispatch under the scheduler lock is
  // a legal descent and the detector flags any reverse order.
  BoundedQueue<std::function<void()>> jobs_{
      1 << 16, "exec.pool.jobs", lock_rank(kLockDomainExec, 2)};
  std::vector<std::thread> threads_;
};

}  // namespace pe
