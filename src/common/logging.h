// Minimal leveled logger.
//
// Thread-safe, writes to stderr. Level is a process-wide atomic so tests
// and benchmarks can silence chatter. Usage:
//   PE_LOG_INFO("pilot " << id << " started");
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace pe {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

class Logger {
 public:
  static void set_level(LogLevel level) {
    level_().store(static_cast<int>(level), std::memory_order_relaxed);
  }
  static LogLevel level() {
    return static_cast<LogLevel>(level_().load(std::memory_order_relaxed));
  }
  static bool enabled(LogLevel l) {
    return static_cast<int>(l) >= level_().load(std::memory_order_relaxed);
  }

  /// Emits one formatted line; used by the PE_LOG_* macros.
  static void write(LogLevel level, const char* file, int line,
                    const std::string& message);

 private:
  static std::atomic<int>& level_() {
    static std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
    return level;
  }
};

}  // namespace pe

#define PE_LOG_IMPL(level, expr)                                       \
  do {                                                                 \
    if (::pe::Logger::enabled(level)) {                                \
      std::ostringstream pe_log_oss_;                                  \
      pe_log_oss_ << expr; /* NOLINT */                                \
      ::pe::Logger::write(level, __FILE__, __LINE__, pe_log_oss_.str()); \
    }                                                                  \
  } while (0)

#define PE_LOG_TRACE(expr) PE_LOG_IMPL(::pe::LogLevel::kTrace, expr)
#define PE_LOG_DEBUG(expr) PE_LOG_IMPL(::pe::LogLevel::kDebug, expr)
#define PE_LOG_INFO(expr) PE_LOG_IMPL(::pe::LogLevel::kInfo, expr)
#define PE_LOG_WARN(expr) PE_LOG_IMPL(::pe::LogLevel::kWarn, expr)
#define PE_LOG_ERROR(expr) PE_LOG_IMPL(::pe::LogLevel::kError, expr)
