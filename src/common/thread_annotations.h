// Clang thread-safety-analysis attribute macros (no-ops elsewhere).
//
// These are the standard capability annotations from Clang's
// -Wthread-safety analysis, named after the Abseil convention. Annotate
// every mutex-owning class: GUARDED_BY on fields, REQUIRES on private
// *_locked helpers, ACQUIRE/RELEASE on lock wrappers. GCC compiles the
// macros away, so tier-1 builds are unaffected; the PE_THREAD_SAFETY
// CMake option turns the analysis into errors under clang.
//
// See DESIGN.md "Concurrency invariants" for the lock hierarchy these
// annotations (plus the runtime lock-order detector) enforce.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define PE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PE_THREAD_ANNOTATION(x)  // no-op
#endif

// Class attributes: marks a type as a lockable capability / RAII scope.
#define PE_CAPABILITY(x) PE_THREAD_ANNOTATION(capability(x))
#define PE_SCOPED_CAPABILITY PE_THREAD_ANNOTATION(scoped_lockable)

// Field attributes.
#define PE_GUARDED_BY(x) PE_THREAD_ANNOTATION(guarded_by(x))
#define PE_PT_GUARDED_BY(x) PE_THREAD_ANNOTATION(pt_guarded_by(x))
#define PE_ACQUIRED_BEFORE(...) PE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PE_ACQUIRED_AFTER(...) PE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function attributes.
#define PE_REQUIRES(...) \
  PE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PE_REQUIRES_SHARED(...) \
  PE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define PE_ACQUIRE(...) PE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PE_ACQUIRE_SHARED(...) \
  PE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PE_RELEASE(...) PE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PE_RELEASE_SHARED(...) \
  PE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define PE_RELEASE_GENERIC(...) \
  PE_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define PE_TRY_ACQUIRE(...) \
  PE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PE_TRY_ACQUIRE_SHARED(...) \
  PE_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define PE_EXCLUDES(...) PE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PE_ASSERT_CAPABILITY(x) PE_THREAD_ANNOTATION(assert_capability(x))
#define PE_RETURN_CAPABILITY(x) PE_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: analysis cannot follow this function (lambdas passed to
// condition_variable::wait that read guarded fields, etc.).
#define PE_NO_THREAD_SAFETY_ANALYSIS \
  PE_THREAD_ANNOTATION(no_thread_safety_analysis)
