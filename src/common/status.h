// Lightweight Status / Result<T> error-handling primitives.
//
// The library avoids exceptions on hot paths (broker produce/fetch, task
// dispatch); fallible operations return Status or Result<T> instead.
#pragma once

#include <cassert>
#include <chrono>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace pe {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kTimeout,
  kCancelled,
  kOutOfRange,
  kInternal,
  /// The addressed broker is not the current leader for the partition
  /// (cluster mode). Transient: clients refresh metadata and retry
  /// against the new leader.
  kNotLeader,
};

/// Human-readable name of a StatusCode ("OK", "NOT_FOUND", ...).
constexpr std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kNotLeader: return "NOT_LEADER";
  }
  return "UNKNOWN";
}

/// Outcome of an operation that produces no value.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status Timeout(std::string m) { return {StatusCode::kTimeout, std::move(m)}; }
  static Status Cancelled(std::string m) { return {StatusCode::kCancelled, std::move(m)}; }
  static Status OutOfRange(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status NotLeader(std::string m) { return {StatusCode::kNotLeader, std::move(m)}; }

  /// Admission-control throttle: RESOURCE_EXHAUSTED carrying a retry-after
  /// hint. The hint is what makes the status *transient* — the broker is
  /// telling the client when capacity returns, as opposed to a plain
  /// RESOURCE_EXHAUSTED ("no such VM flavor") that retrying cannot fix.
  static Status Throttled(std::string m, std::chrono::nanoseconds retry_after) {
    Status s{StatusCode::kResourceExhausted, std::move(m)};
    s.retry_after_ = retry_after;
    return s;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Server-suggested wait (emulated time) before retrying; zero when the
  /// server gave no hint. Only throttle statuses carry one.
  std::chrono::nanoseconds retry_after() const { return retry_after_; }

  /// True for failures that may succeed if simply tried again (a lost
  /// resource that can be re-provisioned, a request that ran out of time,
  /// a quota throttle with a retry-after hint). Deterministic errors
  /// (INVALID_ARGUMENT, INTERNAL, plain RESOURCE_EXHAUSTED capacity
  /// errors, ...) are not transient: retrying the same input reproduces
  /// the same failure.
  bool is_transient() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kTimeout ||
           code_ == StatusCode::kNotLeader ||
           (code_ == StatusCode::kResourceExhausted &&
            retry_after_ > std::chrono::nanoseconds::zero());
  }

  std::string to_string() const {
    if (ok()) return "OK";
    return std::string(pe::to_string(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  std::chrono::nanoseconds retry_after_{0};
};

/// Outcome of an operation that produces a T on success.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(value_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// The contained value. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  /// The error status, or OK when the result holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(value_) : fallback;
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace pe
