#include "common/lock_order.h"

#if PE_LOCK_ORDER_ENABLED

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <utility>
#include <vector>

namespace pe::lock_order {
namespace {

struct Held {
  std::uint64_t id = 0;
  std::uint32_t rank = 0;
  const char* name = nullptr;
  const char* file = nullptr;
  unsigned line = 0;
};

// First-witness acquisition sites for an acquired-before edge a -> b:
// where `a` was acquired (and still held) and where `b` was acquired
// under it, the first time that order was observed.
struct EdgeSite {
  const char* from_name;
  const char* from_file;
  unsigned from_line;
  const char* to_name;
  const char* to_file;
  unsigned to_line;
};

struct Graph {
  std::shared_mutex mu;
  std::map<std::uint64_t, std::set<std::uint64_t>> succ;
  std::map<std::uint64_t, std::set<std::uint64_t>> pred;
  std::map<std::pair<std::uint64_t, std::uint64_t>, EdgeSite> sites;
};

// Leaked on purpose: mutexes with static storage duration retire their
// ids during exit teardown, after any non-immortal graph would be gone.
Graph& graph() {
  static Graph* g = new Graph;
  return *g;
}

std::vector<Held>& held_stack() {
  thread_local std::vector<Held> stack;
  return stack;
}

bool edge_exists_locked(const Graph& g, std::uint64_t from,
                        std::uint64_t to) {
  auto it = g.succ.find(from);
  return it != g.succ.end() && it->second.count(to) > 0;
}

/// DFS from `from` looking for `to`; fills `path` with the node sequence
/// (from ... to) when found. The graph is acyclic by construction, so
/// plain DFS with a visited set terminates.
bool find_path_locked(const Graph& g, std::uint64_t from, std::uint64_t to,
                      std::vector<std::uint64_t>& path) {
  if (from == to) {
    path.push_back(from);
    return true;
  }
  path.push_back(from);
  auto it = g.succ.find(from);
  if (it != g.succ.end()) {
    for (std::uint64_t next : it->second) {
      if (find_path_locked(g, next, to, path)) return true;
    }
  }
  path.pop_back();
  return false;
}

void print_held_stack(const std::vector<Held>& held) {
  for (std::size_t i = held.size(); i-- > 0;) {
    const Held& h = held[i];
    std::fprintf(stderr, "    #%zu \"%s\" (rank %u) acquired at %s:%u\n",
                 held.size() - 1 - i, h.name, h.rank, h.file, h.line);
  }
}

[[noreturn]] void die() {
  std::fflush(stderr);
  std::abort();
}

}  // namespace

std::uint64_t new_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void retire_id(std::uint64_t id) noexcept {
  Graph& g = graph();
  std::unique_lock lock(g.mu);
  if (auto it = g.succ.find(id); it != g.succ.end()) {
    for (std::uint64_t t : it->second) g.pred[t].erase(id);
    g.succ.erase(it);
  }
  if (auto it = g.pred.find(id); it != g.pred.end()) {
    for (std::uint64_t s : it->second) g.succ[s].erase(id);
    g.pred.erase(it);
  }
  for (auto it = g.sites.begin(); it != g.sites.end();) {
    if (it->first.first == id || it->first.second == id) {
      it = g.sites.erase(it);
    } else {
      ++it;
    }
  }
}

void on_acquire(std::uint64_t id, const char* name, std::uint32_t rank,
                const char* file, unsigned line) noexcept {
  std::vector<Held>& held = held_stack();
  for (const Held& h : held) {
    if (h.id == id) {
      std::fprintf(stderr,
                   "[pe.lock_order] recursive acquisition of \"%s\" at "
                   "%s:%u (first acquired at %s:%u)\n",
                   name, file, line, h.file, h.line);
      die();
    }
  }
  if (!held.empty()) {
    if (rank != 0) {
      for (const Held& h : held) {
        if (h.rank != 0 && (h.rank >> 8) == (rank >> 8) && h.rank >= rank) {
          std::fprintf(stderr,
                       "[pe.lock_order] lock-rank violation: acquiring "
                       "\"%s\" (rank %u) at %s:%u while holding \"%s\" "
                       "(rank %u); ranks within a domain must strictly "
                       "increase\n  held stack (most recent first):\n",
                       name, rank, file, line, h.name, h.rank);
          print_held_stack(held);
          die();
        }
      }
    }
    Graph& g = graph();
    bool all_known = true;
    {
      std::shared_lock lock(g.mu);
      for (const Held& h : held) {
        if (!edge_exists_locked(g, h.id, id)) {
          all_known = false;
          break;
        }
      }
    }
    if (!all_known) {
      std::unique_lock lock(g.mu);
      for (const Held& h : held) {
        if (edge_exists_locked(g, h.id, id)) continue;
        std::vector<std::uint64_t> path;
        if (find_path_locked(g, id, h.id, path)) {
          std::fprintf(stderr,
                       "[pe.lock_order] lock-order inversion (potential "
                       "deadlock): acquiring \"%s\" at %s:%u while holding "
                       "\"%s\" (acquired at %s:%u), but \"%s\" was "
                       "previously acquired before \"%s\"\n"
                       "  held stack (most recent first):\n",
                       name, file, line, h.name, h.file, h.line, name,
                       h.name);
          print_held_stack(held);
          std::fprintf(stderr,
                       "  conflicting acquired-before path "
                       "(first-witness sites):\n");
          for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            auto sit = g.sites.find({path[i], path[i + 1]});
            if (sit == g.sites.end()) continue;
            const EdgeSite& e = sit->second;
            std::fprintf(stderr,
                         "    \"%s\" (held since %s:%u) -> \"%s\" "
                         "(acquired at %s:%u)\n",
                         e.from_name, e.from_file, e.from_line, e.to_name,
                         e.to_file, e.to_line);
          }
          die();
        }
        g.succ[h.id].insert(id);
        g.pred[id].insert(h.id);
        g.sites.emplace(std::make_pair(h.id, id),
                        EdgeSite{h.name, h.file, h.line, name, file, line});
      }
    }
  }
  held.push_back(Held{id, rank, name, file, line});
}

void on_acquire_try(std::uint64_t id, const char* name, std::uint32_t rank,
                    const char* file, unsigned line) noexcept {
  held_stack().push_back(Held{id, rank, name, file, line});
}

void on_release(std::uint64_t id) noexcept {
  std::vector<Held>& held = held_stack();
  for (std::size_t i = held.size(); i-- > 0;) {
    if (held[i].id == id) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::size_t held_count() noexcept { return held_stack().size(); }

}  // namespace pe::lock_order

#endif  // PE_LOCK_ORDER_ENABLED
