// Typed string-keyed configuration map.
//
// Backs pe::FunctionContext (the paper's `context: dict`) and component
// configuration. Values are stored as strings with typed accessors.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>

namespace pe {

class ConfigMap {
 public:
  ConfigMap() = default;
  ConfigMap(std::initializer_list<std::pair<const std::string, std::string>> init)
      : values_(init) {}

  void set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }
  void set_int(const std::string& key, std::int64_t value) {
    values_[key] = std::to_string(value);
  }
  void set_double(const std::string& key, double value) {
    std::ostringstream oss;
    oss.precision(17);
    oss << value;
    values_[key] = oss.str();
  }
  void set_bool(const std::string& key, bool value) {
    values_[key] = value ? "true" : "false";
  }

  bool contains(const std::string& key) const {
    return values_.count(key) > 0;
  }

  std::optional<std::string> get(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  std::string get_or(const std::string& key, const std::string& fallback) const {
    auto v = get(key);
    return v ? *v : fallback;
  }

  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const {
    auto v = get(key);
    if (!v) return fallback;
    try {
      return std::stoll(*v);
    } catch (...) {
      return fallback;
    }
  }

  double get_double_or(const std::string& key, double fallback) const {
    auto v = get(key);
    if (!v) return fallback;
    try {
      return std::stod(*v);
    } catch (...) {
      return fallback;
    }
  }

  bool get_bool_or(const std::string& key, bool fallback) const {
    auto v = get(key);
    if (!v) return fallback;
    return *v == "true" || *v == "1" || *v == "yes";
  }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

  /// Right-biased merge: other's entries overwrite this map's.
  void merge_from(const ConfigMap& other) {
    for (const auto& [k, v] : other.values_) values_[k] = v;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pe
