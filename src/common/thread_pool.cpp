#include "common/thread_pool.h"

#include <atomic>

namespace pe {

ThreadPool::ThreadPool(std::size_t num_threads, std::string /*name_prefix*/) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> job) {
  return jobs_.push(std::move(job));
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& f) {
  if (n == 0) return;
  if (n == 1 || threads_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }
  // Static block partitioning: one chunk per thread keeps queue overhead
  // negligible relative to per-item cost in the ML kernels.
  const std::size_t chunks = std::min(n, threads_.size());
  std::atomic<std::size_t> done{0};
  std::promise<void> all_done;
  auto fut = all_done.get_future();
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * n / chunks;
    const std::size_t end = (c + 1) * n / chunks;
    submit([&, begin, end] {
      for (std::size_t i = begin; i < end; ++i) f(i);
      if (done.fetch_add(1) + 1 == chunks) all_done.set_value();
    });
  }
  fut.wait();
}

void ThreadPool::shutdown() {
  jobs_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void ThreadPool::worker_loop() {
  while (auto job = jobs_.pop()) {
    (*job)();
  }
}

}  // namespace pe
