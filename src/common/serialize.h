// Byte-buffer serialization primitives.
//
// Little-endian, length-prefixed encoding used by the data codec and the
// broker record payloads. Reader returns Status on truncated input rather
// than throwing.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace pe {

using Bytes = std::vector<std::uint8_t>;

/// Non-owning view of immutable bytes. Decoders take this instead of
/// `const Bytes&` so payloads backed by mmap'd storage segments (which
/// have no vector anywhere) decode without a copy.
using ByteSpan = std::span<const std::uint8_t>;

/// Appends fixed-width little-endian values and length-prefixed blobs.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void put_u8(std::uint8_t v) { out_.push_back(v); }

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }

  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  void put_bytes(const Bytes& b) {
    put_u32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }

  /// Raw doubles without a length prefix (caller knows the count).
  void put_f64_array(const double* data, std::size_t n) {
    const std::size_t offset = out_.size();
    out_.resize(offset + n * sizeof(double));
    std::memcpy(out_.data() + offset, data, n * sizeof(double));
  }

 private:
  Bytes& out_;
};

/// Sequential reader over a byte buffer; all reads are bounds-checked.
/// Views the input — the buffer must outlive the reader.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan in) : in_(in) {}
  explicit ByteReader(const Bytes& in) : in_(in.data(), in.size()) {}

  Status get_u8(std::uint8_t& v) {
    if (pos_ + 1 > in_.size()) return truncation();
    v = in_[pos_++];
    return Status::Ok();
  }

  Status get_u32(std::uint32_t& v) {
    if (pos_ + 4 > in_.size()) return truncation();
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in_[pos_++]) << (8 * i);
    return Status::Ok();
  }

  Status get_u64(std::uint64_t& v) {
    if (pos_ + 8 > in_.size()) return truncation();
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in_[pos_++]) << (8 * i);
    return Status::Ok();
  }

  Status get_f64(double& v) {
    std::uint64_t bits = 0;
    if (auto s = get_u64(bits); !s.ok()) return s;
    std::memcpy(&v, &bits, sizeof(v));
    return Status::Ok();
  }

  Status get_string(std::string& s) {
    std::uint32_t len = 0;
    if (auto st = get_u32(len); !st.ok()) return st;
    if (pos_ + len > in_.size()) return truncation();
    s.assign(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
             in_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return Status::Ok();
  }

  Status get_bytes(Bytes& b) {
    std::uint32_t len = 0;
    if (auto st = get_u32(len); !st.ok()) return st;
    if (pos_ + len > in_.size()) return truncation();
    b.assign(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
             in_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return Status::Ok();
  }

  Status get_f64_array(double* data, std::size_t n) {
    const std::size_t need = n * sizeof(double);
    if (pos_ + need > in_.size()) return truncation();
    std::memcpy(data, in_.data() + pos_, need);
    pos_ += need;
    return Status::Ok();
  }

  std::size_t remaining() const { return in_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  Status truncation() const {
    return Status::OutOfRange("truncated buffer at offset " +
                              std::to_string(pos_));
  }

  ByteSpan in_;
  std::size_t pos_ = 0;
};

}  // namespace pe
