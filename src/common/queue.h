// Bounded, blocking multi-producer multi-consumer queue.
//
// Used for worker task inboxes and for pipeline hand-off between stages.
// close() unblocks all waiters; pops after close drain remaining items and
// then report closure.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "common/clock.h"
#include "common/mutex.h"

namespace pe {

template <typename T>
class BoundedQueue {
 public:
  /// `name`/`rank` feed the lock-order detector (common/mutex.h); worker
  /// inbox queues sit at the bottom of the exec-domain hierarchy.
  explicit BoundedQueue(std::size_t capacity = 1024,
                        const char* name = "queue", std::uint32_t rank = 0)
      : capacity_(capacity), mutex_(name, rank) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available. Returns false if the queue was closed.
  bool push(T item) {
    UniqueLock lock(mutex_);
    not_full_.wait(lock, [this]() PE_NO_THREAD_SAFETY_ANALYSIS {
      return closed_ || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool try_push(T item) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    UniqueLock lock(mutex_);
    not_empty_.wait(lock, [this]() PE_NO_THREAD_SAFETY_ANALYSIS {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Waits up to `timeout`; returns nullopt on timeout or closed+drained.
  std::optional<T> pop_for(Duration timeout) {
    UniqueLock lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [this]() PE_NO_THREAD_SAFETY_ANALYSIS {
                               return closed_ || !items_.empty();
                             })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    UniqueLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Unblocks all waiters. Remaining items can still be drained with pop.
  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ PE_GUARDED_BY(mutex_);
  bool closed_ PE_GUARDED_BY(mutex_) = false;
};

}  // namespace pe
