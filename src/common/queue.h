// Bounded, blocking multi-producer multi-consumer queue.
//
// Used for worker task inboxes and for pipeline hand-off between stages.
// close() unblocks all waiters; pops after close drain remaining items and
// then report closure.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/clock.h"

namespace pe {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity = 1024) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available. Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Waits up to `timeout`; returns nullopt on timeout or closed+drained.
  std::optional<T> pop_for(Duration timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [this] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Unblocks all waiters. Remaining items can still be drained with pop.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pe
