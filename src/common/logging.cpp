#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>

namespace pe {
namespace {

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void Logger::write(LogLevel level, const char* file, int line,
                   const std::string& message) {
  const auto now = std::chrono::system_clock::now();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      now.time_since_epoch())
                      .count();
  std::lock_guard<std::mutex> lock(log_mutex());
  std::fprintf(stderr, "[%lld.%06lld] %s %s:%d %s\n",
               static_cast<long long>(us / 1000000),
               static_cast<long long>(us % 1000000), level_name(level),
               basename_of(file), line, message.c_str());
}

}  // namespace pe
