// Wall-clock access with a global emulation time-scale.
//
// All network emulation delays (WAN latency, bandwidth pacing) go through
// Clock::sleep_scaled(), so a geo-distributed benchmark can be run at e.g.
// 10x speed in CI while metrics are reported in unscaled (paper-equivalent)
// time. Compute is never scaled — only injected waits are.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace pe {

using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::steady_clock::time_point;

class Clock {
 public:
  /// Current monotonic time.
  static TimePoint now() { return std::chrono::steady_clock::now(); }

  /// Nanoseconds since an arbitrary fixed epoch (process start order).
  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now().time_since_epoch())
            .count());
  }

  /// Global emulation speed-up factor. 1.0 = real time; 10.0 means every
  /// *emulated* delay sleeps for 1/10th of its nominal duration.
  static void set_time_scale(double scale) {
    scale_x1000().store(static_cast<std::uint64_t>(scale * 1000.0),
                        std::memory_order_relaxed);
  }

  static double time_scale() {
    return static_cast<double>(scale_x1000().load(std::memory_order_relaxed)) /
           1000.0;
  }

  /// Sleep for an *emulated* duration: the actual sleep is d / time_scale.
  /// Sub-100us scaled sleeps spin instead, to keep pacing accurate.
  static void sleep_scaled(Duration d) {
    if (d <= Duration::zero()) return;
    const double scale = time_scale();
    auto actual = std::chrono::duration_cast<Duration>(d / scale);
    sleep_exact(actual);
  }

  /// Sleep for an exact (unscaled) duration; spins below 100us for accuracy.
  static void sleep_exact(Duration d) {
    if (d <= Duration::zero()) return;
    const auto deadline = now() + d;
    if (d > std::chrono::microseconds(100)) {
      std::this_thread::sleep_until(deadline -
                                    std::chrono::microseconds(50));
    }
    while (now() < deadline) {
      // spin for the residual to get accurate pacing
    }
  }

 private:
  static std::atomic<std::uint64_t>& scale_x1000() {
    static std::atomic<std::uint64_t> scale{1000};
    return scale;
  }
};

/// RAII override of the global time scale (restores previous value).
class ScopedTimeScale {
 public:
  explicit ScopedTimeScale(double scale) : previous_(Clock::time_scale()) {
    Clock::set_time_scale(scale);
  }
  ~ScopedTimeScale() { Clock::set_time_scale(previous_); }
  ScopedTimeScale(const ScopedTimeScale&) = delete;
  ScopedTimeScale& operator=(const ScopedTimeScale&) = delete;

 private:
  double previous_;
};

/// Stopwatch measuring elapsed wall time.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  Duration elapsed() const { return Clock::now() - start_; }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(elapsed()).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  TimePoint start_;
};

}  // namespace pe
