// Annotated mutex / shared_mutex / condvar wrappers.
//
// Thin wrappers over the std primitives that add two things:
//   1. Clang -Wthread-safety capability annotations (thread_annotations.h)
//      so GUARDED_BY/REQUIRES contracts are machine-checked at compile
//      time under -DPE_THREAD_SAFETY=ON.
//   2. Debug-only lock-order deadlock detection (lock_order.h): each
//      mutex carries a name and an optional rank, acquisitions are
//      recorded in a global acquired-before graph, and the first cycle
//      aborts with both acquisition sites.
//
// libstdc++'s std::lock_guard/unique_lock are not annotated, so use the
// scoped guards defined here (MutexLock, UniqueLock, ReaderLock,
// WriterLock) instead. With PE_LOCK_ORDER off (Release builds) the
// wrappers are layout-identical to the std types and every hook compiles
// away (static_asserts below).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <source_location>

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace pe {

// Convenience re-exports so rank construction at mutex definition sites
// does not need the lock_order namespace.
inline constexpr std::uint32_t kLockDomainBroker = lock_order::kDomainBroker;
inline constexpr std::uint32_t kLockDomainResource =
    lock_order::kDomainResource;
inline constexpr std::uint32_t kLockDomainExec = lock_order::kDomainExec;
inline constexpr std::uint32_t kLockDomainCluster = lock_order::kDomainCluster;

constexpr std::uint32_t lock_rank(std::uint32_t domain, std::uint32_t level) {
  return lock_order::rank(domain, level);
}

class CondVar;

class PE_CAPABILITY("mutex") Mutex {
 public:
  /// `name` must outlive the mutex (pass a string literal). `rank` of 0
  /// means unranked: lock order is still enforced via the dynamic
  /// acquired-before graph, just without the static hierarchy check.
#if PE_LOCK_ORDER_ENABLED
  explicit Mutex(const char* name = "mutex", std::uint32_t rank = 0) noexcept
      : id_(lock_order::new_id()), name_(name), rank_(rank) {}
  ~Mutex() { lock_order::retire_id(id_); }
#else
  explicit Mutex(const char* /*name*/ = "mutex",
                 std::uint32_t /*rank*/ = 0) noexcept {}
  ~Mutex() = default;
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock(const std::source_location& loc =
                std::source_location::current()) PE_ACQUIRE() {
#if PE_LOCK_ORDER_ENABLED
    lock_order::on_acquire(id_, name_, rank_, loc.file_name(), loc.line());
#else
    (void)loc;
#endif
    mu_.lock();
  }

  bool try_lock(const std::source_location& loc =
                    std::source_location::current()) PE_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
#if PE_LOCK_ORDER_ENABLED
    if (ok) lock_order::on_acquire_try(id_, name_, rank_, loc.file_name(),
                                       loc.line());
#else
    (void)loc;
#endif
    return ok;
  }

  void unlock() PE_RELEASE() {
#if PE_LOCK_ORDER_ENABLED
    lock_order::on_release(id_);
#endif
    mu_.unlock();
  }

 private:
  friend class CondVar;

  std::mutex& native() noexcept { return mu_; }

  std::mutex mu_;
#if PE_LOCK_ORDER_ENABLED
  std::uint64_t id_;
  const char* name_;
  std::uint32_t rank_;
#endif
};

class PE_CAPABILITY("shared_mutex") SharedMutex {
 public:
#if PE_LOCK_ORDER_ENABLED
  explicit SharedMutex(const char* name = "shared_mutex",
                       std::uint32_t rank = 0) noexcept
      : id_(lock_order::new_id()), name_(name), rank_(rank) {}
  ~SharedMutex() { lock_order::retire_id(id_); }
#else
  explicit SharedMutex(const char* /*name*/ = "shared_mutex",
                       std::uint32_t /*rank*/ = 0) noexcept {}
  ~SharedMutex() = default;
#endif

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock(const std::source_location& loc =
                std::source_location::current()) PE_ACQUIRE() {
#if PE_LOCK_ORDER_ENABLED
    lock_order::on_acquire(id_, name_, rank_, loc.file_name(), loc.line());
#else
    (void)loc;
#endif
    mu_.lock();
  }

  void unlock() PE_RELEASE() {
#if PE_LOCK_ORDER_ENABLED
    lock_order::on_release(id_);
#endif
    mu_.unlock();
  }

  // Readers participate in ordering like writers: a shared hold can still
  // deadlock against a writer in a reversed acquisition order.
  void lock_shared(const std::source_location& loc =
                       std::source_location::current()) PE_ACQUIRE_SHARED() {
#if PE_LOCK_ORDER_ENABLED
    lock_order::on_acquire(id_, name_, rank_, loc.file_name(), loc.line());
#else
    (void)loc;
#endif
    mu_.lock_shared();
  }

  void unlock_shared() PE_RELEASE_SHARED() {
#if PE_LOCK_ORDER_ENABLED
    lock_order::on_release(id_);
#endif
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
#if PE_LOCK_ORDER_ENABLED
  std::uint64_t id_;
  const char* name_;
  std::uint32_t rank_;
#endif
};

/// RAII exclusive lock (annotated std::lock_guard replacement).
class PE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu, const std::source_location& loc =
                                    std::source_location::current())
      PE_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(loc);
  }
  ~MutexLock() PE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock with early unlock (for unlock-before-notify) and
/// CondVar waits.
class PE_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu, const std::source_location& loc =
                                     std::source_location::current())
      PE_ACQUIRE(mu)
      : mu_(mu), loc_(loc) {
    mu_.lock(loc);
  }
  ~UniqueLock() PE_RELEASE() {
    if (owns_) mu_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void unlock() PE_RELEASE() {
    mu_.unlock();
    owns_ = false;
  }

  /// Re-acquires after an explicit unlock() (group-commit style critical
  /// sections that release the lock around a blocking syscall and then
  /// come back to publish the result).
  void lock() PE_ACQUIRE() {
    mu_.lock(loc_);
    owns_ = true;
  }

  bool owns_lock() const noexcept { return owns_; }

 private:
  friend class CondVar;

  Mutex& mu_;
  std::source_location loc_;
  bool owns_ = true;
};

/// RAII shared (reader) lock on SharedMutex.
class PE_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu, const std::source_location& loc =
                                           std::source_location::current())
      PE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared(loc);
  }
  ~ReaderLock() PE_RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock on SharedMutex.
class PE_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu, const std::source_location& loc =
                                           std::source_location::current())
      PE_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(loc);
  }
  ~WriterLock() PE_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable over pe::Mutex via UniqueLock. Waits are modeled as
/// release + reacquire in the lock-order detector, so the acquired-before
/// graph stays accurate across long-poll parks.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  template <typename Pred>
  void wait(UniqueLock& lock, Pred pred) {
    std::unique_lock<std::mutex> native(lock.mu_.native(), std::adopt_lock);
    record_release(lock);
    cv_.wait(native, std::move(pred));
    record_reacquire(lock);
    native.release();
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(UniqueLock& lock,
                const std::chrono::duration<Rep, Period>& timeout,
                Pred pred) {
    std::unique_lock<std::mutex> native(lock.mu_.native(), std::adopt_lock);
    record_release(lock);
    const bool ok = cv_.wait_for(native, timeout, std::move(pred));
    record_reacquire(lock);
    native.release();
    return ok;
  }

 private:
  static void record_release(UniqueLock& lock) {
#if PE_LOCK_ORDER_ENABLED
    lock_order::on_release(lock.mu_.id_);
#else
    (void)lock;
#endif
  }
  static void record_reacquire(UniqueLock& lock) {
#if PE_LOCK_ORDER_ENABLED
    lock_order::on_acquire(lock.mu_.id_, lock.mu_.name_, lock.mu_.rank_,
                           lock.loc_.file_name(), lock.loc_.line());
#else
    (void)lock;
#endif
  }

  std::condition_variable cv_;
};

#if !PE_LOCK_ORDER_ENABLED
// Release builds compile the detector to literally nothing.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "pe::Mutex must be layout-identical to std::mutex when the "
              "lock-order detector is disabled");
static_assert(sizeof(SharedMutex) == sizeof(std::shared_mutex),
              "pe::SharedMutex must be layout-identical to "
              "std::shared_mutex when the lock-order detector is disabled");
#endif

}  // namespace pe
