#include "taskexec/scheduler.h"

#include <algorithm>

#include "common/clock.h"
#include "common/ids.h"
#include "common/logging.h"
#include "telemetry/metrics.h"

namespace pe::exec {

Scheduler::Scheduler() = default;

Scheduler::~Scheduler() { shutdown(); }

Status Scheduler::add_worker(std::shared_ptr<Worker> worker) {
  MutexLock lock(mutex_);
  if (shutdown_) return Status::FailedPrecondition("scheduler shut down");
  const std::string& id = worker->id();
  if (workers_.count(id) > 0) {
    return Status::AlreadyExists("worker '" + id + "' already registered");
  }
  WorkerSlot slot;
  slot.cores_free = worker->cores();
  slot.memory_free_gb = worker->memory_gb();
  slot.worker = std::move(worker);
  workers_.emplace(id, std::move(slot));
  dispatch_locked();
  return Status::Ok();
}

Status Scheduler::remove_worker(const std::string& worker_id) {
  std::shared_ptr<Worker> to_shutdown;
  {
    MutexLock lock(mutex_);
    auto it = workers_.find(worker_id);
    if (it == workers_.end()) {
      return Status::NotFound("worker '" + worker_id + "' not found");
    }
    if (it->second.running > 0) {
      return Status::FailedPrecondition("worker '" + worker_id +
                                        "' still runs tasks");
    }
    to_shutdown = it->second.worker;
    workers_.erase(it);
  }
  to_shutdown->shutdown();
  return Status::Ok();
}

Status Scheduler::fail_worker(const std::string& worker_id) {
  std::shared_ptr<Worker> dead;
  {
    MutexLock lock(mutex_);
    auto wit = workers_.find(worker_id);
    if (wit == workers_.end()) {
      return Status::NotFound("worker '" + worker_id + "' not found");
    }
    dead = wit->second.worker;
    // Drop the slot first so re-dispatch below cannot pick the dead
    // worker, and so a zombie completion finds no capacity to free.
    workers_.erase(wit);

    std::vector<std::string> victims;
    for (const auto& [id, _] : running_) {
      auto tit = tasks_.find(id);
      if (tit != tasks_.end() && tit->second.worker_id == worker_id) {
        victims.push_back(id);
      }
    }
    for (const auto& id : victims) {
      auto rit = running_.find(id);
      if (rit == running_.end()) continue;
      PendingTask task = std::move(rit->second);
      running_.erase(rit);
      // Kill the orphaned execution (if its thread is still alive) without
      // tripping the handle-level stop flag the re-dispatch shares.
      if (task.kill) task.kill->store(true, std::memory_order_release);
      auto tit = tasks_.find(id);
      if (shutdown_ || !can_ever_host_locked(task.spec)) {
        const Status status = Status::Unavailable(
            "worker '" + worker_id + "' failed; no surviving worker fits");
        if (tit != tasks_.end()) {
          tit->second.state = TaskState::kFailed;
          tit->second.end_ns = Clock::now_ns();
          tit->second.result = status;
        }
        failed_ += 1;
        task.done->set_value(status);
        continue;
      }
      PE_LOG_INFO("worker " << worker_id << " failed; re-dispatching task "
                            << id);
      if (tit != tasks_.end()) {
        tit->second.state = TaskState::kPending;
        tit->second.worker_id.clear();
      }
      redispatched_ += 1;
      tel::MetricsRegistry::global().counter("scheduler.tasks_redispatched")
          .add();
      enqueue_pending_locked(std::move(task));
    }
    dispatch_locked();
    idle_cv_.notify_all();
  }
  // Join the dead worker's thread outside the lock: its in-flight bodies
  // observe the kill flag and unwind; their results are discarded by the
  // dispatch-sequence check in finish_task.
  dead->shutdown();
  return Status::Ok();
}

bool Scheduler::can_ever_host_locked(const TaskSpec& spec) const {
  if (!spec.pinned_worker.empty()) {
    auto it = workers_.find(spec.pinned_worker);
    if (it == workers_.end()) return false;
    return it->second.worker->cores() >= spec.cores &&
           it->second.worker->memory_gb() >= spec.memory_gb;
  }
  return std::any_of(workers_.begin(), workers_.end(), [&](const auto& kv) {
    return kv.second.worker->cores() >= spec.cores &&
           kv.second.worker->memory_gb() >= spec.memory_gb;
  });
}

Scheduler::WorkerSlot* Scheduler::pick_worker_locked(const TaskSpec& spec) {
  if (!spec.pinned_worker.empty()) {
    auto it = workers_.find(spec.pinned_worker);
    if (it == workers_.end()) return nullptr;
    WorkerSlot& slot = it->second;
    return (slot.cores_free >= spec.cores &&
            slot.memory_free_gb >= spec.memory_gb)
               ? &slot
               : nullptr;
  }
  // First fit with the most free cores (spreads load across workers).
  WorkerSlot* best = nullptr;
  for (auto& [_, slot] : workers_) {
    if (slot.cores_free >= spec.cores &&
        slot.memory_free_gb >= spec.memory_gb) {
      if (best == nullptr || slot.cores_free > best->cores_free) {
        best = &slot;
      }
    }
  }
  return best;
}

Result<TaskHandle> Scheduler::submit(TaskSpec spec) {
  if (!spec.fn) return Status::InvalidArgument("task has no body");
  if (spec.cores == 0) return Status::InvalidArgument("task needs >= 1 core");

  MutexLock lock(mutex_);
  if (shutdown_) return Status::FailedPrecondition("scheduler shut down");
  if (!can_ever_host_locked(spec)) {
    return Status::InvalidArgument(
        "no registered worker can host task '" + spec.name + "' (cores=" +
        std::to_string(spec.cores) + ", pinned='" + spec.pinned_worker + "')");
  }

  PendingTask task;
  task.id = next_task_id();
  task.spec = std::move(spec);
  task.done = std::make_shared<std::promise<Status>>();
  task.stop = std::make_shared<std::atomic<bool>>(false);

  TaskInfo info;
  info.id = task.id;
  info.name = task.spec.name;
  info.submit_ns = Clock::now_ns();
  tasks_[task.id] = info;

  TaskHandle handle(task.id, task.done->get_future().share(), task.stop);
  enqueue_pending_locked(std::move(task));
  dispatch_locked();
  return handle;
}

void Scheduler::enqueue_pending_locked(PendingTask task) {
  // Insert behind the last task of >= priority: higher priority first,
  // FIFO within a level.
  auto insert_at = pending_.end();
  while (insert_at != pending_.begin()) {
    auto prev = std::prev(insert_at);
    if (prev->spec.priority >= task.spec.priority) break;
    insert_at = prev;
  }
  pending_.insert(insert_at, std::move(task));
}

void Scheduler::dispatch_locked() {
  // In-order dispatch; stop at the first task we cannot place (FIFO
  // fairness — a large task at the head blocks smaller ones behind it,
  // matching Dask's default queueing).
  while (!pending_.empty()) {
    PendingTask& head = pending_.front();
    WorkerSlot* slot = pick_worker_locked(head.spec);
    if (slot == nullptr) break;

    PendingTask task = std::move(head);
    pending_.pop_front();

    slot->cores_free -= task.spec.cores;
    slot->memory_free_gb -= task.spec.memory_gb;
    slot->running += 1;

    const std::string worker_id = slot->worker->id();
    TaskInfo& info = tasks_[task.id];
    info.state = TaskState::kRunning;
    info.worker_id = worker_id;
    info.start_ns = Clock::now_ns();
    info.attempts = task.attempts;

    const std::uint32_t cores = task.spec.cores;
    const double memory_gb = task.spec.memory_gb;
    // The body is *copied* into the execution lambda so a failed attempt
    // can be resubmitted from the retained spec in running_.
    auto fn = task.spec.fn;
    auto done = task.done;
    auto stop = task.stop;
    // Fresh kill flag + sequence per dispatch: a failover re-dispatch
    // invalidates this execution without touching the shared stop flag.
    task.kill = std::make_shared<std::atomic<bool>>(false);
    task.dispatch_seq = ++dispatch_counter_;
    auto kill = task.kill;
    const std::uint64_t dispatch_seq = task.dispatch_seq;
    const std::string task_id = task.id;
    running_[task_id] = std::move(task);

    const bool accepted = slot->worker->execute([this, fn = std::move(fn),
                                                 done, stop, kill, task_id,
                                                 dispatch_seq, worker_id,
                                                 cores, memory_gb]() mutable {
      // The context shares the scheduler-side stop flag, so cancel()
      // after dispatch reaches the running body.
      TaskContext ctx(task_id, worker_id, stop, kill);
      Status status;
      if (ctx.stop_requested()) {
        status = Status::Cancelled("cancelled before start");
      } else {
        try {
          status = fn(ctx);
        } catch (const std::exception& e) {
          status = Status::Internal(std::string("task threw: ") + e.what());
        } catch (...) {
          status = Status::Internal("task threw unknown exception");
        }
      }
      const bool suppressed =
          finish_task(task_id, dispatch_seq, cores, memory_gb, status);
      if (!suppressed) done->set_value(status);
    });
    if (!accepted) {
      // Worker was shut down underneath us; fail the task inline (we
      // already hold the lock, finish_task would deadlock).
      const Status status = Status::Unavailable("worker shut down");
      info.state = TaskState::kFailed;
      info.end_ns = Clock::now_ns();
      info.result = status;
      failed_ += 1;
      slot->cores_free += cores;
      slot->memory_free_gb += memory_gb;
      slot->running -= 1;
      running_.erase(task_id);
      done->set_value(status);
    }
  }
}

Status Scheduler::cancel(const std::string& task_id) {
  MutexLock lock(mutex_);
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return Status::NotFound("unknown task " + task_id);

  if (it->second.state == TaskState::kPending) {
    auto pit = std::find_if(pending_.begin(), pending_.end(),
                            [&](const PendingTask& t) { return t.id == task_id; });
    if (pit != pending_.end()) {
      it->second.state = TaskState::kCancelled;
      it->second.end_ns = Clock::now_ns();
      it->second.result = Status::Cancelled("cancelled while pending");
      pit->done->set_value(it->second.result);
      pending_.erase(pit);
      idle_cv_.notify_all();
      return Status::Ok();
    }
  }
  auto sit = running_.find(task_id);
  if (sit != running_.end()) {
    sit->second.stop->store(true, std::memory_order_release);
    // Cancellation wins over retry: zero the budget so a body that fails
    // instead of observing the stop flag is not resubmitted.
    sit->second.spec.max_retries = 0;
    return Status::Ok();
  }
  return Status::FailedPrecondition("task already terminal");
}

Result<TaskInfo> Scheduler::task_info(const std::string& task_id) const {
  MutexLock lock(mutex_);
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return Status::NotFound("unknown task " + task_id);
  return it->second;
}

bool Scheduler::finish_task(const std::string& task_id,
                            std::uint64_t dispatch_seq, std::uint32_t cores,
                            double memory_gb, Status status) {
  MutexLock lock(mutex_);
  bool retried = false;
  {
    // Zombie check BEFORE any bookkeeping: if this execution was
    // superseded by a failover re-dispatch (sequence mismatch) or its
    // worker was declared dead (entry gone), its capacity was already
    // reclaimed with the worker and its result must be discarded — the
    // live dispatch owns the completion promise.
    auto rit = running_.find(task_id);
    if (rit == running_.end() || rit->second.dispatch_seq != dispatch_seq) {
      return true;
    }
  }
  auto it = tasks_.find(task_id);
  if (it != tasks_.end()) {
    // Free the worker's capacity first.
    auto wit = workers_.find(it->second.worker_id);
    if (wit != workers_.end()) {
      wit->second.cores_free += cores;
      wit->second.memory_free_gb += memory_gb;
      wit->second.running -= 1;
    }

    auto rit = running_.find(task_id);
    const bool failure = !status.ok() &&
                         status.code() != StatusCode::kCancelled;
    const bool retryable =
        rit != running_.end() &&
        (rit->second.spec.retry_policy == RetryPolicy::kAllFailures ||
         status.is_transient());
    if (failure && !shutdown_ && rit != running_.end() && retryable &&
        rit->second.attempts < rit->second.spec.max_retries) {
      // Resubmit for another attempt; the completion promise stays open.
      PendingTask task = std::move(rit->second);
      running_.erase(rit);
      task.attempts += 1;
      it->second.state = TaskState::kPending;
      it->second.attempts = task.attempts;
      PE_LOG_INFO("task " << task_id << " failed ("
                          << status.to_string() << "), retry "
                          << task.attempts << "/"
                          << task.spec.max_retries);
      enqueue_pending_locked(std::move(task));
      retried = true;
    } else {
      it->second.end_ns = Clock::now_ns();
      it->second.result = status;
      if (status.ok()) {
        it->second.state = TaskState::kSucceeded;
        completed_ += 1;
      } else if (status.code() == StatusCode::kCancelled) {
        it->second.state = TaskState::kCancelled;
        completed_ += 1;
      } else {
        it->second.state = TaskState::kFailed;
        failed_ += 1;
      }
      if (rit != running_.end()) running_.erase(rit);
    }
  }
  dispatch_locked();
  idle_cv_.notify_all();
  return retried;
}

void Scheduler::wait_idle() {
  UniqueLock lock(mutex_);
  idle_cv_.wait(lock, [this]() PE_NO_THREAD_SAFETY_ANALYSIS {
    if (!pending_.empty()) return false;
    return std::all_of(workers_.begin(), workers_.end(), [](const auto& kv) {
      return kv.second.running == 0;
    });
  });
}

SchedulerStats Scheduler::stats() const {
  MutexLock lock(mutex_);
  SchedulerStats s;
  s.workers = workers_.size();
  for (const auto& [_, slot] : workers_) {
    s.total_cores += slot.worker->cores();
    s.cores_in_use += slot.worker->cores() - slot.cores_free;
    s.running_tasks += slot.running;
  }
  s.pending_tasks = pending_.size();
  s.completed_tasks = completed_;
  s.failed_tasks = failed_;
  s.redispatched_tasks = redispatched_;
  return s;
}

std::vector<std::string> Scheduler::worker_ids() const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(workers_.size());
  for (const auto& [id, _] : workers_) out.push_back(id);
  return out;
}

void Scheduler::shutdown() {
  std::vector<std::shared_ptr<Worker>> workers;
  {
    MutexLock lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    // Cancel all pending tasks.
    for (auto& t : pending_) {
      auto it = tasks_.find(t.id);
      if (it != tasks_.end()) {
        it->second.state = TaskState::kCancelled;
        it->second.end_ns = Clock::now_ns();
        it->second.result = Status::Cancelled("scheduler shutdown");
      }
      t.done->set_value(Status::Cancelled("scheduler shutdown"));
    }
    pending_.clear();
    // Signal running tasks to stop.
    for (auto& [_, task] : running_) {
      task.stop->store(true, std::memory_order_release);
    }
    for (auto& [_, slot] : workers_) workers.push_back(slot.worker);
  }
  // Join outside the lock: worker pools drain their queues, and each task
  // completion calls finish_task() which re-takes the lock.
  for (auto& w : workers) w->shutdown();
}

}  // namespace pe::exec
