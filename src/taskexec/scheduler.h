// Capacity-aware FIFO task scheduler.
//
// Tracks per-worker core/memory headroom, queues tasks while no worker can
// host them, and dispatches in submission order (first-fit over workers,
// honoring pinning). Completion events free capacity and trigger another
// dispatch round. Mirrors the Dask scheduler role in the paper at the
// granularity Pilot-Edge uses it: task in, placed task out.
#pragma once

#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "taskexec/task.h"
#include "taskexec/worker.h"

namespace pe::exec {

/// Handle the submitter keeps: id + completion future + stop control.
class TaskHandle {
 public:
  TaskHandle() = default;
  TaskHandle(std::string id, std::shared_future<Status> done,
             std::shared_ptr<std::atomic<bool>> stop)
      : id_(std::move(id)), done_(std::move(done)), stop_(std::move(stop)) {}

  const std::string& id() const { return id_; }
  bool valid() const { return done_.valid(); }

  /// Blocks until the task finishes; returns its final status.
  Status wait() const { return done_.get(); }

  bool wait_for(Duration timeout) const {
    return done_.wait_for(timeout) == std::future_status::ready;
  }

  /// Requests cooperative cancellation (streaming tasks observe the flag).
  void request_stop() {
    if (stop_) stop_->store(true, std::memory_order_release);
  }

 private:
  std::string id_;
  std::shared_future<Status> done_;
  std::shared_ptr<std::atomic<bool>> stop_;
};

/// Point-in-time scheduler utilization.
struct SchedulerStats {
  std::size_t workers = 0;
  std::uint32_t total_cores = 0;
  std::uint32_t cores_in_use = 0;
  std::size_t pending_tasks = 0;
  std::size_t running_tasks = 0;
  std::uint64_t completed_tasks = 0;
  std::uint64_t failed_tasks = 0;
  /// Tasks re-queued because their hosting worker died (failover, not
  /// retry — re-dispatch does not consume a retry attempt).
  std::uint64_t redispatched_tasks = 0;
};

class Scheduler {
 public:
  Scheduler();
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers a worker (takes shared ownership).
  Status add_worker(std::shared_ptr<Worker> worker);

  /// Removes a worker; fails with FAILED_PRECONDITION while it runs tasks.
  Status remove_worker(const std::string& worker_id);

  /// Declares a worker dead (crash semantics). Its in-flight tasks are
  /// killed via their per-dispatch flag and re-queued onto surviving
  /// workers without consuming a retry attempt; tasks no surviving worker
  /// can ever host fail with UNAVAILABLE. The dead worker's thread is
  /// joined, and any result its zombie executions later report is
  /// discarded. NOT_FOUND for unknown workers.
  Status fail_worker(const std::string& worker_id);

  /// Submits a task. INVALID_ARGUMENT if no worker could *ever* host it
  /// (unknown pinned worker, or cores exceed every worker's total).
  Result<TaskHandle> submit(TaskSpec spec);

  /// Cooperative cancel. Pending tasks are dropped immediately; running
  /// tasks get their stop flag set and finish as kCancelled when the body
  /// returns Cancelled, or their natural state otherwise.
  Status cancel(const std::string& task_id);

  /// Snapshot of a task's lifecycle record.
  Result<TaskInfo> task_info(const std::string& task_id) const;

  /// Blocks until all currently known tasks reached a terminal state.
  void wait_idle();

  SchedulerStats stats() const;
  std::vector<std::string> worker_ids() const;

  /// Stops dispatching, cancels pending tasks, waits for running tasks.
  void shutdown();

 private:
  struct WorkerSlot {
    std::shared_ptr<Worker> worker;
    std::uint32_t cores_free = 0;
    double memory_free_gb = 0.0;
    std::size_t running = 0;
  };

  struct PendingTask {
    std::string id;
    TaskSpec spec;
    std::uint32_t attempts = 0;
    std::shared_ptr<std::promise<Status>> done;
    std::shared_ptr<std::atomic<bool>> stop;
    // Per-dispatch kill flag + sequence number. A re-dispatch after worker
    // failure bumps the sequence; the superseded execution becomes a
    // zombie whose completion is ignored.
    std::shared_ptr<std::atomic<bool>> kill;
    std::uint64_t dispatch_seq = 0;
  };

  void dispatch_locked() PE_REQUIRES(mutex_);
  void enqueue_pending_locked(PendingTask task) PE_REQUIRES(mutex_);
  bool can_ever_host_locked(const TaskSpec& spec) const PE_REQUIRES(mutex_);
  WorkerSlot* pick_worker_locked(const TaskSpec& spec) PE_REQUIRES(mutex_);
  /// Returns true when the caller must NOT resolve the completion promise:
  /// either the task was resubmitted for a retry, or `dispatch_seq` no
  /// longer matches the live dispatch (zombie execution from a failed
  /// worker).
  bool finish_task(const std::string& task_id, std::uint64_t dispatch_seq,
                   std::uint32_t cores, double memory_gb, Status status);

  // Top of the exec lock domain: dispatch_locked pushes into worker pool
  // queues (level 2) while holding this; worker threads re-enter via
  // finish_task only after dropping their queue lock.
  mutable Mutex mutex_{"exec.scheduler", lock_rank(kLockDomainExec, 1)};
  CondVar idle_cv_;
  std::map<std::string, WorkerSlot> workers_ PE_GUARDED_BY(mutex_);
  std::deque<PendingTask> pending_ PE_GUARDED_BY(mutex_);
  std::map<std::string, TaskInfo> tasks_ PE_GUARDED_BY(mutex_);
  // Dispatched tasks, retained for cancellation and retry resubmission.
  std::map<std::string, PendingTask> running_ PE_GUARDED_BY(mutex_);
  std::uint64_t completed_ PE_GUARDED_BY(mutex_) = 0;
  std::uint64_t failed_ PE_GUARDED_BY(mutex_) = 0;
  std::uint64_t redispatched_ PE_GUARDED_BY(mutex_) = 0;
  std::uint64_t dispatch_counter_ PE_GUARDED_BY(mutex_) = 0;
  bool shutdown_ PE_GUARDED_BY(mutex_) = false;
};

}  // namespace pe::exec
