// Task model for the executor.
//
// A task is a unit of work bound to resource requirements (cores, memory).
// Long-running (streaming) tasks cooperate with cancellation through the
// TaskContext stop flag — mirroring how Pilot-Edge keeps Dask tasks alive
// for the lifetime of a pipeline and tears them down on shutdown.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"

namespace pe::exec {

enum class TaskState {
  kPending,    // submitted, waiting for capacity
  kRunning,
  kSucceeded,
  kFailed,
  kCancelled,
};

constexpr const char* to_string(TaskState s) {
  switch (s) {
    case TaskState::kPending: return "pending";
    case TaskState::kRunning: return "running";
    case TaskState::kSucceeded: return "succeeded";
    case TaskState::kFailed: return "failed";
    case TaskState::kCancelled: return "cancelled";
  }
  return "?";
}

/// Passed to the task body; carries identity and the cancellation flag.
/// The flag is shared with the scheduler's TaskHandle, so cancel /
/// request_stop on the handle is visible inside the running body.
///
/// A second, per-dispatch `kill` flag lets the scheduler abandon one
/// execution attempt (the worker hosting it died and the task was
/// re-dispatched elsewhere) without tripping the handle-level stop flag
/// that the replacement execution still shares.
class TaskContext {
 public:
  TaskContext(std::string task_id, std::string worker_id,
              std::shared_ptr<std::atomic<bool>> stop = nullptr,
              std::shared_ptr<std::atomic<bool>> kill = nullptr)
      : task_id_(std::move(task_id)),
        worker_id_(std::move(worker_id)),
        stop_(stop ? std::move(stop)
                   : std::make_shared<std::atomic<bool>>(false)),
        kill_(std::move(kill)) {}

  const std::string& task_id() const { return task_id_; }
  const std::string& worker_id() const { return worker_id_; }

  bool stop_requested() const {
    return stop_->load(std::memory_order_acquire) ||
           (kill_ && kill_->load(std::memory_order_acquire));
  }
  void request_stop() { stop_->store(true, std::memory_order_release); }

  /// Shared handle so the scheduler can signal stop after dispatch.
  std::shared_ptr<std::atomic<bool>> stop_flag() { return stop_; }

 private:
  std::string task_id_;
  std::string worker_id_;
  std::shared_ptr<std::atomic<bool>> stop_;
  std::shared_ptr<std::atomic<bool>> kill_;
};

using TaskFn = std::function<Status(TaskContext&)>;

/// Which failures consume retry attempts.
enum class RetryPolicy {
  /// Retry any non-OK result (legacy behavior; default).
  kAllFailures,
  /// Retry only failures where Status::is_transient() holds
  /// (UNAVAILABLE/TIMEOUT); deterministic failures such as INTERNAL fail
  /// the task immediately.
  kTransientOnly,
};

/// What the caller submits.
struct TaskSpec {
  std::string name = "task";
  TaskFn fn;
  std::uint32_t cores = 1;
  double memory_gb = 1.0;
  /// Optional placement constraint: run only on this worker id.
  std::string pinned_worker;
  /// Automatic resubmission on failure (not on cancellation). The body is
  /// re-executed from scratch up to this many additional times.
  std::uint32_t max_retries = 0;
  /// Gates which failures are retried; see RetryPolicy.
  RetryPolicy retry_policy = RetryPolicy::kAllFailures;
  /// Dispatch priority: higher runs first among queued tasks (FIFO within
  /// a priority level). The paper's IoT mix of "real-time tasks for
  /// control and steering and long-running tasks" motivates this: a
  /// latency-critical control task must not sit behind a training job.
  std::int32_t priority = 0;
};

/// Observable lifecycle record, updated by the scheduler.
struct TaskInfo {
  std::string id;
  std::string name;
  TaskState state = TaskState::kPending;
  std::string worker_id;
  std::uint64_t submit_ns = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  /// Number of retry attempts consumed (0 = first execution).
  std::uint32_t attempts = 0;
  Status result;
};

}  // namespace pe::exec
