// Worker: an execution endpoint with a fixed core and memory capacity.
//
// A worker belongs to a fabric site (the site of the pilot that owns it).
// It runs task bodies on a thread pool with one thread per core; the
// scheduler tracks core/memory headroom and never over-commits.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "network/site.h"
#include "taskexec/task.h"

namespace pe::exec {

struct WorkerSpec {
  std::string id;
  net::SiteId site;
  std::uint32_t cores = 1;
  double memory_gb = 4.0;
};

class Worker {
 public:
  explicit Worker(WorkerSpec spec);

  const std::string& id() const { return spec_.id; }
  const net::SiteId& site() const { return spec_.site; }
  std::uint32_t cores() const { return spec_.cores; }
  double memory_gb() const { return spec_.memory_gb; }

  /// Runs `job` on the worker's pool; returns false after shutdown.
  bool execute(std::function<void()> job);

  /// Stops accepting work and joins worker threads.
  void shutdown();

 private:
  const WorkerSpec spec_;
  ThreadPool pool_;
};

}  // namespace pe::exec
