// Cluster: a scheduler plus the workers of one resource allocation.
//
// Each running pilot owns a Cluster sized to the pilot's cores/memory —
// the analogue of the "managed Dask cluster" Pilot-Edge starts inside each
// pilot (paper step 2.2). Workers can be added at runtime to model
// scale-out.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "taskexec/scheduler.h"

namespace pe::exec {

class Cluster {
 public:
  /// Creates a cluster on `site` with one initial worker of the given
  /// capacity (pass cores=0 to start empty).
  Cluster(net::SiteId site, std::uint32_t cores, double memory_gb,
          std::string name = "cluster");
  ~Cluster();

  const net::SiteId& site() const { return site_; }
  const std::string& name() const { return name_; }

  /// Adds a worker with the given capacity; returns its id.
  Result<std::string> add_worker(std::uint32_t cores, double memory_gb);

  Status remove_worker(const std::string& worker_id);

  /// Simulates a worker crash: in-flight tasks fail over to surviving
  /// workers (see Scheduler::fail_worker). Chaos-engine entry point.
  Status crash_worker(const std::string& worker_id);

  Result<TaskHandle> submit(TaskSpec spec);

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }

  std::uint32_t total_cores() const { return scheduler_.stats().total_cores; }

  void shutdown();

 private:
  const net::SiteId site_;
  const std::string name_;
  Scheduler scheduler_;
  std::uint64_t next_worker_ = 0;
};

}  // namespace pe::exec
