#include "taskexec/cluster.h"

namespace pe::exec {

Cluster::Cluster(net::SiteId site, std::uint32_t cores, double memory_gb,
                 std::string name)
    : site_(std::move(site)), name_(std::move(name)) {
  if (cores > 0) {
    (void)add_worker(cores, memory_gb);
  }
}

Cluster::~Cluster() { shutdown(); }

Result<std::string> Cluster::add_worker(std::uint32_t cores,
                                        double memory_gb) {
  if (cores == 0) return Status::InvalidArgument("worker needs >= 1 core");
  WorkerSpec spec;
  spec.id = name_ + "-w" + std::to_string(next_worker_++);
  spec.site = site_;
  spec.cores = cores;
  spec.memory_gb = memory_gb;
  auto worker = std::make_shared<Worker>(spec);
  if (auto s = scheduler_.add_worker(worker); !s.ok()) return s;
  return spec.id;
}

Status Cluster::remove_worker(const std::string& worker_id) {
  return scheduler_.remove_worker(worker_id);
}

Status Cluster::crash_worker(const std::string& worker_id) {
  return scheduler_.fail_worker(worker_id);
}

Result<TaskHandle> Cluster::submit(TaskSpec spec) {
  return scheduler_.submit(std::move(spec));
}

void Cluster::shutdown() { scheduler_.shutdown(); }

}  // namespace pe::exec
