#include "taskexec/worker.h"

namespace pe::exec {

Worker::Worker(WorkerSpec spec)
    : spec_(std::move(spec)), pool_(spec_.cores, spec_.id) {}

bool Worker::execute(std::function<void()> job) {
  return pool_.submit(std::move(job));
}

void Worker::shutdown() { pool_.shutdown(); }

}  // namespace pe::exec
