// Shared vocabulary for the replicated broker cluster.
//
// A BrokerCluster runs N broker::Broker instances; every topic-partition
// has one leader and RF-1 followers chosen by the deterministic shard map
// (shard_map.h). These types describe the cluster's metadata plane: who
// replicates what, how produced records are acknowledged, and the wire
// format of the replicated `__offsets` topic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/serialize.h"
#include "common/status.h"
#include "broker/admission.h"
#include "broker/group_coordinator.h"
#include "storage/storage_config.h"

namespace pe::cluster {

/// Index of a broker inside a cluster (dense, assigned at construction).
using BrokerId = std::uint32_t;

/// "No broker": a partition whose every replica is down is leaderless.
inline constexpr BrokerId kNoBroker = ~BrokerId{0};

/// The replicated consumer-offsets topic. Commits are appended here by the
/// partition's leader and applied to its group coordinator in log order,
/// so a new leader can rebuild the committed-offset table by replaying its
/// local replica.
inline constexpr const char* kOffsetsTopic = "__offsets";

/// How many replicas must hold a produced batch before the produce call
/// returns OK.
enum class AckPolicy : std::uint8_t {
  /// Leader append only. Fastest; records not yet replicated are lost if
  /// the leader dies (they are also invisible to consumers until they
  /// clear the high watermark).
  kLeader,
  /// A majority of the replica set (RF/2 + 1, leader included). Survives
  /// any minority of replica failures — the election always finds a
  /// replica holding every quorum-acked record.
  kQuorum,
  /// Every current in-sync replica. Strongest, but degrades to kLeader
  /// durability when the ISR has shrunk to the leader alone.
  kAll,
};

inline const char* to_string(AckPolicy acks) {
  switch (acks) {
    case AckPolicy::kLeader: return "leader";
    case AckPolicy::kQuorum: return "quorum";
    case AckPolicy::kAll: return "all";
  }
  return "unknown";
}

/// Metadata-plane view of one topic-partition.
struct PartitionMeta {
  BrokerId leader = kNoBroker;
  /// Full replica set, leader included; fixed at topic creation.
  std::vector<BrokerId> replicas;
  /// In-sync subset of `replicas`: alive, reachable, caught up within the
  /// configured lag bound, and with no pending divergence repair.
  std::vector<BrokerId> isr;
  /// Leader epoch: bumped on every election. Stale-leader writes are
  /// fenced by comparing epochs (a commit carrying an old epoch is
  /// rejected with NOT_LEADER).
  std::uint64_t epoch = 0;
};

struct ClusterOptions {
  /// Number of brokers in the cluster.
  std::uint32_t brokers = 3;
  /// Replicas per partition (capped at the broker count).
  std::uint32_t replication_factor = 3;
  /// Ack policy used when the producer does not specify one.
  AckPolicy default_acks = AckPolicy::kQuorum;
  /// Controller tick: heartbeat refresh + replication pump cadence
  /// (emulated time; scaled by Clock::time_scale like all durations).
  Duration heartbeat_interval = std::chrono::milliseconds(1);
  /// A broker whose heartbeat is older than this is declared dead and its
  /// partitions fail over.
  Duration session_timeout = std::chrono::milliseconds(8);
  /// How long a produce waits for the required acks before returning
  /// TIMEOUT (the batch may still replicate afterwards: at-least-once).
  Duration ack_timeout = std::chrono::milliseconds(500);
  /// A follower further behind the leader than this drops out of the ISR
  /// until the replication pump catches it back up.
  std::uint64_t isr_max_lag_records = 256;
  /// Per-follower catch-up bounds for one pump pass (keeps a tick short
  /// even when a follower is far behind).
  std::size_t replication_batch_records = 1024;
  std::uint64_t replication_batch_bytes = 4ull << 20;
  /// Non-empty => brokers are durable, each under
  /// `<durable_root>/broker-<i>`, and a killed broker recovers from disk.
  std::string durable_root;
  storage::StorageConfig storage;
  /// Edge admission control applied by every member broker (per-client
  /// quotas + hot-window memory cap). Quotas only bite at the partition
  /// leader — replication is admission-exempt.
  broker::AdmissionConfig admission;
};

/// Wire format of one `__offsets` record body (the record key is the group
/// id). Kept explicit so a replica replay and the original apply decode
/// identically.
inline Bytes encode_offset_commit(const broker::TopicPartition& tp,
                                  std::uint64_t offset) {
  Bytes out;
  ByteWriter w(out);
  w.put_string(tp.topic);
  w.put_u32(tp.partition);
  w.put_u64(offset);
  return out;
}

struct OffsetCommit {
  broker::TopicPartition tp;
  std::uint64_t offset = 0;
};

inline Result<OffsetCommit> decode_offset_commit(ByteSpan body) {
  ByteReader r(body);
  OffsetCommit c;
  if (auto s = r.get_string(c.tp.topic); !s.ok()) return s;
  if (auto s = r.get_u32(c.tp.partition); !s.ok()) return s;
  if (auto s = r.get_u64(c.offset); !s.ok()) return s;
  return c;
}

}  // namespace pe::cluster
