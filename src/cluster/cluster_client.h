// Cluster-aware clients: metadata caching, NOT_LEADER refresh, and capped
// exponential backoff over transient failures.
//
// Both clients keep a per-partition leader cache and talk to the cluster
// through it. When a call fails NOT_LEADER or UNAVAILABLE (leader died,
// election pending, broker isolated), they refresh the metadata and retry
// with exponential backoff, capped and bounded by RetryConfig — the same
// transient-vs-permanent vocabulary as the task executor's RetryPolicy.
// A produce retry after an ack TIMEOUT can duplicate records: the cluster
// is at-least-once, never silently lossy.
//
// Clients are single-threaded like their broker counterparts; give each
// thread its own instance.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "broker/batch_accumulator.h"
#include "broker/record.h"
#include "cluster/broker_cluster.h"
#include "cluster/cluster_types.h"
#include "taskexec/task.h"

namespace pe::cluster {

/// Retry envelope for cluster calls. `policy` reuses the executor's
/// vocabulary: kTransientOnly retries NOT_LEADER / UNAVAILABLE / TIMEOUT
/// and fails fast on everything else; kAllFailures retries any error.
struct RetryConfig {
  std::size_t max_attempts = 8;
  Duration initial_backoff = std::chrono::milliseconds(1);
  Duration max_backoff = std::chrono::milliseconds(64);
  exec::RetryPolicy policy = exec::RetryPolicy::kTransientOnly;
};

/// True when `status` should be retried under `config`.
bool retryable(const RetryConfig& config, const Status& status);

struct ClusterProducerStats {
  std::uint64_t records_sent = 0;
  std::uint64_t send_errors = 0;
  std::uint64_t retries = 0;
  std::uint64_t metadata_refreshes = 0;
  /// Retries caused specifically by a broker throttle (quota or
  /// hot-window cap) — the backpressure made visible to the client.
  std::uint64_t throttle_waits = 0;
};

class ClusterProducer {
 public:
  explicit ClusterProducer(std::shared_ptr<BrokerCluster> cluster,
                           RetryConfig retry = {},
                           std::optional<AckPolicy> acks = std::nullopt);
  ~ClusterProducer();

  /// Appends one record; returns its offset once acked.
  Result<std::uint64_t> send(const std::string& topic, std::uint32_t partition,
                             broker::Record record);
  /// Key-hash partition selection (stable across processes).
  Result<std::uint64_t> send(const std::string& topic, broker::Record record);
  /// Appends a batch; returns the first offset once acked. A throttled
  /// attempt (transient ResourceExhausted) backs off by at least the
  /// broker's retry-after hint before retrying.
  Result<std::uint64_t> send_batch(const std::string& topic,
                                   std::uint32_t partition,
                                   std::vector<broker::Record> records);

  // --- batching path (mirrors broker::Producer) ---
  /// Installs a batching accumulator feeding send_batch. Once enabled the
  /// producer is safe to share between the enqueueing thread and the
  /// accumulator's flusher.
  void enable_batching(broker::BatchConfig config);
  Status enqueue(const std::string& topic, std::uint32_t partition,
                 broker::Record record);
  Status flush();
  Status close();

  /// Client id presented to the leader broker's admission control.
  const std::string& id() const { return id_; }
  ClusterProducerStats stats() const;
  broker::BatchAccumulatorStats batch_stats() const;
  Status last_batch_error() const;

 private:
  Result<BrokerId> leader_for(const std::string& topic,
                              std::uint32_t partition);

  std::shared_ptr<BrokerCluster> cluster_;
  RetryConfig retry_;
  AckPolicy acks_;
  const std::string id_;
  // Guards the leader cache and stats: with batching enabled, send_batch
  // runs on both the caller's thread and the accumulator flusher. Held
  // only around cache/stats access, never across a cluster call.
  mutable Mutex mutex_{"cluster.producer"};
  std::map<broker::TopicPartition, BrokerId> leaders_ PE_GUARDED_BY(mutex_);
  ClusterProducerStats stats_ PE_GUARDED_BY(mutex_);
  std::unique_ptr<broker::BatchAccumulator> accumulator_;
};

struct ClusterConsumerConfig {
  enum class OffsetReset { kEarliest, kLatest };
  /// Where to start on a partition with no committed offset (or when the
  /// position fell outside the retained log).
  OffsetReset offset_reset = OffsetReset::kEarliest;
  std::size_t max_poll_records = 500;
  /// Commit delivered positions at the start of the next poll (and on
  /// close). Commits are replicated + quorum-acked; see
  /// BrokerCluster::commit_offset.
  bool auto_commit = true;
};

struct ClusterConsumerStats {
  std::uint64_t records_consumed = 0;
  std::uint64_t commits = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t retries = 0;
};

class ClusterConsumer {
 public:
  ClusterConsumer(std::shared_ptr<BrokerCluster> cluster, std::string group,
                  ClusterConsumerConfig config = {}, RetryConfig retry = {});
  ~ClusterConsumer();

  const std::string& id() const { return id_; }
  const std::string& group() const { return group_; }

  /// Joins the group (with retry across an offsets-leader failover) and
  /// receives an assignment.
  Status subscribe(std::vector<std::string> topics);

  /// Delivers up to max_poll_records across the assignment, sweeping
  /// partitions round-robin until something arrives or `max_wait`
  /// (emulated) elapses. Handles rebalances, leader changes, and offset
  /// resets internally; a poll during a failover returns empty rather
  /// than failing.
  Result<std::vector<broker::ConsumedRecord>> poll(
      Duration max_wait = std::chrono::milliseconds(10));

  /// Replicated commit of every delivered position (next offset to read
  /// per partition). OK means the commit survives offsets-leader loss.
  Status commit();

  std::optional<std::uint64_t> position(const broker::TopicPartition& tp) const;
  void seek(const broker::TopicPartition& tp, std::uint64_t offset);
  std::vector<broker::TopicPartition> assignment() const {
    return assignment_;
  }

  const ClusterConsumerStats& stats() const { return stats_; }

  /// Commits (when auto_commit) and leaves the group.
  Status close();
  /// Abandons the group without leaving — the coordinator evicts the
  /// member via its session timeout (crash simulation).
  void crash();

 private:
  Status rejoin();
  void maybe_rebalance();
  /// Resolves the initial position of a partition: committed offset if
  /// any, else the reset point.
  std::optional<std::uint64_t> initial_position(
      const broker::TopicPartition& tp);
  void sweep(std::vector<broker::ConsumedRecord>& out);

  std::shared_ptr<BrokerCluster> cluster_;
  const std::string group_;
  const std::string id_;
  const ClusterConsumerConfig config_;
  const RetryConfig retry_;
  bool subscribed_ = false;
  std::vector<std::string> topics_;
  std::uint64_t generation_ = 0;
  std::vector<broker::TopicPartition> assignment_;
  std::map<broker::TopicPartition, std::uint64_t> positions_;
  /// Positions already durably committed (skip no-op commits).
  std::map<broker::TopicPartition, std::uint64_t> committed_;
  std::size_t sweep_start_ = 0;
  ClusterConsumerStats stats_;
};

}  // namespace pe::cluster
