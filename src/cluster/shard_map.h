// Deterministic shard map: which brokers replicate a topic-partition.
//
// Assignment is a pure function of (topic, partition, broker count,
// replication factor) — every node computes the same map with no
// coordination, and a cluster reopened over the same durable directories
// re-derives the layout it had before. The leader preference is spread by
// hashing the topic so different topics anchor at different brokers, and
// consecutive partitions rotate around the ring so one topic's leaders do
// not pile onto one broker.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_types.h"

namespace pe::cluster {

/// FNV-1a 64-bit over a string. Chosen over std::hash for a stable,
/// platform-independent layout (std::hash may differ between libc++ and
/// libstdc++, which would re-shard a durable cluster on a toolchain swap).
std::uint64_t stable_hash(const std::string& s);

/// Replica set for one partition: `replicas[0]` is the preferred leader,
/// the rest are followers on the next ring positions. `replication_factor`
/// is capped at `brokers`; `brokers == 0` yields an empty set.
std::vector<BrokerId> assign_replicas(const std::string& topic,
                                      std::uint32_t partition,
                                      std::uint32_t brokers,
                                      std::uint32_t replication_factor);

}  // namespace pe::cluster
