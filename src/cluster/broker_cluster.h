// Replicated multi-broker cluster: partition sharding, quorum acks, and
// leader failover with zero committed-offset loss.
//
// A BrokerCluster hosts N broker::Broker instances and layers a
// metadata/control plane over them:
//
//  - Every topic-partition has one leader and RF-1 followers assigned by
//    the deterministic shard map. Produce goes through the leader; the
//    records are pushed synchronously to caught-up followers and the call
//    returns once the configured ack policy (leader/quorum/all) is met.
//  - A controller thread heartbeats the members, streams catch-up
//    replication out of the leader's log (cold reads come straight from
//    the mmap'd storage segments), maintains the ISR, and — when a
//    leader's heartbeat expires — elects the most-caught-up live replica.
//    Leader epochs fence stale writers; a deposed leader's un-replicated
//    suffix is truncated before it rejoins.
//  - Consumers only ever read up to the high watermark (the offset known
//    to be on a majority of replicas), so no record a consumer has seen
//    can be lost in a failover.
//  - Consumer-group commits are appended to the replicated `__offsets`
//    topic, applied to the offsets leader's coordinator in log order, and
//    quorum-acked. A new offsets leader replays its local replica, so
//    committed offsets survive any minority of broker failures.
//
// The fault module drives chaos through kill_broker / restore_broker /
// set_broker_isolated; see DESIGN.md §10 for the replication contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "broker/broker.h"
#include "cluster/cluster_types.h"

namespace pe::cluster {

/// Per-topic configuration at cluster scope.
struct ClusterTopicConfig {
  std::uint32_t partitions = 1;
  broker::RetentionPolicy retention;
};

class BrokerCluster {
 public:
  explicit BrokerCluster(ClusterOptions options = {});
  ~BrokerCluster();

  BrokerCluster(const BrokerCluster&) = delete;
  BrokerCluster& operator=(const BrokerCluster&) = delete;

  const ClusterOptions& options() const { return options_; }
  std::uint32_t broker_count() const;
  /// Direct member access for tests/tools (the Broker is internally
  /// synchronized). Returns nullptr for an out-of-range id.
  std::shared_ptr<broker::Broker> broker(BrokerId id) const;
  /// Resolves a broker name ("broker-2") to its id; kNoBroker if unknown.
  BrokerId broker_id(const std::string& name) const;

  // --- admin ---
  Status create_topic(const std::string& name, ClusterTopicConfig config = {});
  bool has_topic(const std::string& name) const;
  std::uint32_t partition_count(const std::string& name) const;

  // --- metadata (what cluster clients cache and refresh) ---
  Result<PartitionMeta> metadata(const std::string& topic,
                                 std::uint32_t partition) const;
  Result<BrokerId> leader(const std::string& topic,
                          std::uint32_t partition) const;

  // --- data plane ---
  /// Appends through broker `via`, which must be the current leader —
  /// anything else fails with NOT_LEADER (carrying the real leader in the
  /// message) so clients refresh metadata and retry. Returns the first
  /// offset once the ack policy is satisfied; TIMEOUT if the required
  /// replicas did not catch up within `ack_timeout` (the batch may still
  /// replicate afterwards: retrying can duplicate — at-least-once).
  ///
  /// `client_id` feeds the leader broker's admission control (see
  /// Broker::produce); an over-quota client gets a transient
  /// Status::Throttled with a retry-after hint. Empty = internal caller.
  Result<std::uint64_t> produce(BrokerId via, const std::string& topic,
                                std::uint32_t partition,
                                std::vector<broker::Record> records,
                                AckPolicy acks,
                                const std::string& client_id = {});
  Result<std::uint64_t> produce(BrokerId via, const std::string& topic,
                                std::uint32_t partition,
                                std::vector<broker::Record> records);

  /// Reads from the leader, capped at the high watermark: records not yet
  /// on a majority of replicas are invisible. Never long-polls.
  Result<std::vector<broker::ConsumedRecord>> fetch(
      BrokerId via, const std::string& topic, std::uint32_t partition,
      broker::FetchSpec spec) const;

  /// Committed end of a partition: the quorum-replicated offset. A
  /// consumer positioned here has seen everything that is guaranteed to
  /// survive a failover.
  Result<std::uint64_t> high_watermark(const std::string& topic,
                                       std::uint32_t partition) const;
  Result<std::uint64_t> log_start_offset(const std::string& topic,
                                         std::uint32_t partition) const;

  // --- consumer groups (served by the __offsets partition leader) ---
  Result<broker::GroupAssignment> join_group(
      const std::string& group, const std::string& member,
      const std::vector<std::string>& topics);
  Status leave_group(const std::string& group, const std::string& member);
  Status heartbeat(const std::string& group, const std::string& member);
  Result<broker::GroupAssignment> group_assignment(
      const std::string& group, const std::string& member) const;
  std::uint64_t group_generation(const std::string& group) const;

  /// Replicated offset commit: appended to `__offsets` under the given
  /// leader epoch (stale epochs are fenced with NOT_LEADER), applied to
  /// the offsets leader's coordinator in log order, quorum-acked. Only an
  /// OK return means the commit is durable against leader loss.
  Status commit_offset(const std::string& group,
                       const broker::TopicPartition& tp, std::uint64_t offset,
                       std::uint64_t epoch);
  std::optional<std::uint64_t> committed_offset(
      const std::string& group, const broker::TopicPartition& tp) const;
  /// Current `__offsets` leader epoch, passed back via commit_offset.
  std::uint64_t offsets_epoch() const;

  // --- chaos hooks (fault module) ---
  /// Marks a broker dead: all cluster calls routed at it fail UNAVAILABLE
  /// and its heartbeat goes stale, so its partitions fail over once the
  /// session timeout expires (bounded failover, not instant).
  Status kill_broker(BrokerId id);
  Status kill_broker(const std::string& name);
  /// Brings a dead broker back (durable members crash-recover from disk
  /// first, losing `keep_fraction`-scaled unsynced tails) or heals an
  /// isolated one. A restored member rejoins as a follower: any partition
  /// it still nominally leads is re-elected first.
  Status restore_broker(BrokerId id, double keep_fraction = 0.0);
  Status restore_broker(const std::string& name, double keep_fraction = 0.0);
  /// Network isolation: the broker stays up but heartbeats stop, cluster
  /// calls fail UNAVAILABLE, and replication skips it.
  Status set_broker_isolated(BrokerId id, bool isolated);
  Status set_broker_isolated(const std::string& name, bool isolated);
  bool broker_alive(BrokerId id) const;

  // --- introspection ---
  std::uint64_t failover_count() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  /// True when every partition of every topic has a live leader (test/
  /// tool convergence helper).
  bool all_partitions_led() const;
  /// True when every live replica of the partition has the same end
  /// offset (replication has drained).
  bool replicas_converged(const std::string& topic,
                          std::uint32_t partition) const;

 private:
  struct Node {
    std::shared_ptr<broker::Broker> broker;
    bool alive = true;
    bool isolated = false;
    TimePoint last_heartbeat{};
  };

  struct PartitionState {
    PartitionMeta meta;
    /// Replica id -> offset its log must be truncated to before it may
    /// rejoin the ISR or lead: the divergence repair left behind by an
    /// election that moved leadership away from it.
    std::map<BrokerId, std::uint64_t> pending_truncate;
    /// Serializes the produce path's leader-append + follower-push
    /// against the controller's catch-up pump, so every replica applies
    /// record batches in the same order (offsets must match content
    /// across replicas).
    Mutex append_mutex{"cluster.partition",
                       lock_rank(kLockDomainCluster, 3)};
  };

  struct TopicState {
    ClusterTopicConfig config;
    std::uint32_t replication_factor = 1;
    std::vector<std::unique_ptr<PartitionState>> partitions;
  };

  /// Snapshot taken on the produce path while the metadata lock is held.
  /// `replicas` is the partition's full replica set by id — await_acks
  /// re-checks each replica's eligibility (alive, not isolated, no
  /// pending divergence repair) under the metadata lock on every poll,
  /// so a dead broker's frozen end offset or a deposed leader's
  /// divergent suffix can never satisfy an ack.
  struct AckWait {
    std::uint64_t target = 0;
    std::size_t required = 0;
    std::size_t satisfied = 0;
    AckPolicy acks = AckPolicy::kLeader;
    std::vector<BrokerId> replicas;
  };

  struct IsrChange {
    std::string topic;
    std::uint32_t partition = 0;
    std::uint64_t epoch = 0;
    std::vector<BrokerId> isr;
  };

  void controller_loop();
  void tick();
  /// Writer phase: refresh heartbeats, repair pending truncations on live
  /// replicas, elect leaders for partitions whose leader expired (or that
  /// are leaderless with a live candidate).
  void admin_phase();
  /// Reader phase: stream catch-up batches leader -> lagging followers,
  /// compute the desired ISR per partition.
  std::vector<IsrChange> replicate_phase();
  void apply_isr_changes(const std::vector<IsrChange>& changes);

  Status create_topic_locked(const std::string& name,
                             ClusterTopicConfig config,
                             std::uint32_t replication_factor)
      PE_REQUIRES(mutex_);
  void elect_locked(const std::string& topic, std::uint32_t partition,
                    PartitionState& ps) PE_REQUIRES(mutex_);
  /// Rebuilds the committed-offset table of a new __offsets leader by
  /// replaying its local replica in log order (last write per key wins).
  void replay_offsets_locked(BrokerId id) PE_REQUIRES(mutex_);
  Result<PartitionState*> find_partition_locked(const std::string& topic,
                                                std::uint32_t partition) const
      PE_REQUIRES_SHARED(mutex_);
  std::shared_ptr<broker::Broker> offsets_leader() const;
  std::uint64_t high_watermark_locked(const std::string& topic,
                                      std::uint32_t partition,
                                      const PartitionState& ps) const
      PE_REQUIRES_SHARED(mutex_);
  /// Leader append + synchronous push to caught-up followers; fills
  /// `wait` for the caller to await outside the locks. Must hold the
  /// metadata lock (shared) and the partition's append_mutex.
  Result<std::uint64_t> replicated_append_locked(
      const std::string& topic, std::uint32_t partition, PartitionState& ps,
      const PartitionMeta& meta, const std::vector<broker::Record>& records,
      AckPolicy acks, const std::string& client_id, AckWait& wait)
      PE_REQUIRES_SHARED(mutex_);
  Status await_acks(const std::string& topic, std::uint32_t partition,
                    const AckWait& wait) const;

  const ClusterOptions options_;
  // Metadata lock, level 1 of the cluster domain (above every broker
  // lock: cluster code calls down into brokers, never the reverse).
  // Produce/fetch hold it shared across the leadership check and the
  // leader append; elections take it exclusive — a deposed leader can
  // never append after the election that removed it.
  mutable SharedMutex mutex_{"cluster.meta", lock_rank(kLockDomainCluster, 1)};
  /// Serializes __offsets append+apply so the coordinator's table always
  /// reflects a prefix of the log in log order.
  Mutex offsets_mutex_{"cluster.offsets_apply",
                       lock_rank(kLockDomainCluster, 2)};
  std::vector<Node> nodes_ PE_GUARDED_BY(mutex_);
  std::map<std::string, TopicState> topics_ PE_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<bool> stop_{false};
  std::thread controller_;
};

}  // namespace pe::cluster
