#include "cluster/cluster_client.h"

#include <algorithm>
#include <utility>

#include "common/ids.h"
#include "common/logging.h"
#include "cluster/shard_map.h"

namespace pe::cluster {

bool retryable(const RetryConfig& config, const Status& status) {
  if (status.ok()) return false;
  if (config.policy == exec::RetryPolicy::kAllFailures) return true;
  return status.is_transient();
}

namespace {

/// One backoff step: sleep the current delay (emulated), then double it
/// up to the cap.
void backoff_step(const RetryConfig& config, Duration& delay) {
  Clock::sleep_scaled(delay);
  delay = std::min(delay * 2, config.max_backoff);
}

}  // namespace

// --- ClusterProducer -------------------------------------------------------

ClusterProducer::ClusterProducer(std::shared_ptr<BrokerCluster> cluster,
                                 RetryConfig retry,
                                 std::optional<AckPolicy> acks)
    : cluster_(std::move(cluster)),
      retry_(retry),
      acks_(acks.value_or(cluster_->options().default_acks)),
      id_(next_producer_id()) {}

ClusterProducer::~ClusterProducer() {
  if (accumulator_) (void)accumulator_->close();
}

void ClusterProducer::enable_batching(broker::BatchConfig config) {
  accumulator_ = std::make_unique<broker::BatchAccumulator>(
      config, [this](const std::string& topic, std::uint32_t partition,
                     std::vector<broker::Record> records) {
        return send_batch(topic, partition, std::move(records)).status();
      });
}

Status ClusterProducer::enqueue(const std::string& topic,
                                std::uint32_t partition,
                                broker::Record record) {
  if (!accumulator_) {
    return Status::FailedPrecondition("batching not enabled");
  }
  return accumulator_->add(topic, partition, std::move(record));
}

Status ClusterProducer::flush() {
  if (!accumulator_) return Status::Ok();
  return accumulator_->flush();
}

Status ClusterProducer::close() {
  if (!accumulator_) return Status::Ok();
  return accumulator_->close();
}

ClusterProducerStats ClusterProducer::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

broker::BatchAccumulatorStats ClusterProducer::batch_stats() const {
  if (!accumulator_) return {};
  return accumulator_->stats();
}

Status ClusterProducer::last_batch_error() const {
  if (!accumulator_) return Status::Ok();
  return accumulator_->last_error();
}

Result<BrokerId> ClusterProducer::leader_for(const std::string& topic,
                                             std::uint32_t partition) {
  const broker::TopicPartition tp{topic, partition};
  {
    MutexLock lock(mutex_);
    auto it = leaders_.find(tp);
    if (it != leaders_.end()) return it->second;
  }
  auto leader = cluster_->leader(topic, partition);
  if (!leader.ok()) return leader.status();
  MutexLock lock(mutex_);
  ++stats_.metadata_refreshes;
  if (leader.value() == kNoBroker) {
    return Status::Unavailable("partition " + topic + "/" +
                               std::to_string(partition) +
                               " is leaderless (election pending)");
  }
  leaders_[tp] = leader.value();
  return leader.value();
}

Result<std::uint64_t> ClusterProducer::send(const std::string& topic,
                                            std::uint32_t partition,
                                            broker::Record record) {
  std::vector<broker::Record> batch;
  batch.push_back(std::move(record));
  return send_batch(topic, partition, std::move(batch));
}

Result<std::uint64_t> ClusterProducer::send(const std::string& topic,
                                            broker::Record record) {
  const std::uint32_t partitions = cluster_->partition_count(topic);
  if (partitions == 0) {
    return Status::NotFound("unknown topic '" + topic + "'");
  }
  const std::uint32_t partition =
      static_cast<std::uint32_t>(stable_hash(record.key) % partitions);
  return send(topic, partition, std::move(record));
}

Result<std::uint64_t> ClusterProducer::send_batch(
    const std::string& topic, std::uint32_t partition,
    std::vector<broker::Record> records) {
  const std::size_t count = records.size();
  Duration delay = retry_.initial_backoff;
  Status last_error = Status::Ok();
  for (std::size_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      {
        MutexLock lock(mutex_);
        ++stats_.retries;
        if (last_error.retry_after() > Duration::zero()) {
          ++stats_.throttle_waits;
        }
      }
      // A throttled attempt (quota / hot-window cap) carries the broker's
      // retry-after hint: honor it as the backoff floor so a herd of
      // producers does not hammer an over-budget broker faster than its
      // bucket refills.
      Clock::sleep_scaled(std::max(delay, last_error.retry_after()));
      delay = std::min(delay * 2, retry_.max_backoff);
    }
    auto leader = leader_for(topic, partition);
    if (!leader.ok()) {
      last_error = leader.status();
      if (!retryable(retry_, last_error)) break;
      continue;
    }
    // Per-attempt copies are cheap: payload views are shared, only keys
    // and coordinates duplicate.
    std::vector<broker::Record> copy = records;
    auto produced = cluster_->produce(leader.value(), topic, partition,
                                      std::move(copy), acks_, id_);
    if (produced.ok()) {
      MutexLock lock(mutex_);
      stats_.records_sent += count;
      return produced.value();
    }
    last_error = produced.status();
    // Leadership may have moved (NOT_LEADER carries the new leader; a
    // dead leader shows as UNAVAILABLE until the election lands): drop
    // the cache entry so the next attempt re-resolves.
    {
      MutexLock lock(mutex_);
      leaders_.erase(broker::TopicPartition{topic, partition});
    }
    if (!retryable(retry_, last_error)) break;
  }
  MutexLock lock(mutex_);
  ++stats_.send_errors;
  return last_error;
}

// --- ClusterConsumer -------------------------------------------------------

ClusterConsumer::ClusterConsumer(std::shared_ptr<BrokerCluster> cluster,
                                 std::string group,
                                 ClusterConsumerConfig config,
                                 RetryConfig retry)
    : cluster_(std::move(cluster)),
      group_(std::move(group)),
      id_(next_consumer_id()),
      config_(config),
      retry_(retry) {}

ClusterConsumer::~ClusterConsumer() {
  if (subscribed_) {
    if (auto s = close(); !s.ok()) {
      PE_LOG_WARN(id_ << ": close failed: " << s.to_string());
    }
  }
}

Status ClusterConsumer::subscribe(std::vector<std::string> topics) {
  topics_ = std::move(topics);
  Status s = rejoin();
  if (s.ok()) subscribed_ = true;
  return s;
}

Status ClusterConsumer::rejoin() {
  Duration delay = retry_.initial_backoff;
  Status last_error = Status::Ok();
  for (std::size_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      backoff_step(retry_, delay);
    }
    auto joined = cluster_->join_group(group_, id_, topics_);
    if (joined.ok()) {
      generation_ = joined.value().generation;
      assignment_ = joined.value().partitions;
      ++stats_.rebalances;
      // Keep positions of partitions we still own; drop the rest (their
      // new owner resumes from the committed offset).
      std::map<broker::TopicPartition, std::uint64_t> kept;
      for (const auto& tp : assignment_) {
        if (auto it = positions_.find(tp); it != positions_.end()) {
          kept.emplace(*it);
        }
      }
      positions_ = std::move(kept);
      return Status::Ok();
    }
    last_error = joined.status();
    if (!retryable(retry_, last_error)) break;
  }
  return last_error;
}

void ClusterConsumer::maybe_rebalance() {
  const std::uint64_t current = cluster_->group_generation(group_);
  if (current == generation_) return;
  // Generation moved: either the group rebalanced or the offsets leader
  // failed over and the membership re-formed on the new coordinator.
  auto assigned = cluster_->group_assignment(group_, id_);
  if (assigned.ok()) {
    generation_ = assigned.value().generation;
    assignment_ = assigned.value().partitions;
    ++stats_.rebalances;
    return;
  }
  if (auto s = rejoin(); !s.ok()) {
    PE_LOG_WARN(id_ << ": rejoin failed: " << s.to_string());
  }
}

std::optional<std::uint64_t> ClusterConsumer::initial_position(
    const broker::TopicPartition& tp) {
  if (auto committed = cluster_->committed_offset(group_, tp)) {
    return *committed;
  }
  if (config_.offset_reset == ClusterConsumerConfig::OffsetReset::kEarliest) {
    auto start = cluster_->log_start_offset(tp.topic, tp.partition);
    if (start.ok()) return start.value();
    return std::nullopt;
  }
  auto hw = cluster_->high_watermark(tp.topic, tp.partition);
  if (hw.ok()) return hw.value();
  return std::nullopt;
}

void ClusterConsumer::sweep(std::vector<broker::ConsumedRecord>& out) {
  if (assignment_.empty()) return;
  const std::size_t n = assignment_.size();
  for (std::size_t i = 0; i < n && out.size() < config_.max_poll_records;
       ++i) {
    const broker::TopicPartition& tp =
        assignment_[(sweep_start_ + i) % n];
    auto pos_it = positions_.find(tp);
    if (pos_it == positions_.end()) {
      auto pos = initial_position(tp);
      if (!pos) continue;  // leaderless right now; next poll
      pos_it = positions_.emplace(tp, *pos).first;
    }
    auto leader = cluster_->leader(tp.topic, tp.partition);
    if (!leader.ok() || leader.value() == kNoBroker) continue;
    broker::FetchSpec spec;
    spec.offset = pos_it->second;
    spec.max_records = config_.max_poll_records - out.size();
    auto fetched =
        cluster_->fetch(leader.value(), tp.topic, tp.partition, spec);
    if (!fetched.ok()) {
      if (fetched.status().code() == StatusCode::kOutOfRange) {
        // The position fell outside the committed log (retention moved
        // the start, or an unclean edge shrank the end): reset it.
        positions_.erase(pos_it);
      }
      continue;  // NOT_LEADER/UNAVAILABLE resolve by the next sweep
    }
    for (auto& record : fetched.value()) {
      pos_it->second = record.offset + 1;
      out.push_back(std::move(record));
    }
  }
  sweep_start_ = (sweep_start_ + 1) % n;
}

Result<std::vector<broker::ConsumedRecord>> ClusterConsumer::poll(
    Duration max_wait) {
  if (!subscribed_) {
    return Status::FailedPrecondition("consumer is not subscribed");
  }
  if (config_.auto_commit) {
    if (auto s = commit(); !s.ok()) {
      PE_LOG_WARN(id_ << ": auto-commit failed: " << s.to_string());
    }
  }
  if (auto s = cluster_->heartbeat(group_, id_);
      !s.ok() && s.code() == StatusCode::kNotFound) {
    // Evicted (or the coordinator moved and dropped soft state).
    if (auto j = rejoin(); !j.ok()) return j;
  }
  maybe_rebalance();

  std::vector<broker::ConsumedRecord> out;
  Stopwatch sw;
  const double budget_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          max_wait)
          .count() /
      Clock::time_scale();
  while (true) {
    sweep(out);
    if (!out.empty() || sw.elapsed_ms() >= budget_ms) break;
    // Scaled: the wall budget above shrank by the time scale, so a fixed
    // 200us wall sleep would consume it in a handful of sweeps at high
    // speed-up (and make an empty poll overshoot max_wait badly).
    Clock::sleep_scaled(std::chrono::microseconds(200));
  }
  stats_.records_consumed += out.size();
  return out;
}

Status ClusterConsumer::commit() {
  for (const auto& [tp, pos] : positions_) {
    if (auto it = committed_.find(tp);
        it != committed_.end() && it->second == pos) {
      continue;
    }
    Duration delay = retry_.initial_backoff;
    Status last_error = Status::Ok();
    bool committed = false;
    for (std::size_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
      if (attempt > 0) {
        ++stats_.retries;
        backoff_step(retry_, delay);
      }
      // The epoch is re-read per attempt: after an offsets failover the
      // first try fails NOT_LEADER (stale epoch) and the retry lands on
      // the new leader's epoch.
      const std::uint64_t epoch = cluster_->offsets_epoch();
      auto s = cluster_->commit_offset(group_, tp, pos, epoch);
      if (s.ok()) {
        committed = true;
        committed_[tp] = pos;
        ++stats_.commits;
        break;
      }
      last_error = s;
      if (!retryable(retry_, last_error)) break;
    }
    if (!committed) return last_error;
  }
  return Status::Ok();
}

std::optional<std::uint64_t> ClusterConsumer::position(
    const broker::TopicPartition& tp) const {
  auto it = positions_.find(tp);
  if (it == positions_.end()) return std::nullopt;
  return it->second;
}

void ClusterConsumer::seek(const broker::TopicPartition& tp,
                           std::uint64_t offset) {
  positions_[tp] = offset;
}

Status ClusterConsumer::close() {
  if (!subscribed_) return Status::Ok();
  subscribed_ = false;
  Status commit_status =
      config_.auto_commit ? commit() : Status::Ok();
  auto left = cluster_->leave_group(group_, id_);
  return commit_status.ok() ? left : commit_status;
}

void ClusterConsumer::crash() {
  subscribed_ = false;
  positions_.clear();
  committed_.clear();
  assignment_.clear();
}

}  // namespace pe::cluster
